//! Sec. 4–5: contification and the `find`/`any` fusion.
//!
//! `find` has a local recursive loop `go`; `any` is `case find … of`.
//! Contification turns `go` into a recursive **join point**, and the
//! commuting conversion (`jfloat`) then moves `any`'s case to the loop's
//! return points: the `Maybe` disappears entirely.
//!
//! ```text
//! cargo run --example contify_find_any
//! ```

use system_fj::ast::{Dsl, Expr, PrimOp, Type};
use system_fj::check::lint;
use system_fj::core::{contify_counting, optimize, OptConfig};
use system_fj::eval::{run, EvalMode};

fn build(d: &mut Dsl, n: i64) -> Expr {
    // find (> 3) [1 % 3, 2 % 3, …]  consumed by  any = case … of
    let xs: Vec<i64> = (1..=n).map(|i| i % 3).collect();
    let list = d.int_list(&xs);
    let maybe_int = d.maybe_ty(Type::Int);
    let list_int = d.list_ty(Type::Int);
    let find = d.letrec_loop(
        "go",
        vec![("xs", list_int)],
        maybe_int,
        |d2, go, ps| {
            let nil_rhs = d2.nothing(Type::Int);
            d2.case_list(Type::Int, Expr::var(&ps[0]), nil_rhs, |d3, y, ys| {
                Expr::ite(
                    Expr::prim2(PrimOp::Gt, Expr::var(y), Expr::Lit(3)),
                    d3.just(Type::Int, Expr::var(y)),
                    Expr::app(Expr::var(go), Expr::var(ys)),
                )
            })
        },
        |_, go| Expr::app(Expr::var(go), list),
    );
    d.case_maybe(Type::Int, find, Expr::Lit(0), |_, _| Expr::Lit(1))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut d = Dsl::new();
    let program = build(&mut d, 40);
    lint(&program, &d.data_env)?;
    println!("--- input: any = case find of ... ---\n{program}\n");

    // Step 1: contification alone.
    let (contified, n) = contify_counting(&program, &d.data_env)?;
    println!("--- after contification ({n} binding(s) became joins) ---\n{contified}\n");

    // Step 2: the full pipeline (contify + jfloat + simplify).
    let out = optimize(
        &program,
        &d.data_env,
        &mut d.supply,
        &OptConfig::join_points(),
    )?;
    println!("--- after the full join-points pipeline ---\n{out}\n");

    let o = run(&out, EvalMode::CallByValue, 10_000_000)?;
    println!("result = {}   {}", o.value, o.metrics);
    println!("\nEvery allocation left is the input list itself; the loop");
    println!("and its Maybe results compile to jumps and plain data flow.");
    Ok(())
}
