//! Quickstart: compile a small program, optimize it with and without
//! join points, and watch the allocation counter.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use system_fj::core::{optimize, OptConfig};
use system_fj::eval::{run, EvalMode};
use system_fj::surface::compile;

const SRC: &str = "
-- find the first element > 3, tell whether one exists (Sec. 5's any)
def any4 : List Int -> Bool =
  \\(xs : List Int) ->
    letrec go : List Int -> Maybe Int =
      \\(ys : List Int) ->
        case ys of {
          Nil -> Nothing @Int;
          Cons y t -> if y > 3 then Just @Int y else go t
        }
    in case go xs of {
         Nothing -> False;
         Just _ -> True
       };

def nums : Int -> List Int =
  \\(n : Int) ->
    letrec go : Int -> List Int =
      \\(i : Int) ->
        if i > n then Nil @Int else Cons @Int (i % 3) (go (i + 1))
    in go 1;

def main : Int = if any4 (Cons @Int 9 (nums 50)) then 1 else 0;
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("--- source ---\n{SRC}");

    for (label, cfg) in [
        ("baseline (GHC before the paper)", OptConfig::baseline()),
        ("join points (the paper)", OptConfig::join_points()),
    ] {
        let mut p = compile(SRC)?;
        let opt = optimize(&p.expr, &p.data_env, &mut p.supply, &cfg)?;
        let out = run(&opt, EvalMode::CallByValue, 10_000_000)?;
        println!("--- {label} ---\nresult = {}\n{}\n", out.value, out.metrics);
    }

    println!("The join-points pipeline contifies `go`, and the consumer's");
    println!("case moves to the loop's return points (jfloat): the Maybe");
    println!("cells never exist at runtime.");
    Ok(())
}
