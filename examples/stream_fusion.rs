//! Sec. 5: the stream-fusion showdown.
//!
//! Runs `sum (map f (filter p [1..n]))` in all four configurations —
//! {skip-less, skip-ful} × {baseline, join points} — and prints the
//! allocation counts. The series to notice:
//!
//! * skip-less + join points: **0** allocations (the paper's headline);
//! * skip-less + baseline: grows with n (the historical problem);
//! * skip-ful: fuses either way, at the cost of more code.
//!
//! ```text
//! cargo run --example stream_fusion
//! ```

use system_fj::ast::{Dsl, Expr, PrimOp, Type};
use system_fj::core::{optimize, OptConfig};
use system_fj::eval::{run, EvalMode};
use system_fj::fusion::{enum_from_to, filter_s, int_lambda, map_s, sum_s, StepVariant};

fn pipeline(d: &mut Dsl, v: StepVariant, n: i64) -> Expr {
    let s = enum_from_to(d, v, Expr::Lit(1), Expr::Lit(n));
    let odd = int_lambda(d, |_, x| {
        Expr::prim2(
            PrimOp::Eq,
            Expr::prim2(PrimOp::Rem, Expr::var(x), Expr::Lit(2)),
            Expr::Lit(1),
        )
    });
    let s = filter_s(d, odd, s);
    let double = int_lambda(d, |_, x| {
        Expr::prim2(PrimOp::Mul, Expr::var(x), Expr::Lit(2))
    });
    let s = map_s(d, double, Type::Int, s);
    sum_s(d, s)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:<12} {:>6} {:>8} {:>10} {:>8}",
        "variant", "pipeline", "n", "value", "allocs", "steps"
    );
    for n in [50, 500] {
        for variant in [StepVariant::Skipless, StepVariant::Skip] {
            for (label, cfg) in [
                ("baseline", OptConfig::baseline()),
                ("join-points", OptConfig::join_points()),
            ] {
                let mut d = Dsl::new();
                let e = pipeline(&mut d, variant, n);
                let opt = optimize(&e, &d.data_env, &mut d.supply, &cfg)?;
                let o = run(&opt, EvalMode::CallByValue, 50_000_000)?;
                println!(
                    "{:<10} {:<12} {:>6} {:>8} {:>10} {:>8}",
                    format!("{variant:?}"),
                    label,
                    n,
                    o.value.to_string(),
                    o.metrics.total_allocs(),
                    o.metrics.steps
                );
            }
        }
    }
    println!("\nSkip-less + join points is allocation-free at every n:");
    println!("recursive join points made Svenningsson's streams fuse.");
    Ok(())
}
