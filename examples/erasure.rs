//! Sec. 6, Theorem 5: erasing join points back to System F.
//!
//! Join points add no expressive power — every F_J program is equal to a
//! plain System F program. This example builds a program with a
//! non-tail jump (the paper's tricky case, which needs `abort` before
//! decontification), erases it, and shows both run identically.
//!
//! ```text
//! cargo run --example erasure
//! ```

use system_fj::ast::{Dsl, Expr, JoinDef, PrimOp, Type};
use system_fj::check::lint;
use system_fj::core::erase;
use system_fj::eval::{run_int, EvalMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut d = Dsl::new();
    let j = d.name("j");
    let x = d.binder("x", Type::Int);
    // join j x = x + 1 in (jump j 1 (Int -> Int)) 2
    //   — the jump is NOT a tail call; its context (the application to 2)
    //     is discarded at runtime, so naive inlining would be ill-typed.
    let program = Expr::join1(
        JoinDef {
            name: j.clone(),
            ty_params: vec![],
            params: vec![x.clone()],
            body: Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::Lit(1)),
        },
        Expr::app(
            Expr::jump(
                &j,
                vec![],
                vec![Expr::Lit(1)],
                Type::fun(Type::Int, Type::Int),
            ),
            Expr::Lit(2),
        ),
    );
    lint(&program, &d.data_env)?;
    println!("--- F_J program (non-tail jump!) ---\n{program}\n");

    let erased = erase(&program, &d.data_env, &mut d.supply)?;
    assert!(!erased.has_join_or_jump());
    lint(&erased, &d.data_env)?;
    println!("--- erased to System F ---\n{erased}\n");

    for mode in [
        EvalMode::CallByName,
        EvalMode::CallByNeed,
        EvalMode::CallByValue,
    ] {
        let a = run_int(&program, mode, 100_000)?;
        let b = run_int(&erased, mode, 100_000)?;
        assert_eq!(a, b);
        println!("{mode:?}: original = {a}, erased = {b}");
    }
    println!("\nBoth evaluate to 2: the machine discards the application");
    println!("frame at the jump; erasure makes that explicit with abort");
    println!("and commuting conversions first (commuting-normal form).");
    Ok(())
}
