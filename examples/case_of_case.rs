//! The paper's Sec. 2 worked example: case-of-case, the code-bloat
//! problem, and join points as the fix.
//!
//! Builds `case (case v of …) of {Nothing -> BIG1; Just x -> BIG2}`
//! with deliberately large outer branches and prints the optimizer's
//! output in both modes: the paper's pipeline shares the big branches
//! through **join points** (`join j1/j2 … jump`), while the baseline
//! shares them through heap-allocated functions.
//!
//! ```text
//! cargo run --example case_of_case
//! ```

use system_fj::ast::{Alt, AltCon, Dsl, Expr, Ident, PrimOp, Type};
use system_fj::check::lint;
use system_fj::core::{optimize, OptConfig};

fn big(x: Expr) -> Expr {
    let mut acc = x;
    for i in 0..12 {
        acc = Expr::prim2(PrimOp::Add, acc, Expr::Lit(i));
    }
    acc
}

fn build(d: &mut Dsl) -> Expr {
    let v = d.binder("v", Type::bool());
    let x = d.binder("x", Type::Int);
    // the inner case: case v of { True -> Just 1; False -> Nothing }
    let inner = Expr::ite(
        Expr::var(&v.name),
        d.just(Type::Int, Expr::Lit(1)),
        d.nothing(Type::Int),
    );
    // the outer case with BIG branches
    let outer = Expr::case(
        inner,
        vec![
            Alt::simple(AltCon::Con(Ident::new("Nothing")), big(Expr::Lit(100))),
            Alt {
                con: AltCon::Con(Ident::new("Just")),
                binders: vec![x.clone()],
                rhs: big(Expr::var(&x.name)),
            },
        ],
    );
    Expr::lam(v, outer)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut d = Dsl::new();
    let program = build(&mut d);
    lint(&program, &d.data_env)?;
    println!("--- input (case of case, BIG branches) ---\n{program}\n");

    let mut d1 = Dsl::new();
    let p1 = build(&mut d1);
    let joined = optimize(&p1, &d1.data_env, &mut d1.supply, &OptConfig::join_points())?;
    println!("--- join-points pipeline ---\n{joined}\n");

    let mut d2 = Dsl::new();
    let p2 = build(&mut d2);
    let base = optimize(&p2, &d2.data_env, &mut d2.supply, &OptConfig::baseline())?;
    println!("--- baseline pipeline ---\n{base}\n");

    println!("Note how the join-points output scrutinizes `v` directly —");
    println!("the Just/Nothing cells are gone — while any shared big branch");
    println!("is a `join`, compiled as a jump, not a closure.");
    Ok(())
}
