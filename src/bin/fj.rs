//! `fj` — the command-line driver: compile, optimize, dump, and run
//! surface-language programs.
//!
//! ```text
//! fj run program.fj                 # compile + optimize + run
//! fj run --baseline program.fj      # the join-blind pipeline
//! fj run -O0 program.fj             # no optimization
//! fj run --backend vm program.fj    # run on the bytecode VM
//! fj dump program.fj                # print optimized Core (F_J)
//! fj dump --before program.fj       # print lowered Core, pre-optimizer
//! fj check program.fj               # lint only
//! fj erase program.fj               # print the join-free System F term
//! fj report                         # nofib: baseline vs join points,
//!                                   # Table-1-style markdown + pass stats
//! fj bench                          # nofib timed on both backends,
//!                                   # JSON on stdout (BENCH_vm.json)
//!
//! options: --baseline | -O0, --backend machine|vm, --mode name|need|value,
//!          --fuel N, --metrics
//! ```

use std::process::ExitCode;

use system_fj::check::lint;
use system_fj::core::{erase, optimize_with_stats, OptConfig};
use system_fj::eval::{run, EvalMode};
use system_fj::nofib::Backend;
use system_fj::surface::compile;

struct Options {
    command: String,
    file: String,
    config: OptConfig,
    config_name: &'static str,
    mode: EvalMode,
    backend: Backend,
    fuel: u64,
    metrics: bool,
    before: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: fj <run|dump|check|erase> [--baseline | -O0] [--backend machine|vm] \
         [--mode name|need|value] [--fuel N] [--metrics] [--before] <file.fj>\n\
         \x20      fj report   (nofib suite: baseline vs join points, markdown)\n\
         \x20      fj bench    (nofib suite timed on both backends, JSON)"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        return Err(usage());
    };
    if !matches!(
        command.as_str(),
        "run" | "dump" | "check" | "erase" | "report" | "bench"
    ) {
        return Err(usage());
    }
    let mut config = OptConfig::join_points();
    let mut config_name = "join-points";
    let mut mode = EvalMode::CallByValue;
    let mut backend = Backend::Machine;
    let mut fuel = 100_000_000u64;
    let mut metrics = false;
    let mut before = false;
    let mut file = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => {
                config = OptConfig::baseline();
                config_name = "baseline";
            }
            "-O0" => {
                config = OptConfig::none();
                config_name = "unoptimized";
            }
            "--metrics" => metrics = true,
            "--before" => before = true,
            "--mode" => {
                mode = match args.next().as_deref() {
                    Some("name") => EvalMode::CallByName,
                    Some("need") => EvalMode::CallByNeed,
                    Some("value") => EvalMode::CallByValue,
                    _ => return Err(usage()),
                };
            }
            "--backend" => {
                backend = match args.next().as_deref().and_then(Backend::parse) {
                    Some(b) => b,
                    None => return Err(usage()),
                };
            }
            "--fuel" => {
                fuel = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
            }
            _ if file.is_none() && !a.starts_with('-') => file = Some(a),
            _ => return Err(usage()),
        }
    }
    // `report` and `bench` take no file: they run the built-in suite.
    if command == "report" || command == "bench" {
        return Ok(Options {
            command,
            file: String::new(),
            config,
            config_name,
            mode,
            backend,
            fuel,
            metrics,
            before,
        });
    }
    let Some(file) = file else {
        return Err(usage());
    };
    Ok(Options {
        command,
        file,
        config,
        config_name,
        mode,
        backend,
        fuel,
        metrics,
        before,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    if opts.command == "report" {
        let rows = system_fj::nofib::run_report();
        print!("{}", system_fj::nofib::format_report(&rows));
        return ExitCode::SUCCESS;
    }
    if opts.command == "bench" {
        let rows = system_fj::nofib::run_bench();
        print!("{}", system_fj::nofib::format_bench_json(&rows));
        return ExitCode::SUCCESS;
    }
    let src = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fj: cannot read {}: {e}", opts.file);
            return ExitCode::from(1);
        }
    };
    let mut lowered = match compile(&src) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("fj: {}: {e}", opts.file);
            return ExitCode::from(1);
        }
    };
    if let Err(e) = lint(&lowered.expr, &lowered.data_env) {
        eprintln!("fj: {}: lint: {e}", opts.file);
        return ExitCode::from(1);
    }
    if opts.command == "check" {
        println!("{}: OK", opts.file);
        return ExitCode::SUCCESS;
    }
    if opts.command == "dump" && opts.before {
        println!("{}", lowered.expr);
        return ExitCode::SUCCESS;
    }

    let (optimized, stats) = match optimize_with_stats(
        &lowered.expr,
        &lowered.data_env,
        &mut lowered.supply,
        &opts.config,
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fj: optimizer: {e}");
            return ExitCode::from(1);
        }
    };

    match opts.command.as_str() {
        "dump" => {
            println!(
                "-- pipeline: {} ({} passes)",
                opts.config_name,
                stats.passes_run.len()
            );
            println!("-- size: {} -> {}", stats.size_before, stats.size_after);
            println!("{optimized}");
            ExitCode::SUCCESS
        }
        "erase" => match erase(&optimized, &lowered.data_env, &mut lowered.supply) {
            Ok(erased) => {
                println!("{erased}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("fj: erase: {e}");
                ExitCode::from(1)
            }
        },
        "run" => {
            let outcome = match opts.backend {
                Backend::Machine => {
                    run(&optimized, opts.mode, opts.fuel).map_err(|e| e.to_string())
                }
                Backend::Vm => {
                    system_fj::vm::run(&optimized, opts.mode, opts.fuel).map_err(|e| e.to_string())
                }
            };
            match outcome {
                Ok(out) => {
                    println!("{}", out.value);
                    if opts.metrics {
                        eprintln!(
                            "[{} | {:?} | {}] {}",
                            opts.config_name,
                            opts.mode,
                            opts.backend.name(),
                            out.metrics
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("fj: runtime: {e}");
                    ExitCode::from(1)
                }
            }
        }
        _ => usage(),
    }
}
