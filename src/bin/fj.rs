//! `fj` — the command-line driver: compile, optimize, dump, and run
//! surface-language programs.
//!
//! ```text
//! fj run program.fj                 # compile + optimize + run
//! fj run --baseline program.fj      # the join-blind pipeline
//! fj run -O0 program.fj             # no optimization
//! fj run --backend vm program.fj    # run on the bytecode VM
//! fj run --timeout-ms 500 prog.fj   # wall-clock deadline for the run
//! fj run --resilient program.fj     # roll back failing optimizer passes
//! fj dump program.fj                # print optimized Core (F_J)
//! fj dump --before program.fj       # print lowered Core, pre-optimizer
//! fj check program.fj               # lint only
//! fj erase program.fj               # print the join-free System F term
//! fj report                         # nofib: baseline vs join points,
//!                                   # Table-1-style markdown + pass stats
//! fj report --vm-ops                # VM opcode histogram over nofib:
//!                                   # top ops/pairs/triples, unfused vs
//!                                   # fused dispatch counts
//! fj bench                          # nofib timed on both backends,
//!                                   # JSON on stdout (BENCH_vm.json)
//! fj bench --phase optimize         # nofib timed through the optimizer,
//!                                   # JSON on stdout (BENCH_opt.json)
//! fj bench --phase serve            # nofib compiled twice through a live
//!                                   # compile service: cache-miss vs
//!                                   # cache-hit latency (BENCH_serve.json)
//! fj bench --phase serve-load       # concurrency load generator against
//!                                   # a live service: latency percentiles
//!                                   # and shed rate vs connection count
//!                                   # (BENCH_serve_load.json)
//! fj serve --port 0                 # compile service on an ephemeral
//!                                   # port (prints the bound address)
//! fj serve --workers 4 --queue 32   # explicit pool geometry: requests
//!                                   # beyond the bounded queue are shed
//!                                   # with an `overloaded` error
//! fj serve --cache-dir .fj-cache    # persistent cache tier: a restarted
//!                                   # server is warm from request one
//! fj fuzz --seed 1 --count 500      # fuzz farm: generated programs
//!                                   # cross-checked over every compile
//!                                   # route in parallel; failures are
//!                                   # shrunk into fuzz/corpus/*.fj
//!
//! options: --baseline | -O0, --backend machine|vm, --mode name|need|value,
//!          --fuel N, --timeout-ms N, --metrics, --resilient,
//!          --pass-deadline-ms N, --max-growth F, --max-passes N,
//!          --phase vm|optimize|serve|serve-load, --iterations N, --warmup N
//!          (bench only), --addr HOST:PORT, --port N, --shards N, --cache-bytes N,
//!          --cache-dir DIR, --workers N, --queue N, --max-conns N,
//!          --max-line BYTES, --idle-timeout-ms N, --drain-ms N (serve only),
//!          --seed N, --count N, --gen-depth N, --time-budget-ms N,
//!          --corpus DIR, --no-adversarial, --sabotage MODE:PASS (fuzz only)
//!
//! `fj serve` speaks newline-delimited JSON over TCP; see the `fj-server`
//! crate docs and README for the protocol. Request failures carry a
//! `code` field that mirrors the exit codes below.
//!
//! exit codes: 0 success; 1 I/O or other runtime error; 2 usage, lexical,
//! or parse error; 3 lowering or lint (type) error; 4 optimizer error;
//! 5 evaluation budget exhausted (fuel or wall-clock deadline). Served
//! requests additionally use 6 (`overloaded`: request or connection shed
//! by admission control — retry after `retry_after_ms`) and 7
//! (`internal`: the request handler panicked) in their `code` field.
//! ```

use std::process::ExitCode;
use std::time::Duration;

use system_fj::check::lint;
use system_fj::core::{erase, optimize_resilient, optimize_with_stats, OptConfig};
use system_fj::eval::{EvalMode, MachineError};
use system_fj::nofib::Backend;
use system_fj::surface::{compile, SurfaceError};
use system_fj::testkit::farm::FarmConfig;
use system_fj::testkit::Sabotage;
use system_fj::vm::VmError;

/// Exit code for usage, lexical, and parse errors.
const EXIT_PARSE: u8 = 2;
/// Exit code for lowering and lint (type) errors.
const EXIT_TYPE: u8 = 3;
/// Exit code for optimizer failures.
const EXIT_OPT: u8 = 4;
/// Exit code for exhausted evaluation budgets (fuel or deadline).
const EXIT_BUDGET: u8 = 5;

struct Options {
    command: String,
    file: String,
    config: OptConfig,
    config_name: &'static str,
    mode: EvalMode,
    backend: Backend,
    fuel: u64,
    timeout: Option<Duration>,
    metrics: bool,
    before: bool,
    resilient: bool,
    phase: BenchPhase,
    vm_ops: bool,
    iterations: u32,
    warmup: u32,
    addr: String,
    shards: usize,
    cache_bytes: usize,
    cache_dir: Option<std::path::PathBuf>,
    serve_cfg: system_fj::server::ServeConfig,
    fuzz: FarmConfig,
}

/// What `fj bench` measures: backend execution, the optimizer itself,
/// the compile service's cache-miss vs cache-hit latency, or the
/// service under concurrent load (percentiles + shed rate).
#[derive(Clone, Copy, PartialEq, Eq)]
enum BenchPhase {
    Vm,
    Optimize,
    Serve,
    ServeLoad,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: fj <run|dump|check|erase> [--baseline | -O0] [--backend machine|vm] \
         [--mode name|need|value] [--fuel N] [--timeout-ms N] [--metrics] [--before] \
         [--resilient] [--pass-deadline-ms N] [--max-growth F] [--max-passes N] <file.fj>\n\
         \x20      fj report [--vm-ops]\n\
         \x20                  (nofib suite: baseline vs join points, markdown;\n\
         \x20                   --vm-ops prints the VM opcode-dispatch histogram)\n\
         \x20      fj bench [--phase vm|optimize|serve|serve-load] [--iterations N]\n\
         \x20               [--warmup N]\n\
         \x20                  (nofib suite timed, JSON on stdout)\n\
         \x20      fj serve [--addr HOST:PORT] [--port N] [--shards N]\n\
         \x20               [--cache-bytes N] [--cache-dir DIR]\n\
         \x20               [--workers N] [--queue N] [--max-conns N] [--max-line BYTES]\n\
         \x20               [--idle-timeout-ms N] [--drain-ms N]\n\
         \x20                  (--cache-dir persists compiles across restarts;\n\
         \x20                   --cache-bytes budgets each in-memory cache layer)\n\
         \x20                  (compile service; newline-delimited JSON over TCP;\n\
         \x20                   load beyond the bounded queue or connection cap is\n\
         \x20                   shed with an `overloaded` error, code 6)\n\
         \x20      fj fuzz [--seed N] [--count N] [--gen-depth N] [--fuel N]\n\
         \x20              [--time-budget-ms N] [--corpus DIR] [--no-adversarial]\n\
         \x20              [--sabotage MODE:PASS]\n\
         \x20                  (parallel differential fuzz farm over every compile\n\
         \x20                   route; shrunk repros land in the corpus directory)\n\
         exit codes: 1 I/O or runtime, 2 usage/parse, 3 type/lint, 4 optimizer, \
         5 fuel/deadline exhausted (served requests also use 6 overloaded, \
         7 internal)"
    );
    ExitCode::from(EXIT_PARSE)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        return Err(usage());
    };
    if !matches!(
        command.as_str(),
        "run" | "dump" | "check" | "erase" | "report" | "bench" | "serve" | "fuzz"
    ) {
        return Err(usage());
    }
    let mut config = OptConfig::join_points();
    let mut config_name = "join-points";
    let mut mode = EvalMode::CallByValue;
    let mut backend = Backend::Machine;
    let mut fuel = 100_000_000u64;
    let mut timeout = None;
    let mut metrics = false;
    let mut before = false;
    let mut resilient = false;
    let mut phase = BenchPhase::Vm;
    let mut vm_ops = false;
    let mut iterations = 1u32;
    let mut warmup = 0u32;
    let mut addr = "127.0.0.1:7117".to_string();
    let mut shards = system_fj::core::cache::DEFAULT_SHARDS;
    let mut cache_bytes = system_fj::core::cache::DEFAULT_CACHE_BYTES;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut serve_cfg = system_fj::server::ServeConfig::default();
    let mut fuzz = FarmConfig {
        corpus_dir: Some("fuzz/corpus".into()),
        ..FarmConfig::default()
    };
    let mut fuel_flag = None;
    let mut file = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => {
                config = OptConfig::baseline();
                config_name = "baseline";
            }
            "-O0" => {
                config = OptConfig::none();
                config_name = "unoptimized";
            }
            "--metrics" => metrics = true,
            "--before" => before = true,
            "--resilient" => resilient = true,
            "--mode" => {
                mode = match args.next().as_deref() {
                    Some("name") => EvalMode::CallByName,
                    Some("need") => EvalMode::CallByNeed,
                    Some("value") => EvalMode::CallByValue,
                    _ => return Err(usage()),
                };
            }
            "--backend" => {
                backend = match args.next().as_deref().and_then(Backend::parse) {
                    Some(b) => b,
                    None => return Err(usage()),
                };
            }
            "--fuel" => {
                fuel_flag = Some(args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?);
            }
            "--seed" => {
                fuzz.seed = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
            }
            "--count" => {
                fuzz.cases = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
            }
            "--gen-depth" => {
                fuzz.depth = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
            }
            "--time-budget-ms" => {
                let ms: u64 = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
                fuzz.time_budget = Some(Duration::from_millis(ms));
            }
            "--corpus" => {
                fuzz.corpus_dir = Some(args.next().ok_or_else(usage)?.into());
            }
            "--no-adversarial" => fuzz.adversarial = false,
            "--vm-ops" => vm_ops = true,
            "--sabotage" => {
                let spec = args.next().ok_or_else(usage)?;
                let (mode_name, pass) = spec.split_once(':').ok_or_else(usage)?;
                let mode = Sabotage::ALL
                    .into_iter()
                    .find(|m| m.name() == mode_name)
                    .ok_or_else(usage)?;
                let target: usize = pass.parse().map_err(|_| usage())?;
                fuzz.sabotage = Some((mode, target));
            }
            "--timeout-ms" => {
                let ms: u64 = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
                timeout = Some(Duration::from_millis(ms));
            }
            "--pass-deadline-ms" => {
                let ms: u64 = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
                config = config.with_pass_deadline(Duration::from_millis(ms));
            }
            "--max-growth" => {
                let f: f64 = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
                config = config.with_max_growth(f);
            }
            "--max-passes" => {
                let n: usize = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
                config = config.with_max_passes(n);
            }
            "--phase" => {
                phase = match args.next().as_deref() {
                    Some("vm") => BenchPhase::Vm,
                    Some("optimize") => BenchPhase::Optimize,
                    Some("serve") => BenchPhase::Serve,
                    Some("serve-load") => BenchPhase::ServeLoad,
                    _ => return Err(usage()),
                };
            }
            "--workers" => {
                let n: usize = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
                serve_cfg.workers = n.max(1);
            }
            "--queue" => {
                let n: usize = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
                serve_cfg.queue_cap = n.max(1);
            }
            "--max-conns" => {
                let n: usize = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
                serve_cfg.max_conns = n.max(1);
            }
            "--max-line" => {
                let n: usize = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
                serve_cfg.max_line = n.max(64);
            }
            "--idle-timeout-ms" => {
                let ms: u64 = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
                serve_cfg.idle_timeout = Duration::from_millis(ms.max(1));
            }
            "--drain-ms" => {
                let ms: u64 = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
                serve_cfg.drain = Duration::from_millis(ms);
            }
            "--addr" => {
                addr = args.next().ok_or_else(usage)?;
            }
            "--port" => {
                let port: u16 = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
                addr = format!("127.0.0.1:{port}");
            }
            "--shards" => {
                shards = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
            }
            "--cache-bytes" => {
                cache_bytes = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
            }
            "--cache-dir" => {
                cache_dir = Some(std::path::PathBuf::from(args.next().ok_or_else(usage)?));
            }
            "--iterations" => {
                iterations = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
            }
            "--warmup" => {
                warmup = args.next().and_then(|n| n.parse().ok()).ok_or_else(usage)?;
            }
            _ if file.is_none() && !a.starts_with('-') => file = Some(a),
            _ => return Err(usage()),
        }
    }
    if let Some(f) = fuel_flag {
        fuel = f;
        fuzz.fuel = f;
    }
    // `report`, `bench`, `serve`, and `fuzz` take no file: the suite
    // commands run built-in programs, the service reads them off the
    // wire, and the farm generates its own.
    if matches!(command.as_str(), "report" | "bench" | "serve" | "fuzz") {
        return Ok(Options {
            command,
            file: String::new(),
            config,
            config_name,
            mode,
            backend,
            fuel,
            timeout,
            metrics,
            before,
            resilient,
            phase,
            vm_ops,
            iterations,
            warmup,
            addr,
            shards,
            cache_bytes,
            cache_dir,
            serve_cfg,
            fuzz,
        });
    }
    let Some(file) = file else {
        return Err(usage());
    };
    Ok(Options {
        command,
        file,
        config,
        config_name,
        mode,
        backend,
        fuel,
        timeout,
        metrics,
        before,
        resilient,
        phase,
        vm_ops,
        iterations,
        warmup,
        addr,
        shards,
        cache_bytes,
        cache_dir,
        serve_cfg,
        fuzz,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    if opts.command == "report" {
        if opts.vm_ops {
            let report = system_fj::nofib::vm_ops::run_vm_op_report();
            print!("{}", system_fj::nofib::vm_ops::format_vm_op_report(&report));
        } else {
            let rows = system_fj::nofib::run_report();
            print!("{}", system_fj::nofib::format_report(&rows));
        }
        return ExitCode::SUCCESS;
    }
    if opts.command == "bench" {
        match opts.phase {
            BenchPhase::Vm => {
                let rows = system_fj::nofib::run_bench(opts.iterations, opts.warmup);
                print!("{}", system_fj::nofib::format_bench_json(&rows));
            }
            BenchPhase::Optimize => {
                let bench = system_fj::nofib::run_bench_opt(opts.iterations, opts.warmup);
                print!("{}", system_fj::nofib::format_bench_opt_json(&bench));
            }
            BenchPhase::Serve => {
                // The service crate is nofib-blind; hand it the suite as
                // plain (name, suite, source) rows.
                let programs: Vec<(String, String, String)> = system_fj::nofib::programs()
                    .iter()
                    .map(|p| {
                        (
                            p.name.to_string(),
                            p.suite.name().to_string(),
                            p.source.to_string(),
                        )
                    })
                    .collect();
                let bench = system_fj::server::run_bench_serve(&programs);
                print!("{}", system_fj::server::format_bench_serve_json(&bench));
            }
            BenchPhase::ServeLoad => {
                let programs: Vec<(String, String, String)> = system_fj::nofib::programs()
                    .iter()
                    .map(|p| {
                        (
                            p.name.to_string(),
                            p.suite.name().to_string(),
                            p.source.to_string(),
                        )
                    })
                    .collect();
                let conns = [1usize, 2, 4, 8, 16, 32];
                match system_fj::server::run_bench_serve_load(&programs, &conns, 25) {
                    Ok(bench) => {
                        print!(
                            "{}",
                            system_fj::server::format_bench_serve_load_json(&bench)
                        );
                    }
                    Err(e) => {
                        eprintln!("fj: bench serve-load: {e}");
                        return ExitCode::from(1);
                    }
                }
            }
        }
        return ExitCode::SUCCESS;
    }
    if opts.command == "fuzz" {
        let cfg = &opts.fuzz;
        let sab = match cfg.sabotage {
            Some((mode, target)) => format!(", sabotage {}:{target}", mode.name()),
            None => String::new(),
        };
        println!(
            "fj fuzz: seed {}, {} cases, depth {}, adversarial bands {}{sab}",
            cfg.seed,
            cfg.cases,
            cfg.depth,
            if cfg.adversarial { "on" } else { "off" },
        );
        let report = system_fj::testkit::run_farm(cfg);
        for f in &report.failures {
            let repro = match &f.repro {
                Some(p) => format!(" (repro: {})", p.display()),
                None => String::new(),
            };
            let headline = f.shrunk_message.lines().next().unwrap_or("");
            eprintln!(
                "fj fuzz: FAIL case {} seed {:#018x}: {} vs {}: {} [shrunk {} -> {} nodes]{repro}",
                f.case,
                f.case_seed,
                f.routes.0,
                f.routes.1,
                headline,
                f.original_size,
                f.shrunk.size(),
            );
        }
        println!(
            "fj fuzz: {} run ({} with join points, {} adversarial), {} skipped, {} failures in {:.2?}",
            report.cases_run,
            report.join_programs,
            report.adversarial_cases,
            report.cases_skipped,
            report.failures.len(),
            report.elapsed,
        );
        return if report.ok() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }
    if opts.command == "serve" {
        use std::io::Write as _;
        let listener = match std::net::TcpListener::bind(&opts.addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("fj: serve: cannot bind {}: {e}", opts.addr);
                return ExitCode::from(1);
            }
        };
        let local = match listener.local_addr() {
            Ok(a) => a,
            Err(e) => {
                eprintln!("fj: serve: {e}");
                return ExitCode::from(1);
            }
        };
        let mut state = system_fj::server::ServerState::with_config(
            opts.shards,
            opts.cache_bytes,
            opts.serve_cfg,
        );
        if let Some(dir) = &opts.cache_dir {
            match system_fj::server::FileStore::open(dir) {
                Ok(store) => state = state.with_store(std::sync::Arc::new(store)),
                Err(e) => {
                    eprintln!("fj: serve: cannot open cache dir {}: {e}", dir.display());
                    return ExitCode::from(1);
                }
            }
        }
        // Scripts parse this line to learn the ephemeral port (`--port 0`).
        println!("fj serve: listening on {local}");
        let _ = std::io::stdout().flush();
        let state = std::sync::Arc::new(state);
        return match system_fj::server::serve(listener, state) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("fj: serve: {e}");
                ExitCode::from(1)
            }
        };
    }
    let src = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fj: cannot read {}: {e}", opts.file);
            return ExitCode::from(1);
        }
    };
    let mut lowered = match compile(&src) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("fj: {}: {e}", opts.file);
            // Frontend stages map to distinct exit codes: lexical and
            // syntactic trouble is 2, name/type trouble during lowering
            // is 3 (the same family as lint).
            return match e {
                SurfaceError::Lex { .. } | SurfaceError::Parse { .. } => ExitCode::from(EXIT_PARSE),
                SurfaceError::Lower { .. } => ExitCode::from(EXIT_TYPE),
            };
        }
    };
    if let Err(e) = lint(&lowered.expr, &lowered.data_env) {
        eprintln!("fj: {}: lint: {e}", opts.file);
        return ExitCode::from(EXIT_TYPE);
    }
    if opts.command == "check" {
        println!("{}: OK", opts.file);
        return ExitCode::SUCCESS;
    }
    if opts.command == "dump" && opts.before {
        println!("{}", lowered.expr);
        return ExitCode::SUCCESS;
    }

    let (optimized, passes_run, size_before, size_after) = if opts.resilient {
        match optimize_resilient(
            &lowered.expr,
            &lowered.data_env,
            &mut lowered.supply,
            &opts.config,
        ) {
            Ok((e, report)) => {
                for p in report.rolled_back() {
                    eprintln!("fj: optimizer: pass `{}` {}", p.pass, p.outcome);
                }
                (
                    e,
                    report.passes.len(),
                    report.census_before.size,
                    report.census_after.size,
                )
            }
            Err(e) => {
                eprintln!("fj: optimizer: {e}");
                return ExitCode::from(EXIT_OPT);
            }
        }
    } else {
        match optimize_with_stats(
            &lowered.expr,
            &lowered.data_env,
            &mut lowered.supply,
            &opts.config,
        ) {
            Ok((e, stats)) => (
                e,
                stats.passes_run.len(),
                stats.size_before,
                stats.size_after,
            ),
            Err(e) => {
                eprintln!("fj: optimizer: {e}");
                return ExitCode::from(EXIT_OPT);
            }
        }
    };

    match opts.command.as_str() {
        "dump" => {
            println!("-- pipeline: {} ({} passes)", opts.config_name, passes_run);
            println!("-- size: {size_before} -> {size_after}");
            println!("{optimized}");
            ExitCode::SUCCESS
        }
        "erase" => match erase(&optimized, &lowered.data_env, &mut lowered.supply) {
            Ok(erased) => {
                println!("{erased}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("fj: erase: {e}");
                ExitCode::from(1)
            }
        },
        "run" => {
            // Both backends run with the same fuel and optional deadline;
            // their budget errors map to the same exit code, so scripts
            // see `5` for "ran out of budget" regardless of backend.
            let outcome = match opts.backend {
                Backend::Machine => {
                    system_fj::eval::run_with_limits(&optimized, opts.mode, opts.fuel, opts.timeout)
                        .map_err(|e| {
                            let budget =
                                matches!(e, MachineError::OutOfFuel | MachineError::Timeout { .. });
                            (e.to_string(), budget)
                        })
                }
                Backend::Vm => {
                    system_fj::vm::run_with_limits(&optimized, opts.mode, opts.fuel, opts.timeout)
                        .map_err(|e| {
                            let budget = matches!(e, VmError::OutOfFuel | VmError::Timeout { .. });
                            (e.to_string(), budget)
                        })
                }
            };
            match outcome {
                Ok(out) => {
                    println!("{}", out.value);
                    if opts.metrics {
                        eprintln!(
                            "[{} | {:?} | {}] {}",
                            opts.config_name,
                            opts.mode,
                            opts.backend.name(),
                            out.metrics
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err((msg, budget)) => {
                    eprintln!("fj: runtime: {msg}");
                    ExitCode::from(if budget { EXIT_BUDGET } else { 1 })
                }
            }
        }
        _ => usage(),
    }
}
