//! # system-fj — "Compiling without continuations", in Rust
//!
//! A full reproduction of Maurer, Downen, Ariola & Peyton Jones,
//! *Compiling without continuations* (PLDI 2017): **System F_J**, a
//! direct-style intermediate language with **join points** and **jumps**,
//! together with its type system, abstract machine, optimizer
//! (simplifier, contification, floating, erasure), a surface language,
//! a stream-fusion library, and the paper's full evaluation harness.
//!
//! This crate is a facade: it re-exports the workspace members under
//! stable paths. See the individual crates for detail:
//!
//! * [`ast`] — System F_J syntax (Fig. 1), names, substitution;
//! * [`check`] — the Γ;Δ type system / Core Lint (Fig. 2);
//! * [`eval`] — the abstract machine (Fig. 3) with allocation accounting;
//! * [`core`] — the optimizer: equational theory (Fig. 4), simplifier,
//!   contification (Fig. 5), floating, erasure (Thm. 5);
//! * [`surface`] — a mini-Haskell frontend;
//! * [`fusion`] — skip-less vs skip-ful stream fusion (Sec. 5);
//! * [`nofib`] — the Table-1 benchmark suite and harness;
//! * [`vm`] — the flat jump-threaded bytecode backend (`--backend vm`),
//!   where a jump is literally a branch plus a stack truncation;
//! * [`server`] — `fj serve`: a sharded compile service over
//!   newline-delimited JSON with a content-addressed optimization cache.
//!
//! ## Quickstart
//!
//! ```
//! use system_fj::surface::compile;
//! use system_fj::core::{optimize, OptConfig};
//! use system_fj::eval::{run, EvalMode};
//!
//! let mut p = compile(
//!     "def main : Int =
//!        letrec go : Int -> Int -> Int =
//!          \\(n : Int) (acc : Int) ->
//!            if n <= 0 then acc else go (n - 1) (acc + n)
//!        in go 100 0;",
//! )?;
//! let opt = optimize(&p.expr, &p.data_env, &mut p.supply, &OptConfig::join_points())?;
//! let out = run(&opt, EvalMode::CallByValue, 1_000_000)?;
//! assert_eq!(out.value.to_string(), "5050");
//! assert_eq!(out.metrics.total_allocs(), 0); // the loop became a join point
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

/// System F_J abstract syntax (re-export of `fj-ast`).
pub use fj_ast as ast;
/// The type system / Core Lint (re-export of `fj-check`).
pub use fj_check as check;
/// The optimizer (re-export of `fj-core`).
pub use fj_core as core;
/// The abstract machine (re-export of `fj-eval`).
pub use fj_eval as eval;
/// Stream fusion (re-export of `fj-fusion`).
pub use fj_fusion as fusion;
/// The benchmark suite (re-export of `fj-nofib`).
pub use fj_nofib as nofib;
/// The compile service (re-export of `fj-server`).
pub use fj_server as server;
/// The surface language (re-export of `fj-surface`).
pub use fj_surface as surface;
/// The property-testing kit and fuzz farm (re-export of `fj-testkit`).
pub use fj_testkit as testkit;
/// The bytecode execution backend (re-export of `fj-vm`).
pub use fj_vm as vm;
