#!/usr/bin/env bash
# Tier-1 verification gate. Everything here runs fully offline: the
# default workspace has zero external dependencies (criterion benches
# live in their own workspace under crates/bench and are not touched).
#
# Usage: scripts/verify.sh [--quick]
#   --quick   skip the release build (debug test run only)

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
  QUICK=1
fi

run() {
  echo "==> $*"
  "$@"
}

run cargo fmt --all --check

run cargo clippy --workspace --all-targets --offline -- -D warnings

run cargo test --workspace --offline -q

# Fault-injection smoke: every saboteur mode is caught, rolled back, and
# value-preserving — on generated programs and on the whole nofib suite.
run cargo test -p fj-testkit -p fj-nofib saboteur --offline -q

# Chaos smoke: the seeded client saboteur (slow-loris, torn frames,
# garbage, oversize, floods) against a live server — honest clients must
# get correct answers and the service counters must reconcile exactly.
run cargo test -p fj-server --test chaos --offline -q

# Fuzz-farm smoke: a fixed-seed, time-budgeted pass over the full route
# matrix (strict/resilient/cached/machine/VM) must agree on every case.
# The binary exists because the test run above built it.
run ./target/debug/fj fuzz --seed 1 --count 300 --time-budget-ms 10000

# Fuzz self-test: a sabotaged strict pipeline must make the farm FAIL
# and leave a shrunk on-disk repro naming the failing route pair.
FUZZ_SAB_DIR="$(mktemp -d)"
echo '==> ./target/debug/fj fuzz --seed 1 --count 64 --sabotage swap-case-alts:0   (must fail)'
if ./target/debug/fj fuzz --seed 1 --count 64 --sabotage swap-case-alts:0 \
     --corpus "$FUZZ_SAB_DIR" >/dev/null 2>&1; then
  echo "verify: sabotaged fuzz run unexpectedly passed" >&2
  exit 1
fi
ls "$FUZZ_SAB_DIR"/*.fj >/dev/null 2>&1 || {
  echo "verify: sabotaged fuzz run wrote no repro" >&2
  exit 1
}
grep -q '^-- routes: ' "$FUZZ_SAB_DIR"/*.fj || {
  echo "verify: fuzz repro names no route pair" >&2
  exit 1
}
rm -rf "$FUZZ_SAB_DIR"

if [[ "$QUICK" -eq 0 ]]; then
  # A debug-assertions pass over the VM in release mode: the optimized
  # build keeps its internal invariant checks honest.
  echo '==> RUSTFLAGS="-C debug-assertions=on" cargo test -p fj-vm --release --offline -q'
  env RUSTFLAGS="-C debug-assertions=on" cargo test -p fj-vm --release --offline -q
  # Fusion-disabled oracle pass: with superinstructions off, the plain
  # instruction stream must still match the substitution machine on
  # every program, every value, and every counter.
  echo '==> FJ_VM_FUSE=0 cargo test -p fj-vm --test differential --offline -q'
  env FJ_VM_FUSE=0 cargo test -p fj-vm --test differential --offline -q
  echo '==> FJ_VM_FUSE=0 cargo test -p fj-nofib --test vm_differential --offline -q'
  env FJ_VM_FUSE=0 cargo test -p fj-nofib --test vm_differential --offline -q
  run cargo build --workspace --release --offline
  # The headline acceptance check: the report must render, and the
  # join-points pipeline must win on the contification-sensitive rows
  # (asserted in detail by the fj-nofib test suite; this is the smoke
  # pass over the real binary).
  run ./target/release/fj report >/dev/null
  # VM backend smoke: `fj bench` runs every nofib program on both the
  # substitution machine and the bytecode VM and asserts they agree on
  # the value and the allocation counters before timing them (and each
  # native candle against the VM). The snapshot must carry the
  # standard-candle schema: candle_ns plus vm_over_candle, the
  # distance-from-hardware ratio.
  VM_SMOKE="$(mktemp)"
  echo '==> ./target/release/fj bench'
  ./target/release/fj bench > "$VM_SMOKE"
  for key in '"machine_ns"' '"vm_ns"' '"speedup"' '"candle_ns"' \
             '"vm_over_candle"' '"total_allocs"' '"jumps"'; do
    grep -q "$key" "$VM_SMOKE" || {
      echo "verify: BENCH_vm schema missing $key" >&2
      exit 1
    }
  done
  rm -f "$VM_SMOKE"

  # Optimizer bench smoke: a 1-iteration `--phase optimize` run must
  # produce a BENCH_opt.json-shaped snapshot (no timing assertions —
  # this checks the harness and the schema, not the numbers).
  OPT_SMOKE="$(mktemp)"
  echo '==> ./target/release/fj bench --phase optimize --iterations 1'
  ./target/release/fj bench --phase optimize --iterations 1 > "$OPT_SMOKE"
  for key in '"generated_by"' '"pipeline"' '"iterations"' '"threads"' \
             '"programs"' '"optimize_ns"' '"passes"' '"serial_ns"' \
             '"parallel_ns"' '"parallel_speedup"'; do
    grep -q "$key" "$OPT_SMOKE" || {
      echo "verify: BENCH_opt schema missing $key" >&2
      exit 1
    }
  done
  rm -f "$OPT_SMOKE"

  # Serve smoke: start the compile service on an ephemeral port, compile
  # the same program twice over raw TCP, and require the second response
  # to be flagged as a cache hit before a clean shutdown.
  SERVE_LOG="$(mktemp)"
  echo '==> ./target/release/fj serve --port 0   (smoke)'
  ./target/release/fj serve --port 0 > "$SERVE_LOG" 2>&1 &
  SERVE_PID=$!
  trap 'kill $SERVE_PID 2>/dev/null || true' EXIT
  for _ in $(seq 50); do
    grep -q 'listening on' "$SERVE_LOG" 2>/dev/null && break
    sleep 0.1
  done
  SERVE_ADDR="$(sed -n 's/^fj serve: listening on //p' "$SERVE_LOG" | head -1)"
  [[ -n "$SERVE_ADDR" ]] || { echo "verify: fj serve never bound" >&2; exit 1; }
  SERVE_HOST="${SERVE_ADDR%:*}"
  SERVE_PORT="${SERVE_ADDR##*:}"
  REQ='{"op": "compile", "program": "def main : Int = 21 * 2;"}'
  exec 3<>"/dev/tcp/$SERVE_HOST/$SERVE_PORT"
  printf '%s\n' "$REQ" >&3; read -r FIRST <&3
  printf '%s\n' "$REQ" >&3; read -r SECOND <&3
  # Hostile-input smoke on the same connection: a garbage frame must map
  # to an in-protocol `proto` error, and the connection must keep serving.
  printf '%s\n' '}}not json at all{{' >&3; read -r GARBAGE <&3
  printf '%s\n' "$REQ" >&3; read -r AFTER <&3
  printf '%s\n' '{"op": "stats"}' >&3; read -r STATS <&3
  printf '%s\n' '{"op": "shutdown"}' >&3; read -r BYE <&3
  exec 3>&-
  echo "$FIRST"  | grep -q '"cache": "miss"' || { echo "verify: first serve compile was not a miss: $FIRST" >&2; exit 1; }
  echo "$SECOND" | grep -q '"cache": "hit"'  || { echo "verify: second serve compile was not a hit: $SECOND" >&2; exit 1; }
  echo "$GARBAGE" | grep -q '"tag": "proto"' || { echo "verify: garbage frame was not a proto error: $GARBAGE" >&2; exit 1; }
  echo "$AFTER"  | grep -q '"cache": "hit"'  || { echo "verify: connection dead after garbage frame: $AFTER" >&2; exit 1; }
  echo "$STATS"  | grep -q '"service"'       || { echo "verify: stats lacks the service block: $STATS" >&2; exit 1; }
  echo "$BYE"    | grep -q '"shutting_down": true' || { echo "verify: serve shutdown failed: $BYE" >&2; exit 1; }
  wait "$SERVE_PID"
  trap - EXIT
  rm -f "$SERVE_LOG"

  # Warm-restart smoke: with --cache-dir, a compile served by one server
  # process must come back as a disk-backed cache hit after a full
  # restart over the same directory — the persistent tier survives the
  # process, and the stats block must admit where the hit came from.
  RESTART_DIR="$(mktemp -d)"
  RESTART_REQ='{"op": "compile", "program": "def main : Int = 21 * 2;"}'
  for ROUND in cold warm; do
    SERVE_LOG="$(mktemp)"
    echo "==> ./target/release/fj serve --port 0 --cache-dir $RESTART_DIR   ($ROUND restart smoke)"
    ./target/release/fj serve --port 0 --cache-dir "$RESTART_DIR" > "$SERVE_LOG" 2>&1 &
    SERVE_PID=$!
    trap 'kill $SERVE_PID 2>/dev/null || true' EXIT
    for _ in $(seq 50); do
      grep -q 'listening on' "$SERVE_LOG" 2>/dev/null && break
      sleep 0.1
    done
    SERVE_ADDR="$(sed -n 's/^fj serve: listening on //p' "$SERVE_LOG" | head -1)"
    [[ -n "$SERVE_ADDR" ]] || { echo "verify: fj serve --cache-dir never bound ($ROUND)" >&2; exit 1; }
    exec 3<>"/dev/tcp/${SERVE_ADDR%:*}/${SERVE_ADDR##*:}"
    printf '%s\n' "$RESTART_REQ" >&3; read -r REPLY <&3
    printf '%s\n' '{"op": "stats"}' >&3; read -r STATS <&3
    printf '%s\n' '{"op": "shutdown"}' >&3; read -r BYE <&3
    exec 3>&-
    if [[ "$ROUND" == cold ]]; then
      echo "$REPLY" | grep -q '"cache": "miss"' || { echo "verify: cold restart-smoke compile was not a miss: $REPLY" >&2; exit 1; }
    else
      echo "$REPLY" | grep -q '"cache": "hit"' || { echo "verify: restarted server did not hit the disk tier: $REPLY" >&2; exit 1; }
      echo "$STATS" | grep -q '"enabled": true, "hits": 1' || { echo "verify: restart stats shows no disk hit: $STATS" >&2; exit 1; }
    fi
    echo "$STATS" | grep -q '"disk"' || { echo "verify: stats lacks the disk block: $STATS" >&2; exit 1; }
    echo "$BYE" | grep -q '"shutting_down": true' || { echo "verify: restart-smoke shutdown failed ($ROUND): $BYE" >&2; exit 1; }
    wait "$SERVE_PID"
    trap - EXIT
    rm -f "$SERVE_LOG"
  done
  ls "$RESTART_DIR"/*.fjc >/dev/null 2>&1 || {
    echo "verify: --cache-dir wrote no persistent entries" >&2
    exit 1
  }
  rm -rf "$RESTART_DIR"

  # Serve bench smoke: the cold/warm/hot/restart-warm snapshot must keep
  # its schema.
  SERVE_SMOKE="$(mktemp)"
  echo '==> ./target/release/fj bench --phase serve'
  ./target/release/fj bench --phase serve > "$SERVE_SMOKE"
  for key in '"generated_by"' '"programs"' '"cold_ns"' '"warm_ns"' \
             '"hot_ns"' '"warm_speedup"' '"hit_speedup"' '"term_hits"' \
             '"source_hits"' '"hit_rate"' '"restart_ns"' \
             '"restart_speedup"' '"restart"' '"disk_hits"' \
             '"pipeline_misses"'; do
    grep -q "$key" "$SERVE_SMOKE" || {
      echo "verify: BENCH_serve schema missing $key" >&2
      exit 1
    }
  done
  rm -f "$SERVE_SMOKE"

  # Serve-load bench smoke: the concurrency snapshot must keep its
  # schema — percentiles, throughput, and shed accounting per row.
  LOAD_SMOKE="$(mktemp)"
  echo '==> ./target/release/fj bench --phase serve-load'
  ./target/release/fj bench --phase serve-load > "$LOAD_SMOKE"
  for key in '"generated_by"' '"workers"' '"queue_cap"' '"conns"' \
             '"p50_us"' '"p90_us"' '"p99_us"' '"throughput_rps"' \
             '"shed_rate"' '"total"'; do
    grep -q "$key" "$LOAD_SMOKE" || {
      echo "verify: BENCH_serve_load schema missing $key" >&2
      exit 1
    }
  done
  rm -f "$LOAD_SMOKE"
fi

echo "verify: all checks passed"
