#!/usr/bin/env bash
# Wall-clock benchmark snapshots over the nofib suite.
#
#   --phase vm        (default) the two execution backends — the Fig. 3
#                     substitution machine vs the bytecode VM. `fj bench`
#                     asserts both backends agree on every program's value
#                     and allocation counters before timing them, so a
#                     passing run is also a correctness check.
#   --phase optimize  the optimizer pipeline itself — per-program wall
#                     time with a per-pass breakdown, plus serial and
#                     parallel (optimize_many) suite totals.
#
# Usage: scripts/bench.sh [--phase vm|optimize] [--iterations N]
#                         [--warmup N] [output.json]
#        (default output: BENCH_vm.json / BENCH_opt.json per phase)

set -euo pipefail
cd "$(dirname "$0")/.."

PHASE=vm
OUT=""
FLAGS=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --phase)
      PHASE="$2"
      shift 2
      ;;
    --iterations|--warmup)
      FLAGS+=("$1" "$2")
      shift 2
      ;;
    *)
      OUT="$1"
      shift
      ;;
  esac
done

case "$PHASE" in
  vm) OUT="${OUT:-BENCH_vm.json}" ;;
  optimize) OUT="${OUT:-BENCH_opt.json}" ;;
  *)
    echo "unknown phase: $PHASE (expected vm or optimize)" >&2
    exit 2
    ;;
esac

cargo build --workspace --release --offline
./target/release/fj bench --phase "$PHASE" "${FLAGS[@]+"${FLAGS[@]}"}" > "$OUT"

echo "wrote $OUT"
grep '"total"' "$OUT"
