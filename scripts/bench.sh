#!/usr/bin/env bash
# Wall-clock comparison of the two execution backends — the Fig. 3
# substitution machine vs the bytecode VM — over the nofib suite
# (join-points pipeline, call-by-value). `fj bench` asserts both
# backends agree on every program's value and allocation counters
# before timing them, so a passing run is also a correctness check.
#
# Usage: scripts/bench.sh [output.json]     (default: BENCH_vm.json)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_vm.json}"

cargo build --workspace --release --offline
./target/release/fj bench > "$OUT"

echo "wrote $OUT"
grep '"total"' "$OUT"
