#!/usr/bin/env bash
# Wall-clock benchmark snapshots over the nofib suite.
#
#   --phase vm        (default) the two execution backends — the Fig. 3
#                     substitution machine vs the bytecode VM. `fj bench`
#                     asserts both backends agree on every program's value
#                     and allocation counters before timing them, so a
#                     passing run is also a correctness check.
#   --phase optimize  the optimizer pipeline itself — per-program wall
#                     time with a per-pass breakdown, plus serial and
#                     parallel (optimize_many) suite totals.
#   --phase serve     the compile service cache ladder — cold (pipeline),
#                     warm (source hit), hot (term hit), and restart-warm
#                     (fresh process over the same --cache-dir, served
#                     from the persistent tier) per program.
#   --phase serve-load  the compile service under concurrent load —
#                     latency percentiles, throughput, and shed rate
#                     per connection count against a live TCP server.
#
# Usage: scripts/bench.sh [--phase vm|optimize|serve|serve-load]
#                         [--iterations N] [--warmup N] [output.json]
#        (default output: BENCH_vm.json / BENCH_opt.json /
#         BENCH_serve.json / BENCH_serve_load.json per phase)

set -euo pipefail
cd "$(dirname "$0")/.."

PHASE=vm
OUT=""
FLAGS=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --phase)
      PHASE="$2"
      shift 2
      ;;
    --iterations|--warmup)
      FLAGS+=("$1" "$2")
      shift 2
      ;;
    *)
      OUT="$1"
      shift
      ;;
  esac
done

case "$PHASE" in
  vm) OUT="${OUT:-BENCH_vm.json}" ;;
  optimize) OUT="${OUT:-BENCH_opt.json}" ;;
  serve) OUT="${OUT:-BENCH_serve.json}" ;;
  serve-load) OUT="${OUT:-BENCH_serve_load.json}" ;;
  *)
    echo "unknown phase: $PHASE (expected vm, optimize, serve, or serve-load)" >&2
    exit 2
    ;;
esac

cargo build --workspace --release --offline

NEW="$(mktemp)"
trap 'rm -f "$NEW"' EXIT
./target/release/fj bench --phase "$PHASE" "${FLAGS[@]+"${FLAGS[@]}"}" > "$NEW"

# Regression gate (vm phase only): refuse to overwrite a committed
# snapshot with one whose per-program geomean VM time got slower. 10%
# headroom absorbs wall-clock noise; a real dispatch regression is
# far larger than that.
if [[ "$PHASE" == vm && -f "$OUT" ]]; then
  awk '
    function record(file,   name, ns) {
      if (match($0, /"name": "[^"]*"/)) {
        name = substr($0, RSTART + 9, RLENGTH - 10)
        if (match($0, /"vm_ns": [0-9]+/)) {
          ns = substr($0, RSTART + 9, RLENGTH - 9)
          vm[file "\034" name] = ns
          if (file == "old") { names[++n] = name }
        }
      }
    }
    FNR == 1 { f++ }
    f == 1 { record("old") }
    f == 2 { record("new") }
    END {
      if (n == 0) { print "bench: no vm_ns rows in committed snapshot" > "/dev/stderr"; exit 1 }
      for (i = 1; i <= n; i++) {
        name = names[i]
        if (!(("new" "\034" name) in vm)) {
          print "bench: program " name " missing from new snapshot" > "/dev/stderr"; exit 1
        }
        lsum += log(vm["new" "\034" name] / vm["old" "\034" name])
      }
      ratio = exp(lsum / n)
      printf "bench: geomean vm_ns ratio new/committed = %.3f over %d programs\n", ratio, n
      if (ratio > 1.10) {
        printf "bench: geomean VM time regressed %.1f%% vs the committed snapshot — not overwriting\n", \
          (ratio - 1) * 100 > "/dev/stderr"
        exit 1
      }
    }
  ' "$OUT" "$NEW"
fi

# Serve phase: the snapshot must carry the full cache ladder — including
# the restart-warm fields fed by the persistent tier — before we gate on
# the numbers. A missing key means the harness silently dropped a rung.
if [[ "$PHASE" == serve ]]; then
  for key in '"cold_ns"' '"warm_ns"' '"hot_ns"' '"restart_ns"' \
             '"warm_speedup"' '"hit_speedup"' '"restart_speedup"' \
             '"restart"' '"disk_hits"' '"disk_loads"' '"disk_misses"' \
             '"disk_verify_failures"' '"pipeline_misses"'; do
    grep -q "$key" "$NEW" || {
      echo "bench: BENCH_serve schema missing $key" >&2
      exit 1
    }
  done
fi

# Regression gate (serve): refuse to overwrite a committed snapshot whose
# per-program geomean cold compile time got slower — the cold rung is the
# full pipeline and the most noise-stable of the ladder. 10% headroom.
if [[ "$PHASE" == serve && -f "$OUT" ]]; then
  awk '
    function record(file,   name, ns) {
      if (match($0, /"name": "[^"]*"/)) {
        name = substr($0, RSTART + 9, RLENGTH - 10)
        if (match($0, /"cold_ns": [0-9]+/)) {
          ns = substr($0, RSTART + 11, RLENGTH - 11)
          cold[file "\034" name] = ns
          if (file == "old") { names[++n] = name }
        }
      }
    }
    FNR == 1 { f++ }
    f == 1 { record("old") }
    f == 2 { record("new") }
    END {
      if (n == 0) { print "bench: no cold_ns rows in committed snapshot" > "/dev/stderr"; exit 1 }
      for (i = 1; i <= n; i++) {
        name = names[i]
        if (!(("new" "\034" name) in cold)) {
          print "bench: program " name " missing from new snapshot" > "/dev/stderr"; exit 1
        }
        lsum += log(cold["new" "\034" name] / cold["old" "\034" name])
      }
      ratio = exp(lsum / n)
      printf "bench: geomean cold_ns ratio new/committed = %.3f over %d programs\n", ratio, n
      if (ratio > 1.10) {
        printf "bench: geomean cold compile time regressed %.1f%% vs the committed snapshot — not overwriting\n", \
          (ratio - 1) * 100 > "/dev/stderr"
        exit 1
      }
    }
  ' "$OUT" "$NEW"
fi

# Regression gate (serve-load): refuse to overwrite a committed snapshot
# if the geomean tail latency (p99 over the shared connection counts)
# regressed more than 10%.
if [[ "$PHASE" == serve-load && -f "$OUT" ]]; then
  awk '
    function record(file,   conns, p99) {
      if (match($0, /"conns": [0-9]+/)) {
        conns = substr($0, RSTART + 9, RLENGTH - 9)
        if (match($0, /"p99_us": [0-9]+/)) {
          p99 = substr($0, RSTART + 10, RLENGTH - 10)
          tail[file "\034" conns] = p99
          if (file == "old") { rows[++n] = conns }
        }
      }
    }
    FNR == 1 { f++ }
    f == 1 { record("old") }
    f == 2 { record("new") }
    END {
      if (n == 0) { print "bench: no p99_us rows in committed snapshot" > "/dev/stderr"; exit 1 }
      for (i = 1; i <= n; i++) {
        conns = rows[i]
        if (!(("new" "\034" conns) in tail)) {
          print "bench: conns=" conns " row missing from new snapshot" > "/dev/stderr"; exit 1
        }
        old = tail["old" "\034" conns]; new = tail["new" "\034" conns]
        if (old > 0 && new > 0) { lsum += log(new / old); m++ }
      }
      if (m == 0) { print "bench: no comparable p99 rows" > "/dev/stderr"; exit 1 }
      ratio = exp(lsum / m)
      printf "bench: geomean p99_us ratio new/committed = %.3f over %d rows\n", ratio, m
      if (ratio > 1.10) {
        printf "bench: p99 latency regressed %.1f%% vs the committed snapshot — not overwriting\n", \
          (ratio - 1) * 100 > "/dev/stderr"
        exit 1
      }
    }
  ' "$OUT" "$NEW"
fi

mv "$NEW" "$OUT"
trap - EXIT

echo "wrote $OUT"
grep '"total"' "$OUT"
