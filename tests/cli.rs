//! End-to-end tests for the `fj` command-line driver, run against the
//! sample programs in `programs/`.

use std::process::Command;

fn fj(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_fj"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn fj");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn run_sum_program() {
    let (stdout, _, ok) = fj(&["run", "programs/sum.fj"]);
    assert!(ok);
    assert_eq!(stdout.trim(), "500500");
}

#[test]
fn metrics_show_zero_allocations_for_sum() {
    let (stdout, stderr, ok) = fj(&["run", "--metrics", "programs/sum.fj"]);
    assert!(ok);
    assert_eq!(stdout.trim(), "500500");
    assert!(stderr.contains("allocs=0"), "stderr: {stderr}");
}

#[test]
fn baseline_flag_changes_pipeline() {
    let (_, stderr, ok) = fj(&["run", "--metrics", "--baseline", "programs/sum.fj"]);
    assert!(ok);
    assert!(stderr.contains("[baseline"), "stderr: {stderr}");
}

#[test]
fn modes_agree() {
    for mode in ["name", "need", "value"] {
        let (stdout, _, ok) = fj(&["run", "--mode", mode, "programs/any.fj"]);
        assert!(ok, "mode {mode}");
        assert_eq!(stdout.trim(), "4", "mode {mode}");
    }
}

#[test]
fn dump_shows_join_points() {
    let (stdout, _, ok) = fj(&["dump", "programs/sum.fj"]);
    assert!(ok);
    assert!(stdout.contains("join rec"), "{stdout}");
    assert!(stdout.contains("jump"), "{stdout}");
}

#[test]
fn dump_before_shows_letrec() {
    let (stdout, _, ok) = fj(&["dump", "--before", "programs/sum.fj"]);
    assert!(ok);
    assert!(stdout.contains("let rec"), "{stdout}");
    assert!(!stdout.contains("jump"), "{stdout}");
}

#[test]
fn erase_output_is_join_free() {
    let (stdout, _, ok) = fj(&["erase", "programs/sum.fj"]);
    assert!(ok);
    assert!(!stdout.contains("jump"), "{stdout}");
    assert!(!stdout.contains("join"), "{stdout}");
}

#[test]
fn check_reports_ok() {
    let (stdout, _, ok) = fj(&["check", "programs/shapes.fj"]);
    assert!(ok);
    assert!(stdout.contains("OK"));
}

#[test]
fn shapes_program_runs() {
    let (stdout, _, ok) = fj(&["run", "programs/shapes.fj"]);
    assert!(ok);
    assert_eq!(stdout.trim(), "117");
}

#[test]
fn missing_file_fails_cleanly() {
    let (_, stderr, ok) = fj(&["run", "programs/nope.fj"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let (_, stderr, ok) = fj(&["frobnicate", "programs/sum.fj"]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn fuel_limit_is_respected() {
    let (_, stderr, ok) = fj(&["run", "--fuel", "10", "programs/sum.fj"]);
    assert!(!ok);
    assert!(stderr.contains("step budget"), "{stderr}");
}

#[test]
fn report_renders_markdown_comparison() {
    let (stdout, stderr, ok) = fj(&["report"]);
    assert!(ok, "fj report failed: {stderr}");
    assert!(stdout.contains("## Machine metrics"), "{stdout}");
    assert!(stdout.contains("## Optimizer activity"), "{stdout}");
    assert!(stdout.contains("| n-body |"), "{stdout}");
    // The headline shootout row: join points erase all allocations.
    assert!(stdout.contains("-100.0%"), "{stdout}");
}
