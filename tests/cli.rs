//! End-to-end tests for the `fj` command-line driver, run against the
//! sample programs in `programs/`.

use std::process::Command;

fn fj(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_fj"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn fj");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn run_sum_program() {
    let (stdout, _, ok) = fj(&["run", "programs/sum.fj"]);
    assert!(ok);
    assert_eq!(stdout.trim(), "500500");
}

#[test]
fn metrics_show_zero_allocations_for_sum() {
    let (stdout, stderr, ok) = fj(&["run", "--metrics", "programs/sum.fj"]);
    assert!(ok);
    assert_eq!(stdout.trim(), "500500");
    assert!(stderr.contains("allocs=0"), "stderr: {stderr}");
}

#[test]
fn baseline_flag_changes_pipeline() {
    let (_, stderr, ok) = fj(&["run", "--metrics", "--baseline", "programs/sum.fj"]);
    assert!(ok);
    assert!(stderr.contains("[baseline"), "stderr: {stderr}");
}

#[test]
fn modes_agree() {
    for mode in ["name", "need", "value"] {
        let (stdout, _, ok) = fj(&["run", "--mode", mode, "programs/any.fj"]);
        assert!(ok, "mode {mode}");
        assert_eq!(stdout.trim(), "4", "mode {mode}");
    }
}

#[test]
fn dump_shows_join_points() {
    let (stdout, _, ok) = fj(&["dump", "programs/sum.fj"]);
    assert!(ok);
    assert!(stdout.contains("join rec"), "{stdout}");
    assert!(stdout.contains("jump"), "{stdout}");
}

#[test]
fn dump_before_shows_letrec() {
    let (stdout, _, ok) = fj(&["dump", "--before", "programs/sum.fj"]);
    assert!(ok);
    assert!(stdout.contains("let rec"), "{stdout}");
    assert!(!stdout.contains("jump"), "{stdout}");
}

#[test]
fn erase_output_is_join_free() {
    let (stdout, _, ok) = fj(&["erase", "programs/sum.fj"]);
    assert!(ok);
    assert!(!stdout.contains("jump"), "{stdout}");
    assert!(!stdout.contains("join"), "{stdout}");
}

#[test]
fn check_reports_ok() {
    let (stdout, _, ok) = fj(&["check", "programs/shapes.fj"]);
    assert!(ok);
    assert!(stdout.contains("OK"));
}

#[test]
fn shapes_program_runs() {
    let (stdout, _, ok) = fj(&["run", "programs/shapes.fj"]);
    assert!(ok);
    assert_eq!(stdout.trim(), "117");
}

#[test]
fn missing_file_fails_cleanly() {
    let (_, stderr, ok) = fj(&["run", "programs/nope.fj"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let (_, stderr, ok) = fj(&["frobnicate", "programs/sum.fj"]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn fuel_limit_is_respected() {
    let (_, stderr, ok) = fj(&["run", "--fuel", "10", "programs/sum.fj"]);
    assert!(!ok);
    assert!(stderr.contains("step budget"), "{stderr}");
}

#[test]
fn report_renders_markdown_comparison() {
    let (stdout, stderr, ok) = fj(&["report"]);
    assert!(ok, "fj report failed: {stderr}");
    assert!(stdout.contains("## Machine metrics"), "{stdout}");
    assert!(stdout.contains("## Optimizer activity"), "{stdout}");
    assert!(stdout.contains("| n-body |"), "{stdout}");
    // The headline shootout row: join points erase all allocations.
    assert!(stdout.contains("-100.0%"), "{stdout}");
}

/// As [`fj`], but returning the raw exit code (the CLI's documented
/// contract: 2 usage/parse, 3 type/lint, 4 optimizer, 5 budget).
fn fj_code(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_fj"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn fj");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn parse_error_exits_2_with_diagnostic() {
    let (_, stderr, code) = fj_code(&["run", "programs/errors/syntax_error.fj"]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
    assert!(stderr.contains("parse error at"), "{stderr}");
}

#[test]
fn type_error_exits_3_with_diagnostic() {
    let (_, stderr, code) = fj_code(&["run", "programs/errors/type_error.fj"]);
    assert_eq!(code, Some(3), "stderr: {stderr}");
    assert!(stderr.contains("not in scope"), "{stderr}");
}

#[test]
fn usage_error_exits_2() {
    let (_, stderr, code) = fj_code(&["frobnicate"]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn fuel_exhaustion_exits_5_on_both_backends() {
    for backend in ["machine", "vm"] {
        let (_, stderr, code) = fj_code(&[
            "run",
            "--backend",
            backend,
            "--fuel",
            "1000",
            "programs/diverge.fj",
        ]);
        assert_eq!(code, Some(5), "backend {backend}: stderr: {stderr}");
        assert!(stderr.contains("budget exhausted"), "{backend}: {stderr}");
    }
}

#[test]
fn wall_clock_timeout_exits_5_on_both_backends() {
    for backend in ["machine", "vm"] {
        let (_, stderr, code) = fj_code(&[
            "run",
            "--backend",
            backend,
            "--timeout-ms",
            "50",
            "programs/diverge.fj",
        ]);
        assert_eq!(code, Some(5), "backend {backend}: stderr: {stderr}");
        assert!(
            stderr.contains("wall-clock deadline exhausted"),
            "{backend}: {stderr}"
        );
    }
}

// ---- adversarial bands: parser depth and the growth budget --------------
//
// The fuzz farm's adversarial bands push generated programs up against
// these limits; the tests below pin the *boundary* behavior for curated
// inputs: one step inside each limit compiles, one step outside fails
// with the documented exit code and a one-line diagnostic — never a
// panic or a stack overflow (either would surface as a signal death,
// i.e. `code == None`, or a "panicked" line on stderr).

/// `k` pairs of parentheses around a literal. Each pair descends two
/// grammar levels (expression, then atom), so the parser's depth limit
/// of `MAX_NESTING_DEPTH` is reached at `MAX_NESTING_DEPTH / 2` pairs.
fn nested_parens_program(k: usize) -> String {
    format!("def main : Int = {}1{};\n", "(".repeat(k), ")".repeat(k))
}

/// A large (> `GROWTH_FLOOR` nodes) loop whose body cannot be constant
/// folded: the contification pass rewrites it while keeping its size, so
/// any growth factor below 1 trips the budget and a generous one passes.
fn growth_heavy_program() -> String {
    let terms: Vec<String> = (1..120).map(|i| format!("n * {i}")).collect();
    format!(
        "def main : Int =\n  letrec loop : Int -> Int -> Int =\n    \
         \\(n : Int) (acc : Int) ->\n      \
         if n <= 0 then acc else loop (n - 1) (acc + {})\n  in loop 10 0;\n",
        terms.join(" + ")
    )
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("fj_cli_{}_{name}.fj", std::process::id()));
    std::fs::write(&path, contents).expect("write temp program");
    path
}

#[test]
fn nesting_depth_band_is_a_clean_parse_error() {
    let limit_pairs = system_fj::surface::MAX_NESTING_DEPTH / 2;

    let inside = write_temp("depth_inside", &nested_parens_program(limit_pairs - 1));
    let (stdout, stderr, code) = fj_code(&["check", inside.to_str().unwrap()]);
    assert_eq!(code, Some(0), "one inside the limit: {stderr}");
    assert!(stdout.contains("OK"), "{stdout}");

    let outside = write_temp("depth_outside", &nested_parens_program(limit_pairs));
    for command in ["check", "run"] {
        let (_, stderr, code) = fj_code(&[command, outside.to_str().unwrap()]);
        assert_eq!(code, Some(2), "{command}: {stderr}");
        assert!(
            stderr.contains("nesting exceeds depth limit"),
            "{command}: {stderr}"
        );
        assert!(!stderr.contains("panicked"), "{command}: {stderr}");
    }
    let _ = std::fs::remove_file(inside);
    let _ = std::fs::remove_file(outside);
}

#[test]
fn growth_budget_band_exits_4_cleanly() {
    let program = write_temp("growth", &growth_heavy_program());
    let path = program.to_str().unwrap();

    // Generous budget: the same program sails through.
    let (_, stderr, code) = fj_code(&["dump", "--max-growth", "100.0", path]);
    assert_eq!(code, Some(0), "generous budget: {stderr}");

    // A factor below 1 demands shrinkage the passes can't deliver.
    for command in ["dump", "run"] {
        let (_, stderr, code) = fj_code(&[command, "--max-growth", "0.5", path]);
        assert_eq!(code, Some(4), "{command}: {stderr}");
        assert!(stderr.contains("growth budget"), "{command}: {stderr}");
        assert!(!stderr.contains("panicked"), "{command}: {stderr}");
    }
    let _ = std::fs::remove_file(program);
}

#[test]
fn resilient_run_matches_strict_run() {
    let (strict, _, ok) = fj(&["run", "programs/sum.fj"]);
    assert!(ok);
    let (resilient, stderr, ok) = fj(&["run", "--resilient", "programs/sum.fj"]);
    assert!(ok, "stderr: {stderr}");
    assert_eq!(strict.trim(), resilient.trim());
    // Nothing failed, so nothing was rolled back.
    assert!(!stderr.contains("rolled back"), "{stderr}");
}

#[test]
fn resilient_budget_flags_are_accepted() {
    let (stdout, stderr, ok) = fj(&[
        "run",
        "--resilient",
        "--pass-deadline-ms",
        "10000",
        "--max-growth",
        "100.0",
        "--max-passes",
        "64",
        "programs/sum.fj",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert_eq!(stdout.trim(), "500500");
}
