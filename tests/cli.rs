//! End-to-end tests for the `fj` command-line driver, run against the
//! sample programs in `programs/`.

use std::process::Command;

fn fj(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_fj"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn fj");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn run_sum_program() {
    let (stdout, _, ok) = fj(&["run", "programs/sum.fj"]);
    assert!(ok);
    assert_eq!(stdout.trim(), "500500");
}

#[test]
fn metrics_show_zero_allocations_for_sum() {
    let (stdout, stderr, ok) = fj(&["run", "--metrics", "programs/sum.fj"]);
    assert!(ok);
    assert_eq!(stdout.trim(), "500500");
    assert!(stderr.contains("allocs=0"), "stderr: {stderr}");
}

#[test]
fn baseline_flag_changes_pipeline() {
    let (_, stderr, ok) = fj(&["run", "--metrics", "--baseline", "programs/sum.fj"]);
    assert!(ok);
    assert!(stderr.contains("[baseline"), "stderr: {stderr}");
}

#[test]
fn modes_agree() {
    for mode in ["name", "need", "value"] {
        let (stdout, _, ok) = fj(&["run", "--mode", mode, "programs/any.fj"]);
        assert!(ok, "mode {mode}");
        assert_eq!(stdout.trim(), "4", "mode {mode}");
    }
}

#[test]
fn dump_shows_join_points() {
    let (stdout, _, ok) = fj(&["dump", "programs/sum.fj"]);
    assert!(ok);
    assert!(stdout.contains("join rec"), "{stdout}");
    assert!(stdout.contains("jump"), "{stdout}");
}

#[test]
fn dump_before_shows_letrec() {
    let (stdout, _, ok) = fj(&["dump", "--before", "programs/sum.fj"]);
    assert!(ok);
    assert!(stdout.contains("let rec"), "{stdout}");
    assert!(!stdout.contains("jump"), "{stdout}");
}

#[test]
fn erase_output_is_join_free() {
    let (stdout, _, ok) = fj(&["erase", "programs/sum.fj"]);
    assert!(ok);
    assert!(!stdout.contains("jump"), "{stdout}");
    assert!(!stdout.contains("join"), "{stdout}");
}

#[test]
fn check_reports_ok() {
    let (stdout, _, ok) = fj(&["check", "programs/shapes.fj"]);
    assert!(ok);
    assert!(stdout.contains("OK"));
}

#[test]
fn shapes_program_runs() {
    let (stdout, _, ok) = fj(&["run", "programs/shapes.fj"]);
    assert!(ok);
    assert_eq!(stdout.trim(), "117");
}

#[test]
fn missing_file_fails_cleanly() {
    let (_, stderr, ok) = fj(&["run", "programs/nope.fj"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let (_, stderr, ok) = fj(&["frobnicate", "programs/sum.fj"]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn fuel_limit_is_respected() {
    let (_, stderr, ok) = fj(&["run", "--fuel", "10", "programs/sum.fj"]);
    assert!(!ok);
    assert!(stderr.contains("step budget"), "{stderr}");
}

#[test]
fn report_renders_markdown_comparison() {
    let (stdout, stderr, ok) = fj(&["report"]);
    assert!(ok, "fj report failed: {stderr}");
    assert!(stdout.contains("## Machine metrics"), "{stdout}");
    assert!(stdout.contains("## Optimizer activity"), "{stdout}");
    assert!(stdout.contains("| n-body |"), "{stdout}");
    // The headline shootout row: join points erase all allocations.
    assert!(stdout.contains("-100.0%"), "{stdout}");
}

/// As [`fj`], but returning the raw exit code (the CLI's documented
/// contract: 2 usage/parse, 3 type/lint, 4 optimizer, 5 budget).
fn fj_code(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_fj"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn fj");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn parse_error_exits_2_with_diagnostic() {
    let (_, stderr, code) = fj_code(&["run", "programs/errors/syntax_error.fj"]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
    assert!(stderr.contains("parse error at"), "{stderr}");
}

#[test]
fn type_error_exits_3_with_diagnostic() {
    let (_, stderr, code) = fj_code(&["run", "programs/errors/type_error.fj"]);
    assert_eq!(code, Some(3), "stderr: {stderr}");
    assert!(stderr.contains("not in scope"), "{stderr}");
}

#[test]
fn usage_error_exits_2() {
    let (_, stderr, code) = fj_code(&["frobnicate"]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn fuel_exhaustion_exits_5_on_both_backends() {
    for backend in ["machine", "vm"] {
        let (_, stderr, code) = fj_code(&[
            "run",
            "--backend",
            backend,
            "--fuel",
            "1000",
            "programs/diverge.fj",
        ]);
        assert_eq!(code, Some(5), "backend {backend}: stderr: {stderr}");
        assert!(stderr.contains("budget exhausted"), "{backend}: {stderr}");
    }
}

#[test]
fn wall_clock_timeout_exits_5_on_both_backends() {
    for backend in ["machine", "vm"] {
        let (_, stderr, code) = fj_code(&[
            "run",
            "--backend",
            backend,
            "--timeout-ms",
            "50",
            "programs/diverge.fj",
        ]);
        assert_eq!(code, Some(5), "backend {backend}: stderr: {stderr}");
        assert!(
            stderr.contains("wall-clock deadline exhausted"),
            "{backend}: {stderr}"
        );
    }
}

#[test]
fn resilient_run_matches_strict_run() {
    let (strict, _, ok) = fj(&["run", "programs/sum.fj"]);
    assert!(ok);
    let (resilient, stderr, ok) = fj(&["run", "--resilient", "programs/sum.fj"]);
    assert!(ok, "stderr: {stderr}");
    assert_eq!(strict.trim(), resilient.trim());
    // Nothing failed, so nothing was rolled back.
    assert!(!stderr.contains("rolled back"), "{stderr}");
}

#[test]
fn resilient_budget_flags_are_accepted() {
    let (stdout, stderr, ok) = fj(&[
        "run",
        "--resilient",
        "--pass-deadline-ms",
        "10000",
        "--max-growth",
        "100.0",
        "--max-passes",
        "64",
        "programs/sum.fj",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert_eq!(stdout.trim(), "500500");
}
