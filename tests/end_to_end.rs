//! Cross-crate integration tests: surface → lint → optimize → machine,
//! with erasure and mode-agreement checks — the full path a user takes.

use system_fj::check::lint;
use system_fj::core::{erase, optimize, OptConfig};
use system_fj::eval::{run, EvalMode, Value};
use system_fj::surface::compile;

const FUEL: u64 = 20_000_000;

const PROGRAMS: &[(&str, &str, i64)] = &[
    (
        "sum-loop",
        "def main : Int =
           letrec go : Int -> Int -> Int =
             \\(n : Int) (acc : Int) ->
               if n <= 0 then acc else go (n - 1) (acc + n)
           in go 100 0;",
        5050,
    ),
    (
        "mutual-even-odd",
        "def main : Int =
           letrec even : Int -> Bool =
             \\(n : Int) -> if n == 0 then True else odd (n - 1)
           and odd : Int -> Bool =
             \\(n : Int) -> if n == 0 then False else even (n - 1)
           in if even 40 then 1 else 0;",
        1,
    ),
    (
        "find-any",
        "def main : Int =
           letrec build : Int -> List Int =
             \\(i : Int) ->
               if i > 30 then Nil @Int else Cons @Int (i % 4) (build (i + 1))
           in
           letrec find : List Int -> Maybe Int =
             \\(xs : List Int) ->
               case xs of {
                 Nil -> Nothing @Int;
                 Cons y t -> if y == 3 then Just @Int y else find t
               }
           in case find (build 1) of { Nothing -> 0; Just v -> v };",
        3,
    ),
    (
        "tree-fold",
        "data Tree = Leaf Int | Node Tree Tree;
         def main : Int =
           letrec build : Int -> Tree =
             \\(d : Int) ->
               if d <= 0 then Leaf 1 else Node (build (d - 1)) (build (d - 1))
           in
           letrec sumT : Tree -> Int =
             \\(t : Tree) ->
               case t of { Leaf n -> n; Node l r -> sumT l + sumT r }
           in sumT (build 6);",
        64,
    ),
    (
        "polymorphic-map",
        "def mapInt : (Int -> Int) -> List Int -> List Int =
           \\(f : Int -> Int) (xs : List Int) ->
             letrec go : List Int -> List Int =
               \\(ys : List Int) ->
                 case ys of {
                   Nil -> Nil @Int;
                   Cons h t -> Cons @Int (f h) (go t)
                 }
             in go xs;
         def sum : List Int -> Int =
           \\(xs : List Int) ->
             letrec go : List Int -> Int -> Int =
               \\(ys : List Int) (acc : Int) ->
                 case ys of { Nil -> acc; Cons h t -> go t (acc + h) }
             in go xs 0;
         def main : Int =
           sum (mapInt (\\(x : Int) -> x * x)
                       (Cons @Int 1 (Cons @Int 2 (Cons @Int 3 (Nil @Int)))));",
        14,
    ),
    (
        "nested-pairs",
        "def main : Int =
           let p : Pair Int (Pair Int Int) =
             MkPair @Int @(Pair Int Int) 1 (MkPair @Int @Int 2 3)
           in case p of {
             MkPair a rest -> case rest of { MkPair b c -> a + 10 * b + 100 * c }
           };",
        321,
    ),
];

fn modes() -> [EvalMode; 3] {
    [
        EvalMode::CallByName,
        EvalMode::CallByNeed,
        EvalMode::CallByValue,
    ]
}

#[test]
fn optimizers_preserve_every_program() {
    for (name, src, expected) in PROGRAMS {
        for cfg in [
            OptConfig::none(),
            OptConfig::baseline(),
            OptConfig::join_points(),
            OptConfig::join_points_with_cse(),
        ] {
            let mut p = compile(src).unwrap_or_else(|e| panic!("{name}: compile: {e}"));
            lint(&p.expr, &p.data_env).unwrap_or_else(|e| panic!("{name}: lint: {e}"));
            let opt = optimize(&p.expr, &p.data_env, &mut p.supply, &cfg.with_lint(true))
                .unwrap_or_else(|e| panic!("{name}: optimize: {e}"));
            for mode in modes() {
                let o =
                    run(&opt, mode, FUEL).unwrap_or_else(|e| panic!("{name} {mode:?}: {e}\n{opt}"));
                assert_eq!(o.value, Value::Int(*expected), "{name} {mode:?}");
            }
        }
    }
}

#[test]
fn join_points_never_allocate_more() {
    for (name, src, _) in PROGRAMS {
        let measure = |cfg: &OptConfig| {
            let mut p = compile(src).unwrap();
            let opt = optimize(&p.expr, &p.data_env, &mut p.supply, cfg).unwrap();
            run(&opt, EvalMode::CallByValue, FUEL).unwrap().metrics
        };
        let base = measure(&OptConfig::baseline());
        let joined = measure(&OptConfig::join_points());
        assert!(
            joined.total_allocs() <= base.total_allocs(),
            "{name}: joined {} > baseline {}",
            joined,
            base
        );
    }
}

#[test]
fn erasure_round_trips_every_program() {
    for (name, src, expected) in PROGRAMS {
        let mut p = compile(src).unwrap();
        // Optimize WITH join points, then erase them all away again.
        let opt = optimize(
            &p.expr,
            &p.data_env,
            &mut p.supply,
            &OptConfig::join_points(),
        )
        .unwrap();
        let erased = erase(&opt, &p.data_env, &mut p.supply)
            .unwrap_or_else(|e| panic!("{name}: erase: {e}"));
        assert!(!erased.has_join_or_jump(), "{name}: joins must be gone");
        lint(&erased, &p.data_env).unwrap_or_else(|e| panic!("{name}: erased lint: {e}"));
        for mode in modes() {
            let o = run(&erased, mode, FUEL)
                .unwrap_or_else(|e| panic!("{name} {mode:?}: {e}\n{erased}"));
            assert_eq!(
                o.value,
                Value::Int(*expected),
                "{name} {mode:?} after erasure"
            );
        }
    }
}

#[test]
fn optimization_is_stable_under_reapplication() {
    for (name, src, expected) in PROGRAMS {
        let mut p = compile(src).unwrap();
        let cfg = OptConfig::join_points();
        let once = optimize(&p.expr, &p.data_env, &mut p.supply, &cfg).unwrap();
        let twice = optimize(&once, &p.data_env, &mut p.supply, &cfg).unwrap();
        let o = run(&twice, EvalMode::CallByValue, FUEL).unwrap();
        assert_eq!(o.value, Value::Int(*expected), "{name}: value stable");
        // Re-optimization never grows the program.
        assert!(
            twice.size() <= once.size() + 2,
            "{name}: re-optimization grew the term: {} -> {}",
            once.size(),
            twice.size()
        );
    }
}

/// The facade's own quickstart path, end to end.
#[test]
fn facade_quickstart_path() {
    let mut p = compile(
        "def main : Int =
           letrec go : Int -> Int -> Int =
             \\(n : Int) (acc : Int) ->
               if n <= 0 then acc else go (n - 1) (acc + n)
           in go 100 0;",
    )
    .unwrap();
    let opt = optimize(
        &p.expr,
        &p.data_env,
        &mut p.supply,
        &OptConfig::join_points(),
    )
    .unwrap();
    let out = run(&opt, EvalMode::CallByValue, 1_000_000).unwrap();
    assert_eq!(out.value, Value::Int(5050));
    assert_eq!(out.metrics.total_allocs(), 0);
}
