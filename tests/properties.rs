//! Property-based tests: random well-typed programs are generated from
//! fj-testkit's deterministic grammar, then we check the repository's
//! core metatheory claims on every one of them —
//!
//! * generated programs lint (the generator only builds well-typed terms);
//! * the three machine modes agree on total programs;
//! * both optimizer pipelines preserve the observable value and typing
//!   (Prop. 3, observational soundness of the equational theory);
//! * **every individual pass** of both pipelines preserves the value and
//!   lints (the per-pass differential oracle — new with fj-testkit);
//! * erasure produces a join-free, well-typed, equivalent term (Thm. 5);
//! * freshening is α-invariant.
//!
//! The suite used to be built on `proptest`; fj-testkit replaces it with
//! an in-tree SplitMix64 generator and shrinker so the whole test run
//! works with no network access. Failures are shrunk to a minimal
//! replayable grammar description.

use fj_testkit::{build_closed, differential, runner, Config};
use system_fj::ast::{alpha_eq, alpha_fingerprint, freshen};
use system_fj::check::lint;
use system_fj::core::{erase, optimize, simplify, OptConfig, SimplOpts};
use system_fj::eval::{run_int, EvalMode};

const FUEL: u64 = 5_000_000;

/// ≥ 100 generated programs per property (the repo's acceptance floor).
fn cfg() -> Config {
    Config {
        cases: 128,
        ..Config::default()
    }
}

/// The generator only produces well-typed programs.
#[test]
fn generated_programs_lint() {
    runner::check_with(cfg(), "generated programs lint", |g| {
        let (d, e) = build_closed(g);
        lint(&e, &d.data_env)
            .map(|_| ())
            .map_err(|err| format!("ill-typed generator output: {err}\n{e}"))
    });
}

/// All three evaluation orders agree on total Int programs.
#[test]
fn machine_modes_agree() {
    runner::check_with(cfg(), "machine modes agree", |g| {
        let (_d, e) = build_closed(g);
        let n = run_int(&e, EvalMode::CallByName, FUEL).map_err(|e| e.to_string())?;
        let need = run_int(&e, EvalMode::CallByNeed, FUEL).map_err(|e| e.to_string())?;
        let v = run_int(&e, EvalMode::CallByValue, FUEL).map_err(|e| e.to_string())?;
        if n != need || n != v {
            return Err(format!(
                "modes disagree: name={n} need={need} value={v}\n{e}"
            ));
        }
        Ok(())
    });
}

/// Both optimizer pipelines preserve the observable value and typing.
#[test]
fn optimizer_is_observationally_sound() {
    runner::check_with(cfg(), "optimizer is observationally sound", |g| {
        let (mut d, e) = build_closed(g);
        let reference = run_int(&e, EvalMode::CallByName, FUEL).map_err(|e| e.to_string())?;
        for cfg in [OptConfig::baseline(), OptConfig::join_points()] {
            let out = optimize(&e, &d.data_env, &mut d.supply, &cfg.with_lint(true))
                .map_err(|err| format!("optimize: {err}\n{e}"))?;
            let got = run_int(&out, EvalMode::CallByName, FUEL).map_err(|e| e.to_string())?;
            if got != reference {
                return Err(format!(
                    "value changed {reference} -> {got}\ninput:\n{e}\noutput:\n{out}"
                ));
            }
        }
        Ok(())
    });
}

/// The per-pass differential oracle: every single pass of both pipelines
/// is value-preserving and lint-clean, and the full join-points pipeline
/// never increases allocations on generated programs.
#[test]
fn every_pass_is_sound_differentially() {
    runner::check_with(cfg(), "every pass is sound differentially", |g| {
        let (d, e) = build_closed(g);
        for cfg in [OptConfig::baseline(), OptConfig::join_points()] {
            let mut supply = d.supply.clone();
            let report = differential(
                &e,
                &d.data_env,
                &mut supply,
                &cfg,
                EvalMode::CallByValue,
                FUEL,
            )
            .map_err(|err| err.to_string())?;
            if report.alloc_delta() > 0 {
                return Err(format!(
                    "pipeline added allocations ({:+}): {} -> {}\n{e}",
                    report.alloc_delta(),
                    report.initial_metrics(),
                    report.final_metrics()
                ));
            }
        }
        Ok(())
    });
}

/// Erasure: join-free, well-typed, equivalent (Theorem 5).
#[test]
fn erasure_is_sound() {
    runner::check_with(cfg(), "erasure is sound", |g| {
        let (mut d, e) = build_closed(g);
        let reference = run_int(&e, EvalMode::CallByName, FUEL).map_err(|e| e.to_string())?;
        let joined = optimize(&e, &d.data_env, &mut d.supply, &OptConfig::join_points())
            .map_err(|err| format!("optimize: {err}"))?;
        let erased = erase(&joined, &d.data_env, &mut d.supply)
            .map_err(|err| format!("erase: {err}\n{joined}"))?;
        if erased.has_join_or_jump() {
            return Err(format!("erased term still has joins:\n{erased}"));
        }
        lint(&erased, &d.data_env)
            .map(|_| ())
            .map_err(|err| format!("erased ill-typed: {err}\n{erased}"))?;
        let got = run_int(&erased, EvalMode::CallByName, FUEL).map_err(|e| e.to_string())?;
        if got != reference {
            return Err(format!(
                "erasure changed value {reference} -> {got}\n{erased}"
            ));
        }
        Ok(())
    });
}

/// Freshening preserves α-equivalence and the fingerprint.
#[test]
fn freshening_is_alpha_invariant() {
    runner::check_with(cfg(), "freshening is alpha-invariant", |g| {
        let (mut d, e) = build_closed(g);
        let f = freshen(&e, &mut d.supply);
        if !alpha_eq(&e, &f) {
            return Err(format!("not alpha-equal:\n{e}\n---\n{f}"));
        }
        if alpha_fingerprint(&e) != alpha_fingerprint(&f) {
            return Err("alpha fingerprints differ".into());
        }
        Ok(())
    });
}

/// The simplifier alone (one full fixpoint run) is value-preserving.
#[test]
fn simplifier_alone_is_sound() {
    runner::check_with(cfg(), "simplifier alone is sound", |g| {
        let (mut d, e) = build_closed(g);
        let reference = run_int(&e, EvalMode::CallByValue, FUEL).map_err(|e| e.to_string())?;
        let opts = SimplOpts::default();
        let out = simplify(&e, &d.data_env, &mut d.supply, &opts)
            .map_err(|err| format!("simplify: {err}\n{e}"))?;
        lint(&out, &d.data_env)
            .map(|_| ())
            .map_err(|err| format!("output ill-typed: {err}\n{out}"))?;
        let got = run_int(&out, EvalMode::CallByValue, FUEL).map_err(|e| e.to_string())?;
        if got != reference {
            return Err(format!(
                "value changed {reference} -> {got}\ninput:\n{e}\noutput:\n{out}"
            ));
        }
        Ok(())
    });
}
