//! Property-based tests: random well-typed programs are generated from a
//! small grammar, then we check the repository's core metatheory claims
//! on every one of them —
//!
//! * generated programs lint (the generator only builds well-typed terms);
//! * the three machine modes agree on total programs;
//! * both optimizer pipelines preserve the observable value and typing
//!   (Prop. 3, observational soundness of the equational theory);
//! * erasure produces a join-free, well-typed, equivalent term (Thm. 5);
//! * freshening is α-invariant.

use proptest::prelude::*;
use system_fj::ast::{alpha_eq, freshen, Dsl, Expr, Name, PrimOp, Type};
use system_fj::check::lint;
use system_fj::core::{erase, optimize, OptConfig};
use system_fj::eval::{run_int, EvalMode};

const FUEL: u64 = 5_000_000;

/// A generator-level expression: always of type `Int`, always total.
#[derive(Debug, Clone)]
enum G {
    Lit(i8),
    /// Reference to an in-scope variable (index is taken modulo the
    /// environment size; falls back to a literal when empty).
    Var(u8),
    Add(Box<G>, Box<G>),
    Sub(Box<G>, Box<G>),
    Mul(Box<G>, Box<G>),
    /// `if a < b then t else f`.
    IfLt(Box<G>, Box<G>, Box<G>, Box<G>),
    /// `let x = rhs in body` with `x` in scope for `body`.
    Let(Box<G>, Box<G>),
    /// `case (Just payload | Nothing) of { Nothing -> none; Just x -> some }`
    /// with the payload variable in scope for `some`.
    CaseMaybe { just: bool, payload: Box<G>, none: Box<G>, some: Box<G> },
    /// A terminating accumulator loop:
    /// `letrec go i acc = if i <= 0 then acc else go (i-1) step in go n init`
    /// where `step` sees `i` and `acc`.
    Loop { iters: u8, init: Box<G>, step: Box<G> },
}

fn arb_g() -> impl Strategy<Value = G> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(G::Lit),
        any::<u8>().prop_map(G::Var),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| G::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| G::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| G::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone(), inner.clone()).prop_map(
                |(a, b, t, f)| G::IfLt(Box::new(a), Box::new(b), Box::new(t), Box::new(f))
            ),
            (inner.clone(), inner.clone())
                .prop_map(|(r, b)| G::Let(Box::new(r), Box::new(b))),
            (any::<bool>(), inner.clone(), inner.clone(), inner.clone()).prop_map(
                |(just, p, n, s)| G::CaseMaybe {
                    just,
                    payload: Box::new(p),
                    none: Box::new(n),
                    some: Box::new(s),
                }
            ),
            (0u8..12, inner.clone(), inner.clone()).prop_map(|(iters, init, step)| {
                G::Loop { iters, init: Box::new(init), step: Box::new(step) }
            }),
        ]
    })
}

/// Interpret a generated description into a (closed, Int-typed) F_J term.
fn build(g: &G, d: &mut Dsl, env: &mut Vec<Name>) -> Expr {
    match g {
        G::Lit(n) => Expr::Lit(i64::from(*n)),
        G::Var(i) => {
            if env.is_empty() {
                Expr::Lit(i64::from(*i))
            } else {
                let ix = (*i as usize) % env.len();
                Expr::var(&env[ix])
            }
        }
        G::Add(a, b) => Expr::prim2(PrimOp::Add, build(a, d, env), build(b, d, env)),
        G::Sub(a, b) => Expr::prim2(PrimOp::Sub, build(a, d, env), build(b, d, env)),
        G::Mul(a, b) => Expr::prim2(PrimOp::Mul, build(a, d, env), build(b, d, env)),
        G::IfLt(a, b, t, f) => Expr::ite(
            Expr::prim2(PrimOp::Lt, build(a, d, env), build(b, d, env)),
            build(t, d, env),
            build(f, d, env),
        ),
        G::Let(rhs, body) => {
            let rhs_e = build(rhs, d, env);
            let b = d.binder("x", Type::Int);
            env.push(b.name.clone());
            let body_e = build(body, d, env);
            env.pop();
            Expr::let1(b, rhs_e, body_e)
        }
        G::CaseMaybe { just, payload, none, some } => {
            let scrut = if *just {
                let p = build(payload, d, env);
                d.just(Type::Int, p)
            } else {
                d.nothing(Type::Int)
            };
            let none_e = build(none, d, env);
            let x = d.binder("m", Type::Int);
            env.push(x.name.clone());
            let some_e = build(some, d, env);
            env.pop();
            Expr::case(
                scrut,
                vec![
                    system_fj::ast::Alt::simple(
                        system_fj::ast::AltCon::Con("Nothing".into()),
                        none_e,
                    ),
                    system_fj::ast::Alt {
                        con: system_fj::ast::AltCon::Con("Just".into()),
                        binders: vec![x],
                        rhs: some_e,
                    },
                ],
            )
        }
        G::Loop { iters, init, step } => {
            let init_e = build(init, d, env);
            let go = d.name("go");
            let i = d.binder("i", Type::Int);
            let acc = d.binder("acc", Type::Int);
            env.push(i.name.clone());
            env.push(acc.name.clone());
            let step_e = build(step, d, env);
            env.pop();
            env.pop();
            let body = Expr::ite(
                Expr::prim2(PrimOp::Le, Expr::var(&i.name), Expr::Lit(0)),
                Expr::var(&acc.name),
                Expr::apps(
                    Expr::var(&go),
                    [
                        Expr::prim2(PrimOp::Sub, Expr::var(&i.name), Expr::Lit(1)),
                        step_e,
                    ],
                ),
            );
            let go_ty = Type::funs([Type::Int, Type::Int], Type::Int);
            Expr::letrec(
                vec![(
                    system_fj::ast::Binder::new(go.clone(), go_ty),
                    Expr::lams([i, acc], body),
                )],
                Expr::apps(Expr::var(&go), [Expr::Lit(i64::from(*iters)), init_e]),
            )
        }
    }
}

fn build_closed(g: &G) -> (Dsl, Expr) {
    let mut d = Dsl::new();
    let e = build(g, &mut d, &mut Vec::new());
    (d, e)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The generator only produces well-typed programs.
    #[test]
    fn generated_programs_lint(g in arb_g()) {
        let (d, e) = build_closed(&g);
        prop_assert!(lint(&e, &d.data_env).is_ok(), "ill-typed generator output:\n{e}");
    }

    /// All three evaluation orders agree on total Int programs.
    #[test]
    fn machine_modes_agree(g in arb_g()) {
        let (_d, e) = build_closed(&g);
        let n = run_int(&e, EvalMode::CallByName, FUEL).unwrap();
        let need = run_int(&e, EvalMode::CallByNeed, FUEL).unwrap();
        let v = run_int(&e, EvalMode::CallByValue, FUEL).unwrap();
        prop_assert_eq!(n, need);
        prop_assert_eq!(n, v);
    }

    /// Both optimizer pipelines preserve the observable value and typing.
    #[test]
    fn optimizer_is_observationally_sound(g in arb_g()) {
        let (mut d, e) = build_closed(&g);
        let reference = run_int(&e, EvalMode::CallByName, FUEL).unwrap();
        for cfg in [OptConfig::baseline(), OptConfig::join_points()] {
            let out = optimize(&e, &d.data_env, &mut d.supply, &cfg.with_lint(true))
                .map_err(|err| TestCaseError::fail(format!("optimize: {err}\n{e}")))?;
            let got = run_int(&out, EvalMode::CallByName, FUEL).unwrap();
            prop_assert_eq!(reference, got, "\ninput:\n{}\noutput:\n{}", e, out);
        }
    }

    /// Erasure: join-free, well-typed, equivalent (Theorem 5).
    #[test]
    fn erasure_is_sound(g in arb_g()) {
        let (mut d, e) = build_closed(&g);
        let reference = run_int(&e, EvalMode::CallByName, FUEL).unwrap();
        let joined = optimize(&e, &d.data_env, &mut d.supply, &OptConfig::join_points())
            .map_err(|err| TestCaseError::fail(format!("optimize: {err}")))?;
        let erased = erase(&joined, &d.data_env, &mut d.supply)
            .map_err(|err| TestCaseError::fail(format!("erase: {err}\n{joined}")))?;
        prop_assert!(!erased.has_join_or_jump());
        prop_assert!(lint(&erased, &d.data_env).is_ok(), "erased ill-typed:\n{erased}");
        let got = run_int(&erased, EvalMode::CallByName, FUEL).unwrap();
        prop_assert_eq!(reference, got);
    }

    /// Freshening preserves α-equivalence and the fingerprint.
    #[test]
    fn freshening_is_alpha_invariant(g in arb_g()) {
        let (mut d, e) = build_closed(&g);
        let f = freshen(&e, &mut d.supply);
        prop_assert!(alpha_eq(&e, &f));
        prop_assert_eq!(
            system_fj::ast::alpha_fingerprint(&e),
            system_fj::ast::alpha_fingerprint(&f)
        );
    }

    /// The simplifier alone (one full fixpoint run) is value-preserving.
    #[test]
    fn simplifier_alone_is_sound(g in arb_g()) {
        let (mut d, e) = build_closed(&g);
        let reference = run_int(&e, EvalMode::CallByValue, FUEL).unwrap();
        let opts = system_fj::core::SimplOpts::default();
        let out = system_fj::core::simplify(&e, &d.data_env, &mut d.supply, &opts)
            .map_err(|err| TestCaseError::fail(format!("simplify: {err}\n{e}")))?;
        prop_assert!(lint(&out, &d.data_env).is_ok(), "output ill-typed:\n{out}");
        let got = run_int(&out, EvalMode::CallByValue, FUEL).unwrap();
        prop_assert_eq!(reference, got, "\ninput:\n{}\noutput:\n{}", e, out);
    }
}
