//! Ergonomic construction of System F_J terms.
//!
//! Examples, the fusion library, and the NoFib-analogue generators all
//! build object-language programs programmatically; [`Dsl`] packages a
//! [`NameSupply`] with the common idioms (prelude constructors, integer
//! lists, `Maybe`, loops) so call sites read close to the paper's notation.

use crate::data_env::DataEnv;
use crate::expr::{Alt, AltCon, Binder, Expr, JoinDef};
use crate::name::{Ident, Name, NameSupply};
use crate::ty::Type;

/// A term-building context: a fresh-name supply plus the datatype
/// environment terms are built against.
///
/// ```
/// use fj_ast::Dsl;
/// let mut dsl = Dsl::new();
/// let list = dsl.int_list(&[1, 2, 3]); // Cons 1 (Cons 2 (Cons 3 Nil))
/// assert!(list.is_answer());
/// ```
#[derive(Debug)]
pub struct Dsl {
    /// The fresh-name supply.
    pub supply: NameSupply,
    /// The datatype environment (prelude by default).
    pub data_env: DataEnv,
}

impl Default for Dsl {
    fn default() -> Self {
        Self::new()
    }
}

impl Dsl {
    /// A context over the prelude datatypes.
    pub fn new() -> Self {
        Dsl {
            supply: NameSupply::new(),
            data_env: DataEnv::prelude(),
        }
    }

    /// Fresh name.
    pub fn name(&mut self, base: &str) -> Name {
        self.supply.fresh(base)
    }

    /// Fresh binder of the given type.
    pub fn binder(&mut self, base: &str, ty: Type) -> Binder {
        Binder::new(self.supply.fresh(base), ty)
    }

    /// `List τ`.
    pub fn list_ty(&self, elem: Type) -> Type {
        Type::Con(Ident::new("List"), vec![elem])
    }

    /// `Maybe τ`.
    pub fn maybe_ty(&self, elem: Type) -> Type {
        Type::Con(Ident::new("Maybe"), vec![elem])
    }

    /// `Pair σ τ`.
    pub fn pair_ty(&self, a: Type, b: Type) -> Type {
        Type::Con(Ident::new("Pair"), vec![a, b])
    }

    /// `Nil @τ`.
    pub fn nil(&self, elem: Type) -> Expr {
        Expr::Con(Ident::new("Nil"), vec![elem], vec![])
    }

    /// `Cons @τ x xs`.
    pub fn cons(&self, elem: Type, head: Expr, tail: Expr) -> Expr {
        Expr::Con(Ident::new("Cons"), vec![elem], vec![head, tail])
    }

    /// `Nothing @τ`.
    pub fn nothing(&self, elem: Type) -> Expr {
        Expr::Con(Ident::new("Nothing"), vec![elem], vec![])
    }

    /// `Just @τ x`.
    pub fn just(&self, elem: Type, x: Expr) -> Expr {
        Expr::Con(Ident::new("Just"), vec![elem], vec![x])
    }

    /// `MkPair @σ @τ a b`.
    pub fn pair(&self, ta: Type, tb: Type, a: Expr, b: Expr) -> Expr {
        Expr::Con(Ident::new("MkPair"), vec![ta, tb], vec![a, b])
    }

    /// A literal list of integers.
    pub fn int_list(&mut self, xs: &[i64]) -> Expr {
        xs.iter().rev().fold(self.nil(Type::Int), |acc, &x| {
            self.cons(Type::Int, Expr::Lit(x), acc)
        })
    }

    /// `case scrut of { Nothing -> none; Just x -> some(x) }`.
    pub fn case_maybe(
        &mut self,
        elem: Type,
        scrut: Expr,
        none: Expr,
        some: impl FnOnce(&mut Dsl, &Name) -> Expr,
    ) -> Expr {
        let x = self.binder("x", elem);
        let x_name = x.name.clone();
        let some_rhs = some(self, &x_name);
        Expr::case(
            scrut,
            vec![
                Alt::simple(AltCon::Con(Ident::new("Nothing")), none),
                Alt {
                    con: AltCon::Con(Ident::new("Just")),
                    binders: vec![x],
                    rhs: some_rhs,
                },
            ],
        )
    }

    /// `case scrut of { Nil -> nil_rhs; Cons h t -> cons_rhs(h, t) }`.
    pub fn case_list(
        &mut self,
        elem: Type,
        scrut: Expr,
        nil_rhs: Expr,
        cons_rhs: impl FnOnce(&mut Dsl, &Name, &Name) -> Expr,
    ) -> Expr {
        let h = self.binder("h", elem.clone());
        let t = self.binder("t", self.list_ty(elem));
        let (hn, tn) = (h.name.clone(), t.name.clone());
        let rhs = cons_rhs(self, &hn, &tn);
        Expr::case(
            scrut,
            vec![
                Alt::simple(AltCon::Con(Ident::new("Nil")), nil_rhs),
                Alt {
                    con: AltCon::Con(Ident::new("Cons")),
                    binders: vec![h, t],
                    rhs,
                },
            ],
        )
    }

    /// A first-order recursive loop:
    /// `let rec f (x₁:σ₁)…(xₙ:σₙ) : ρ = body(f, x⃗) in k(f)`.
    ///
    /// This is the shape contification targets (paper Sec. 4–5).
    pub fn letrec_loop(
        &mut self,
        fname: &str,
        params: Vec<(&str, Type)>,
        result: Type,
        body: impl FnOnce(&mut Dsl, &Name, &[Name]) -> Expr,
        k: impl FnOnce(&mut Dsl, &Name) -> Expr,
    ) -> Expr {
        let f = self.name(fname);
        let binders: Vec<Binder> = params.into_iter().map(|(n, t)| self.binder(n, t)).collect();
        let param_names: Vec<Name> = binders.iter().map(|b| b.name.clone()).collect();
        let fun_ty = Type::funs(binders.iter().map(|b| b.ty.clone()), result);
        let body_e = body(self, &f, &param_names);
        let rhs = Expr::lams(binders, body_e);
        let cont = k(self, &f);
        Expr::letrec(vec![(Binder::new(f, fun_ty), rhs)], cont)
    }

    /// A recursive join-point loop:
    /// `join rec j (x⃗:σ⃗) = body in k(j)`.
    pub fn joinrec_loop(
        &mut self,
        jname: &str,
        params: Vec<(&str, Type)>,
        body: impl FnOnce(&mut Dsl, &Name, &[Name]) -> Expr,
        k: impl FnOnce(&mut Dsl, &Name) -> Expr,
    ) -> Expr {
        let j = self.name(jname);
        let binders: Vec<Binder> = params.into_iter().map(|(n, t)| self.binder(n, t)).collect();
        let names: Vec<Name> = binders.iter().map(|b| b.name.clone()).collect();
        let body_e = body(self, &j, &names);
        let cont = k(self, &j);
        Expr::joinrec(
            vec![JoinDef {
                name: j,
                ty_params: vec![],
                params: binders,
                body: body_e,
            }],
            cont,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::PrimOp;

    #[test]
    fn int_list_shape() {
        let mut d = Dsl::new();
        let l = d.int_list(&[1, 2]);
        match &l {
            Expr::Con(c, tys, args) => {
                assert_eq!(c.as_str(), "Cons");
                assert_eq!(tys, &vec![Type::Int]);
                assert_eq!(args[0], Expr::Lit(1));
            }
            other => panic!("expected Cons, got {other:?}"),
        }
    }

    #[test]
    fn case_maybe_builds_both_alts() {
        let mut d = Dsl::new();
        let scrut = d.nothing(Type::Int);
        let e = d.case_maybe(Type::Int, scrut, Expr::Lit(0), |_, x| Expr::var(x));
        match e {
            Expr::Case(_, alts) => {
                assert_eq!(alts.len(), 2);
                assert_eq!(alts[1].binders.len(), 1);
            }
            other => panic!("expected case, got {other:?}"),
        }
    }

    #[test]
    fn letrec_loop_builds_function() {
        let mut d = Dsl::new();
        let e = d.letrec_loop(
            "go",
            vec![("n", Type::Int)],
            Type::Int,
            |_, f, ps| {
                Expr::app(
                    Expr::var(f),
                    Expr::prim2(PrimOp::Sub, Expr::var(&ps[0]), Expr::Lit(1)),
                )
            },
            |_, f| Expr::app(Expr::var(f), Expr::Lit(10)),
        );
        match e {
            Expr::Let(crate::expr::LetBind::Rec(binds), _) => {
                assert_eq!(binds.len(), 1);
                assert_eq!(binds[0].0.ty, Type::fun(Type::Int, Type::Int));
            }
            other => panic!("expected letrec, got {other:?}"),
        }
    }

    #[test]
    fn joinrec_loop_builds_join() {
        let mut d = Dsl::new();
        let e = d.joinrec_loop(
            "go",
            vec![("n", Type::Int)],
            |_, j, ps| Expr::jump(j, vec![], vec![Expr::var(&ps[0])], Type::Int),
            |_, j| Expr::jump(j, vec![], vec![Expr::Lit(0)], Type::Int),
        );
        assert!(e.has_join_or_jump());
    }
}
