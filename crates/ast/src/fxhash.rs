//! A fast, non-cryptographic hasher for the optimizer's hot-path maps.
//!
//! This is the FxHash algorithm used throughout rustc (and published as
//! the `rustc-hash` crate): one multiply-rotate-xor step per word. The
//! workspace builds offline with no registry access, so the ~30 lines
//! are carried in-tree rather than as a dependency.
//!
//! The optimizer's maps are keyed by [`Name`](crate::Name) uniques
//! (small dense `u64`s) and α-fingerprints; none of them are exposed to
//! untrusted input, so HashDoS resistance — the one thing SipHash buys —
//! is not needed, and the default hasher's per-key setup cost dominates
//! the small maps substitution creates at every binder.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the Fx hasher: a drop-in for `std::collections::HashMap`
/// on hot paths keyed by names, uniques, or fingerprints.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc FxHash state: a single `u64` folded with
/// `hash = (hash.rotate_left(5) ^ word) * SEED` per input word.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (chunk, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (chunk, rest) = bytes.split_at(4);
            self.add_to_hash(u64::from(u32::from_le_bytes(chunk.try_into().unwrap())));
            bytes = rest;
        }
        if bytes.len() >= 2 {
            let (chunk, rest) = bytes.split_at(2);
            self.add_to_hash(u64::from(u16::from_le_bytes(chunk.try_into().unwrap())));
            bytes = rest;
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // Not a collision-freeness proof, just a sanity check that the
        // fold actually mixes.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&2), Some(&"two"));
        assert_eq!(m.get(&3), None);
    }
}
