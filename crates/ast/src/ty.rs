//! Types of System F_J (Fig. 1 of the paper).
//!
//! The grammar is System F types plus saturated datatype applications and a
//! primitive integer type (GHC Core's `Int#`; the paper elides literals for
//! brevity but real Core has them and the benchmarks need arithmetic).
//!
//! Join points receive types of the shape `∀a⃗. σ⃗ → ∀r.r` (rule JBIND); the
//! return type `∀r.r` — *bottom* — is built by [`Type::bot`].

use crate::fxhash::FxHashMap;
use crate::name::{Ident, Name};
use std::fmt;

/// A System F_J type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// A type variable `a`.
    Var(Name),
    /// A saturated datatype application `T φ₁ … φₙ` (e.g. `Maybe Int`).
    ///
    /// The paper's grammar separates the datatype head `T` from type
    /// application `τ φ`; since heads are always datatypes in this fragment
    /// we normalize applications into one saturated node.
    Con(Ident, Vec<Type>),
    /// A function type `σ → τ`.
    Fun(Box<Type>, Box<Type>),
    /// A polymorphic type `∀a. τ`.
    Forall(Name, Box<Type>),
    /// The primitive (unboxed) integer type.
    Int,
}

impl Type {
    /// The nullary datatype `T`.
    pub fn con0(name: impl Into<Ident>) -> Type {
        Type::Con(name.into(), Vec::new())
    }

    /// The function type `a -> b`.
    pub fn fun(a: Type, b: Type) -> Type {
        Type::Fun(Box::new(a), Box::new(b))
    }

    /// A curried function type `a₁ -> … -> aₙ -> r`.
    pub fn funs(args: impl IntoIterator<Item = Type>, res: Type) -> Type {
        let args: Vec<Type> = args.into_iter().collect();
        args.into_iter().rev().fold(res, |acc, a| Type::fun(a, acc))
    }

    /// `∀a. τ`.
    pub fn forall(a: Name, body: Type) -> Type {
        Type::Forall(a, Box::new(body))
    }

    /// The bottom type `∀r. r` — the "return type" of join points and jumps.
    pub fn bot() -> Type {
        let r = Name::with_id("r", 0);
        Type::forall(r.clone(), Type::Var(r))
    }

    /// Is this type `∀r. r` (up to the bound variable's identity)?
    pub fn is_bot(&self) -> bool {
        matches!(self, Type::Forall(a, body) if matches!(&**body, Type::Var(b) if a == b))
    }

    /// The convenience boolean datatype `Bool`.
    pub fn bool() -> Type {
        Type::con0("Bool")
    }

    /// Split a curried function type into argument types and result.
    pub fn split_funs(&self) -> (Vec<&Type>, &Type) {
        let mut args = Vec::new();
        let mut t = self;
        while let Type::Fun(a, b) = t {
            args.push(&**a);
            t = b;
        }
        (args, t)
    }

    /// Capture-avoiding substitution of types for type variables.
    ///
    /// All binders in the *image* types are assumed not to capture — callers
    /// that substitute open types under binders must freshen first (the
    /// optimizer maintains globally unique binders, so this holds there).
    pub fn subst(&self, map: &FxHashMap<Name, Type>) -> Type {
        if map.is_empty() {
            return self.clone();
        }
        match self {
            Type::Var(a) => map.get(a).cloned().unwrap_or_else(|| self.clone()),
            Type::Con(t, args) => Type::Con(t.clone(), args.iter().map(|a| a.subst(map)).collect()),
            Type::Fun(a, b) => Type::fun(a.subst(map), b.subst(map)),
            Type::Forall(a, body) => {
                if map.contains_key(a) {
                    let mut inner = map.clone();
                    inner.remove(a);
                    Type::forall(a.clone(), body.subst(&inner))
                } else {
                    Type::forall(a.clone(), body.subst(map))
                }
            }
            Type::Int => Type::Int,
        }
    }

    /// Substitute a single type variable.
    pub fn subst1(&self, var: &Name, ty: &Type) -> Type {
        let mut m = FxHashMap::default();
        m.insert(var.clone(), ty.clone());
        self.subst(&m)
    }

    /// Free type variables, accumulated into `out`.
    pub fn free_vars_into(&self, bound: &mut Vec<Name>, out: &mut Vec<Name>) {
        match self {
            Type::Var(a) => {
                if !bound.contains(a) && !out.contains(a) {
                    out.push(a.clone());
                }
            }
            Type::Con(_, args) => {
                for a in args {
                    a.free_vars_into(bound, out);
                }
            }
            Type::Fun(a, b) => {
                a.free_vars_into(bound, out);
                b.free_vars_into(bound, out);
            }
            Type::Forall(a, body) => {
                bound.push(a.clone());
                body.free_vars_into(bound, out);
                bound.pop();
            }
            Type::Int => {}
        }
    }

    /// Free type variables of this type.
    pub fn free_vars(&self) -> Vec<Name> {
        let mut out = Vec::new();
        self.free_vars_into(&mut Vec::new(), &mut out);
        out
    }

    /// Structural equality up to renaming of ∀-bound variables.
    pub fn alpha_eq(&self, other: &Type) -> bool {
        fn go(a: &Type, b: &Type, env: &mut Vec<(Name, Name)>) -> bool {
            match (a, b) {
                (Type::Var(x), Type::Var(y)) => {
                    for (l, r) in env.iter().rev() {
                        if l == x || r == y {
                            return l == x && r == y;
                        }
                    }
                    x == y
                }
                (Type::Con(t1, a1), Type::Con(t2, a2)) => {
                    t1 == t2
                        && a1.len() == a2.len()
                        && a1.iter().zip(a2).all(|(x, y)| go(x, y, env))
                }
                (Type::Fun(a1, r1), Type::Fun(a2, r2)) => go(a1, a2, env) && go(r1, r2, env),
                (Type::Forall(x, b1), Type::Forall(y, b2)) => {
                    env.push((x.clone(), y.clone()));
                    let ok = go(b1, b2, env);
                    env.pop();
                    ok
                }
                (Type::Int, Type::Int) => true,
                _ => false,
            }
        }
        go(self, other, &mut Vec::new())
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ty(self, f, Prec::Top)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Top,
    FunLeft,
    Arg,
}

fn fmt_ty(t: &Type, f: &mut fmt::Formatter<'_>, p: Prec) -> fmt::Result {
    match t {
        Type::Var(a) => write!(f, "{a}"),
        Type::Int => write!(f, "Int"),
        Type::Con(c, args) if args.is_empty() => write!(f, "{c}"),
        Type::Con(c, args) => {
            let parens = p >= Prec::Arg;
            if parens {
                write!(f, "(")?;
            }
            write!(f, "{c}")?;
            for a in args {
                write!(f, " ")?;
                fmt_ty(a, f, Prec::Arg)?;
            }
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Type::Fun(a, b) => {
            let parens = p >= Prec::FunLeft;
            if parens {
                write!(f, "(")?;
            }
            fmt_ty(a, f, Prec::FunLeft)?;
            write!(f, " -> ")?;
            fmt_ty(b, f, Prec::Top)?;
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        Type::Forall(a, body) => {
            let parens = p >= Prec::FunLeft;
            if parens {
                write!(f, "(")?;
            }
            write!(f, "forall {a}. ")?;
            fmt_ty(body, f, Prec::Top)?;
            if parens {
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::NameSupply;

    #[test]
    fn bot_is_bot() {
        assert!(Type::bot().is_bot());
        assert!(!Type::Int.is_bot());
        assert!(!Type::forall(Name::with_id("a", 1), Type::Int).is_bot());
    }

    #[test]
    fn funs_currying() {
        let t = Type::funs([Type::Int, Type::bool()], Type::Int);
        let (args, res) = t.split_funs();
        assert_eq!(args.len(), 2);
        assert_eq!(*args[0], Type::Int);
        assert_eq!(*args[1], Type::bool());
        assert_eq!(*res, Type::Int);
    }

    #[test]
    fn subst_respects_shadowing() {
        let mut s = NameSupply::new();
        let a = s.fresh("a");
        // (∀a. a -> a){Int/a}  leaves the bound a alone
        let t = Type::forall(
            a.clone(),
            Type::fun(Type::Var(a.clone()), Type::Var(a.clone())),
        );
        let u = t.subst1(&a, &Type::Int);
        assert!(t.alpha_eq(&u));
    }

    #[test]
    fn subst_replaces_free() {
        let mut s = NameSupply::new();
        let a = s.fresh("a");
        let t = Type::fun(Type::Var(a.clone()), Type::Int);
        let u = t.subst1(&a, &Type::bool());
        assert_eq!(u, Type::fun(Type::bool(), Type::Int));
    }

    #[test]
    fn alpha_eq_forall() {
        let mut s = NameSupply::new();
        let a = s.fresh("a");
        let b = s.fresh("b");
        let ta = Type::forall(a.clone(), Type::Var(a.clone()));
        let tb = Type::forall(b.clone(), Type::Var(b.clone()));
        assert!(ta.alpha_eq(&tb));
        let tc = Type::forall(a, Type::Var(b));
        assert!(!ta.alpha_eq(&tc));
    }

    #[test]
    fn free_vars_of_forall() {
        let mut s = NameSupply::new();
        let a = s.fresh("a");
        let b = s.fresh("b");
        let t = Type::forall(a.clone(), Type::fun(Type::Var(a), Type::Var(b.clone())));
        assert_eq!(t.free_vars(), vec![b]);
    }

    #[test]
    fn display_shapes() {
        let t = Type::fun(
            Type::Con(Ident::new("Maybe"), vec![Type::Int]),
            Type::bool(),
        );
        assert_eq!(t.to_string(), "Maybe Int -> Bool");
        let u = Type::fun(Type::fun(Type::Int, Type::Int), Type::Int);
        assert_eq!(u.to_string(), "(Int -> Int) -> Int");
    }
}
