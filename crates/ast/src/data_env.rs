//! The datatype environment: the paper's `typeof` and `ctors` functions.
//!
//! System F_J is parameterized by a set of algebraic datatypes. The
//! environment maps type-constructor names to their declarations and data
//! constructor names to their owners, and provides field-type instantiation
//! (substituting actual type arguments for the datatype's universal type
//! variables).
//!
//! [`DataEnv::prelude`] wires in the types every part of this repository
//! uses: `Bool`, `Maybe`, `List`, `Pair`, `Unit`, and the two stream-fusion
//! `Step` types from Sec. 5 — the skip-less `Step` (Svenningsson) and the
//! skip-ful `SStep` (Coutts et al.).

use crate::name::{Ident, Name, NameSupply};
use crate::ty::Type;
use std::collections::HashMap;

/// A data constructor declaration.
#[derive(Clone, Debug)]
pub struct DataCon {
    /// The constructor's name, e.g. `Just`.
    pub name: Ident,
    /// The datatype it belongs to.
    pub ty_con: Ident,
    /// Field types, expressed over the owner's universal type variables.
    pub fields: Vec<Type>,
    /// Position within the datatype's constructor list (for exhaustiveness).
    pub tag: usize,
}

/// A datatype declaration `data T a⃗ = K₁ σ⃗₁ | …`.
#[derive(Clone, Debug)]
pub struct DataType {
    /// The type constructor's name.
    pub name: Ident,
    /// Universal type variables.
    pub ty_vars: Vec<Name>,
    /// The constructors, in declaration order.
    pub ctors: Vec<DataCon>,
}

impl DataType {
    /// The result type `T a⃗` of all this datatype's constructors.
    pub fn applied_to_own_vars(&self) -> Type {
        Type::Con(
            self.name.clone(),
            self.ty_vars.iter().map(|a| Type::Var(a.clone())).collect(),
        )
    }
}

/// Errors from datatype declaration and lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DataEnvError {
    /// A type constructor was declared twice.
    DuplicateTyCon(Ident),
    /// A data constructor was declared twice (possibly across datatypes).
    DuplicateCon(Ident),
    /// A data constructor is not in the environment.
    UnknownCon(Ident),
    /// A type constructor is not in the environment.
    UnknownTyCon(Ident),
    /// A constructor was instantiated at the wrong number of type arguments.
    ArityMismatch {
        /// The constructor.
        con: Ident,
        /// Expected count (the datatype's type-variable count).
        expected: usize,
        /// Provided count.
        got: usize,
    },
}

impl std::fmt::Display for DataEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataEnvError::DuplicateTyCon(t) => write!(f, "duplicate type constructor {t}"),
            DataEnvError::DuplicateCon(c) => write!(f, "duplicate data constructor {c}"),
            DataEnvError::UnknownCon(c) => write!(f, "unknown data constructor {c}"),
            DataEnvError::UnknownTyCon(t) => write!(f, "unknown type constructor {t}"),
            DataEnvError::ArityMismatch { con, expected, got } => write!(
                f,
                "constructor {con} applied to {got} type arguments, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for DataEnvError {}

/// The datatype environment.
#[derive(Clone, Debug, Default)]
pub struct DataEnv {
    types: HashMap<Ident, DataType>,
    con_owner: HashMap<Ident, Ident>,
}

impl DataEnv {
    /// An empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard environment used throughout this repository.
    ///
    /// Declares:
    /// ```text
    /// data Unit      = MkUnit
    /// data Bool      = True | False
    /// data Maybe a   = Nothing | Just a
    /// data List a    = Nil | Cons a (List a)
    /// data Pair a b  = MkPair a b
    /// data Step s a  = Done | Yield a s            -- skip-less (Sec. 5)
    /// data SStep s a = SDone | SYield a s | SSkip s -- with Skip (Coutts et al.)
    /// ```
    pub fn prelude() -> Self {
        let mut env = DataEnv::new();
        let mut s = NameSupply::starting_at(1);
        let a = || Name::with_id("a", 1);
        let _ = &mut s;

        env.declare_unchecked("Unit", vec![], vec![("MkUnit", vec![])]);
        env.declare_unchecked("Bool", vec![], vec![("True", vec![]), ("False", vec![])]);

        let av = a();
        env.declare_unchecked(
            "Maybe",
            vec![av.clone()],
            vec![("Nothing", vec![]), ("Just", vec![Type::Var(av)])],
        );

        let av = a();
        env.declare_unchecked(
            "List",
            vec![av.clone()],
            vec![
                ("Nil", vec![]),
                (
                    "Cons",
                    vec![
                        Type::Var(av.clone()),
                        Type::Con(Ident::new("List"), vec![Type::Var(av)]),
                    ],
                ),
            ],
        );

        let av = Name::with_id("a", 1);
        let bv = Name::with_id("b", 2);
        env.declare_unchecked(
            "Pair",
            vec![av.clone(), bv.clone()],
            vec![("MkPair", vec![Type::Var(av), Type::Var(bv)])],
        );

        let av = Name::with_id("a", 1);
        let bv = Name::with_id("b", 2);
        env.declare_unchecked(
            "Either",
            vec![av.clone(), bv.clone()],
            vec![
                ("Left", vec![Type::Var(av)]),
                ("Right", vec![Type::Var(bv)]),
            ],
        );

        let sv = Name::with_id("s", 3);
        let ev = Name::with_id("a", 4);
        env.declare_unchecked(
            "Step",
            vec![sv.clone(), ev.clone()],
            vec![
                ("Done", vec![]),
                ("Yield", vec![Type::Var(ev.clone()), Type::Var(sv.clone())]),
            ],
        );
        env.declare_unchecked(
            "SStep",
            vec![sv.clone(), ev.clone()],
            vec![
                ("SDone", vec![]),
                ("SYield", vec![Type::Var(ev), Type::Var(sv.clone())]),
                ("SSkip", vec![Type::Var(sv)]),
            ],
        );
        env
    }

    fn declare_unchecked(&mut self, name: &str, ty_vars: Vec<Name>, ctors: Vec<(&str, Vec<Type>)>) {
        let ctor_decls: Vec<(Ident, Vec<Type>)> = ctors
            .into_iter()
            .map(|(c, fs)| (Ident::new(c), fs))
            .collect();
        self.declare(Ident::new(name), ty_vars, ctor_decls)
            .expect("prelude declarations are well-formed");
    }

    /// Declare a new datatype.
    ///
    /// # Errors
    ///
    /// Fails if the type constructor or any data constructor is already
    /// declared.
    pub fn declare(
        &mut self,
        name: Ident,
        ty_vars: Vec<Name>,
        ctors: Vec<(Ident, Vec<Type>)>,
    ) -> Result<(), DataEnvError> {
        if self.types.contains_key(&name) {
            return Err(DataEnvError::DuplicateTyCon(name));
        }
        for (c, _) in &ctors {
            if self.con_owner.contains_key(c) {
                return Err(DataEnvError::DuplicateCon(c.clone()));
            }
        }
        let ctor_decls: Vec<DataCon> = ctors
            .into_iter()
            .enumerate()
            .map(|(tag, (c, fields))| DataCon {
                name: c,
                ty_con: name.clone(),
                fields,
                tag,
            })
            .collect();
        for c in &ctor_decls {
            self.con_owner.insert(c.name.clone(), name.clone());
        }
        self.types.insert(
            name.clone(),
            DataType {
                name,
                ty_vars,
                ctors: ctor_decls,
            },
        );
        Ok(())
    }

    /// Look up a datatype declaration.
    pub fn datatype(&self, name: &Ident) -> Result<&DataType, DataEnvError> {
        self.types
            .get(name)
            .ok_or_else(|| DataEnvError::UnknownTyCon(name.clone()))
    }

    /// Look up a data constructor (the paper's `typeof`, in pieces).
    pub fn constructor(&self, name: &Ident) -> Result<&DataCon, DataEnvError> {
        let owner = self
            .con_owner
            .get(name)
            .ok_or_else(|| DataEnvError::UnknownCon(name.clone()))?;
        let dt = &self.types[owner];
        Ok(dt
            .ctors
            .iter()
            .find(|c| &c.name == name)
            .expect("owner index consistent"))
    }

    /// The datatype that owns a constructor.
    pub fn owner_of(&self, con: &Ident) -> Result<&DataType, DataEnvError> {
        let owner = self
            .con_owner
            .get(con)
            .ok_or_else(|| DataEnvError::UnknownCon(con.clone()))?;
        Ok(&self.types[owner])
    }

    /// Field types of `con` instantiated at the given type arguments, and
    /// the resulting datatype type.
    ///
    /// # Errors
    ///
    /// Fails if the constructor is unknown or the type-argument count does
    /// not match the datatype's arity.
    pub fn instantiate(
        &self,
        con: &Ident,
        ty_args: &[Type],
    ) -> Result<(Vec<Type>, Type), DataEnvError> {
        let dt = self.owner_of(con)?;
        if dt.ty_vars.len() != ty_args.len() {
            return Err(DataEnvError::ArityMismatch {
                con: con.clone(),
                expected: dt.ty_vars.len(),
                got: ty_args.len(),
            });
        }
        let subst: crate::fxhash::FxHashMap<Name, Type> = dt
            .ty_vars
            .iter()
            .cloned()
            .zip(ty_args.iter().cloned())
            .collect();
        let c = dt
            .ctors
            .iter()
            .find(|c| &c.name == con)
            .expect("owner index consistent");
        let fields = c.fields.iter().map(|f| f.subst(&subst)).collect();
        let result = Type::Con(dt.name.clone(), ty_args.to_vec());
        Ok((fields, result))
    }

    /// All constructors of the datatype owning `con` (the paper's `ctors`).
    pub fn siblings(&self, con: &Ident) -> Result<&[DataCon], DataEnvError> {
        Ok(&self.owner_of(con)?.ctors)
    }

    /// Iterate over all declared datatypes.
    pub fn iter(&self) -> impl Iterator<Item = &DataType> {
        self.types.values()
    }

    /// A structural fingerprint of the whole environment, independent of
    /// declaration order and of the uniques chosen for datatype type
    /// variables (each declaration's variables are numbered positionally
    /// before its field types are hashed).
    ///
    /// Two environments with the same fingerprint declare the same
    /// datatypes, so optimized terms are interchangeable between them —
    /// this is the `DataEnv` component of the optimization-cache key: a
    /// program compiled against a prelude extended with `data Shape = …`
    /// must never be served from a cache entry produced under the bare
    /// prelude, even when the terms are alpha-equivalent.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut names: Vec<&Ident> = self.types.keys().collect();
        names.sort();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for name in names {
            let dt = &self.types[name];
            dt.name.as_str().hash(&mut h);
            dt.ty_vars.len().hash(&mut h);
            let position: HashMap<&Name, usize> =
                dt.ty_vars.iter().enumerate().map(|(i, n)| (n, i)).collect();
            for c in &dt.ctors {
                c.name.as_str().hash(&mut h);
                c.tag.hash(&mut h);
                c.fields.len().hash(&mut h);
                for f in &c.fields {
                    hash_field_ty(f, &position, &mut h);
                }
            }
        }
        h.finish()
    }
}

/// Hash a constructor field type with the owning datatype's type
/// variables replaced by their declaration position, so the fingerprint
/// ignores which uniques a frontend happened to pick for them.
fn hash_field_ty(
    t: &Type,
    position: &HashMap<&Name, usize>,
    h: &mut std::collections::hash_map::DefaultHasher,
) {
    use std::hash::Hash;
    match t {
        Type::Var(a) => {
            0u8.hash(h);
            match position.get(a) {
                Some(ix) => ix.hash(h),
                // A variable that is not one of the datatype's own
                // binders (ill-formed in practice): hash its raw unique.
                None => (u64::MAX, a.id()).hash(h),
            }
        }
        Type::Con(c, args) => {
            1u8.hash(h);
            c.as_str().hash(h);
            args.len().hash(h);
            for a in args {
                hash_field_ty(a, position, h);
            }
        }
        Type::Fun(a, b) => {
            2u8.hash(h);
            hash_field_ty(a, position, h);
            hash_field_ty(b, position, h);
        }
        Type::Forall(a, b) => {
            3u8.hash(h);
            a.id().hash(h);
            hash_field_ty(b, position, h);
        }
        Type::Int => 4u8.hash(h),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_has_expected_types() {
        let env = DataEnv::prelude();
        for t in [
            "Unit", "Bool", "Maybe", "List", "Pair", "Either", "Step", "SStep",
        ] {
            assert!(env.datatype(&Ident::new(t)).is_ok(), "missing {t}");
        }
    }

    #[test]
    fn instantiate_just() {
        let env = DataEnv::prelude();
        let (fields, res) = env.instantiate(&Ident::new("Just"), &[Type::Int]).unwrap();
        assert_eq!(fields, vec![Type::Int]);
        assert_eq!(res, Type::Con(Ident::new("Maybe"), vec![Type::Int]));
    }

    #[test]
    fn instantiate_cons_recursion() {
        let env = DataEnv::prelude();
        let (fields, _) = env
            .instantiate(&Ident::new("Cons"), &[Type::bool()])
            .unwrap();
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0], Type::bool());
        assert_eq!(fields[1], Type::Con(Ident::new("List"), vec![Type::bool()]));
    }

    #[test]
    fn arity_mismatch_detected() {
        let env = DataEnv::prelude();
        let err = env.instantiate(&Ident::new("Just"), &[]).unwrap_err();
        assert!(matches!(err, DataEnvError::ArityMismatch { .. }));
    }

    #[test]
    fn duplicate_declarations_rejected() {
        let mut env = DataEnv::prelude();
        let dup = env.declare(Ident::new("Bool"), vec![], vec![]);
        assert!(matches!(dup, Err(DataEnvError::DuplicateTyCon(_))));
        let dup_con = env.declare(
            Ident::new("Bool2"),
            vec![],
            vec![(Ident::new("True"), vec![])],
        );
        assert!(matches!(dup_con, Err(DataEnvError::DuplicateCon(_))));
    }

    #[test]
    fn siblings_of_just() {
        let env = DataEnv::prelude();
        let sibs = env.siblings(&Ident::new("Just")).unwrap();
        let names: Vec<&str> = sibs.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["Nothing", "Just"]);
    }

    #[test]
    fn fingerprint_distinguishes_environments() {
        let prelude = DataEnv::prelude();
        assert_eq!(
            prelude.fingerprint(),
            DataEnv::prelude().fingerprint(),
            "fingerprint must be deterministic"
        );
        // Same declarations built on another thread (fresh interner):
        // the fingerprint is content-addressed, not pointer-addressed.
        let remote_fp = std::thread::spawn(|| DataEnv::prelude().fingerprint())
            .join()
            .unwrap();
        assert_eq!(prelude.fingerprint(), remote_fp);
        // Extending the environment must change the key.
        let mut extended = DataEnv::prelude();
        extended
            .declare(
                Ident::new("Shape"),
                vec![],
                vec![(Ident::new("Circle"), vec![Type::Int])],
            )
            .unwrap();
        assert_ne!(prelude.fingerprint(), extended.fingerprint());
        // Ty-var uniques are normalized away: redeclaring Maybe with a
        // differently-numbered variable fingerprints identically.
        let mut a_env = DataEnv::new();
        let v1 = Name::with_id("a", 1);
        a_env
            .declare(
                Ident::new("Maybe"),
                vec![v1.clone()],
                vec![
                    (Ident::new("Nothing"), vec![]),
                    (Ident::new("Just"), vec![Type::Var(v1)]),
                ],
            )
            .unwrap();
        let mut b_env = DataEnv::new();
        let v9 = Name::with_id("zz", 9_999);
        b_env
            .declare(
                Ident::new("Maybe"),
                vec![v9.clone()],
                vec![
                    (Ident::new("Nothing"), vec![]),
                    (Ident::new("Just"), vec![Type::Var(v9)]),
                ],
            )
            .unwrap();
        assert_eq!(a_env.fingerprint(), b_env.fingerprint());
    }

    #[test]
    fn step_variants_differ() {
        let env = DataEnv::prelude();
        assert_eq!(env.datatype(&Ident::new("Step")).unwrap().ctors.len(), 2);
        assert_eq!(env.datatype(&Ident::new("SStep")).unwrap().ctors.len(), 3);
    }
}
