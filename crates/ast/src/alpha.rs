//! α-equivalence of System F_J terms.
//!
//! The optimizer freshens binders aggressively, so "did this pass change
//! anything?" must be asked up to renaming of bound names; tests likewise
//! compare expected and actual optimizer output with [`alpha_eq`].

use crate::expr::{Expr, LetBind};
use crate::name::Name;
use crate::ty::Type;
use std::collections::HashMap;

/// Are two terms equal up to consistent renaming of bound term variables,
/// type variables, and join labels?
pub fn alpha_eq(a: &Expr, b: &Expr) -> bool {
    let mut env = Env::default();
    go(a, b, &mut env)
}

#[derive(Default)]
struct Env {
    /// left-name → right-name, for binders in scope (terms, tyvars, labels
    /// share the map: uniques never collide across namespaces in practice,
    /// and a mismatch in namespace makes the terms structurally unequal
    /// before the map is consulted).
    map: Vec<(Name, Name)>,
}

impl Env {
    fn push(&mut self, l: &Name, r: &Name) {
        self.map.push((l.clone(), r.clone()));
    }
    fn pop_n(&mut self, n: usize) {
        self.map.truncate(self.map.len() - n);
    }
    fn matches(&self, l: &Name, r: &Name) -> bool {
        for (a, b) in self.map.iter().rev() {
            if a == l || b == r {
                return a == l && b == r;
            }
        }
        l == r
    }
}

fn ty_eq(a: &Type, b: &Type, env: &mut Env) -> bool {
    match (a, b) {
        (Type::Var(x), Type::Var(y)) => env.matches(x, y),
        (Type::Con(c1, a1), Type::Con(c2, a2)) => {
            c1 == c2 && a1.len() == a2.len() && a1.iter().zip(a2).all(|(x, y)| ty_eq(x, y, env))
        }
        (Type::Fun(a1, r1), Type::Fun(a2, r2)) => ty_eq(a1, a2, env) && ty_eq(r1, r2, env),
        (Type::Forall(x, b1), Type::Forall(y, b2)) => {
            env.push(x, y);
            let ok = ty_eq(b1, b2, env);
            env.pop_n(1);
            ok
        }
        (Type::Int, Type::Int) => true,
        _ => false,
    }
}

#[allow(clippy::too_many_lines)]
fn go(a: &Expr, b: &Expr, env: &mut Env) -> bool {
    match (a, b) {
        (Expr::Var(x), Expr::Var(y)) => env.matches(x, y),
        (Expr::Lit(m), Expr::Lit(n)) => m == n,
        (Expr::Prim(o1, a1), Expr::Prim(o2, a2)) => {
            o1 == o2 && a1.len() == a2.len() && a1.iter().zip(a2).all(|(x, y)| go(x, y, env))
        }
        (Expr::Lam(b1, e1), Expr::Lam(b2, e2)) => {
            if !ty_eq(&b1.ty, &b2.ty, env) {
                return false;
            }
            env.push(&b1.name, &b2.name);
            let ok = go(e1, e2, env);
            env.pop_n(1);
            ok
        }
        (Expr::TyLam(a1, e1), Expr::TyLam(a2, e2)) => {
            env.push(a1, a2);
            let ok = go(e1, e2, env);
            env.pop_n(1);
            ok
        }
        (Expr::App(f1, x1), Expr::App(f2, x2)) => go(f1, f2, env) && go(x1, x2, env),
        (Expr::TyApp(f1, t1), Expr::TyApp(f2, t2)) => go(f1, f2, env) && ty_eq(t1, t2, env),
        (Expr::Con(c1, t1, e1), Expr::Con(c2, t2, e2)) => {
            c1 == c2
                && t1.len() == t2.len()
                && t1.iter().zip(t2).all(|(x, y)| ty_eq(x, y, env))
                && e1.len() == e2.len()
                && e1.iter().zip(e2).all(|(x, y)| go(x, y, env))
        }
        (Expr::Case(s1, alts1), Expr::Case(s2, alts2)) => {
            if !go(s1, s2, env) || alts1.len() != alts2.len() {
                return false;
            }
            alts1.iter().zip(alts2).all(|(x, y)| {
                if x.con != y.con || x.binders.len() != y.binders.len() {
                    return false;
                }
                for (bx, by) in x.binders.iter().zip(&y.binders) {
                    if !ty_eq(&bx.ty, &by.ty, env) {
                        return false;
                    }
                }
                for (bx, by) in x.binders.iter().zip(&y.binders) {
                    env.push(&bx.name, &by.name);
                }
                let ok = go(&x.rhs, &y.rhs, env);
                env.pop_n(x.binders.len());
                ok
            })
        }
        (Expr::Let(b1, e1), Expr::Let(b2, e2)) => match (b1, b2) {
            (LetBind::NonRec(x1, r1), LetBind::NonRec(x2, r2)) => {
                if !ty_eq(&x1.ty, &x2.ty, env) || !go(r1, r2, env) {
                    return false;
                }
                env.push(&x1.name, &x2.name);
                let ok = go(e1, e2, env);
                env.pop_n(1);
                ok
            }
            (LetBind::Rec(g1), LetBind::Rec(g2)) => {
                if g1.len() != g2.len() {
                    return false;
                }
                for ((x1, _), (x2, _)) in g1.iter().zip(g2) {
                    if !ty_eq(&x1.ty, &x2.ty, env) {
                        return false;
                    }
                    env.push(&x1.name, &x2.name);
                }
                let ok =
                    g1.iter().zip(g2).all(|((_, r1), (_, r2))| go(r1, r2, env)) && go(e1, e2, env);
                env.pop_n(g1.len());
                ok
            }
            _ => false,
        },
        (Expr::Join(j1, e1), Expr::Join(j2, e2)) => {
            let (d1, d2) = (j1.defs(), j2.defs());
            if j1.is_rec() != j2.is_rec() || d1.len() != d2.len() {
                return false;
            }
            let is_rec = j1.is_rec();
            if is_rec {
                for (a, b) in d1.iter().zip(d2) {
                    env.push(&a.name, &b.name);
                }
            }
            let mut ok = true;
            for (da, db) in d1.iter().zip(d2) {
                if da.ty_params.len() != db.ty_params.len() || da.params.len() != db.params.len() {
                    ok = false;
                    break;
                }
                let mut pushed = 0;
                for (ta, tb) in da.ty_params.iter().zip(&db.ty_params) {
                    env.push(ta, tb);
                    pushed += 1;
                }
                let tys_ok = da
                    .params
                    .iter()
                    .zip(&db.params)
                    .all(|(pa, pb)| ty_eq(&pa.ty, &pb.ty, env));
                for (pa, pb) in da.params.iter().zip(&db.params) {
                    env.push(&pa.name, &pb.name);
                    pushed += 1;
                }
                let body_ok = tys_ok && go(&da.body, &db.body, env);
                env.pop_n(pushed);
                if !body_ok {
                    ok = false;
                    break;
                }
            }
            if ok {
                if !is_rec {
                    for (a, b) in d1.iter().zip(d2) {
                        env.push(&a.name, &b.name);
                    }
                }
                ok = go(e1, e2, env);
                if !is_rec {
                    env.pop_n(d1.len());
                }
            }
            if is_rec {
                env.pop_n(d1.len());
            }
            ok
        }
        (Expr::Jump(x, t1, a1, r1), Expr::Jump(y, t2, a2, r2)) => {
            env.matches(x, y)
                && t1.len() == t2.len()
                && t1.iter().zip(t2).all(|(p, q)| ty_eq(p, q, env))
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(p, q)| go(p, q, env))
                && ty_eq(r1, r2, env)
        }
        _ => false,
    }
}

/// A canonical structural hash key that is invariant under α-renaming —
/// cheap fixpoint detection for optimizer rounds.
pub fn alpha_fingerprint(e: &Expr) -> u64 {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    let mut next = 0u64;
    let mut map: HashMap<Name, u64> = HashMap::new();
    fingerprint(e, &mut map, &mut next, &mut h);
    h.finish()
}

fn fp_name(
    n: &Name,
    map: &mut HashMap<Name, u64>,
    _next: &mut u64,
    h: &mut impl std::hash::Hasher,
) {
    use std::hash::Hash;
    match map.get(n) {
        Some(ix) => ix.hash(h),
        None => {
            // Free name: hash its identity.
            u64::MAX.hash(h);
            n.id().hash(h);
        }
    }
}

fn bind_name(n: &Name, map: &mut HashMap<Name, u64>, next: &mut u64) -> Option<u64> {
    let prev = map.insert(n.clone(), *next);
    *next += 1;
    prev
}

fn fp_ty(t: &Type, map: &mut HashMap<Name, u64>, next: &mut u64, h: &mut impl std::hash::Hasher) {
    use std::hash::Hash;
    match t {
        Type::Var(a) => {
            0u8.hash(h);
            fp_name(a, map, next, h);
        }
        Type::Con(c, args) => {
            1u8.hash(h);
            c.as_str().hash(h);
            for a in args {
                fp_ty(a, map, next, h);
            }
        }
        Type::Fun(a, b) => {
            2u8.hash(h);
            fp_ty(a, map, next, h);
            fp_ty(b, map, next, h);
        }
        Type::Forall(a, b) => {
            3u8.hash(h);
            let prev = bind_name(a, map, next);
            fp_ty(b, map, next, h);
            restore(a, prev, map);
        }
        Type::Int => 4u8.hash(h),
    }
}

fn restore(n: &Name, prev: Option<u64>, map: &mut HashMap<Name, u64>) {
    match prev {
        Some(v) => {
            map.insert(n.clone(), v);
        }
        None => {
            map.remove(n);
        }
    }
}

#[allow(clippy::too_many_lines)]
fn fingerprint(
    e: &Expr,
    map: &mut HashMap<Name, u64>,
    next: &mut u64,
    h: &mut impl std::hash::Hasher,
) {
    use std::hash::Hash;
    match e {
        Expr::Var(x) => {
            10u8.hash(h);
            fp_name(x, map, next, h);
        }
        Expr::Lit(n) => {
            11u8.hash(h);
            n.hash(h);
        }
        Expr::Prim(op, args) => {
            12u8.hash(h);
            op.hash(h);
            for a in args {
                fingerprint(a, map, next, h);
            }
        }
        Expr::Lam(b, body) => {
            13u8.hash(h);
            fp_ty(&b.ty, map, next, h);
            let prev = bind_name(&b.name, map, next);
            fingerprint(body, map, next, h);
            restore(&b.name, prev, map);
        }
        Expr::TyLam(a, body) => {
            14u8.hash(h);
            let prev = bind_name(a, map, next);
            fingerprint(body, map, next, h);
            restore(a, prev, map);
        }
        Expr::App(f, x) => {
            15u8.hash(h);
            fingerprint(f, map, next, h);
            fingerprint(x, map, next, h);
        }
        Expr::TyApp(f, t) => {
            16u8.hash(h);
            fingerprint(f, map, next, h);
            fp_ty(t, map, next, h);
        }
        Expr::Con(c, tys, args) => {
            17u8.hash(h);
            c.as_str().hash(h);
            for t in tys {
                fp_ty(t, map, next, h);
            }
            for a in args {
                fingerprint(a, map, next, h);
            }
        }
        Expr::Case(s, alts) => {
            18u8.hash(h);
            fingerprint(s, map, next, h);
            for alt in alts {
                match &alt.con {
                    crate::expr::AltCon::Con(c) => {
                        0u8.hash(h);
                        c.as_str().hash(h);
                    }
                    crate::expr::AltCon::Lit(n) => {
                        1u8.hash(h);
                        n.hash(h);
                    }
                    crate::expr::AltCon::Default => 2u8.hash(h),
                }
                let prevs: Vec<_> = alt
                    .binders
                    .iter()
                    .map(|b| {
                        fp_ty(&b.ty, map, next, h);
                        (b.name.clone(), bind_name(&b.name, map, next))
                    })
                    .collect();
                fingerprint(&alt.rhs, map, next, h);
                for (n, prev) in prevs.into_iter().rev() {
                    restore(&n, prev, map);
                }
            }
        }
        Expr::Let(bind, body) => {
            19u8.hash(h);
            match bind {
                LetBind::NonRec(b, rhs) => {
                    fp_ty(&b.ty, map, next, h);
                    fingerprint(rhs, map, next, h);
                    let prev = bind_name(&b.name, map, next);
                    fingerprint(body, map, next, h);
                    restore(&b.name, prev, map);
                }
                LetBind::Rec(binds) => {
                    let prevs: Vec<_> = binds
                        .iter()
                        .map(|(b, _)| {
                            fp_ty(&b.ty, map, next, h);
                            (b.name.clone(), bind_name(&b.name, map, next))
                        })
                        .collect();
                    for (_, rhs) in binds {
                        fingerprint(rhs, map, next, h);
                    }
                    fingerprint(body, map, next, h);
                    for (n, prev) in prevs.into_iter().rev() {
                        restore(&n, prev, map);
                    }
                }
            }
        }
        Expr::Join(jb, body) => {
            20u8.hash(h);
            jb.is_rec().hash(h);
            let is_rec = jb.is_rec();
            let label_prevs: Vec<_> = if is_rec {
                jb.defs()
                    .iter()
                    .map(|d| (d.name.clone(), bind_name(&d.name, map, next)))
                    .collect()
            } else {
                Vec::new()
            };
            for d in jb.defs() {
                let mut prevs: Vec<(Name, Option<u64>)> = Vec::new();
                for a in &d.ty_params {
                    prevs.push((a.clone(), bind_name(a, map, next)));
                }
                for p in &d.params {
                    fp_ty(&p.ty, map, next, h);
                    prevs.push((p.name.clone(), bind_name(&p.name, map, next)));
                }
                fingerprint(&d.body, map, next, h);
                for (n, prev) in prevs.into_iter().rev() {
                    restore(&n, prev, map);
                }
            }
            let body_prevs: Vec<_> = if is_rec {
                Vec::new()
            } else {
                jb.defs()
                    .iter()
                    .map(|d| (d.name.clone(), bind_name(&d.name, map, next)))
                    .collect()
            };
            fingerprint(body, map, next, h);
            for (n, prev) in body_prevs.into_iter().rev() {
                restore(&n, prev, map);
            }
            for (n, prev) in label_prevs.into_iter().rev() {
                restore(&n, prev, map);
            }
        }
        Expr::Jump(j, tys, args, res) => {
            21u8.hash(h);
            fp_name(j, map, next, h);
            for t in tys {
                fp_ty(t, map, next, h);
            }
            for a in args {
                fingerprint(a, map, next, h);
            }
            fp_ty(res, map, next, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Binder, PrimOp};
    use crate::name::NameSupply;
    use crate::subst::freshen;

    #[test]
    fn alpha_eq_after_freshen() {
        let mut s = NameSupply::new();
        let x = s.fresh("x");
        let e = Expr::lam(
            Binder::new(x.clone(), Type::Int),
            Expr::prim2(PrimOp::Add, Expr::var(&x), Expr::Lit(1)),
        );
        let f = freshen(&e, &mut s);
        assert_ne!(e, f, "freshen must rename");
        assert!(alpha_eq(&e, &f));
        assert_eq!(alpha_fingerprint(&e), alpha_fingerprint(&f));
    }

    #[test]
    fn different_structure_not_equal() {
        let a = Expr::Lit(1);
        let b = Expr::Lit(2);
        assert!(!alpha_eq(&a, &b));
        assert_ne!(alpha_fingerprint(&a), alpha_fingerprint(&b));
    }

    #[test]
    fn free_vars_must_match_exactly() {
        let mut s = NameSupply::new();
        let x = s.fresh("x");
        let y = s.fresh("y");
        assert!(!alpha_eq(&Expr::var(&x), &Expr::var(&y)));
        assert!(alpha_eq(&Expr::var(&x), &Expr::var(&x)));
    }

    #[test]
    fn binder_types_matter() {
        let mut s = NameSupply::new();
        let x = s.fresh("x");
        let e1 = Expr::lam(Binder::new(x.clone(), Type::Int), Expr::Lit(0));
        let e2 = Expr::lam(Binder::new(x, Type::bool()), Expr::Lit(0));
        assert!(!alpha_eq(&e1, &e2));
    }

    /// The exact shape `fj serve` introduces: a term is built (and its
    /// `Ident`s interned) on one thread, then compared, fingerprinted, and
    /// substituted into on another. Every `Ident` crossing the boundary
    /// misses the pointer fast path, so this pins the text-comparison
    /// fallback end to end: alpha-equivalence, fingerprints, and
    /// substitution must all be thread-blind.
    #[test]
    fn alpha_and_subst_are_thread_blind() {
        use crate::expr::PrimOp;
        use crate::subst::subst_term;

        // Constructor applications force `Ident` comparisons (`Just`,
        // `Nothing` against the case alternatives), not just `Name`s.
        let build = |supply: &mut NameSupply| {
            let x = supply.fresh("x");
            let scrut = Expr::Con(
                crate::name::Ident::new("Just"),
                vec![Type::Int],
                vec![Expr::var(&x)],
            );
            Expr::lam(
                Binder::new(x, Type::Int),
                Expr::Case(
                    std::sync::Arc::new(scrut),
                    vec![
                        crate::expr::Alt {
                            con: crate::expr::AltCon::Con(crate::name::Ident::new("Nothing")),
                            binders: vec![],
                            rhs: Expr::Lit(0),
                        },
                        crate::expr::Alt {
                            con: crate::expr::AltCon::Con(crate::name::Ident::new("Just")),
                            binders: vec![Binder::new(Name::with_id("y", 99_999), Type::Int)],
                            rhs: Expr::prim2(
                                PrimOp::Add,
                                Expr::var(&Name::with_id("y", 99_999)),
                                Expr::Lit(1),
                            ),
                        },
                    ],
                ),
            )
        };
        let local = build(&mut NameSupply::new());
        let (remote, remote_fp) = std::thread::spawn(move || {
            let e = build(&mut NameSupply::new());
            let fp = alpha_fingerprint(&e);
            (e, fp)
        })
        .join()
        .unwrap();
        assert!(alpha_eq(&local, &remote), "cross-thread alpha_eq broke");
        assert_eq!(
            alpha_fingerprint(&local),
            remote_fp,
            "alpha_fingerprint differs across threads"
        );
        // Substitute into the remote-built term on this thread: binder
        // handling (freshening included) must not depend on which
        // interner minted the names.
        let mut s = NameSupply::starting_at(200_000);
        let free = Name::with_id("free", 150_000);
        let body = Expr::app(remote, Expr::var(&free));
        let substituted = subst_term(&body, &free, &Expr::Lit(42), &mut s);
        let expected = {
            let l = build(&mut NameSupply::new());
            Expr::app(l, Expr::Lit(42))
        };
        assert!(
            alpha_eq(&substituted, &expected),
            "cross-thread substitution produced a different term"
        );
    }

    #[test]
    fn join_alpha_eq_with_renamed_label() {
        let mut s = NameSupply::new();
        let mk = |s: &mut NameSupply| {
            let j = s.fresh("j");
            Expr::join1(
                crate::expr::JoinDef {
                    name: j.clone(),
                    ty_params: vec![],
                    params: vec![],
                    body: Expr::Lit(1),
                },
                Expr::jump(&j, vec![], vec![], Type::Int),
            )
        };
        let a = mk(&mut s);
        let b = mk(&mut s);
        assert!(alpha_eq(&a, &b));
        assert_eq!(alpha_fingerprint(&a), alpha_fingerprint(&b));
    }
}
