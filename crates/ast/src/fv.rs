//! Free-variable analyses: term variables, type variables, and join labels.
//!
//! The contification analysis (paper Sec. 4) is "essentially a free-variable
//! analysis"; these sets are its raw material, and the scoping side
//! conditions of the rewrite axioms (`drop`, `float`, …) are phrased in
//! terms of them.

use crate::expr::{Expr, LetBind};
use crate::name::Name;
use std::collections::HashSet;

/// Free *term* variables of an expression (join labels excluded).
pub fn free_vars(e: &Expr) -> HashSet<Name> {
    let mut out = HashSet::new();
    vars_into(e, &mut HashSet::new(), &mut out);
    out
}

/// Free *join labels* of an expression.
pub fn free_labels(e: &Expr) -> HashSet<Name> {
    let mut out = HashSet::new();
    labels_into(e, &mut HashSet::new(), &mut out);
    out
}

/// Free *type* variables of an expression (from types embedded in it).
pub fn free_ty_vars(e: &Expr) -> HashSet<Name> {
    let mut out = HashSet::new();
    ty_vars_into(e, &mut Vec::new(), &mut out);
    out
}

/// Does `x` occur free (as a term variable) in `e`?
pub fn occurs_free(x: &Name, e: &Expr) -> bool {
    mentions_any(e, std::slice::from_ref(x))
}

/// Does any of `names` occur (as a term-variable reference) anywhere in
/// `e`?
///
/// Under the optimizer's globally-unique-binders invariant an occurrence
/// of a name in `names` can only ever refer to the binder the caller has
/// in hand — no inner binder can shadow it — so a short-circuiting scan
/// for `Var` nodes replaces building the full free-variable set per
/// query. (On arbitrary shadowed terms this is a conservative
/// over-approximation of "occurs free": it may say `true` for a
/// shadowed, bound occurrence, never `false` for a free one.)
pub fn mentions_any(e: &Expr, names: &[Name]) -> bool {
    match e {
        Expr::Var(x) => names.contains(x),
        Expr::Lit(_) => false,
        Expr::Prim(_, args) | Expr::Con(_, _, args) | Expr::Jump(_, _, args, _) => {
            args.iter().any(|a| mentions_any(a, names))
        }
        Expr::Lam(_, body) | Expr::TyLam(_, body) => mentions_any(body, names),
        Expr::App(f, a) => mentions_any(f, names) || mentions_any(a, names),
        Expr::TyApp(f, _) => mentions_any(f, names),
        Expr::Case(s, alts) => {
            mentions_any(s, names) || alts.iter().any(|alt| mentions_any(&alt.rhs, names))
        }
        Expr::Let(bind, body) => {
            let in_rhs = match bind {
                LetBind::NonRec(_, rhs) => mentions_any(rhs, names),
                LetBind::Rec(binds) => binds.iter().any(|(_, rhs)| mentions_any(rhs, names)),
            };
            in_rhs || mentions_any(body, names)
        }
        Expr::Join(jb, body) => {
            jb.defs().iter().any(|d| mentions_any(&d.body, names)) || mentions_any(body, names)
        }
    }
}

/// Does a jump targeting `label` occur anywhere in `e`?
///
/// The same unique-binders shortcut as [`mentions_any`], for the label
/// namespace: no inner join can rebind `label`, so a short-circuiting scan
/// for `Jump` nodes replaces building the full free-label set per query.
/// (On arbitrary shadowed terms this over-approximates "occurs free",
/// never under-approximates.)
pub fn mentions_label(e: &Expr, label: &Name) -> bool {
    match e {
        Expr::Var(_) | Expr::Lit(_) => false,
        Expr::Prim(_, args) | Expr::Con(_, _, args) => {
            args.iter().any(|a| mentions_label(a, label))
        }
        Expr::Lam(_, body) | Expr::TyLam(_, body) => mentions_label(body, label),
        Expr::App(f, a) => mentions_label(f, label) || mentions_label(a, label),
        Expr::TyApp(f, _) => mentions_label(f, label),
        Expr::Case(s, alts) => {
            mentions_label(s, label) || alts.iter().any(|alt| mentions_label(&alt.rhs, label))
        }
        Expr::Let(bind, body) => {
            let in_rhs = match bind {
                LetBind::NonRec(_, rhs) => mentions_label(rhs, label),
                LetBind::Rec(binds) => binds.iter().any(|(_, rhs)| mentions_label(rhs, label)),
            };
            in_rhs || mentions_label(body, label)
        }
        Expr::Join(jb, body) => {
            jb.defs().iter().any(|d| mentions_label(&d.body, label)) || mentions_label(body, label)
        }
        Expr::Jump(j, _, args, _) => j == label || args.iter().any(|a| mentions_label(a, label)),
    }
}

fn vars_into(e: &Expr, bound: &mut HashSet<Name>, out: &mut HashSet<Name>) {
    match e {
        Expr::Var(x) => {
            if !bound.contains(x) {
                out.insert(x.clone());
            }
        }
        Expr::Lit(_) => {}
        Expr::Prim(_, args) | Expr::Con(_, _, args) => {
            for a in args {
                vars_into(a, bound, out);
            }
        }
        Expr::Lam(b, body) => {
            let added = bound.insert(b.name.clone());
            vars_into(body, bound, out);
            if added {
                bound.remove(&b.name);
            }
        }
        Expr::TyLam(_, body) => vars_into(body, bound, out),
        Expr::App(f, a) => {
            vars_into(f, bound, out);
            vars_into(a, bound, out);
        }
        Expr::TyApp(f, _) => vars_into(f, bound, out),
        Expr::Case(s, alts) => {
            vars_into(s, bound, out);
            for alt in alts {
                let added: Vec<bool> = alt
                    .binders
                    .iter()
                    .map(|b| bound.insert(b.name.clone()))
                    .collect();
                vars_into(&alt.rhs, bound, out);
                for (b, was_added) in alt.binders.iter().zip(added) {
                    if was_added {
                        bound.remove(&b.name);
                    }
                }
            }
        }
        Expr::Let(bind, body) => match bind {
            LetBind::NonRec(b, rhs) => {
                vars_into(rhs, bound, out);
                let added = bound.insert(b.name.clone());
                vars_into(body, bound, out);
                if added {
                    bound.remove(&b.name);
                }
            }
            LetBind::Rec(binds) => {
                let added: Vec<bool> = binds
                    .iter()
                    .map(|(b, _)| bound.insert(b.name.clone()))
                    .collect();
                for (_, rhs) in binds {
                    vars_into(rhs, bound, out);
                }
                vars_into(body, bound, out);
                for ((b, _), was_added) in binds.iter().zip(added) {
                    if was_added {
                        bound.remove(&b.name);
                    }
                }
            }
        },
        Expr::Join(jb, body) => {
            // Labels live in a separate namespace (Δ vs Γ); join parameters
            // bind term variables within each definition's body only.
            for d in jb.defs() {
                let added: Vec<bool> = d
                    .params
                    .iter()
                    .map(|b| bound.insert(b.name.clone()))
                    .collect();
                vars_into(&d.body, bound, out);
                for (b, was_added) in d.params.iter().zip(added) {
                    if was_added {
                        bound.remove(&b.name);
                    }
                }
            }
            vars_into(body, bound, out);
        }
        Expr::Jump(_, _, args, _) => {
            for a in args {
                vars_into(a, bound, out);
            }
        }
    }
}

fn labels_into(e: &Expr, bound: &mut HashSet<Name>, out: &mut HashSet<Name>) {
    match e {
        Expr::Var(_) | Expr::Lit(_) => {}
        Expr::Prim(_, args) | Expr::Con(_, _, args) => {
            for a in args {
                labels_into(a, bound, out);
            }
        }
        Expr::Lam(_, body) | Expr::TyLam(_, body) => labels_into(body, bound, out),
        Expr::App(f, a) => {
            labels_into(f, bound, out);
            labels_into(a, bound, out);
        }
        Expr::TyApp(f, _) => labels_into(f, bound, out),
        Expr::Case(s, alts) => {
            labels_into(s, bound, out);
            for alt in alts {
                labels_into(&alt.rhs, bound, out);
            }
        }
        Expr::Let(bind, body) => {
            for (_, rhs) in bind.pairs() {
                labels_into(rhs, bound, out);
            }
            labels_into(body, bound, out);
        }
        Expr::Join(jb, body) => {
            let is_rec = jb.is_rec();
            let labels: Vec<Name> = jb.labels().into_iter().cloned().collect();
            if is_rec {
                let added: Vec<bool> = labels.iter().map(|l| bound.insert(l.clone())).collect();
                for d in jb.defs() {
                    labels_into(&d.body, bound, out);
                }
                labels_into(body, bound, out);
                for (l, was_added) in labels.iter().zip(added) {
                    if was_added {
                        bound.remove(l);
                    }
                }
            } else {
                for d in jb.defs() {
                    labels_into(&d.body, bound, out);
                }
                let added: Vec<bool> = labels.iter().map(|l| bound.insert(l.clone())).collect();
                labels_into(body, bound, out);
                for (l, was_added) in labels.iter().zip(added) {
                    if was_added {
                        bound.remove(l);
                    }
                }
            }
        }
        Expr::Jump(j, _, args, _) => {
            if !bound.contains(j) {
                out.insert(j.clone());
            }
            for a in args {
                labels_into(a, bound, out);
            }
        }
    }
}

fn ty_vars_into(e: &Expr, bound: &mut Vec<Name>, out: &mut HashSet<Name>) {
    let add_ty = |t: &crate::ty::Type, bound: &mut Vec<Name>, out: &mut HashSet<Name>| {
        let mut fv = Vec::new();
        t.free_vars_into(bound, &mut fv);
        out.extend(fv);
    };
    match e {
        Expr::Var(_) | Expr::Lit(_) => {}
        Expr::Prim(_, args) => {
            for a in args {
                ty_vars_into(a, bound, out);
            }
        }
        Expr::Lam(b, body) => {
            add_ty(&b.ty, bound, out);
            ty_vars_into(body, bound, out);
        }
        Expr::TyLam(a, body) => {
            bound.push(a.clone());
            ty_vars_into(body, bound, out);
            bound.pop();
        }
        Expr::App(f, a) => {
            ty_vars_into(f, bound, out);
            ty_vars_into(a, bound, out);
        }
        Expr::TyApp(f, t) => {
            ty_vars_into(f, bound, out);
            add_ty(t, bound, out);
        }
        Expr::Con(_, tys, args) => {
            for t in tys {
                add_ty(t, bound, out);
            }
            for a in args {
                ty_vars_into(a, bound, out);
            }
        }
        Expr::Case(s, alts) => {
            ty_vars_into(s, bound, out);
            for alt in alts {
                for b in &alt.binders {
                    add_ty(&b.ty, bound, out);
                }
                ty_vars_into(&alt.rhs, bound, out);
            }
        }
        Expr::Let(bind, body) => {
            for (b, rhs) in bind.pairs() {
                add_ty(&b.ty, bound, out);
                ty_vars_into(rhs, bound, out);
            }
            ty_vars_into(body, bound, out);
        }
        Expr::Join(jb, body) => {
            for d in jb.defs() {
                let n = d.ty_params.len();
                bound.extend(d.ty_params.iter().cloned());
                for p in &d.params {
                    add_ty(&p.ty, bound, out);
                }
                ty_vars_into(&d.body, bound, out);
                bound.truncate(bound.len() - n);
            }
            ty_vars_into(body, bound, out);
        }
        Expr::Jump(_, tys, args, res) => {
            for t in tys {
                add_ty(t, bound, out);
            }
            for a in args {
                ty_vars_into(a, bound, out);
            }
            add_ty(res, bound, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Binder, JoinDef};
    use crate::name::NameSupply;
    use crate::ty::Type;

    #[test]
    fn lambda_binds() {
        let mut s = NameSupply::new();
        let x = s.fresh("x");
        let y = s.fresh("y");
        let e = Expr::lam(
            Binder::new(x.clone(), Type::Int),
            Expr::app(Expr::var(&x), Expr::var(&y)),
        );
        let fv = free_vars(&e);
        assert!(!fv.contains(&x));
        assert!(fv.contains(&y));
    }

    #[test]
    fn letrec_binds_in_rhs() {
        let mut s = NameSupply::new();
        let f = s.fresh("f");
        let e = Expr::letrec(
            vec![(
                Binder::new(f.clone(), Type::fun(Type::Int, Type::Int)),
                Expr::var(&f),
            )],
            Expr::var(&f),
        );
        assert!(free_vars(&e).is_empty());
    }

    #[test]
    fn join_labels_are_separate_namespace() {
        let mut s = NameSupply::new();
        let j = s.fresh("j");
        let x = s.fresh("x");
        let e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![Binder::new(x.clone(), Type::Int)],
                body: Expr::var(&x),
            },
            Expr::jump(&j, vec![], vec![Expr::Lit(1)], Type::Int),
        );
        assert!(free_labels(&e).is_empty());
        assert!(free_vars(&e).is_empty());
    }

    #[test]
    fn nonrec_join_body_label_escapes_rhs() {
        // join j x = jump j2 ... in ...: j2 is free; j is not free in body.
        let mut s = NameSupply::new();
        let j = s.fresh("j");
        let j2 = s.fresh("j2");
        let e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![],
                body: Expr::jump(&j2, vec![], vec![], Type::Int),
            },
            Expr::jump(&j, vec![], vec![], Type::Int),
        );
        let labels = free_labels(&e);
        assert!(labels.contains(&j2));
        assert!(!labels.contains(&j));
    }

    #[test]
    fn nonrec_join_is_not_self_scoped() {
        // join j = jump j ... in 0: the inner jump's j is FREE (non-recursive join).
        let mut s = NameSupply::new();
        let j = s.fresh("j");
        let e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![],
                body: Expr::jump(&j, vec![], vec![], Type::Int),
            },
            Expr::Lit(0),
        );
        assert!(free_labels(&e).contains(&j));
    }

    #[test]
    fn rec_join_is_self_scoped() {
        let mut s = NameSupply::new();
        let j = s.fresh("j");
        let e = Expr::joinrec(
            vec![JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![],
                body: Expr::jump(&j, vec![], vec![], Type::Int),
            }],
            Expr::jump(&j, vec![], vec![], Type::Int),
        );
        assert!(free_labels(&e).is_empty());
    }

    #[test]
    fn ty_vars_under_tylam() {
        let mut s = NameSupply::new();
        let a = s.fresh("a");
        let b = s.fresh("b");
        let x = s.fresh("x");
        let e = Expr::ty_lam(
            a.clone(),
            Expr::lam(
                Binder::new(x, Type::fun(Type::Var(a.clone()), Type::Var(b.clone()))),
                Expr::Lit(0),
            ),
        );
        let fv = free_ty_vars(&e);
        assert!(!fv.contains(&a));
        assert!(fv.contains(&b));
    }

    #[test]
    fn shadowing_same_name() {
        // \x. (\x. x) x : outer x free only via the final application arg.
        let mut s = NameSupply::new();
        let x = s.fresh("x");
        let inner = Expr::lam(Binder::new(x.clone(), Type::Int), Expr::var(&x));
        let e = Expr::app(inner, Expr::var(&x));
        let fv = free_vars(&e);
        assert!(fv.contains(&x));
    }
}
