//! Names and fresh-name supplies.
//!
//! System F_J is an explicitly scoped calculus; every binder introduces a
//! [`Name`]. Following GHC, a name is a human-readable base string paired
//! with a machine *unique*. Two names are equal exactly when their uniques
//! are equal — the text exists only for printing. Transformations that need
//! fresh binders draw them from a [`NameSupply`].

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

thread_local! {
    /// Per-thread string interner shared by [`Name`] base texts and
    /// [`Ident`] spellings. Repeated spellings ("x", "True", "go", …)
    /// share one allocation instead of copying the bytes at every
    /// construction site, and shared pointers give [`Ident`] equality a
    /// pointer fast path.
    ///
    /// The interner is **per thread**, so two `Ident`s with the same
    /// spelling share an allocation only when created on the same thread.
    /// Terms routinely cross threads (the `par_map` batch driver, guard
    /// worker threads, `fj serve` request handlers), so *nothing may rely
    /// on pointer identity for correctness*: `Ident` equality uses
    /// `Arc::ptr_eq` strictly as a fast path and always falls back to a
    /// text comparison, and `Hash` hashes the spelling, never the pointer.
    /// The cross-thread tests below pin this guarantee.
    static INTERN: RefCell<HashSet<Arc<str>>> = RefCell::new(HashSet::new());
}

fn intern(text: &str) -> Arc<str> {
    INTERN.with(|table| {
        let mut table = table.borrow_mut();
        match table.get(text) {
            Some(shared) => Arc::clone(shared),
            None => {
                let shared: Arc<str> = Arc::from(text);
                table.insert(Arc::clone(&shared));
                shared
            }
        }
    })
}

/// A term variable, type variable, or join-point label.
///
/// Equality, ordering and hashing are by unique id only; the textual base is
/// carried along for display. Cloning is cheap (`Arc<str>` + `u64`).
///
/// ```
/// use fj_ast::{Name, NameSupply};
/// let mut supply = NameSupply::new();
/// let x = supply.fresh("x");
/// let y = supply.fresh("x");
/// assert_ne!(x, y); // same text, different uniques
/// ```
#[derive(Clone)]
pub struct Name {
    text: Arc<str>,
    id: u64,
}

impl Name {
    /// Create a name with an explicit unique. Prefer [`NameSupply::fresh`];
    /// this constructor exists for deterministic prelude/builtin names.
    pub fn with_id(text: &str, id: u64) -> Self {
        Name {
            text: intern(text),
            id,
        }
    }

    /// The human-readable base string.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The unique id that defines this name's identity.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for Name {}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Name {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.id.cmp(&other.id)
    }
}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_{}", self.text, self.id)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A monotonically increasing source of fresh [`Name`]s.
///
/// Program-level supplies start at a large offset so they never collide with
/// the reserved ids used by the prelude datatype environment.
#[derive(Debug, Clone)]
pub struct NameSupply {
    next: u64,
}

/// First unique handed out by [`NameSupply::new`]. Ids below this value are
/// reserved for builtins (prelude type variables and wired-in names).
pub const FIRST_PROGRAM_ID: u64 = 10_000;

impl NameSupply {
    /// A supply whose names never collide with prelude/builtin names.
    pub fn new() -> Self {
        NameSupply {
            next: FIRST_PROGRAM_ID,
        }
    }

    /// A supply starting at an explicit id (used internally by the prelude).
    pub fn starting_at(next: u64) -> Self {
        NameSupply { next }
    }

    /// Produce a fresh name with the given base text.
    pub fn fresh(&mut self, text: &str) -> Name {
        let id = self.next;
        self.next += 1;
        Name {
            text: intern(text),
            id,
        }
    }

    /// Produce a fresh name reusing another name's base text.
    ///
    /// The base text is aliased, not copied — this runs on the machine's
    /// hot path (every heap binding renames its binder), so it must not
    /// allocate for the string.
    pub fn fresh_like(&mut self, like: &Name) -> Name {
        let id = self.next;
        self.next += 1;
        Name {
            text: Arc::clone(&like.text),
            id,
        }
    }

    /// The next id this supply would hand out (for diagnostics).
    pub fn peek(&self) -> u64 {
        self.next
    }

    /// Advance the supply so it will never hand out an id below `id`.
    ///
    /// Used when a term produced under *another* supply is adopted (e.g. a
    /// hit in the optimization cache returns a term optimized for an
    /// earlier request): advancing past that supply's high-water mark
    /// guarantees the adopter's future fresh names cannot collide with any
    /// name inside the adopted term.
    pub fn advance_past(&mut self, id: u64) {
        self.next = self.next.max(id);
    }
}

impl Default for NameSupply {
    fn default() -> Self {
        Self::new()
    }
}

/// A global identifier that is matched *by spelling*: data constructor and
/// type constructor names (`Just`, `Maybe`, …).
///
/// Unlike [`Name`]s these are never α-renamed; they are keys into the
/// [`DataEnv`](crate::DataEnv).
#[derive(Clone)]
pub struct Ident(Arc<str>);

impl Ident {
    /// Create an identifier from its spelling. Spellings are interned, so
    /// repeated construction is allocation-free and equality between
    /// interned identifiers is a pointer comparison.
    pub fn new(text: &str) -> Self {
        Ident(intern(text))
    }

    /// The spelling.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Ident {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}
impl Eq for Ident {}

impl std::hash::Hash for Ident {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl PartialOrd for Ident {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ident {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident::new(s)
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fresh_names_are_distinct() {
        let mut s = NameSupply::new();
        let names: Vec<Name> = (0..100).map(|_| s.fresh("v")).collect();
        let set: HashSet<&Name> = names.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn name_equality_ignores_text() {
        let a = Name::with_id("foo", 7);
        let b = Name::with_id("bar", 7);
        assert_eq!(a, b);
    }

    #[test]
    fn program_supply_avoids_reserved_range() {
        let mut s = NameSupply::new();
        assert!(s.fresh("x").id() >= FIRST_PROGRAM_ID);
    }

    #[test]
    fn fresh_like_keeps_text() {
        let mut s = NameSupply::new();
        let x = s.fresh("loop");
        let y = s.fresh_like(&x);
        assert_eq!(y.text(), "loop");
        assert_ne!(x, y);
    }

    #[test]
    fn interning_shares_storage() {
        let a = Ident::new("Just");
        let b = Ident::new("Just");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        let mut s = NameSupply::new();
        let x = s.fresh("loop");
        let y = s.fresh_like(&x);
        assert!(Arc::ptr_eq(&x.text, &y.text));
    }

    #[test]
    fn ident_round_trip() {
        let i = Ident::new("Just");
        assert_eq!(i.as_str(), "Just");
        assert_eq!(i, Ident::from("Just"));
        assert_eq!(i.to_string(), "Just");
    }

    #[test]
    fn names_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Name>();
        assert_send_sync::<Ident>();
    }

    /// An `Ident` minted on another thread comes from a different
    /// interner instance, so the pointer fast path misses; equality and
    /// hashing must still agree with a same-thread `Ident`.
    #[test]
    fn ident_equality_and_hashing_cross_thread() {
        let remote: Vec<Ident> =
            std::thread::spawn(|| vec![Ident::new("Just"), Ident::new("Cons"), Ident::new("Just")])
                .join()
                .unwrap();
        let local = Ident::new("Just");
        // Different interners: no shared allocation…
        assert!(!Arc::ptr_eq(&remote[0].0, &local.0));
        // …but equality, ordering, and hash-based lookup are unaffected.
        assert_eq!(remote[0], local);
        assert_eq!(remote[0].cmp(&local), std::cmp::Ordering::Equal);
        assert_ne!(remote[1], local);
        let mut table: std::collections::HashMap<Ident, u32> = std::collections::HashMap::new();
        table.insert(local, 7);
        assert_eq!(table.get(&remote[0]), Some(&7));
        assert_eq!(table.get(&remote[2]), Some(&7));
        assert_eq!(table.get(&remote[1]), None);
    }

    /// `Name` equality is by unique id; the interned text is display-only.
    /// A name that crosses a thread boundary must keep behaving as the
    /// same binder even though its text `Arc` has no twin in the new
    /// thread's interner.
    #[test]
    fn name_identity_survives_thread_crossing() {
        let mut s = NameSupply::new();
        let x = s.fresh("x");
        let sent = x.clone();
        let back = std::thread::spawn(move || {
            // Rebuild a same-id name on the remote thread (fresh interner)
            // and hand both home.
            (sent.clone(), Name::with_id("x", sent.id()))
        })
        .join()
        .unwrap();
        assert_eq!(back.0, x);
        assert_eq!(back.1, x);
        assert_eq!(back.1.text(), x.text());
        let mut set = HashSet::new();
        set.insert(x);
        assert!(set.contains(&back.0));
        assert!(set.contains(&back.1));
    }

    #[test]
    fn advance_past_never_rewinds() {
        let mut s = NameSupply::new();
        let before = s.peek();
        s.advance_past(before - 1);
        assert_eq!(s.peek(), before, "advance_past must not rewind");
        s.advance_past(before + 500);
        assert_eq!(s.peek(), before + 500);
        assert_eq!(s.fresh("z").id(), before + 500);
    }
}
