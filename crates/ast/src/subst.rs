//! Capture-avoiding substitution.
//!
//! The optimizer maintains the *globally unique binders* invariant: every
//! binder in a term has a distinct unique. [`Subst`] preserves that
//! invariant the simple, robust way — it freshens **every** binder it
//! passes, extending the substitution with the renamings. Capture is then
//! impossible by construction, and inlining the same right-hand side twice
//! yields disjoint binder sets.
//!
//! The traversal extends its three maps in place and restores the
//! displaced entries on scope exit, rather than cloning the maps at every
//! binder: substitution sits on the simplifier's inner loop, and the
//! clone-per-binder version was quadratic in binding depth. Saving the
//! displaced entry keeps the mutate-and-restore correct even for shadowed
//! (non-unique) input terms.

use crate::expr::{Alt, Binder, Expr, JoinBind, JoinDef, LetBind};
use crate::fxhash::FxHashMap;
use crate::name::{Name, NameSupply};
use crate::ty::Type;

type TermMap = FxHashMap<Name, Expr>;
type TyMap = FxHashMap<Name, Type>;
type LabelMap = FxHashMap<Name, Name>;

/// A displaced map entry, reinstated when its binder's scope ends.
type Saved<V> = (Name, Option<V>);

/// A simultaneous substitution of terms for term variables, types for type
/// variables, and labels for labels, applied with full binder freshening.
#[derive(Debug)]
pub struct Subst<'s> {
    supply: &'s mut NameSupply,
    term: TermMap,
    ty: TyMap,
    label: LabelMap,
}

/// Binding scopes are shallow (a handful of binders); substitutions are
/// small. Pre-sizing to this keeps the common case allocation-free after
/// the first rehash.
const MAP_CAPACITY: usize = 16;

impl<'s> Subst<'s> {
    /// An identity substitution (still freshens binders when applied).
    pub fn new(supply: &'s mut NameSupply) -> Self {
        Subst {
            supply,
            term: TermMap::with_capacity_and_hasher(MAP_CAPACITY, Default::default()),
            ty: TyMap::default(),
            label: LabelMap::default(),
        }
    }

    /// Map term variable `x` to expression `e`.
    pub fn bind_term(mut self, x: Name, e: Expr) -> Self {
        self.term.insert(x, e);
        self
    }

    /// Map type variable `a` to type `t`.
    pub fn bind_ty(mut self, a: Name, t: Type) -> Self {
        self.ty.insert(a, t);
        self
    }

    /// Map label `j` to label `k`.
    pub fn bind_label(mut self, j: Name, k: Name) -> Self {
        self.label.insert(j, k);
        self
    }

    /// Apply the substitution, freshening every binder along the way.
    pub fn apply(mut self, e: &Expr) -> Expr {
        let mut term = std::mem::take(&mut self.term);
        let mut ty = std::mem::take(&mut self.ty);
        let mut label = std::mem::take(&mut self.label);
        go(self.supply, &mut term, &mut ty, &mut label, e)
    }
}

fn apply_ty(ty_map: &TyMap, t: &Type) -> Type {
    t.subst(ty_map)
}

/// Insert a fresh renaming for `b`, recording what it displaced.
fn fresh_binder(
    supply: &mut NameSupply,
    term: &mut TermMap,
    ty_map: &TyMap,
    b: &Binder,
    saves: &mut Vec<Saved<Expr>>,
) -> Binder {
    let new = supply.fresh_like(&b.name);
    let old = term.insert(b.name.clone(), Expr::Var(new.clone()));
    saves.push((b.name.clone(), old));
    Binder::new(new, apply_ty(ty_map, &b.ty))
}

/// Undo a batch of scoped insertions, newest first.
fn restore<V>(map: &mut FxHashMap<Name, V>, saves: Vec<Saved<V>>) {
    for (k, old) in saves.into_iter().rev() {
        match old {
            Some(v) => {
                map.insert(k, v);
            }
            None => {
                map.remove(&k);
            }
        }
    }
}

#[allow(clippy::too_many_lines)]
fn go(
    supply: &mut NameSupply,
    term: &mut TermMap,
    ty_map: &mut TyMap,
    label: &mut LabelMap,
    e: &Expr,
) -> Expr {
    match e {
        Expr::Var(x) => term.get(x).cloned().unwrap_or_else(|| e.clone()),
        Expr::Lit(_) => e.clone(),
        Expr::Prim(op, args) => Expr::Prim(
            *op,
            args.iter()
                .map(|a| go(supply, term, ty_map, label, a))
                .collect(),
        ),
        Expr::Lam(b, body) => {
            let mut saves = Vec::with_capacity(1);
            let b2 = fresh_binder(supply, term, ty_map, b, &mut saves);
            let body2 = go(supply, term, ty_map, label, body);
            restore(term, saves);
            Expr::lam(b2, body2)
        }
        Expr::TyLam(a, body) => {
            let a2 = supply.fresh_like(a);
            let old = ty_map.insert(a.clone(), Type::Var(a2.clone()));
            let body2 = go(supply, term, ty_map, label, body);
            restore(ty_map, vec![(a.clone(), old)]);
            Expr::ty_lam(a2, body2)
        }
        Expr::App(f, x) => Expr::app(
            go(supply, term, ty_map, label, f),
            go(supply, term, ty_map, label, x),
        ),
        Expr::TyApp(f, t) => Expr::ty_app(go(supply, term, ty_map, label, f), apply_ty(ty_map, t)),
        Expr::Con(c, tys, args) => Expr::Con(
            c.clone(),
            tys.iter().map(|t| apply_ty(ty_map, t)).collect(),
            args.iter()
                .map(|a| go(supply, term, ty_map, label, a))
                .collect(),
        ),
        Expr::Case(s, alts) => {
            let s2 = go(supply, term, ty_map, label, s);
            let alts2 = alts
                .iter()
                .map(|alt| {
                    let mut saves = Vec::with_capacity(alt.binders.len());
                    let binders2: Vec<Binder> = alt
                        .binders
                        .iter()
                        .map(|b| fresh_binder(supply, term, ty_map, b, &mut saves))
                        .collect();
                    let rhs2 = go(supply, term, ty_map, label, &alt.rhs);
                    restore(term, saves);
                    Alt {
                        con: alt.con.clone(),
                        binders: binders2,
                        rhs: rhs2,
                    }
                })
                .collect();
            Expr::case(s2, alts2)
        }
        Expr::Let(bind, body) => match bind {
            LetBind::NonRec(b, rhs) => {
                let rhs2 = go(supply, term, ty_map, label, rhs);
                let mut saves = Vec::with_capacity(1);
                let b2 = fresh_binder(supply, term, ty_map, b, &mut saves);
                let body2 = go(supply, term, ty_map, label, body);
                restore(term, saves);
                Expr::let1(b2, rhs2, body2)
            }
            LetBind::Rec(binds) => {
                let mut saves = Vec::with_capacity(binds.len());
                let binders2: Vec<Binder> = binds
                    .iter()
                    .map(|(b, _)| fresh_binder(supply, term, ty_map, b, &mut saves))
                    .collect();
                let binds2: Vec<(Binder, Expr)> = binders2
                    .into_iter()
                    .zip(binds.iter())
                    .map(|(b2, (_, rhs))| (b2, go(supply, term, ty_map, label, rhs)))
                    .collect();
                let body2 = go(supply, term, ty_map, label, body);
                restore(term, saves);
                Expr::letrec(binds2, body2)
            }
        },
        Expr::Join(jb, body) => {
            let is_rec = jb.is_rec();
            let new_labels: Vec<Name> = jb
                .defs()
                .iter()
                .map(|d| supply.fresh_like(&d.name))
                .collect();
            // Non-recursive joins do not scope over their own RHS, so the
            // label renamings enter the map before the definitions only
            // for recursive groups.
            let mut label_saves = Vec::with_capacity(new_labels.len());
            if is_rec {
                for (d, n) in jb.defs().iter().zip(&new_labels) {
                    let old = label.insert(d.name.clone(), n.clone());
                    label_saves.push((d.name.clone(), old));
                }
            }
            let defs2: Vec<JoinDef> = jb
                .defs()
                .iter()
                .zip(&new_labels)
                .map(|(d, new_name)| {
                    let mut ty_saves = Vec::with_capacity(d.ty_params.len());
                    let ty_params2: Vec<Name> = d
                        .ty_params
                        .iter()
                        .map(|a| {
                            let a2 = supply.fresh_like(a);
                            let old = ty_map.insert(a.clone(), Type::Var(a2.clone()));
                            ty_saves.push((a.clone(), old));
                            a2
                        })
                        .collect();
                    let mut term_saves = Vec::with_capacity(d.params.len());
                    let params2: Vec<Binder> = d
                        .params
                        .iter()
                        .map(|b| fresh_binder(supply, term, ty_map, b, &mut term_saves))
                        .collect();
                    let body2 = go(supply, term, ty_map, label, &d.body);
                    restore(term, term_saves);
                    restore(ty_map, ty_saves);
                    JoinDef {
                        name: new_name.clone(),
                        ty_params: ty_params2,
                        params: params2,
                        body: body2,
                    }
                })
                .collect();
            if !is_rec {
                for (d, n) in jb.defs().iter().zip(&new_labels) {
                    let old = label.insert(d.name.clone(), n.clone());
                    label_saves.push((d.name.clone(), old));
                }
            }
            let body2 = go(supply, term, ty_map, label, body);
            restore(label, label_saves);
            let jb2 = if is_rec {
                JoinBind::Rec(defs2)
            } else {
                JoinBind::NonRec(std::sync::Arc::new(
                    defs2.into_iter().next().expect("nonrec has one def"),
                ))
            };
            Expr::Join(jb2, Expr::share(body2))
        }
        Expr::Jump(j, tys, args, res) => Expr::Jump(
            label.get(j).cloned().unwrap_or_else(|| j.clone()),
            tys.iter().map(|t| apply_ty(ty_map, t)).collect(),
            args.iter()
                .map(|a| go(supply, term, ty_map, label, a))
                .collect(),
            apply_ty(ty_map, res),
        ),
    }
}

/// Clone `e` with every binder renamed to a fresh name — used before
/// duplicating a subterm (e.g. inlining) to maintain unique binders.
pub fn freshen(e: &Expr, supply: &mut NameSupply) -> Expr {
    Subst::new(supply).apply(e)
}

/// Substitute `image` for term variable `x` in `e`.
pub fn subst_term(e: &Expr, x: &Name, image: &Expr, supply: &mut NameSupply) -> Expr {
    Subst::new(supply)
        .bind_term(x.clone(), image.clone())
        .apply(e)
}

/// Substitute several terms for term variables simultaneously.
pub fn subst_terms(
    e: &Expr,
    pairs: impl IntoIterator<Item = (Name, Expr)>,
    supply: &mut NameSupply,
) -> Expr {
    let mut s = Subst::new(supply);
    for (x, img) in pairs {
        s = s.bind_term(x, img);
    }
    s.apply(e)
}

/// Substitute a type for a type variable in an expression.
pub fn subst_ty_in_expr(e: &Expr, a: &Name, t: &Type, supply: &mut NameSupply) -> Expr {
    Subst::new(supply).bind_ty(a.clone(), t.clone()).apply(e)
}

/// Substitute several types for type variables simultaneously.
pub fn subst_tys_in_expr(
    e: &Expr,
    pairs: impl IntoIterator<Item = (Name, Type)>,
    supply: &mut NameSupply,
) -> Expr {
    let mut s = Subst::new(supply);
    for (a, t) in pairs {
        s = s.bind_ty(a, t);
    }
    s.apply(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::PrimOp;
    use crate::fv::{free_labels, free_vars};
    use std::collections::HashSet;

    fn supply() -> NameSupply {
        NameSupply::new()
    }

    #[test]
    fn subst_replaces_free_occurrence() {
        let mut s = supply();
        let x = s.fresh("x");
        let e = Expr::prim2(PrimOp::Add, Expr::var(&x), Expr::Lit(1));
        let r = subst_term(&e, &x, &Expr::Lit(41), &mut s);
        assert_eq!(r, Expr::prim2(PrimOp::Add, Expr::Lit(41), Expr::Lit(1)));
    }

    #[test]
    fn subst_avoids_capture() {
        // (λy. x){y/x} must NOT capture: result is λy'. y with y' ≠ y.
        let mut s = supply();
        let x = s.fresh("x");
        let y = s.fresh("y");
        let e = Expr::lam(Binder::new(y.clone(), Type::Int), Expr::var(&x));
        let r = subst_term(&e, &x, &Expr::var(&y), &mut s);
        match r {
            Expr::Lam(b, body) => {
                assert_ne!(b.name, y, "binder must be freshened");
                assert_eq!(*body, Expr::var(&y), "free y must remain free");
            }
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn freshen_renames_all_binders_but_preserves_free() {
        let mut s = supply();
        let x = s.fresh("x");
        let free = s.fresh("g");
        let e = Expr::lam(
            Binder::new(x.clone(), Type::Int),
            Expr::app(Expr::var(&free), Expr::var(&x)),
        );
        let r = freshen(&e, &mut s);
        assert_ne!(e, r);
        assert_eq!(free_vars(&r), HashSet::from([free]));
    }

    #[test]
    fn shadowed_binder_scopes_restore() {
        // Two sibling lambdas binding the SAME name (shadowing the free
        // x we substitute for): the restore discipline must bring the
        // x ↦ 42 mapping back after each scope closes.
        let mut s = supply();
        let x = s.fresh("x");
        let shadow = Expr::lam(Binder::new(x.clone(), Type::Int), Expr::var(&x));
        let e = Expr::prim2(
            PrimOp::Add,
            Expr::app(shadow.clone(), Expr::var(&x)),
            Expr::app(shadow, Expr::var(&x)),
        );
        let r = subst_term(&e, &x, &Expr::Lit(42), &mut s);
        // Both free occurrences became 42; both bound ones stayed bound.
        let mut lit42 = 0;
        r.walk(&mut |n| {
            if matches!(n, Expr::Lit(42)) {
                lit42 += 1;
            }
        });
        assert_eq!(lit42, 2);
        assert!(free_vars(&r).is_empty());
    }

    #[test]
    fn ty_subst_in_lambda_annotation() {
        let mut s = supply();
        let a = s.fresh("a");
        let x = s.fresh("x");
        let e = Expr::lam(Binder::new(x.clone(), Type::Var(a.clone())), Expr::var(&x));
        let r = subst_ty_in_expr(&e, &a, &Type::Int, &mut s);
        match r {
            Expr::Lam(b, _) => assert_eq!(b.ty, Type::Int),
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn join_label_renamed_consistently() {
        let mut s = supply();
        let j = s.fresh("j");
        let x = s.fresh("x");
        let e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![Binder::new(x.clone(), Type::Int)],
                body: Expr::var(&x),
            },
            Expr::jump(&j, vec![], vec![Expr::Lit(2)], Type::Int),
        );
        let r = freshen(&e, &mut s);
        assert!(
            free_labels(&r).is_empty(),
            "label stays bound after freshen"
        );
        match &r {
            Expr::Join(jb, body) => {
                let new_j = &jb.defs()[0].name;
                assert_ne!(new_j, &j);
                match &**body {
                    Expr::Jump(target, _, _, _) => assert_eq!(target, new_j),
                    other => panic!("expected jump, got {other:?}"),
                }
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn rec_join_self_reference_renamed() {
        let mut s = supply();
        let j = s.fresh("go");
        let e = Expr::joinrec(
            vec![JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![],
                body: Expr::jump(&j, vec![], vec![], Type::Int),
            }],
            Expr::jump(&j, vec![], vec![], Type::Int),
        );
        let r = freshen(&e, &mut s);
        assert!(free_labels(&r).is_empty());
    }

    #[test]
    fn simultaneous_term_subst() {
        let mut s = supply();
        let x = s.fresh("x");
        let y = s.fresh("y");
        // Swap x and y simultaneously: x + y becomes y + x.
        let e = Expr::prim2(PrimOp::Add, Expr::var(&x), Expr::var(&y));
        let r = subst_terms(
            &e,
            [(x.clone(), Expr::var(&y)), (y.clone(), Expr::var(&x))],
            &mut s,
        );
        assert_eq!(r, Expr::prim2(PrimOp::Add, Expr::var(&y), Expr::var(&x)));
    }

    #[test]
    fn tylam_binder_freshened() {
        let mut s = supply();
        let a = s.fresh("a");
        let x = s.fresh("x");
        let e = Expr::ty_lam(
            a.clone(),
            Expr::lam(Binder::new(x, Type::Var(a.clone())), Expr::Lit(0)),
        );
        // Substituting Int for `a` must not touch the bound occurrence.
        let r = subst_ty_in_expr(&e, &a, &Type::Int, &mut s);
        match r {
            Expr::TyLam(a2, body) => match &*body {
                Expr::Lam(b, _) => {
                    assert_eq!(b.ty, Type::Var(a2));
                }
                other => panic!("expected lambda, got {other:?}"),
            },
            other => panic!("expected tylam, got {other:?}"),
        }
    }
}
