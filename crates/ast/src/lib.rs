//! # fj-ast — System F_J abstract syntax
//!
//! The syntax of **System F_J** from *“Compiling without continuations”*
//! (Maurer, Downen, Ariola, Peyton Jones; PLDI 2017), Fig. 1: a
//! direct-style, explicitly typed λ-calculus with datatypes and `case`,
//! extended with **join points** ([`Expr::Join`]) and **jumps**
//! ([`Expr::Jump`]).
//!
//! This crate provides:
//!
//! * the term and type representations ([`Expr`], [`Type`], [`JoinBind`], …),
//! * GHC-style [`Name`]s with a fresh-name supply ([`NameSupply`]),
//! * the datatype environment ([`DataEnv`]) with the prelude types used
//!   throughout the repository,
//! * free-variable analyses ([`free_vars`], [`free_labels`]),
//! * capture-avoiding, binder-freshening substitution ([`Subst`], [`freshen`]),
//! * α-equivalence ([`alpha_eq`]) and a Core-dump-style pretty printer
//!   ([`pretty`]),
//! * a term-building DSL ([`Dsl`]) used by examples and benchmarks.
//!
//! ## Example
//!
//! Build `join j (x:Int) = x + 1 in jump j 41 Int` and print it:
//!
//! ```
//! use fj_ast::{Dsl, Expr, JoinDef, PrimOp, Type};
//!
//! let mut dsl = Dsl::new();
//! let j = dsl.name("j");
//! let x = dsl.binder("x", Type::Int);
//! let body = Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::Lit(1));
//! let term = Expr::join1(
//!     JoinDef { name: j.clone(), ty_params: vec![], params: vec![x], body },
//!     Expr::jump(&j, vec![], vec![Expr::Lit(41)], Type::Int),
//! );
//! assert!(term.has_join_or_jump());
//! println!("{term}");
//! ```

#![warn(missing_docs)]

mod alpha;
mod builder;
mod data_env;
mod expr;
mod fv;
pub mod fxhash;
mod name;
mod pretty;
mod subst;
mod ty;

pub use alpha::{alpha_eq, alpha_fingerprint};
pub use builder::Dsl;
pub use data_env::{DataCon, DataEnv, DataEnvError, DataType};
pub use expr::{
    Alt, AltCon, Binder, Expr, JoinBind, JoinDef, LetBind, PrimOp, PrimResult, SpineArg,
};
pub use fv::{free_labels, free_ty_vars, free_vars, mentions_any, mentions_label, occurs_free};
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use name::{Ident, Name, NameSupply, FIRST_PROGRAM_ID};
pub use pretty::pretty;
pub use subst::{freshen, subst_term, subst_terms, subst_ty_in_expr, subst_tys_in_expr, Subst};
pub use ty::Type;
