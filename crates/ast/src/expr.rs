//! Terms of System F_J (Fig. 1 of the paper).
//!
//! The two highlighted constructs are [`Expr::Join`] — a join-point binding
//! `join j a⃗ (x:σ)⃗ = e in u` — and [`Expr::Jump`] — `jump j φ⃗ e⃗ τ`, which
//! transfers control to a join point, discarding the evaluation context up
//! to its binding.
//!
//! Unlike GHC (which flags join points on the identifier, Sec. 7 of the
//! paper), we give them distinct constructors: in Rust an enum variant is
//! the idiomatic rendering, and it turns "accidentally destroyed a join
//! point" into a shape the passes must handle explicitly.
//!
//! Extensions relative to the paper's Fig. 1, both present in real GHC Core:
//! integer literals ([`Expr::Lit`]) and saturated primitive operations
//! ([`Expr::Prim`]). Case alternatives may match literals and may include a
//! default ([`AltCon`]).
//!
//! ## Subtree sharing
//!
//! Subtrees are held behind [`Arc`], not `Box`: a pass that leaves a
//! subtree untouched returns the *same* pointer, so cloning a term for a
//! rollback snapshot is a reference-count bump and `Arc::ptr_eq` on a
//! child is a sound "nothing changed below here" witness (names are
//! globally unique, so a shared subtree cannot mean two different things
//! in two positions). Passes rewrite copy-on-write via
//! [`Arc::make_mut`]/[`Expr::unshare`], paying for a node copy only on
//! the path that actually changed. `Arc` rather than `Rc` because terms
//! cross threads: the pass guard runs deadline-guarded passes on watcher
//! threads, and `optimize_many` fans whole pipelines out over a pool.

use crate::name::{Ident, Name};
use crate::ty::Type;
use std::fmt;
use std::sync::Arc;

/// A typed term binder `x : σ`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Binder {
    /// The bound name.
    pub name: Name,
    /// Its annotated type.
    pub ty: Type,
}

impl Binder {
    /// Construct a binder.
    pub fn new(name: Name, ty: Type) -> Self {
        Binder { name, ty }
    }
}

impl fmt::Display for Binder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} : {})", self.name, self.ty)
    }
}

/// Saturated primitive operations over `Int` (GHC Core's primops).
///
/// Comparison operators return the `Bool` *datatype* (constructors `True`
/// and `False`), so their results can drive `case` — exactly how GHC wraps
/// `Int#` comparisons.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PrimOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (truncating). Division by zero is a machine error.
    Div,
    /// Integer remainder. Remainder by zero is a machine error.
    Rem,
    /// Equality test, returns `Bool`.
    Eq,
    /// Inequality test, returns `Bool`.
    Ne,
    /// Less-than, returns `Bool`.
    Lt,
    /// Less-or-equal, returns `Bool`.
    Le,
    /// Greater-than, returns `Bool`.
    Gt,
    /// Greater-or-equal, returns `Bool`.
    Ge,
}

impl PrimOp {
    /// Number of `Int` operands (all current primops are binary).
    pub fn arity(self) -> usize {
        2
    }

    /// The result type of the operation.
    pub fn result_type(self) -> Type {
        match self {
            PrimOp::Add | PrimOp::Sub | PrimOp::Mul | PrimOp::Div | PrimOp::Rem => Type::Int,
            _ => Type::bool(),
        }
    }

    /// Evaluate on literal operands; `None` for division/remainder by zero.
    pub fn eval(self, a: i64, b: i64) -> Option<PrimResult> {
        Some(match self {
            PrimOp::Add => PrimResult::Int(a.wrapping_add(b)),
            PrimOp::Sub => PrimResult::Int(a.wrapping_sub(b)),
            PrimOp::Mul => PrimResult::Int(a.wrapping_mul(b)),
            PrimOp::Div => {
                if b == 0 {
                    return None;
                }
                PrimResult::Int(a.wrapping_div(b))
            }
            PrimOp::Rem => {
                if b == 0 {
                    return None;
                }
                PrimResult::Int(a.wrapping_rem(b))
            }
            PrimOp::Eq => PrimResult::Bool(a == b),
            PrimOp::Ne => PrimResult::Bool(a != b),
            PrimOp::Lt => PrimResult::Bool(a < b),
            PrimOp::Le => PrimResult::Bool(a <= b),
            PrimOp::Gt => PrimResult::Bool(a > b),
            PrimOp::Ge => PrimResult::Bool(a >= b),
        })
    }

    /// The source spelling, e.g. `+#`.
    pub fn symbol(self) -> &'static str {
        match self {
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "/",
            PrimOp::Rem => "%",
            PrimOp::Eq => "==",
            PrimOp::Ne => "/=",
            PrimOp::Lt => "<",
            PrimOp::Le => "<=",
            PrimOp::Gt => ">",
            PrimOp::Ge => ">=",
        }
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Result of constant-folding a [`PrimOp`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrimResult {
    /// An integer result.
    Int(i64),
    /// A boolean result (to be injected as the `True`/`False` constructor).
    Bool(bool),
}

/// What a case alternative matches.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AltCon {
    /// A data constructor pattern `K x⃗`.
    Con(Ident),
    /// An integer literal pattern.
    Lit(i64),
    /// The default alternative `_`.
    Default,
}

impl fmt::Display for AltCon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AltCon::Con(c) => write!(f, "{c}"),
            AltCon::Lit(n) => write!(f, "{n}"),
            AltCon::Default => write!(f, "_"),
        }
    }
}

/// A case alternative `K (x:σ)⃗ → u`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Alt {
    /// The pattern head.
    pub con: AltCon,
    /// Field binders (empty unless `con` is a constructor with fields).
    pub binders: Vec<Binder>,
    /// Right-hand side.
    pub rhs: Expr,
}

impl Alt {
    /// An alternative with no field binders.
    pub fn simple(con: AltCon, rhs: Expr) -> Self {
        Alt {
            con,
            binders: Vec::new(),
            rhs,
        }
    }
}

/// A value binding: `let x:τ = e` or `let rec (x:τ = e)⃗`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LetBind {
    /// A non-recursive binding.
    NonRec(Binder, Arc<Expr>),
    /// A mutually recursive group.
    Rec(Vec<(Binder, Expr)>),
}

impl LetBind {
    /// All binders of the group.
    pub fn binders(&self) -> Vec<&Binder> {
        match self {
            LetBind::NonRec(b, _) => vec![b],
            LetBind::Rec(bs) => bs.iter().map(|(b, _)| b).collect(),
        }
    }

    /// All (binder, rhs) pairs.
    pub fn pairs(&self) -> Vec<(&Binder, &Expr)> {
        match self {
            LetBind::NonRec(b, e) => vec![(b, &**e)],
            LetBind::Rec(bs) => bs.iter().map(|(b, e)| (b, e)).collect(),
        }
    }

    /// Is this a recursive group?
    pub fn is_rec(&self) -> bool {
        matches!(self, LetBind::Rec(_))
    }
}

/// One join-point definition `j a⃗ (x:σ)⃗ = e`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JoinDef {
    /// The label.
    pub name: Name,
    /// Bound type parameters `a⃗`.
    pub ty_params: Vec<Name>,
    /// Bound value parameters `(x:σ)⃗`.
    pub params: Vec<Binder>,
    /// The body.
    pub body: Expr,
}

impl JoinDef {
    /// The label's type per rule JBIND: `∀a⃗. σ⃗ → ∀r.r`.
    pub fn label_type(&self) -> Type {
        let core = Type::funs(self.params.iter().map(|b| b.ty.clone()), Type::bot());
        self.ty_params
            .iter()
            .rev()
            .fold(core, |acc, a| Type::forall(a.clone(), acc))
    }

    /// Total number of parameters (type + value); jumps must be saturated.
    pub fn arity(&self) -> (usize, usize) {
        (self.ty_params.len(), self.params.len())
    }
}

/// A join binding: one definition or a recursive group.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JoinBind {
    /// A non-recursive join point.
    NonRec(Arc<JoinDef>),
    /// A recursive group of join points.
    Rec(Vec<JoinDef>),
}

impl JoinBind {
    /// All definitions in the group.
    pub fn defs(&self) -> &[JoinDef] {
        match self {
            JoinBind::NonRec(d) => std::slice::from_ref(&**d),
            JoinBind::Rec(ds) => ds,
        }
    }

    /// Mutable access to all definitions in the group (copy-on-write for
    /// a shared non-recursive definition).
    pub fn defs_mut(&mut self) -> &mut [JoinDef] {
        match self {
            JoinBind::NonRec(d) => std::slice::from_mut(Arc::make_mut(d)),
            JoinBind::Rec(ds) => ds,
        }
    }

    /// Is this a recursive group?
    pub fn is_rec(&self) -> bool {
        matches!(self, JoinBind::Rec(_))
    }

    /// Labels bound by the group.
    pub fn labels(&self) -> Vec<&Name> {
        self.defs().iter().map(|d| &d.name).collect()
    }
}

/// A System F_J term.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// A term variable.
    Var(Name),
    /// An integer literal.
    Lit(i64),
    /// A saturated primitive operation.
    Prim(PrimOp, Vec<Expr>),
    /// `λ(x:σ). e`.
    Lam(Binder, Arc<Expr>),
    /// Application `e u`.
    App(Arc<Expr>, Arc<Expr>),
    /// `Λa. e`.
    TyLam(Name, Arc<Expr>),
    /// Type application `e φ`.
    TyApp(Arc<Expr>, Type),
    /// Saturated data construction `K φ⃗ e⃗`.
    Con(Ident, Vec<Type>, Vec<Expr>),
    /// `case e of alt⃗`.
    Case(Arc<Expr>, Vec<Alt>),
    /// `let vb in e`.
    Let(LetBind, Arc<Expr>),
    /// `join jb in u` — the join-point binding (paper Fig. 1, highlighted).
    Join(JoinBind, Arc<Expr>),
    /// `jump j φ⃗ e⃗ τ` — invoke a join point, discarding the evaluation
    /// context. The trailing `τ` is the *result-type annotation*: a jump may
    /// be given any type (rule JUMP), and `abort` retargets it.
    Jump(Name, Vec<Type>, Vec<Expr>, Type),
}

impl Expr {
    /// A variable reference.
    pub fn var(n: &Name) -> Expr {
        Expr::Var(n.clone())
    }

    /// Wrap a term in the shared subtree pointer.
    pub fn share(e: Expr) -> Arc<Expr> {
        Arc::new(e)
    }

    /// Take ownership of a shared subtree: free when this is the only
    /// reference, a one-node-deep clone otherwise (children stay shared).
    pub fn unshare(e: Arc<Expr>) -> Expr {
        Arc::try_unwrap(e).unwrap_or_else(|shared| (*shared).clone())
    }

    /// `λ(x:σ). e`.
    pub fn lam(b: Binder, body: Expr) -> Expr {
        Expr::Lam(b, Arc::new(body))
    }

    /// Nested λ over several binders.
    pub fn lams(bs: impl IntoIterator<Item = Binder>, body: Expr) -> Expr {
        let bs: Vec<Binder> = bs.into_iter().collect();
        bs.into_iter().rev().fold(body, |acc, b| Expr::lam(b, acc))
    }

    /// Application `f a`.
    pub fn app(f: Expr, a: Expr) -> Expr {
        Expr::App(Arc::new(f), Arc::new(a))
    }

    /// Application to several arguments.
    pub fn apps(f: Expr, args: impl IntoIterator<Item = Expr>) -> Expr {
        args.into_iter().fold(f, Expr::app)
    }

    /// `Λa. e`.
    pub fn ty_lam(a: Name, body: Expr) -> Expr {
        Expr::TyLam(a, Arc::new(body))
    }

    /// Type application `e φ`.
    pub fn ty_app(e: Expr, t: Type) -> Expr {
        Expr::TyApp(Arc::new(e), t)
    }

    /// `case e of alts`.
    pub fn case(scrut: Expr, alts: Vec<Alt>) -> Expr {
        Expr::Case(Arc::new(scrut), alts)
    }

    /// Non-recursive `let`.
    pub fn let1(b: Binder, rhs: Expr, body: Expr) -> Expr {
        Expr::Let(LetBind::NonRec(b, Arc::new(rhs)), Arc::new(body))
    }

    /// Recursive `let`.
    pub fn letrec(binds: Vec<(Binder, Expr)>, body: Expr) -> Expr {
        Expr::Let(LetBind::Rec(binds), Arc::new(body))
    }

    /// Non-recursive `join`.
    pub fn join1(def: JoinDef, body: Expr) -> Expr {
        Expr::Join(JoinBind::NonRec(Arc::new(def)), Arc::new(body))
    }

    /// Recursive `join`.
    pub fn joinrec(defs: Vec<JoinDef>, body: Expr) -> Expr {
        Expr::Join(JoinBind::Rec(defs), Arc::new(body))
    }

    /// A jump with its result-type annotation.
    pub fn jump(j: &Name, tys: Vec<Type>, args: Vec<Expr>, res: Type) -> Expr {
        Expr::Jump(j.clone(), tys, args, res)
    }

    /// A saturated binary primop.
    pub fn prim2(op: PrimOp, a: Expr, b: Expr) -> Expr {
        Expr::Prim(op, vec![a, b])
    }

    /// The `True`/`False` constructors.
    pub fn bool(b: bool) -> Expr {
        Expr::Con(Ident::new(if b { "True" } else { "False" }), vec![], vec![])
    }

    /// `if c then t else f`, desugared to a Bool case.
    pub fn ite(c: Expr, t: Expr, f: Expr) -> Expr {
        Expr::case(
            c,
            vec![
                Alt::simple(AltCon::Con(Ident::new("True")), t),
                Alt::simple(AltCon::Con(Ident::new("False")), f),
            ],
        )
    }

    /// Is this expression *atomic* (a variable or literal)? Atoms are
    /// duplicated freely by the optimizer and allocate nothing.
    pub fn is_atom(&self) -> bool {
        matches!(self, Expr::Var(_) | Expr::Lit(_))
    }

    /// Is this an *answer* per Fig. 1: `λx.e`, `Λa.e`, or `K φ⃗ v⃗`?
    /// (Literals are answers too in our extended calculus.)
    pub fn is_answer(&self) -> bool {
        matches!(
            self,
            Expr::Lam(..) | Expr::TyLam(..) | Expr::Con(..) | Expr::Lit(_)
        )
    }

    /// Split a spine of value/type applications:
    /// `f @t1 x @t2 y` ⇒ (`f`, [t1 @, x, t2 @, y…]) in order.
    pub fn collect_app_spine(&self) -> (&Expr, Vec<SpineArg<'_>>) {
        let mut args = Vec::new();
        let mut e = self;
        loop {
            match e {
                Expr::App(f, a) => {
                    args.push(SpineArg::Term(a));
                    e = f;
                }
                Expr::TyApp(f, t) => {
                    args.push(SpineArg::Ty(t));
                    e = f;
                }
                _ => break,
            }
        }
        args.reverse();
        (e, args)
    }

    /// Count AST nodes — the optimizer's "size" for inlining decisions.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Pre-order traversal calling `f` on every subexpression.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Var(_) | Expr::Lit(_) => {}
            Expr::Prim(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Lam(_, b) | Expr::TyLam(_, b) => b.walk(f),
            Expr::App(a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::TyApp(a, _) => a.walk(f),
            Expr::Con(_, _, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Case(s, alts) => {
                s.walk(f);
                for alt in alts {
                    alt.rhs.walk(f);
                }
            }
            Expr::Let(b, body) => {
                match b {
                    LetBind::NonRec(_, rhs) => rhs.walk(f),
                    LetBind::Rec(bs) => {
                        for (_, rhs) in bs {
                            rhs.walk(f);
                        }
                    }
                }
                body.walk(f);
            }
            Expr::Join(jb, body) => {
                for d in jb.defs() {
                    d.body.walk(f);
                }
                body.walk(f);
            }
            Expr::Jump(_, _, args, _) => {
                for a in args {
                    a.walk(f);
                }
            }
        }
    }

    /// Does the expression contain any `join`/`jump` node? Erasure
    /// (Theorem 5) must produce a term for which this is `false`.
    pub fn has_join_or_jump(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Join(..) | Expr::Jump(..)) {
                found = true;
            }
        });
        found
    }
}

/// One argument on an application spine (see [`Expr::collect_app_spine`]).
#[derive(Clone, Copy, Debug)]
pub enum SpineArg<'a> {
    /// A term argument.
    Term(&'a Expr),
    /// A type argument.
    Ty(&'a Type),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::NameSupply;

    fn b(s: &mut NameSupply, n: &str) -> Binder {
        Binder::new(s.fresh(n), Type::Int)
    }

    #[test]
    fn lams_and_apps_invert() {
        let mut s = NameSupply::new();
        let x = b(&mut s, "x");
        let y = b(&mut s, "y");
        let body = Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::var(&y.name));
        let f = Expr::lams([x, y], body);
        let applied = Expr::apps(f, [Expr::Lit(1), Expr::Lit(2)]);
        let (head, spine) = applied.collect_app_spine();
        assert!(matches!(head, Expr::Lam(..)));
        assert_eq!(spine.len(), 2);
    }

    #[test]
    fn join_label_type_shape() {
        let mut s = NameSupply::new();
        let a = s.fresh("a");
        let j = JoinDef {
            name: s.fresh("j"),
            ty_params: vec![a.clone()],
            params: vec![Binder::new(s.fresh("x"), Type::Var(a.clone()))],
            body: Expr::Lit(0),
        };
        // ∀a. a -> ∀r.r
        let t = j.label_type();
        match t {
            Type::Forall(a2, inner) => {
                assert_eq!(a2, a);
                match *inner {
                    Type::Fun(arg, res) => {
                        assert_eq!(*arg, Type::Var(a));
                        assert!(res.is_bot());
                    }
                    other => panic!("expected function type, got {other}"),
                }
            }
            other => panic!("expected forall, got {other}"),
        }
    }

    #[test]
    fn primop_folding() {
        assert_eq!(PrimOp::Add.eval(2, 3), Some(PrimResult::Int(5)));
        assert_eq!(PrimOp::Lt.eval(2, 3), Some(PrimResult::Bool(true)));
        assert_eq!(PrimOp::Div.eval(1, 0), None);
        assert_eq!(PrimOp::Rem.eval(7, 3), Some(PrimResult::Int(1)));
    }

    #[test]
    fn size_counts_nodes() {
        let e = Expr::prim2(PrimOp::Add, Expr::Lit(1), Expr::Lit(2));
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn answers_and_atoms() {
        let mut s = NameSupply::new();
        let x = s.fresh("x");
        assert!(Expr::var(&x).is_atom());
        assert!(Expr::Lit(3).is_atom());
        assert!(Expr::bool(true).is_answer());
        assert!(!Expr::app(Expr::var(&x), Expr::Lit(1)).is_answer());
    }

    #[test]
    fn has_join_detects_jumps() {
        let mut s = NameSupply::new();
        let j = s.fresh("j");
        let e = Expr::jump(&j, vec![], vec![], Type::Int);
        assert!(e.has_join_or_jump());
        assert!(!Expr::Lit(1).has_join_or_jump());
    }

    #[test]
    fn ite_desugars_to_bool_case() {
        let e = Expr::ite(Expr::bool(true), Expr::Lit(1), Expr::Lit(2));
        match e {
            Expr::Case(_, alts) => {
                assert_eq!(alts.len(), 2);
                assert_eq!(alts[0].con, AltCon::Con(Ident::new("True")));
            }
            other => panic!("expected case, got {other:?}"),
        }
    }
}
