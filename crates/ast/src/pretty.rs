//! Pretty printer for System F_J terms, in the style of GHC Core dumps.
//!
//! One of the paper's arguments for direct style (Sec. 8) is that "Haskell
//! programmers often pore over GHC's Core dumps" — so this printer aims for
//! the same legibility: indentation-structured `case`/`let`/`join`, infix
//! primops, and explicit `@ty` type applications.

use crate::expr::{AltCon, Expr, LetBind};
use std::fmt;

/// Render an expression as a multi-line Core-dump-style string.
pub fn pretty(e: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, e, 0, Prec::Top).expect("String writer never fails");
    out
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&pretty(self))
    }
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Top,
    App,
    Atom,
}

fn indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn parens_if(
    out: &mut String,
    cond: bool,
    f: impl FnOnce(&mut String) -> fmt::Result,
) -> fmt::Result {
    if cond {
        out.push('(');
        f(out)?;
        out.push(')');
        Ok(())
    } else {
        f(out)
    }
}

#[allow(clippy::too_many_lines)]
fn write_expr(out: &mut String, e: &Expr, depth: usize, prec: Prec) -> fmt::Result {
    use fmt::Write;
    match e {
        Expr::Var(x) => write!(out, "{x}"),
        Expr::Lit(n) => write!(out, "{n}"),
        Expr::Prim(op, args) if args.len() == 2 => parens_if(out, prec > Prec::Top, |out| {
            write_expr(out, &args[0], depth, Prec::App)?;
            write!(out, " {op} ")?;
            write_expr(out, &args[1], depth, Prec::App)
        }),
        Expr::Prim(op, args) => {
            write!(out, "prim[{op}](")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, depth, Prec::Top)?;
            }
            out.push(')');
            Ok(())
        }
        Expr::Lam(..) | Expr::TyLam(..) => parens_if(out, prec > Prec::Top, |out| {
            out.push('\\');
            let mut cur = e;
            loop {
                match cur {
                    Expr::Lam(b, body) => {
                        write!(out, "{b} ")?;
                        cur = body;
                    }
                    Expr::TyLam(a, body) => {
                        write!(out, "@{a} ")?;
                        cur = body;
                    }
                    _ => break,
                }
            }
            out.push_str("-> ");
            write_expr(out, cur, depth, Prec::Top)
        }),
        Expr::App(..) | Expr::TyApp(..) => parens_if(out, prec > Prec::App, |out| {
            let (head, spine) = e.collect_app_spine();
            write_expr(out, head, depth, Prec::Atom)?;
            for arg in spine {
                out.push(' ');
                match arg {
                    crate::expr::SpineArg::Term(t) => write_expr(out, t, depth, Prec::Atom)?,
                    crate::expr::SpineArg::Ty(t) => write!(out, "@({t})")?,
                }
            }
            Ok(())
        }),
        Expr::Con(c, tys, args) => {
            let atomic = tys.is_empty() && args.is_empty();
            parens_if(out, !atomic && prec > Prec::App, |out| {
                write!(out, "{c}")?;
                for t in tys {
                    write!(out, " @({t})")?;
                }
                for a in args {
                    out.push(' ');
                    write_expr(out, a, depth, Prec::Atom)?;
                }
                Ok(())
            })
        }
        Expr::Case(s, alts) => parens_if(out, prec > Prec::Top, |out| {
            out.push_str("case ");
            write_expr(out, s, depth, Prec::App)?;
            out.push_str(" of");
            for alt in alts {
                out.push('\n');
                indent(out, depth + 1);
                match &alt.con {
                    AltCon::Con(c) => write!(out, "{c}")?,
                    AltCon::Lit(n) => write!(out, "{n}")?,
                    AltCon::Default => out.push('_'),
                }
                for b in &alt.binders {
                    write!(out, " {}", b.name)?;
                }
                out.push_str(" -> ");
                write_expr(out, &alt.rhs, depth + 2, Prec::Top)?;
            }
            Ok(())
        }),
        Expr::Let(bind, body) => parens_if(out, prec > Prec::Top, |out| {
            match bind {
                LetBind::NonRec(b, rhs) => {
                    write!(out, "let {} : {} = ", b.name, b.ty)?;
                    write_expr(out, rhs, depth + 1, Prec::Top)?;
                }
                LetBind::Rec(binds) => {
                    out.push_str("let rec");
                    for (b, rhs) in binds {
                        out.push('\n');
                        indent(out, depth + 1);
                        write!(out, "{} : {} = ", b.name, b.ty)?;
                        write_expr(out, rhs, depth + 2, Prec::Top)?;
                    }
                }
            }
            out.push('\n');
            indent(out, depth);
            out.push_str("in ");
            write_expr(out, body, depth, Prec::Top)
        }),
        Expr::Join(jb, body) => parens_if(out, prec > Prec::Top, |out| {
            let kw = if jb.is_rec() { "join rec" } else { "join" };
            out.push_str(kw);
            for d in jb.defs() {
                if jb.is_rec() || jb.defs().len() > 1 {
                    out.push('\n');
                    indent(out, depth + 1);
                } else {
                    out.push(' ');
                }
                write!(out, "{}", d.name)?;
                for a in &d.ty_params {
                    write!(out, " @{a}")?;
                }
                for p in &d.params {
                    write!(out, " {p}")?;
                }
                out.push_str(" = ");
                write_expr(out, &d.body, depth + 2, Prec::Top)?;
            }
            out.push('\n');
            indent(out, depth);
            out.push_str("in ");
            write_expr(out, body, depth, Prec::Top)
        }),
        Expr::Jump(j, tys, args, res) => parens_if(out, prec > Prec::App, |out| {
            write!(out, "jump {j}")?;
            for t in tys {
                write!(out, " @({t})")?;
            }
            for a in args {
                out.push(' ');
                write_expr(out, a, depth, Prec::Atom)?;
            }
            write!(out, " :: {res}")
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Alt, Binder, JoinDef, PrimOp};
    use crate::name::{Ident, NameSupply};
    use crate::ty::Type;

    #[test]
    fn prints_lambda_and_app() {
        let mut s = NameSupply::new();
        let x = s.fresh("x");
        let e = Expr::lam(
            Binder::new(x.clone(), Type::Int),
            Expr::prim2(PrimOp::Add, Expr::var(&x), Expr::Lit(1)),
        );
        let p = pretty(&e);
        assert!(p.contains("\\"), "{p}");
        assert!(p.contains("+ 1"), "{p}");
    }

    #[test]
    fn prints_join_and_jump() {
        let mut s = NameSupply::new();
        let j = s.fresh("j");
        let x = s.fresh("x");
        let e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![Binder::new(x.clone(), Type::Int)],
                body: Expr::var(&x),
            },
            Expr::jump(&j, vec![], vec![Expr::Lit(7)], Type::Int),
        );
        let p = pretty(&e);
        assert!(p.contains("join"), "{p}");
        assert!(p.contains("jump"), "{p}");
        assert!(p.contains(":: Int"), "{p}");
    }

    #[test]
    fn prints_case_with_alts() {
        let e = Expr::case(
            Expr::bool(true),
            vec![
                Alt::simple(crate::expr::AltCon::Con(Ident::new("True")), Expr::Lit(1)),
                Alt::simple(crate::expr::AltCon::Default, Expr::Lit(0)),
            ],
        );
        let p = pretty(&e);
        assert!(p.contains("case True of"), "{p}");
        assert!(p.contains("_ -> 0"), "{p}");
    }

    #[test]
    fn nested_application_parenthesized() {
        let mut s = NameSupply::new();
        let f = s.fresh("f");
        let g = s.fresh("g");
        let e = Expr::app(Expr::var(&f), Expr::app(Expr::var(&g), Expr::Lit(1)));
        let p = pretty(&e);
        assert!(p.contains('('), "inner application needs parens: {p}");
    }
}
