//! Lowering: well-typed F_J terms to flat bytecode.
//!
//! The compiler resolves every variable to a frame-relative slot and
//! every join label to a code address plus a static environment depth.
//! The latter is what the Lint discipline buys us: a `jump` may occur
//! only in Δ-preserving contexts (tail positions, case branches,
//! scrutinees, function heads, `let`/`join` bodies), and none of those
//! contexts leaves extra operand-stack entries behind — so every jump
//! site sits at exactly the operand depth of its target join point, and
//! [`Op::Jump`] needs no runtime stack scan at all. The compiler tracks
//! both depths statically and `debug_assert`s the invariant at every
//! jump it emits.
//!
//! The metrics-charging policy of the Fig. 3 machine (which values cost
//! a `let`/`arg`/`con` unit, and — the paper's point — that joins and
//! jumps cost *nothing*) is decided here at compile time and baked into
//! the instruction flags; see the per-construct comments.

use crate::ops::{CaseTable, ChargeKind, Op, Program, RecBinding};
use fj_ast::{Alt, AltCon, Binder, Expr, Ident, JoinBind, LetBind, Name};
use fj_ast::{FxHashMap, FxHashSet};
use fj_eval::EvalMode;
use std::collections::VecDeque;
use std::fmt;

/// Interned tag of the `True` constructor (fixed, so [`Op::Prim`] can
/// build booleans without a lookup).
pub const TAG_TRUE: u32 = 0;
/// Interned tag of the `False` constructor.
pub const TAG_FALSE: u32 = 1;

/// Why a term could not be lowered (all impossible on Lint-clean input).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// A free term variable with no binding in scope.
    UnboundVar(Name),
    /// A jump to a label bound in no enclosing join.
    UnboundLabel(Name),
    /// A shape the backend does not support.
    Unsupported(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnboundVar(x) => write!(f, "unbound variable {x}"),
            CompileError::UnboundLabel(j) => write!(f, "unbound join label {j}"),
            CompileError::Unsupported(msg) => write!(f, "unsupported term: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// What a name resolves to. Cheap right-hand sides (atoms, nullary
/// constructors) are aliased at compile time — the machine substitutes
/// them inline for free, and so do we.
#[derive(Clone, Debug)]
enum Binding {
    Slot(u16),
    Lit(i64),
    Con0(u32),
}

/// A join label's static data: code entry, slot depth at its definition
/// point, arity, and (for assertions) the operand depth shared by the
/// join body and every legal jump site.
#[derive(Clone, Debug)]
struct JoinInfo {
    label: u32,
    env_keep: u16,
    arity: u16,
    operand_depth: u16,
}

/// Where an expression's value goes.
#[derive(Clone, Copy, Debug)]
enum Cont {
    /// Leave it on the operand stack; code continues.
    Fall,
    /// Return it to the calling frame (tail position).
    Ret,
    /// Branch to a merge point, first restoring the slot depth the merge
    /// was declared at (paths from different case arms bind different
    /// numbers of slots).
    Goto {
        label: u32,
        env_depth: u16,
        operand_depth: u16,
    },
}

/// Whether control can proceed past an expression, or it always jumps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Flow {
    /// The value is delivered to the continuation.
    Leaves,
    /// Every path ends in a `jump`; code after this point is dead and is
    /// not emitted.
    Diverges,
}

/// A code object queued for emission.
struct PendingBody {
    label: u32,
    scope: Vec<(Name, Binding)>,
    env_depth: u16,
    kind: BodyKind,
}

enum BodyKind {
    /// Evaluate the expression and return it.
    Eval(Expr),
    /// Rebuild a pre-charged recursive constructor cell (the machine
    /// charges `letrec x = K …` once at its bind step; each rebuild is
    /// free, so the recipe's root build carries no charge).
    ConRecipe(Expr),
}

const UNBOUND: u32 = u32::MAX;

/// A nested code object's compile-time scope (see
/// [`Compiler::capture_scope`]).
type CaptureScope = (Vec<u16>, Vec<(Name, Binding)>);

struct Compiler {
    mode: EvalMode,
    ops: Vec<Op>,
    labels: Vec<u32>,
    tags: FxHashMap<Ident, u32>,
    idents: Vec<Ident>,
    pending: VecDeque<PendingBody>,
    uses_thunks: bool,
    // Per-code-object state:
    scope: Vec<(Name, Binding)>,
    joins: Vec<(Name, JoinInfo)>,
    env_depth: u16,
    depth: u16,
}

/// Compile a closed, Lint-clean term for one evaluation mode. Laziness
/// and the allocation-charging policy differ per mode, so the mode is
/// baked into the program.
///
/// # Errors
///
/// Returns a [`CompileError`] on unbound variables or labels — both
/// impossible for terms accepted by `fj_check::lint`.
pub fn compile(e: &Expr, mode: EvalMode) -> Result<Program, CompileError> {
    let mut c = Compiler {
        mode,
        ops: vec![Op::Halt],
        labels: Vec::new(),
        tags: FxHashMap::default(),
        idents: Vec::new(),
        pending: VecDeque::new(),
        uses_thunks: false,
        scope: Vec::new(),
        joins: Vec::new(),
        env_depth: 0,
        depth: 0,
    };
    assert_eq!(c.intern(&Ident::new("True")), TAG_TRUE);
    assert_eq!(c.intern(&Ident::new("False")), TAG_FALSE);
    let entry = c.ops.len() as u32;
    c.compile_eval(e, Cont::Ret)?;
    while let Some(p) = c.pending.pop_front() {
        c.bind_label(p.label);
        c.scope = p.scope;
        c.joins.clear();
        c.env_depth = p.env_depth;
        c.depth = 0;
        match p.kind {
            BodyKind::Eval(body) => {
                c.compile_eval(&body, Cont::Ret)?;
            }
            BodyKind::ConRecipe(con) => {
                let Expr::Con(ident, _, fields) = &con else {
                    unreachable!("ConRecipe bodies are constructors");
                };
                c.compile_con(ident, fields, false)?;
                c.ops.push(Op::Ret);
            }
        }
    }
    c.finalize();
    Ok(Program {
        ops: c.ops,
        idents: c.idents,
        entry,
        mode,
        uses_thunks: c.uses_thunks,
    })
}

/// The machine's `is_cheap`: freely duplicable, substituted inline,
/// never charged.
fn is_cheap(e: &Expr) -> bool {
    e.is_atom() || matches!(e, Expr::Con(_, _, args) if args.is_empty())
}

/// The machine's mode-dependent `is_answer`.
fn is_answer_m(mode: EvalMode, e: &Expr) -> bool {
    match e {
        Expr::Lam(..) | Expr::TyLam(..) | Expr::Lit(_) => true,
        Expr::Con(_, _, args) => {
            mode != EvalMode::CallByValue
                || args.iter().all(|a| is_answer_m(mode, a) || a.is_atom())
        }
        _ => false,
    }
}

/// Free *term* variables of `e`, in first-use order. Join labels are a
/// separate namespace (only `jump` refers to them) and never count.
fn free_term_vars(e: &Expr) -> Vec<Name> {
    fn go(e: &Expr, bound: &mut Vec<Name>, seen: &mut FxHashSet<Name>, acc: &mut Vec<Name>) {
        match e {
            Expr::Var(x) => {
                if !bound.contains(x) && seen.insert(x.clone()) {
                    acc.push(x.clone());
                }
            }
            Expr::Lit(_) => {}
            Expr::Prim(_, args) | Expr::Jump(_, _, args, _) => {
                for a in args {
                    go(a, bound, seen, acc);
                }
            }
            Expr::Lam(b, body) => {
                bound.push(b.name.clone());
                go(body, bound, seen, acc);
                bound.pop();
            }
            Expr::App(f, a) => {
                go(f, bound, seen, acc);
                go(a, bound, seen, acc);
            }
            Expr::TyLam(_, body) => go(body, bound, seen, acc),
            Expr::TyApp(f, _) => go(f, bound, seen, acc),
            Expr::Con(_, _, fields) => {
                for f in fields {
                    go(f, bound, seen, acc);
                }
            }
            Expr::Case(s, alts) => {
                go(s, bound, seen, acc);
                for alt in alts {
                    let mark = bound.len();
                    bound.extend(alt.binders.iter().map(|b| b.name.clone()));
                    go(&alt.rhs, bound, seen, acc);
                    bound.truncate(mark);
                }
            }
            Expr::Let(LetBind::NonRec(b, rhs), body) => {
                go(rhs, bound, seen, acc);
                bound.push(b.name.clone());
                go(body, bound, seen, acc);
                bound.pop();
            }
            Expr::Let(LetBind::Rec(binds), body) => {
                let mark = bound.len();
                bound.extend(binds.iter().map(|(b, _)| b.name.clone()));
                for (_, rhs) in binds {
                    go(rhs, bound, seen, acc);
                }
                go(body, bound, seen, acc);
                bound.truncate(mark);
            }
            Expr::Join(jb, body) => {
                for def in jb.defs() {
                    let mark = bound.len();
                    bound.extend(def.params.iter().map(|b| b.name.clone()));
                    go(&def.body, bound, seen, acc);
                    bound.truncate(mark);
                }
                go(body, bound, seen, acc);
            }
        }
    }
    let mut acc = Vec::new();
    go(e, &mut Vec::new(), &mut FxHashSet::default(), &mut acc);
    acc
}

impl Compiler {
    fn intern(&mut self, c: &Ident) -> u32 {
        if let Some(&t) = self.tags.get(c) {
            return t;
        }
        let t = self.idents.len() as u32;
        self.idents.push(c.clone());
        self.tags.insert(c.clone(), t);
        t
    }

    fn new_label(&mut self) -> u32 {
        self.labels.push(UNBOUND);
        (self.labels.len() - 1) as u32
    }

    fn bind_label(&mut self, l: u32) {
        debug_assert_eq!(self.labels[l as usize], UNBOUND, "label bound twice");
        self.labels[l as usize] = self.ops.len() as u32;
    }

    fn resolve(&self, x: &Name) -> Result<Binding, CompileError> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == x)
            .map(|(_, b)| b.clone())
            .ok_or_else(|| CompileError::UnboundVar(x.clone()))
    }

    /// Push a variable's value. `force` distinguishes evaluation
    /// positions (the machine focuses the variable, entering thunks)
    /// from alias positions (arguments, fields: the machine substitutes
    /// the name and shares the heap cell untouched).
    fn load_var(&mut self, x: &Name, force: bool) -> Result<(), CompileError> {
        match self.resolve(x)? {
            Binding::Slot(i) => self
                .ops
                .push(if force { Op::LoadForce(i) } else { Op::Load(i) }),
            Binding::Lit(n) => self.ops.push(Op::PushInt(n)),
            Binding::Con0(tag) => self.ops.push(Op::MkCon {
                tag,
                arity: 0,
                charge: false,
            }),
        }
        self.depth += 1;
        Ok(())
    }

    /// Finish a `Leaves` path: hand the stacked value to the
    /// continuation.
    fn leave(&mut self, cont: Cont) {
        match cont {
            Cont::Fall => {}
            Cont::Ret => self.ops.push(Op::Ret),
            Cont::Goto {
                label,
                env_depth,
                operand_depth,
            } => {
                debug_assert_eq!(self.depth, operand_depth + 1, "merge depth mismatch");
                if self.env_depth > env_depth {
                    self.ops.push(Op::PopEnv(self.env_depth - env_depth));
                }
                self.ops.push(Op::Goto(label));
            }
        }
    }

    /// Compile `e` so its weak-head value reaches `cont`. Returns whether
    /// any path actually does (or every path jumps away).
    #[allow(clippy::too_many_lines)]
    fn compile_eval(&mut self, e: &Expr, cont: Cont) -> Result<Flow, CompileError> {
        match e {
            Expr::Lit(n) => {
                self.ops.push(Op::PushInt(*n));
                self.depth += 1;
                self.leave(cont);
                Ok(Flow::Leaves)
            }
            Expr::Var(x) => {
                self.load_var(x, true)?;
                self.leave(cont);
                Ok(Flow::Leaves)
            }
            Expr::Lam(..) | Expr::TyLam(..) => {
                self.emit_closure(e)?;
                self.leave(cont);
                Ok(Flow::Leaves)
            }
            Expr::Con(c, _, fields) => {
                // An evaluated-position constructor always charges its
                // root cell: the machine counts it either at focus time
                // or at its ConArgs completion step.
                self.compile_con(&c.clone(), fields, true)?;
                self.leave(cont);
                Ok(Flow::Leaves)
            }
            Expr::Prim(op, args) => {
                if args.len() != 2 {
                    return Err(CompileError::Unsupported(format!(
                        "primop {op} with {} operands",
                        args.len()
                    )));
                }
                // Operands are Δ-resetting, so neither can diverge.
                if self.compile_eval(&args[0], Cont::Fall)? == Flow::Diverges {
                    return Ok(Flow::Diverges);
                }
                if self.compile_eval(&args[1], Cont::Fall)? == Flow::Diverges {
                    return Ok(Flow::Diverges);
                }
                self.ops.push(Op::Prim(*op));
                self.depth -= 1;
                self.leave(cont);
                Ok(Flow::Leaves)
            }
            Expr::App(f, a) => {
                // The machine evaluates the function head first, then
                // the argument (strict modes) — same order here.
                if self.compile_eval(f, Cont::Fall)? == Flow::Diverges {
                    return Ok(Flow::Diverges);
                }
                let charge_arg = !is_cheap(a);
                self.compile_arg(a)?;
                self.depth -= 2;
                if matches!(cont, Cont::Ret) {
                    self.ops.push(Op::TailCall { charge_arg });
                    self.depth += 1;
                } else {
                    self.ops.push(Op::Call { charge_arg });
                    self.depth += 1;
                    self.leave(cont);
                }
                Ok(Flow::Leaves)
            }
            Expr::TyApp(f, _) => {
                if self.compile_eval(f, Cont::Fall)? == Flow::Diverges {
                    return Ok(Flow::Diverges);
                }
                if matches!(cont, Cont::Ret) {
                    self.ops.push(Op::TailCallTy);
                } else {
                    self.ops.push(Op::CallTy);
                    self.leave(cont);
                }
                Ok(Flow::Leaves)
            }
            Expr::Case(s, alts) => self.compile_case(s, alts, cont),
            Expr::Let(bind, body) => self.compile_let(bind, body, cont),
            Expr::Join(jb, body) => self.compile_join(jb, body, cont),
            Expr::Jump(j, _, args, _) => {
                self.compile_jump(j, args)?;
                Ok(Flow::Diverges)
            }
        }
    }

    /// Compile one argument (function application or jump). The charging
    /// decision — cheap arguments are free, anything else charges an
    /// `arg` unit iff its value is a closure — lives in the call site's
    /// flag; this only builds the value (or thunk, in lazy modes).
    fn compile_arg(&mut self, a: &Expr) -> Result<(), CompileError> {
        match a {
            Expr::Var(x) => return self.load_var(x, false),
            Expr::Lit(n) => {
                self.ops.push(Op::PushInt(*n));
            }
            Expr::Con(c, _, fields) if fields.is_empty() => {
                let tag = self.intern(c);
                self.ops.push(Op::MkCon {
                    tag,
                    arity: 0,
                    charge: false,
                });
            }
            Expr::Lam(..) | Expr::TyLam(..) => {
                self.emit_closure(a)?;
                return Ok(());
            }
            _ if self.mode == EvalMode::CallByValue => {
                if is_answer_m(self.mode, a) {
                    // Answer-shaped constructor: bound as-is, charging
                    // its cell at the bind (`store_binding` on an
                    // unevaluated cell).
                    let Expr::Con(c, _, fields) = a else {
                        unreachable!("non-atom CBV answers are constructors");
                    };
                    self.compile_con(&c.clone(), fields, true)?;
                } else {
                    let flow = self.compile_eval(a, Cont::Fall)?;
                    debug_assert_eq!(flow, Flow::Leaves, "arguments are Δ-resetting");
                }
                return Ok(());
            }
            Expr::Con(c, _, fields) => {
                // Lazy modes: constructors are answers; the cell binds
                // unevaluated and charges one `con` unit.
                self.compile_con(&c.clone(), fields, true)?;
                return Ok(());
            }
            _ => {
                // Lazy modes: a thunk, charged one `arg` unit now.
                self.emit_thunk(a, ChargeKind::Arg, false)?;
                return Ok(());
            }
        }
        self.depth += 1;
        Ok(())
    }

    /// Build a constructor value. `root_charge` is false only for nested
    /// nodes of answer-shaped cells and for `letrec` recipes — the
    /// machine never focuses those nodes, so they never count.
    fn compile_con(
        &mut self,
        c: &Ident,
        fields: &[Expr],
        root_charge: bool,
    ) -> Result<(), CompileError> {
        let tag = self.intern(c);
        let arity = fields.len();
        if self.mode == EvalMode::CallByValue
            && !fields
                .iter()
                .all(|f| f.is_atom() || is_answer_m(self.mode, f))
        {
            // Strict, non-answer cell: every field is evaluated to WHNF
            // left to right (the ConArgs frames), then the completed
            // cell charges once.
            for f in fields {
                let flow = self.compile_eval(f, Cont::Fall)?;
                debug_assert_eq!(flow, Flow::Leaves, "fields are Δ-resetting");
            }
            debug_assert!(root_charge, "non-answer cells always charge at completion");
        } else {
            // Answer-shaped (always, in lazy modes): the cell is built
            // as-is. Nested constructors are never focused by the
            // machine, so they build uncharged.
            for f in fields {
                self.compile_quoted_field(f)?;
            }
        }
        self.ops.push(Op::MkCon {
            tag,
            arity: arity as u16,
            charge: root_charge && arity > 0,
        });
        self.depth = self.depth - arity as u16 + 1;
        Ok(())
    }

    /// One field of an answer-shaped (or lazy) constructor cell.
    fn compile_quoted_field(&mut self, f: &Expr) -> Result<(), CompileError> {
        match f {
            Expr::Var(x) => self.load_var(x, false),
            Expr::Lit(n) => {
                self.ops.push(Op::PushInt(*n));
                self.depth += 1;
                Ok(())
            }
            Expr::Lam(..) | Expr::TyLam(..) => self.emit_closure(f),
            Expr::Con(c, _, fs) => self.compile_con(&c.clone(), fs, false),
            _ => {
                debug_assert_ne!(
                    self.mode,
                    EvalMode::CallByValue,
                    "CBV answer cells have answer fields"
                );
                // Lazy field: a free thunk. The machine builds one per
                // case projection; `per_projection` makes call-by-need
                // clone a fresh pending cell each time, so forcing
                // counts match exactly.
                self.emit_thunk(f, ChargeKind::Free, true)
            }
        }
    }

    /// Emit a closure build for a `λ`/`Λ` literal, queueing its body.
    fn emit_closure(&mut self, e: &Expr) -> Result<(), CompileError> {
        let (caps, mut body_scope) = self.capture_scope(e)?;
        let n_caps = caps.len() as u16;
        let label = self.new_label();
        let body = match e {
            Expr::Lam(b, body) => {
                body_scope.push((b.name.clone(), Binding::Slot(n_caps)));
                self.pending.push_back(PendingBody {
                    label,
                    scope: body_scope,
                    env_depth: n_caps + 1,
                    kind: BodyKind::Eval((**body).clone()),
                });
                return self.finish_closure(label, caps);
            }
            Expr::TyLam(_, body) => (**body).clone(),
            _ => unreachable!("emit_closure on non-lambda"),
        };
        self.pending.push_back(PendingBody {
            label,
            scope: body_scope,
            env_depth: n_caps,
            kind: BodyKind::Eval(body),
        });
        self.finish_closure(label, caps)
    }

    fn finish_closure(&mut self, label: u32, caps: Vec<u16>) -> Result<(), CompileError> {
        self.ops.push(Op::MkClosure {
            label,
            captures: caps.into_boxed_slice(),
        });
        self.depth += 1;
        Ok(())
    }

    /// Emit a thunk build over `e`, queueing its code.
    fn emit_thunk(
        &mut self,
        e: &Expr,
        charge: ChargeKind,
        per_projection: bool,
    ) -> Result<(), CompileError> {
        let (caps, body_scope) = self.capture_scope(e)?;
        let label = self.new_label();
        self.pending.push_back(PendingBody {
            label,
            env_depth: caps.len() as u16,
            scope: body_scope,
            kind: BodyKind::Eval(e.clone()),
        });
        self.ops.push(Op::MkThunk {
            label,
            captures: caps.into_boxed_slice(),
            charge,
            per_projection,
        });
        self.depth += 1;
        self.uses_thunks = true;
        Ok(())
    }

    /// Compute the capture list for a nested code object: free variables
    /// resolving to slots are captured in order; compile-time aliases
    /// (literals, nullary constructors) carry over without capture.
    fn capture_scope(&mut self, e: &Expr) -> Result<CaptureScope, CompileError> {
        let mut caps: Vec<u16> = Vec::new();
        let mut scope: Vec<(Name, Binding)> = Vec::new();
        for v in free_term_vars(e) {
            match self.resolve(&v)? {
                Binding::Slot(i) => {
                    scope.push((v, Binding::Slot(caps.len() as u16)));
                    caps.push(i);
                }
                b => scope.push((v, b)),
            }
        }
        Ok((caps, scope))
    }

    /// Turn a `Fall` continuation into a merge label; pass others through.
    fn merge_cont(&mut self, cont: Cont) -> (Cont, Option<u32>) {
        match cont {
            Cont::Fall => {
                let label = self.new_label();
                (
                    Cont::Goto {
                        label,
                        env_depth: self.env_depth,
                        operand_depth: self.depth,
                    },
                    Some(label),
                )
            }
            other => (other, None),
        }
    }

    fn compile_case(&mut self, s: &Expr, alts: &[Alt], cont: Cont) -> Result<Flow, CompileError> {
        if self.compile_eval(s, Cont::Fall)? == Flow::Diverges {
            return Ok(Flow::Diverges);
        }
        self.depth -= 1; // Case pops the scrutinee.
        let entry_env = self.env_depth;
        let entry_depth = self.depth;
        let (inner, merge) = self.merge_cont(cont);
        let mut con_arms: Vec<(u32, u32, u16)> = Vec::new();
        let mut lit_arms: Vec<(i64, u32)> = Vec::new();
        let mut default = None;
        let mut arms: Vec<(u32, &Alt)> = Vec::new();
        for alt in alts {
            let label = self.new_label();
            match &alt.con {
                AltCon::Con(c) => {
                    let tag = self.intern(c);
                    con_arms.push((tag, label, alt.binders.len() as u16));
                }
                AltCon::Lit(n) => lit_arms.push((*n, label)),
                AltCon::Default => {
                    if default.is_none() {
                        default = Some(label);
                    }
                }
            }
            arms.push((label, alt));
        }
        self.ops.push(Op::Case(Box::new(CaseTable {
            con_arms: con_arms.into_boxed_slice(),
            lit_arms: lit_arms.into_boxed_slice(),
            default,
        })));
        let scope_mark = self.scope.len();
        let mut any_leaves = false;
        for (label, alt) in arms {
            self.bind_label(label);
            self.env_depth = entry_env;
            self.depth = entry_depth;
            // Field binders become fresh slots (pushed by the Case op;
            // free, as in the machine — the cell already paid).
            for (i, b) in alt.binders.iter().enumerate() {
                self.scope
                    .push((b.name.clone(), Binding::Slot(entry_env + i as u16)));
            }
            self.env_depth += alt.binders.len() as u16;
            if self.compile_eval(&alt.rhs, inner)? == Flow::Leaves {
                any_leaves = true;
            }
            self.scope.truncate(scope_mark);
        }
        if let Some(label) = merge {
            if any_leaves {
                self.bind_label(label);
                self.env_depth = entry_env;
                self.depth = entry_depth + 1;
            }
        }
        Ok(if any_leaves {
            Flow::Leaves
        } else {
            Flow::Diverges
        })
    }

    fn compile_let(
        &mut self,
        bind: &LetBind,
        body: &Expr,
        cont: Cont,
    ) -> Result<Flow, CompileError> {
        match bind {
            LetBind::NonRec(b, rhs) => {
                if is_cheap(rhs) {
                    // The machine substitutes cheap right-hand sides
                    // inline for free; we alias at compile time.
                    let alias = match &**rhs {
                        Expr::Var(x) => self.resolve(x)?,
                        Expr::Lit(n) => Binding::Lit(*n),
                        Expr::Con(c, _, _) => {
                            let tag = self.intern(c);
                            Binding::Con0(tag)
                        }
                        _ => unreachable!("cheap is atom or nullary con"),
                    };
                    self.scope.push((b.name.clone(), alias));
                    let flow = self.compile_eval(body, cont)?;
                    self.scope.pop();
                    return Ok(flow);
                }
                self.compile_let_rhs(rhs)?;
                self.ops.push(Op::Bind { charge_let: true });
                self.depth -= 1;
                self.scope
                    .push((b.name.clone(), Binding::Slot(self.env_depth)));
                self.env_depth += 1;
                let flow = self.compile_eval(body, cont)?;
                self.scope.pop();
                Ok(flow)
            }
            LetBind::Rec(binds) => self.compile_letrec(binds, body, cont),
        }
    }

    /// A non-cheap, non-recursive `let` right-hand side, on the stack.
    fn compile_let_rhs(&mut self, rhs: &Expr) -> Result<(), CompileError> {
        match rhs {
            Expr::Lam(..) | Expr::TyLam(..) => self.emit_closure(rhs),
            Expr::Con(c, _, fields) if is_answer_m(self.mode, rhs) => {
                // Answer cell bound unevaluated: one `con` unit.
                self.compile_con(&c.clone(), fields, true)
            }
            _ if self.mode == EvalMode::CallByValue => {
                // Strict `let`: evaluate, then bind (LetStrict frame).
                let flow = self.compile_eval(rhs, Cont::Fall)?;
                debug_assert_eq!(flow, Flow::Leaves, "let RHS is Δ-resetting");
                Ok(())
            }
            _ => self.emit_thunk(rhs, ChargeKind::Let, false),
        }
    }

    fn compile_letrec(
        &mut self,
        binds: &[(Binder, Expr)],
        body: &Expr,
        cont: Cont,
    ) -> Result<Flow, CompileError> {
        // Bind every name to its future slot first: right-hand sides see
        // the whole group (and capture siblings through backpatching).
        let scope_mark = self.scope.len();
        let base = self.env_depth;
        for (i, (b, _)) in binds.iter().enumerate() {
            self.scope
                .push((b.name.clone(), Binding::Slot(base + i as u16)));
        }
        self.env_depth += binds.len() as u16;
        let mut specs: Vec<RecBinding> = Vec::with_capacity(binds.len());
        for (_, rhs) in binds {
            let spec = match rhs {
                Expr::Lit(n) => RecBinding::Int(*n),
                Expr::Lam(..) | Expr::TyLam(..) => {
                    let (caps, mut body_scope) = self.capture_scope(rhs)?;
                    let n_caps = caps.len() as u16;
                    let label = self.new_label();
                    let (env_depth, body_expr) = match rhs {
                        Expr::Lam(b2, body2) => {
                            body_scope.push((b2.name.clone(), Binding::Slot(n_caps)));
                            (n_caps + 1, (**body2).clone())
                        }
                        Expr::TyLam(_, body2) => (n_caps, (**body2).clone()),
                        _ => unreachable!(),
                    };
                    self.pending.push_back(PendingBody {
                        label,
                        scope: body_scope,
                        env_depth,
                        kind: BodyKind::Eval(body_expr),
                    });
                    RecBinding::Closure {
                        label,
                        captures: caps.into_boxed_slice(),
                    }
                }
                Expr::Con(_, _, fields) if is_answer_m(self.mode, rhs) => {
                    // Pre-built cell: charged `con` at the bind (unless
                    // nullary, which is free), rebuilt uncharged on
                    // demand — cyclic cells stay cyclic through the
                    // thunk indirection, like the machine's heap names.
                    let (caps, body_scope) = self.capture_scope(rhs)?;
                    let label = self.new_label();
                    self.pending.push_back(PendingBody {
                        label,
                        env_depth: caps.len() as u16,
                        scope: body_scope,
                        kind: BodyKind::ConRecipe(rhs.clone()),
                    });
                    self.uses_thunks = true;
                    RecBinding::Thunk {
                        label,
                        captures: caps.into_boxed_slice(),
                        charge: if fields.is_empty() {
                            ChargeKind::Free
                        } else {
                            ChargeKind::Con
                        },
                    }
                }
                _ => {
                    // Anything else — including atoms, which the machine
                    // does *not* inline in recursive groups — becomes a
                    // thunk charged one `let` unit.
                    let (caps, body_scope) = self.capture_scope(rhs)?;
                    let label = self.new_label();
                    self.pending.push_back(PendingBody {
                        label,
                        env_depth: caps.len() as u16,
                        scope: body_scope,
                        kind: BodyKind::Eval(rhs.clone()),
                    });
                    self.uses_thunks = true;
                    RecBinding::Thunk {
                        label,
                        captures: caps.into_boxed_slice(),
                        charge: ChargeKind::Let,
                    }
                }
            };
            specs.push(spec);
        }
        self.ops.push(Op::LetRec(specs.into_boxed_slice()));
        let flow = self.compile_eval(body, cont)?;
        self.scope.truncate(scope_mark);
        Ok(flow)
    }

    fn compile_join(
        &mut self,
        jb: &JoinBind,
        body: &Expr,
        cont: Cont,
    ) -> Result<Flow, CompileError> {
        let entry_env = self.env_depth;
        let entry_depth = self.depth;
        let (inner, merge) = self.merge_cont(cont);
        let joins_mark = self.joins.len();
        let mut infos: Vec<JoinInfo> = Vec::with_capacity(jb.defs().len());
        for def in jb.defs() {
            let label = self.new_label();
            let info = JoinInfo {
                label,
                env_keep: entry_env,
                arity: def.params.len() as u16,
                operand_depth: entry_depth,
            };
            infos.push(info.clone());
            self.joins.push((def.name.clone(), info));
        }
        let mut any_leaves = self.compile_eval(body, inner)? == Flow::Leaves;
        // Recursive join bodies may jump to the whole group; a
        // non-recursive body must not see its own label.
        if !jb.is_rec() {
            self.joins.truncate(joins_mark);
        }
        let scope_mark = self.scope.len();
        for (def, info) in jb.defs().iter().zip(&infos) {
            self.bind_label(info.label);
            self.env_depth = entry_env;
            self.depth = entry_depth;
            for (k, p) in def.params.iter().enumerate() {
                self.scope
                    .push((p.name.clone(), Binding::Slot(entry_env + k as u16)));
            }
            self.env_depth += def.params.len() as u16;
            if self.compile_eval(&def.body, inner)? == Flow::Leaves {
                any_leaves = true;
            }
            self.scope.truncate(scope_mark);
        }
        self.joins.truncate(joins_mark);
        if let Some(label) = merge {
            if any_leaves {
                self.bind_label(label);
                self.env_depth = entry_env;
                self.depth = entry_depth + 1;
            }
        }
        Ok(if any_leaves {
            Flow::Leaves
        } else {
            Flow::Diverges
        })
    }

    fn compile_jump(&mut self, j: &Name, args: &[Expr]) -> Result<(), CompileError> {
        let info = self
            .joins
            .iter()
            .rev()
            .find(|(n, _)| n == j)
            .map(|(_, i)| i.clone())
            .ok_or_else(|| CompileError::UnboundLabel(j.clone()))?;
        if args.len() > 64 {
            return Err(CompileError::Unsupported(format!(
                "jump arity {} exceeds 64",
                args.len()
            )));
        }
        let mut mask = 0u64;
        for (i, a) in args.iter().enumerate() {
            self.compile_arg(a)?;
            if !is_cheap(a) {
                mask |= 1 << i;
            }
        }
        debug_assert_eq!(
            self.depth - args.len() as u16,
            info.operand_depth,
            "jump site and join point must share an operand depth"
        );
        debug_assert_eq!(info.arity as usize, args.len(), "jumps are saturated");
        self.ops.push(Op::Jump {
            target: info.label,
            env_keep: info.env_keep,
            arity: info.arity,
            charge_mask: mask,
        });
        self.depth = info.operand_depth;
        Ok(())
    }

    /// Rewrite every label id into an absolute instruction index.
    fn finalize(&mut self) {
        let labels = &self.labels;
        let fix = |l: &mut u32| {
            let t = labels[*l as usize];
            debug_assert_ne!(t, UNBOUND, "referenced label never bound");
            *l = t;
        };
        for op in &mut self.ops {
            match op {
                Op::MkClosure { label, .. } | Op::MkThunk { label, .. } | Op::Goto(label) => {
                    fix(label);
                }
                Op::Jump { target, .. } => fix(target),
                Op::Case(table) => {
                    for (_, t, _) in table.con_arms.iter_mut() {
                        fix(t);
                    }
                    for (_, t) in table.lit_arms.iter_mut() {
                        fix(t);
                    }
                    if let Some(d) = &mut table.default {
                        fix(d);
                    }
                }
                Op::LetRec(specs) => {
                    for spec in specs.iter_mut() {
                        match spec {
                            RecBinding::Closure { label, .. } | RecBinding::Thunk { label, .. } => {
                                fix(label)
                            }
                            RecBinding::Int(_) => {}
                        }
                    }
                }
                _ => {}
            }
        }
    }
}
