//! Lowering: well-typed F_J terms to flat bytecode.
//!
//! The compiler resolves every variable to a frame-relative slot and
//! every join label to a code address plus a static environment depth.
//! The latter is what the Lint discipline buys us: a `jump` may occur
//! only in Δ-preserving contexts (tail positions, case branches,
//! scrutinees, function heads, `let`/`join` bodies), and none of those
//! contexts leaves extra operand-stack entries behind — so every jump
//! site sits at exactly the operand depth of its target join point, and
//! [`Op::Jump`] needs no runtime stack scan at all. The compiler tracks
//! both depths statically and `debug_assert`s the invariant at every
//! jump it emits.
//!
//! The metrics-charging policy of the Fig. 3 machine (which values cost
//! a `let`/`arg`/`con` unit, and — the paper's point — that joins and
//! jumps cost *nothing*) is decided here at compile time and baked into
//! the instruction flags; see the per-construct comments.

use crate::ops::{CaseTable, ChargeKind, Code, JumpSpec, Op, Program, RecBinding};
use fj_ast::{Alt, AltCon, Binder, Expr, Ident, JoinBind, LetBind, Name};
use fj_ast::{FxHashMap, FxHashSet};
use fj_eval::EvalMode;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::sync::OnceLock;

/// Interned tag of the `True` constructor (fixed, so [`Op::Prim`] can
/// build booleans without a lookup).
pub const TAG_TRUE: u32 = 0;
/// Interned tag of the `False` constructor.
pub const TAG_FALSE: u32 = 1;

/// Why a term could not be lowered (all impossible on Lint-clean input).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// A free term variable with no binding in scope.
    UnboundVar(Name),
    /// A jump to a label bound in no enclosing join.
    UnboundLabel(Name),
    /// A shape the backend does not support.
    Unsupported(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnboundVar(x) => write!(f, "unbound variable {x}"),
            CompileError::UnboundLabel(j) => write!(f, "unbound join label {j}"),
            CompileError::Unsupported(msg) => write!(f, "unsupported term: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// What a name resolves to. Cheap right-hand sides (atoms, nullary
/// constructors) are aliased at compile time — the machine substitutes
/// them inline for free, and so do we.
#[derive(Clone, Debug)]
enum Binding {
    Slot(u16),
    Lit(i64),
    Con0(u32),
}

/// A join label's static data: code entry, slot depth at its definition
/// point, arity, and (for assertions) the operand depth shared by the
/// join body and every legal jump site.
#[derive(Clone, Debug)]
struct JoinInfo {
    label: u32,
    env_keep: u16,
    arity: u16,
    operand_depth: u16,
}

/// Where an expression's value goes.
#[derive(Clone, Copy, Debug)]
enum Cont {
    /// Leave it on the operand stack; code continues.
    Fall,
    /// Return it to the calling frame (tail position).
    Ret,
    /// Branch to a merge point, first restoring the slot depth the merge
    /// was declared at (paths from different case arms bind different
    /// numbers of slots).
    Goto {
        label: u32,
        env_depth: u16,
        operand_depth: u16,
    },
}

/// Whether control can proceed past an expression, or it always jumps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Flow {
    /// The value is delivered to the continuation.
    Leaves,
    /// Every path ends in a `jump`; code after this point is dead and is
    /// not emitted.
    Diverges,
}

/// A code object queued for emission.
struct PendingBody {
    label: u32,
    scope: Vec<(Name, Binding)>,
    env_depth: u16,
    kind: BodyKind,
}

enum BodyKind {
    /// Evaluate the expression and return it.
    Eval(Expr),
    /// Rebuild a pre-charged recursive constructor cell (the machine
    /// charges `letrec x = K …` once at its bind step; each rebuild is
    /// free, so the recipe's root build carries no charge).
    ConRecipe(Expr),
}

const UNBOUND: u32 = u32::MAX;

/// A nested code object's compile-time scope (see
/// [`Compiler::capture_scope`]).
type CaptureScope = (Vec<u16>, Vec<(Name, Binding)>);

struct Compiler {
    mode: EvalMode,
    ops: Vec<Op>,
    labels: Vec<u32>,
    tags: FxHashMap<Ident, u32>,
    idents: Vec<Ident>,
    cases: Vec<CaseTable>,
    captures: Vec<Box<[u16]>>,
    capture_ids: FxHashMap<Vec<u16>, u32>,
    rec_groups: Vec<Box<[RecBinding]>>,
    jump_specs: Vec<JumpSpec>,
    pending: VecDeque<PendingBody>,
    uses_thunks: bool,
    // Per-code-object state:
    scope: Vec<(Name, Binding)>,
    joins: Vec<(Name, JoinInfo)>,
    env_depth: u16,
    depth: u16,
}

/// Compile-time options. The only knob today is the fusion peephole,
/// whose default comes from the `FJ_VM_FUSE` environment variable
/// (`FJ_VM_FUSE=0` disables it process-wide — the CI oracle runs the
/// whole differential suite once that way).
#[derive(Clone, Copy, Debug)]
pub struct CompileOpts {
    /// Run the superinstruction peephole over the finalized stream.
    pub fuse: bool,
}

impl Default for CompileOpts {
    fn default() -> Self {
        CompileOpts {
            fuse: fuse_default(),
        }
    }
}

/// The process-wide fusion default: `true` unless `FJ_VM_FUSE=0`.
#[must_use]
pub fn fuse_default() -> bool {
    static FUSE: OnceLock<bool> = OnceLock::new();
    *FUSE.get_or_init(|| std::env::var("FJ_VM_FUSE").map_or(true, |v| v != "0"))
}

/// Compile a closed, Lint-clean term for one evaluation mode. Laziness
/// and the allocation-charging policy differ per mode, so the mode is
/// baked into the program. Fusion follows [`fuse_default`]; use
/// [`compile_with`] to pin it explicitly (the fuzz farm compiles both
/// ways and diffs them).
///
/// # Errors
///
/// Returns a [`CompileError`] on unbound variables or labels — both
/// impossible for terms accepted by `fj_check::lint`.
pub fn compile(e: &Expr, mode: EvalMode) -> Result<Program, CompileError> {
    compile_with(e, mode, CompileOpts::default())
}

/// As [`compile`], with explicit [`CompileOpts`].
///
/// # Errors
///
/// As [`compile`].
pub fn compile_with(e: &Expr, mode: EvalMode, opts: CompileOpts) -> Result<Program, CompileError> {
    let mut c = Compiler {
        mode,
        ops: vec![Op::Halt],
        labels: Vec::new(),
        tags: FxHashMap::default(),
        idents: Vec::new(),
        cases: Vec::new(),
        captures: Vec::new(),
        capture_ids: FxHashMap::default(),
        rec_groups: Vec::new(),
        jump_specs: Vec::new(),
        pending: VecDeque::new(),
        uses_thunks: false,
        scope: Vec::new(),
        joins: Vec::new(),
        env_depth: 0,
        depth: 0,
    };
    assert_eq!(c.intern(&Ident::new("True")), TAG_TRUE);
    assert_eq!(c.intern(&Ident::new("False")), TAG_FALSE);
    let mut entry = c.ops.len() as u32;
    c.compile_eval(e, Cont::Ret)?;
    while let Some(p) = c.pending.pop_front() {
        c.bind_label(p.label);
        c.scope = p.scope;
        c.joins.clear();
        c.env_depth = p.env_depth;
        c.depth = 0;
        match p.kind {
            BodyKind::Eval(body) => {
                c.compile_eval(&body, Cont::Ret)?;
            }
            BodyKind::ConRecipe(con) => {
                let Expr::Con(ident, _, fields) = &con else {
                    unreachable!("ConRecipe bodies are constructors");
                };
                c.compile_con(ident, fields, false)?;
                c.ops.push(Op::Ret);
            }
        }
    }
    c.finalize();
    let Compiler {
        mut ops,
        idents,
        mut cases,
        captures,
        mut rec_groups,
        mut jump_specs,
        uses_thunks,
        ..
    } = c;
    if opts.fuse {
        fuse(
            &mut ops,
            &mut cases,
            &mut rec_groups,
            &mut jump_specs,
            &mut entry,
            uses_thunks,
        );
    }
    Ok(Program {
        code: Arc::new(Code {
            ops,
            cases,
            captures,
            rec_groups,
            jump_specs,
            idents,
            entry,
        }),
        mode,
        uses_thunks,
        fused: opts.fuse,
    })
}

/// The machine's `is_cheap`: freely duplicable, substituted inline,
/// never charged.
fn is_cheap(e: &Expr) -> bool {
    e.is_atom() || matches!(e, Expr::Con(_, _, args) if args.is_empty())
}

/// The machine's mode-dependent `is_answer`.
fn is_answer_m(mode: EvalMode, e: &Expr) -> bool {
    match e {
        Expr::Lam(..) | Expr::TyLam(..) | Expr::Lit(_) => true,
        Expr::Con(_, _, args) => {
            mode != EvalMode::CallByValue
                || args.iter().all(|a| is_answer_m(mode, a) || a.is_atom())
        }
        _ => false,
    }
}

/// Free *term* variables of `e`, in first-use order. Join labels are a
/// separate namespace (only `jump` refers to them) and never count.
fn free_term_vars(e: &Expr) -> Vec<Name> {
    fn go(e: &Expr, bound: &mut Vec<Name>, seen: &mut FxHashSet<Name>, acc: &mut Vec<Name>) {
        match e {
            Expr::Var(x) => {
                if !bound.contains(x) && seen.insert(x.clone()) {
                    acc.push(x.clone());
                }
            }
            Expr::Lit(_) => {}
            Expr::Prim(_, args) | Expr::Jump(_, _, args, _) => {
                for a in args {
                    go(a, bound, seen, acc);
                }
            }
            Expr::Lam(b, body) => {
                bound.push(b.name.clone());
                go(body, bound, seen, acc);
                bound.pop();
            }
            Expr::App(f, a) => {
                go(f, bound, seen, acc);
                go(a, bound, seen, acc);
            }
            Expr::TyLam(_, body) => go(body, bound, seen, acc),
            Expr::TyApp(f, _) => go(f, bound, seen, acc),
            Expr::Con(_, _, fields) => {
                for f in fields {
                    go(f, bound, seen, acc);
                }
            }
            Expr::Case(s, alts) => {
                go(s, bound, seen, acc);
                for alt in alts {
                    let mark = bound.len();
                    bound.extend(alt.binders.iter().map(|b| b.name.clone()));
                    go(&alt.rhs, bound, seen, acc);
                    bound.truncate(mark);
                }
            }
            Expr::Let(LetBind::NonRec(b, rhs), body) => {
                go(rhs, bound, seen, acc);
                bound.push(b.name.clone());
                go(body, bound, seen, acc);
                bound.pop();
            }
            Expr::Let(LetBind::Rec(binds), body) => {
                let mark = bound.len();
                bound.extend(binds.iter().map(|(b, _)| b.name.clone()));
                for (_, rhs) in binds {
                    go(rhs, bound, seen, acc);
                }
                go(body, bound, seen, acc);
                bound.truncate(mark);
            }
            Expr::Join(jb, body) => {
                for def in jb.defs() {
                    let mark = bound.len();
                    bound.extend(def.params.iter().map(|b| b.name.clone()));
                    go(&def.body, bound, seen, acc);
                    bound.truncate(mark);
                }
                go(body, bound, seen, acc);
            }
        }
    }
    let mut acc = Vec::new();
    go(e, &mut Vec::new(), &mut FxHashSet::default(), &mut acc);
    acc
}

impl Compiler {
    fn intern(&mut self, c: &Ident) -> u32 {
        if let Some(&t) = self.tags.get(c) {
            return t;
        }
        let t = self.idents.len() as u32;
        self.idents.push(c.clone());
        self.tags.insert(c.clone(), t);
        t
    }

    fn new_label(&mut self) -> u32 {
        self.labels.push(UNBOUND);
        (self.labels.len() - 1) as u32
    }

    fn bind_label(&mut self, l: u32) {
        debug_assert_eq!(self.labels[l as usize], UNBOUND, "label bound twice");
        self.labels[l as usize] = self.ops.len() as u32;
    }

    fn resolve(&self, x: &Name) -> Result<Binding, CompileError> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == x)
            .map(|(_, b)| b.clone())
            .ok_or_else(|| CompileError::UnboundVar(x.clone()))
    }

    /// Push a variable's value. `force` distinguishes evaluation
    /// positions (the machine focuses the variable, entering thunks)
    /// from alias positions (arguments, fields: the machine substitutes
    /// the name and shares the heap cell untouched).
    fn load_var(&mut self, x: &Name, force: bool) -> Result<(), CompileError> {
        match self.resolve(x)? {
            Binding::Slot(i) => self
                .ops
                .push(if force { Op::LoadForce(i) } else { Op::Load(i) }),
            Binding::Lit(n) => self.ops.push(Op::PushInt(n)),
            Binding::Con0(tag) => self.ops.push(Op::MkCon {
                tag,
                arity: 0,
                charge: false,
            }),
        }
        self.depth += 1;
        Ok(())
    }

    /// Finish a `Leaves` path: hand the stacked value to the
    /// continuation.
    fn leave(&mut self, cont: Cont) {
        match cont {
            Cont::Fall => {}
            Cont::Ret => self.ops.push(Op::Ret),
            Cont::Goto {
                label,
                env_depth,
                operand_depth,
            } => {
                debug_assert_eq!(self.depth, operand_depth + 1, "merge depth mismatch");
                if self.env_depth > env_depth {
                    self.ops.push(Op::PopEnv(self.env_depth - env_depth));
                }
                self.ops.push(Op::Goto(label));
            }
        }
    }

    /// Compile `e` so its weak-head value reaches `cont`. Returns whether
    /// any path actually does (or every path jumps away).
    #[allow(clippy::too_many_lines)]
    fn compile_eval(&mut self, e: &Expr, cont: Cont) -> Result<Flow, CompileError> {
        match e {
            Expr::Lit(n) => {
                self.ops.push(Op::PushInt(*n));
                self.depth += 1;
                self.leave(cont);
                Ok(Flow::Leaves)
            }
            Expr::Var(x) => {
                self.load_var(x, true)?;
                self.leave(cont);
                Ok(Flow::Leaves)
            }
            Expr::Lam(..) | Expr::TyLam(..) => {
                self.emit_closure(e)?;
                self.leave(cont);
                Ok(Flow::Leaves)
            }
            Expr::Con(c, _, fields) => {
                // An evaluated-position constructor always charges its
                // root cell: the machine counts it either at focus time
                // or at its ConArgs completion step.
                self.compile_con(&c.clone(), fields, true)?;
                self.leave(cont);
                Ok(Flow::Leaves)
            }
            Expr::Prim(op, args) => {
                if args.len() != 2 {
                    return Err(CompileError::Unsupported(format!(
                        "primop {op} with {} operands",
                        args.len()
                    )));
                }
                // Operands are Δ-resetting, so neither can diverge.
                if self.compile_eval(&args[0], Cont::Fall)? == Flow::Diverges {
                    return Ok(Flow::Diverges);
                }
                if self.compile_eval(&args[1], Cont::Fall)? == Flow::Diverges {
                    return Ok(Flow::Diverges);
                }
                self.ops.push(Op::Prim(*op));
                self.depth -= 1;
                self.leave(cont);
                Ok(Flow::Leaves)
            }
            Expr::App(f, a) => {
                // The machine evaluates the function head first, then
                // the argument (strict modes) — same order here.
                if self.compile_eval(f, Cont::Fall)? == Flow::Diverges {
                    return Ok(Flow::Diverges);
                }
                let charge_arg = !is_cheap(a);
                self.compile_arg(a)?;
                self.depth -= 2;
                if matches!(cont, Cont::Ret) {
                    self.ops.push(Op::TailCall { charge_arg });
                    self.depth += 1;
                } else {
                    self.ops.push(Op::Call { charge_arg });
                    self.depth += 1;
                    self.leave(cont);
                }
                Ok(Flow::Leaves)
            }
            Expr::TyApp(f, _) => {
                if self.compile_eval(f, Cont::Fall)? == Flow::Diverges {
                    return Ok(Flow::Diverges);
                }
                if matches!(cont, Cont::Ret) {
                    self.ops.push(Op::TailCallTy);
                } else {
                    self.ops.push(Op::CallTy);
                    self.leave(cont);
                }
                Ok(Flow::Leaves)
            }
            Expr::Case(s, alts) => self.compile_case(s, alts, cont),
            Expr::Let(bind, body) => self.compile_let(bind, body, cont),
            Expr::Join(jb, body) => self.compile_join(jb, body, cont),
            Expr::Jump(j, _, args, _) => {
                self.compile_jump(j, args)?;
                Ok(Flow::Diverges)
            }
        }
    }

    /// Compile one argument (function application or jump). The charging
    /// decision — cheap arguments are free, anything else charges an
    /// `arg` unit iff its value is a closure — lives in the call site's
    /// flag; this only builds the value (or thunk, in lazy modes).
    fn compile_arg(&mut self, a: &Expr) -> Result<(), CompileError> {
        match a {
            Expr::Var(x) => return self.load_var(x, false),
            Expr::Lit(n) => {
                self.ops.push(Op::PushInt(*n));
            }
            Expr::Con(c, _, fields) if fields.is_empty() => {
                let tag = self.intern(c);
                self.ops.push(Op::MkCon {
                    tag,
                    arity: 0,
                    charge: false,
                });
            }
            Expr::Lam(..) | Expr::TyLam(..) => {
                self.emit_closure(a)?;
                return Ok(());
            }
            _ if self.mode == EvalMode::CallByValue => {
                if is_answer_m(self.mode, a) {
                    // Answer-shaped constructor: bound as-is, charging
                    // its cell at the bind (`store_binding` on an
                    // unevaluated cell).
                    let Expr::Con(c, _, fields) = a else {
                        unreachable!("non-atom CBV answers are constructors");
                    };
                    self.compile_con(&c.clone(), fields, true)?;
                } else {
                    let flow = self.compile_eval(a, Cont::Fall)?;
                    debug_assert_eq!(flow, Flow::Leaves, "arguments are Δ-resetting");
                }
                return Ok(());
            }
            Expr::Con(c, _, fields) => {
                // Lazy modes: constructors are answers; the cell binds
                // unevaluated and charges one `con` unit.
                self.compile_con(&c.clone(), fields, true)?;
                return Ok(());
            }
            _ => {
                // Lazy modes: a thunk, charged one `arg` unit now.
                self.emit_thunk(a, ChargeKind::Arg, false)?;
                return Ok(());
            }
        }
        self.depth += 1;
        Ok(())
    }

    /// Build a constructor value. `root_charge` is false only for nested
    /// nodes of answer-shaped cells and for `letrec` recipes — the
    /// machine never focuses those nodes, so they never count.
    fn compile_con(
        &mut self,
        c: &Ident,
        fields: &[Expr],
        root_charge: bool,
    ) -> Result<(), CompileError> {
        let tag = self.intern(c);
        let arity = fields.len();
        if self.mode == EvalMode::CallByValue
            && !fields
                .iter()
                .all(|f| f.is_atom() || is_answer_m(self.mode, f))
        {
            // Strict, non-answer cell: every field is evaluated to WHNF
            // left to right (the ConArgs frames), then the completed
            // cell charges once.
            for f in fields {
                let flow = self.compile_eval(f, Cont::Fall)?;
                debug_assert_eq!(flow, Flow::Leaves, "fields are Δ-resetting");
            }
            debug_assert!(root_charge, "non-answer cells always charge at completion");
        } else {
            // Answer-shaped (always, in lazy modes): the cell is built
            // as-is. Nested constructors are never focused by the
            // machine, so they build uncharged.
            for f in fields {
                self.compile_quoted_field(f)?;
            }
        }
        self.ops.push(Op::MkCon {
            tag,
            arity: arity as u16,
            charge: root_charge && arity > 0,
        });
        self.depth = self.depth - arity as u16 + 1;
        Ok(())
    }

    /// One field of an answer-shaped (or lazy) constructor cell.
    fn compile_quoted_field(&mut self, f: &Expr) -> Result<(), CompileError> {
        match f {
            Expr::Var(x) => self.load_var(x, false),
            Expr::Lit(n) => {
                self.ops.push(Op::PushInt(*n));
                self.depth += 1;
                Ok(())
            }
            Expr::Lam(..) | Expr::TyLam(..) => self.emit_closure(f),
            Expr::Con(c, _, fs) => self.compile_con(&c.clone(), fs, false),
            _ => {
                debug_assert_ne!(
                    self.mode,
                    EvalMode::CallByValue,
                    "CBV answer cells have answer fields"
                );
                // Lazy field: a free thunk. The machine builds one per
                // case projection; `per_projection` makes call-by-need
                // clone a fresh pending cell each time, so forcing
                // counts match exactly.
                self.emit_thunk(f, ChargeKind::Free, true)
            }
        }
    }

    /// Emit a closure build for a `λ`/`Λ` literal, queueing its body.
    fn emit_closure(&mut self, e: &Expr) -> Result<(), CompileError> {
        let (caps, mut body_scope) = self.capture_scope(e)?;
        let n_caps = caps.len() as u16;
        let label = self.new_label();
        let body = match e {
            Expr::Lam(b, body) => {
                body_scope.push((b.name.clone(), Binding::Slot(n_caps)));
                self.pending.push_back(PendingBody {
                    label,
                    scope: body_scope,
                    env_depth: n_caps + 1,
                    kind: BodyKind::Eval((**body).clone()),
                });
                return self.finish_closure(label, caps);
            }
            Expr::TyLam(_, body) => (**body).clone(),
            _ => unreachable!("emit_closure on non-lambda"),
        };
        self.pending.push_back(PendingBody {
            label,
            scope: body_scope,
            env_depth: n_caps,
            kind: BodyKind::Eval(body),
        });
        self.finish_closure(label, caps)
    }

    fn finish_closure(&mut self, label: u32, caps: Vec<u16>) -> Result<(), CompileError> {
        let caps = self.intern_caps(caps);
        self.ops.push(Op::MkClosure { label, caps });
        self.depth += 1;
        Ok(())
    }

    /// Intern a capture list into the shared side table (identical lists
    /// — the empty list above all — share one entry).
    fn intern_caps(&mut self, caps: Vec<u16>) -> u32 {
        if let Some(&id) = self.capture_ids.get(&caps) {
            return id;
        }
        let id = self.captures.len() as u32;
        self.captures.push(caps.clone().into_boxed_slice());
        self.capture_ids.insert(caps, id);
        id
    }

    /// Emit a thunk build over `e`, queueing its code.
    fn emit_thunk(
        &mut self,
        e: &Expr,
        charge: ChargeKind,
        per_projection: bool,
    ) -> Result<(), CompileError> {
        let (caps, body_scope) = self.capture_scope(e)?;
        let label = self.new_label();
        self.pending.push_back(PendingBody {
            label,
            env_depth: caps.len() as u16,
            scope: body_scope,
            kind: BodyKind::Eval(e.clone()),
        });
        let caps = self.intern_caps(caps);
        self.ops.push(Op::MkThunk {
            label,
            caps,
            charge,
            per_projection,
        });
        self.depth += 1;
        self.uses_thunks = true;
        Ok(())
    }

    /// Compute the capture list for a nested code object: free variables
    /// resolving to slots are captured in order; compile-time aliases
    /// (literals, nullary constructors) carry over without capture.
    fn capture_scope(&mut self, e: &Expr) -> Result<CaptureScope, CompileError> {
        let mut caps: Vec<u16> = Vec::new();
        let mut scope: Vec<(Name, Binding)> = Vec::new();
        for v in free_term_vars(e) {
            match self.resolve(&v)? {
                Binding::Slot(i) => {
                    scope.push((v, Binding::Slot(caps.len() as u16)));
                    caps.push(i);
                }
                b => scope.push((v, b)),
            }
        }
        Ok((caps, scope))
    }

    /// Turn a `Fall` continuation into a merge label; pass others through.
    fn merge_cont(&mut self, cont: Cont) -> (Cont, Option<u32>) {
        match cont {
            Cont::Fall => {
                let label = self.new_label();
                (
                    Cont::Goto {
                        label,
                        env_depth: self.env_depth,
                        operand_depth: self.depth,
                    },
                    Some(label),
                )
            }
            other => (other, None),
        }
    }

    fn compile_case(&mut self, s: &Expr, alts: &[Alt], cont: Cont) -> Result<Flow, CompileError> {
        if self.compile_eval(s, Cont::Fall)? == Flow::Diverges {
            return Ok(Flow::Diverges);
        }
        self.depth -= 1; // Case pops the scrutinee.
        let entry_env = self.env_depth;
        let entry_depth = self.depth;
        let (inner, merge) = self.merge_cont(cont);
        let mut con_arms: Vec<(u32, u32, u16)> = Vec::new();
        let mut lit_arms: Vec<(i64, u32)> = Vec::new();
        let mut default = None;
        let mut arms: Vec<(u32, &Alt)> = Vec::new();
        for alt in alts {
            let label = self.new_label();
            match &alt.con {
                AltCon::Con(c) => {
                    let tag = self.intern(c);
                    con_arms.push((tag, label, alt.binders.len() as u16));
                }
                AltCon::Lit(n) => lit_arms.push((*n, label)),
                AltCon::Default => {
                    if default.is_none() {
                        default = Some(label);
                    }
                }
            }
            arms.push((label, alt));
        }
        let table = self.cases.len() as u32;
        self.cases.push(CaseTable {
            con_arms: con_arms.into_boxed_slice(),
            lit_arms: lit_arms.into_boxed_slice(),
            default,
        });
        self.ops.push(Op::Case(table));
        let scope_mark = self.scope.len();
        let mut any_leaves = false;
        for (label, alt) in arms {
            self.bind_label(label);
            self.env_depth = entry_env;
            self.depth = entry_depth;
            // Field binders become fresh slots (pushed by the Case op;
            // free, as in the machine — the cell already paid).
            for (i, b) in alt.binders.iter().enumerate() {
                self.scope
                    .push((b.name.clone(), Binding::Slot(entry_env + i as u16)));
            }
            self.env_depth += alt.binders.len() as u16;
            if self.compile_eval(&alt.rhs, inner)? == Flow::Leaves {
                any_leaves = true;
            }
            self.scope.truncate(scope_mark);
        }
        if let Some(label) = merge {
            if any_leaves {
                self.bind_label(label);
                self.env_depth = entry_env;
                self.depth = entry_depth + 1;
            }
        }
        Ok(if any_leaves {
            Flow::Leaves
        } else {
            Flow::Diverges
        })
    }

    fn compile_let(
        &mut self,
        bind: &LetBind,
        body: &Expr,
        cont: Cont,
    ) -> Result<Flow, CompileError> {
        match bind {
            LetBind::NonRec(b, rhs) => {
                if is_cheap(rhs) {
                    // The machine substitutes cheap right-hand sides
                    // inline for free; we alias at compile time.
                    let alias = match &**rhs {
                        Expr::Var(x) => self.resolve(x)?,
                        Expr::Lit(n) => Binding::Lit(*n),
                        Expr::Con(c, _, _) => {
                            let tag = self.intern(c);
                            Binding::Con0(tag)
                        }
                        _ => unreachable!("cheap is atom or nullary con"),
                    };
                    self.scope.push((b.name.clone(), alias));
                    let flow = self.compile_eval(body, cont)?;
                    self.scope.pop();
                    return Ok(flow);
                }
                self.compile_let_rhs(rhs)?;
                self.ops.push(Op::Bind { charge_let: true });
                self.depth -= 1;
                self.scope
                    .push((b.name.clone(), Binding::Slot(self.env_depth)));
                self.env_depth += 1;
                let flow = self.compile_eval(body, cont)?;
                self.scope.pop();
                Ok(flow)
            }
            LetBind::Rec(binds) => self.compile_letrec(binds, body, cont),
        }
    }

    /// A non-cheap, non-recursive `let` right-hand side, on the stack.
    fn compile_let_rhs(&mut self, rhs: &Expr) -> Result<(), CompileError> {
        match rhs {
            Expr::Lam(..) | Expr::TyLam(..) => self.emit_closure(rhs),
            Expr::Con(c, _, fields) if is_answer_m(self.mode, rhs) => {
                // Answer cell bound unevaluated: one `con` unit.
                self.compile_con(&c.clone(), fields, true)
            }
            _ if self.mode == EvalMode::CallByValue => {
                // Strict `let`: evaluate, then bind (LetStrict frame).
                let flow = self.compile_eval(rhs, Cont::Fall)?;
                debug_assert_eq!(flow, Flow::Leaves, "let RHS is Δ-resetting");
                Ok(())
            }
            _ => self.emit_thunk(rhs, ChargeKind::Let, false),
        }
    }

    fn compile_letrec(
        &mut self,
        binds: &[(Binder, Expr)],
        body: &Expr,
        cont: Cont,
    ) -> Result<Flow, CompileError> {
        // Bind every name to its future slot first: right-hand sides see
        // the whole group (and capture siblings through backpatching).
        let scope_mark = self.scope.len();
        let base = self.env_depth;
        for (i, (b, _)) in binds.iter().enumerate() {
            self.scope
                .push((b.name.clone(), Binding::Slot(base + i as u16)));
        }
        self.env_depth += binds.len() as u16;
        let mut specs: Vec<RecBinding> = Vec::with_capacity(binds.len());
        for (_, rhs) in binds {
            let spec = match rhs {
                Expr::Lit(n) => RecBinding::Int(*n),
                Expr::Lam(..) | Expr::TyLam(..) => {
                    let (caps, mut body_scope) = self.capture_scope(rhs)?;
                    let n_caps = caps.len() as u16;
                    let label = self.new_label();
                    let (env_depth, body_expr) = match rhs {
                        Expr::Lam(b2, body2) => {
                            body_scope.push((b2.name.clone(), Binding::Slot(n_caps)));
                            (n_caps + 1, (**body2).clone())
                        }
                        Expr::TyLam(_, body2) => (n_caps, (**body2).clone()),
                        _ => unreachable!(),
                    };
                    self.pending.push_back(PendingBody {
                        label,
                        scope: body_scope,
                        env_depth,
                        kind: BodyKind::Eval(body_expr),
                    });
                    RecBinding::Closure {
                        label,
                        captures: caps.into_boxed_slice(),
                    }
                }
                Expr::Con(_, _, fields) if is_answer_m(self.mode, rhs) => {
                    // Pre-built cell: charged `con` at the bind (unless
                    // nullary, which is free), rebuilt uncharged on
                    // demand — cyclic cells stay cyclic through the
                    // thunk indirection, like the machine's heap names.
                    let (caps, body_scope) = self.capture_scope(rhs)?;
                    let label = self.new_label();
                    self.pending.push_back(PendingBody {
                        label,
                        env_depth: caps.len() as u16,
                        scope: body_scope,
                        kind: BodyKind::ConRecipe(rhs.clone()),
                    });
                    self.uses_thunks = true;
                    RecBinding::Thunk {
                        label,
                        captures: caps.into_boxed_slice(),
                        charge: if fields.is_empty() {
                            ChargeKind::Free
                        } else {
                            ChargeKind::Con
                        },
                    }
                }
                _ => {
                    // Anything else — including atoms, which the machine
                    // does *not* inline in recursive groups — becomes a
                    // thunk charged one `let` unit.
                    let (caps, body_scope) = self.capture_scope(rhs)?;
                    let label = self.new_label();
                    self.pending.push_back(PendingBody {
                        label,
                        env_depth: caps.len() as u16,
                        scope: body_scope,
                        kind: BodyKind::Eval(rhs.clone()),
                    });
                    self.uses_thunks = true;
                    RecBinding::Thunk {
                        label,
                        captures: caps.into_boxed_slice(),
                        charge: ChargeKind::Let,
                    }
                }
            };
            specs.push(spec);
        }
        let group = self.rec_groups.len() as u32;
        self.rec_groups.push(specs.into_boxed_slice());
        self.ops.push(Op::LetRec(group));
        let flow = self.compile_eval(body, cont)?;
        self.scope.truncate(scope_mark);
        Ok(flow)
    }

    fn compile_join(
        &mut self,
        jb: &JoinBind,
        body: &Expr,
        cont: Cont,
    ) -> Result<Flow, CompileError> {
        let entry_env = self.env_depth;
        let entry_depth = self.depth;
        let (inner, merge) = self.merge_cont(cont);
        let joins_mark = self.joins.len();
        let mut infos: Vec<JoinInfo> = Vec::with_capacity(jb.defs().len());
        for def in jb.defs() {
            let label = self.new_label();
            let info = JoinInfo {
                label,
                env_keep: entry_env,
                arity: def.params.len() as u16,
                operand_depth: entry_depth,
            };
            infos.push(info.clone());
            self.joins.push((def.name.clone(), info));
        }
        let mut any_leaves = self.compile_eval(body, inner)? == Flow::Leaves;
        // Recursive join bodies may jump to the whole group; a
        // non-recursive body must not see its own label.
        if !jb.is_rec() {
            self.joins.truncate(joins_mark);
        }
        let scope_mark = self.scope.len();
        for (def, info) in jb.defs().iter().zip(&infos) {
            self.bind_label(info.label);
            self.env_depth = entry_env;
            self.depth = entry_depth;
            for (k, p) in def.params.iter().enumerate() {
                self.scope
                    .push((p.name.clone(), Binding::Slot(entry_env + k as u16)));
            }
            self.env_depth += def.params.len() as u16;
            if self.compile_eval(&def.body, inner)? == Flow::Leaves {
                any_leaves = true;
            }
            self.scope.truncate(scope_mark);
        }
        self.joins.truncate(joins_mark);
        if let Some(label) = merge {
            if any_leaves {
                self.bind_label(label);
                self.env_depth = entry_env;
                self.depth = entry_depth + 1;
            }
        }
        Ok(if any_leaves {
            Flow::Leaves
        } else {
            Flow::Diverges
        })
    }

    fn compile_jump(&mut self, j: &Name, args: &[Expr]) -> Result<(), CompileError> {
        let info = self
            .joins
            .iter()
            .rev()
            .find(|(n, _)| n == j)
            .map(|(_, i)| i.clone())
            .ok_or_else(|| CompileError::UnboundLabel(j.clone()))?;
        if args.len() > 64 {
            return Err(CompileError::Unsupported(format!(
                "jump arity {} exceeds 64",
                args.len()
            )));
        }
        let mut mask = 0u64;
        for (i, a) in args.iter().enumerate() {
            self.compile_arg(a)?;
            if !is_cheap(a) {
                mask |= 1 << i;
            }
        }
        debug_assert_eq!(
            self.depth - args.len() as u16,
            info.operand_depth,
            "jump site and join point must share an operand depth"
        );
        debug_assert_eq!(info.arity as usize, args.len(), "jumps are saturated");
        if mask == 0 {
            // The paper's common case: a charge-free jump stays a single
            // 16-byte word.
            self.ops.push(Op::Jump {
                target: info.label,
                env_keep: info.env_keep,
                arity: info.arity,
            });
        } else {
            let spec = self.jump_specs.len() as u32;
            self.jump_specs.push(JumpSpec {
                target: info.label,
                env_keep: info.env_keep,
                arity: info.arity,
                charge_mask: mask,
            });
            self.ops.push(Op::JumpCharged(spec));
        }
        self.depth = info.operand_depth;
        Ok(())
    }

    /// Rewrite every label id into an absolute instruction index, in the
    /// instruction stream and in every side table.
    fn finalize(&mut self) {
        let labels = &self.labels;
        let fix = |l: &mut u32| {
            let t = labels[*l as usize];
            debug_assert_ne!(t, UNBOUND, "referenced label never bound");
            *l = t;
        };
        for op in &mut self.ops {
            match op {
                Op::MkClosure { label, .. } | Op::MkThunk { label, .. } | Op::Goto(label) => {
                    fix(label);
                }
                Op::Jump { target, .. } => fix(target),
                _ => {}
            }
        }
        for table in &mut self.cases {
            for (_, t, _) in table.con_arms.iter_mut() {
                fix(t);
            }
            for (_, t) in table.lit_arms.iter_mut() {
                fix(t);
            }
            if let Some(d) = &mut table.default {
                fix(d);
            }
        }
        for group in &mut self.rec_groups {
            for spec in group.iter_mut() {
                match spec {
                    RecBinding::Closure { label, .. } | RecBinding::Thunk { label, .. } => {
                        fix(label);
                    }
                    RecBinding::Int(_) => {}
                }
            }
        }
        for spec in &mut self.jump_specs {
            fix(&mut spec.target);
        }
    }
}

/// The superinstruction peephole.
///
/// Runs over the *finalized* stream (every `u32` is already an absolute
/// instruction index). The pass is in three steps:
///
/// 1. Without thunks, `LoadForce` degenerates to `Load` — the force
///    check can never fire — so it is rewritten first, which lets the
///    evaluation-position loads participate in fusion. (With thunks a
///    `LoadForce` may *enter* the thunk mid-instruction and return to
///    the following op, so it is never fused.)
/// 2. A branch-target map: no fusion window may contain a branch target
///    (or a call/force return address) anywhere but its first slot,
///    since control could re-enter the middle of the fused word.
/// 3. A left-to-right scan replacing matched windows (longest pattern
///    first) with one fused op, then a compaction that squeezes the
///    consumed slots out and remaps every code reference — stream,
///    side tables, and entry — so the dispatch loop runs over a dense
///    array with no dead words.
///
/// The fused set was chosen from `fj report --vm-ops` pair/triple
/// histograms over the nofib suite; see DESIGN.md. Each fused op
/// charges the metrics counters exactly as its expansion (the fused
/// jumps still count `jumps`; none of the fusable ops allocate), which
/// the differential suites and the fuzz farm's fused-vs-unfused route
/// check on every run.
fn fuse(
    ops: &mut Vec<Op>,
    cases: &mut [CaseTable],
    rec_groups: &mut [Box<[RecBinding]>],
    jump_specs: &mut [JumpSpec],
    entry: &mut u32,
    uses_thunks: bool,
) {
    if !uses_thunks {
        for op in ops.iter_mut() {
            if let Op::LoadForce(i) = *op {
                *op = Op::Load(i);
            }
        }
    }

    let n = ops.len();
    let mut is_target = vec![false; n];
    // The Halt sentinel: every root frame returns to instruction 0.
    is_target[0] = true;
    is_target[*entry as usize] = true;
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::MkClosure { label, .. } | Op::MkThunk { label, .. } | Op::Goto(label) => {
                is_target[label as usize] = true;
            }
            Op::Jump { target, .. } => is_target[target as usize] = true,
            Op::JumpCharged(s) => is_target[jump_specs[s as usize].target as usize] = true,
            Op::Case(t) => {
                let table = &cases[t as usize];
                for &(_, arm, _) in table.con_arms.iter() {
                    is_target[arm as usize] = true;
                }
                for &(_, arm) in table.lit_arms.iter() {
                    is_target[arm as usize] = true;
                }
                if let Some(d) = table.default {
                    is_target[d as usize] = true;
                }
            }
            Op::LetRec(g) => {
                for spec in rec_groups[g as usize].iter() {
                    match spec {
                        RecBinding::Closure { label, .. } | RecBinding::Thunk { label, .. } => {
                            is_target[*label as usize] = true;
                        }
                        RecBinding::Int(_) => {}
                    }
                }
            }
            // The instruction after a call is its return address; after a
            // LoadForce, a pending thunk's frame returns there too.
            Op::Call { .. } | Op::CallTy | Op::LoadForce(_) if i + 1 < n => {
                is_target[i + 1] = true;
            }
            _ => {}
        }
    }

    let mut consumed = vec![false; n];
    let mut i = 0usize;
    while i < n {
        if consumed[i] {
            i += 1;
            continue;
        }
        let free2 = i + 1 < n && !is_target[i + 1];
        let free3 = free2 && i + 2 < n && !is_target[i + 2];
        let free4 = free3 && i + 3 < n && !is_target[i + 3];
        let fused = 'pick: {
            if let Op::Load(a) = ops[i] {
                if free4 {
                    if let (Op::PushInt(v), Op::Prim(p), Op::Case(t)) =
                        (ops[i + 1], ops[i + 2], ops[i + 3])
                    {
                        if let Ok(n16) = i16::try_from(v) {
                            break 'pick Some((
                                Op::LoadIntPrimCase {
                                    a,
                                    n: n16,
                                    op: p,
                                    table: t,
                                },
                                4,
                            ));
                        }
                    }
                    if let (Op::Load(b), Op::Prim(p), Op::Case(t)) =
                        (ops[i + 1], ops[i + 2], ops[i + 3])
                    {
                        break 'pick Some((
                            Op::LoadLoadPrimCase {
                                a,
                                b,
                                op: p,
                                table: t,
                            },
                            4,
                        ));
                    }
                }
                if free3 {
                    if let (Op::Load(b), Op::Prim(p)) = (ops[i + 1], ops[i + 2]) {
                        break 'pick Some((Op::LoadLoadPrim { a, b, op: p }, 3));
                    }
                    if let (Op::PushInt(v), Op::Prim(p)) = (ops[i + 1], ops[i + 2]) {
                        if let Ok(n32) = i32::try_from(v) {
                            break 'pick Some((Op::LoadIntPrim { a, n: n32, op: p }, 3));
                        }
                    }
                    if let (
                        Op::Load(b),
                        Op::Jump {
                            target,
                            env_keep,
                            arity: 2,
                        },
                    ) = (ops[i + 1], ops[i + 2])
                    {
                        break 'pick Some((
                            Op::LoadLoadJump {
                                a,
                                b,
                                target,
                                env_keep,
                            },
                            3,
                        ));
                    }
                }
                if free2 {
                    match ops[i + 1] {
                        Op::Jump {
                            target,
                            env_keep,
                            arity: 1,
                        } => {
                            break 'pick Some((
                                Op::LoadJump {
                                    a,
                                    target,
                                    env_keep,
                                },
                                2,
                            ))
                        }
                        Op::Case(t) => break 'pick Some((Op::LoadCase { slot: a, table: t }, 2)),
                        Op::Ret => break 'pick Some((Op::LoadRet(a), 2)),
                        Op::Prim(p) => break 'pick Some((Op::LoadPrim { b: a, op: p }, 2)),
                        _ => {}
                    }
                }
            } else if free2 {
                match (ops[i], ops[i + 1]) {
                    (Op::PushInt(v), Op::Prim(p)) => {
                        if let Ok(n32) = i32::try_from(v) {
                            break 'pick Some((Op::IntPrim { n: n32, op: p }, 2));
                        }
                    }
                    (Op::Prim(p), Op::Case(t)) => {
                        break 'pick Some((Op::PrimCase { op: p, table: t }, 2))
                    }
                    _ => {}
                }
            }
            None
        };
        if let Some((op, len)) = fused {
            ops[i] = op;
            for slot in consumed.iter_mut().take(i + len).skip(i + 1) {
                *slot = true;
            }
            i += len;
        } else {
            i += 1;
        }
    }

    // Compaction: drop the consumed slots, remap every code reference.
    let mut map = vec![0u32; n];
    let mut out: Vec<Op> = Vec::with_capacity(n);
    for i in 0..n {
        map[i] = out.len() as u32;
        if !consumed[i] {
            out.push(ops[i]);
        }
    }
    let remap = |t: &mut u32| {
        debug_assert!(!consumed[*t as usize], "branch target was fused away");
        *t = map[*t as usize];
    };
    for op in &mut out {
        match op {
            Op::MkClosure { label, .. } | Op::MkThunk { label, .. } | Op::Goto(label) => {
                remap(label);
            }
            Op::Jump { target, .. }
            | Op::LoadJump { target, .. }
            | Op::LoadLoadJump { target, .. } => remap(target),
            _ => {}
        }
    }
    for table in cases.iter_mut() {
        for (_, t, _) in table.con_arms.iter_mut() {
            remap(t);
        }
        for (_, t) in table.lit_arms.iter_mut() {
            remap(t);
        }
        if let Some(d) = &mut table.default {
            remap(d);
        }
    }
    for group in rec_groups.iter_mut() {
        for spec in group.iter_mut() {
            match spec {
                RecBinding::Closure { label, .. } | RecBinding::Thunk { label, .. } => {
                    remap(label);
                }
                RecBinding::Int(_) => {}
            }
        }
    }
    for spec in jump_specs.iter_mut() {
        remap(&mut spec.target);
    }
    remap(entry);
    *ops = out;
}
