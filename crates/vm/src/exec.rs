//! The bytecode interpreter.
//!
//! A run holds three growable arrays — operand stack, slot stack
//! (environments of all live frames, concatenated), and call-frame
//! stack — and a program counter. No names exist at runtime: variables
//! are frame-relative slot loads, and a `jump` is a slot-stack
//! truncation plus a branch (see [`Op::Jump`]), which is the paper's
//! cost model executed literally.
//!
//! The dispatch loop streams over fixed 16-byte op words (wide payloads
//! live in the [`Code`] side tables) and handles the fused
//! superinstructions the peephole emits; both facts are invisible to
//! the metrics. Counters are charged exactly as the Fig. 3 machine
//! charges them; the policy was decided at compile time and sits in the
//! instruction flags, so the interpreter only tests "is this value a
//! closure" where the machine's `store_binding` would.
//!
//! The loop is generic over a [`Tracer`]: the normal entry points pass
//! a no-op tracer that monomorphizes away, while
//! [`run_program_profiled`] threads an [`OpProfile`] through to collect
//! the opcode/pair/triple histograms behind `fj report --vm-ops`.

use crate::ops::{CaseTable, ChargeKind, Code, Op, Program, RecBinding};
use crate::profile::OpProfile;
use crate::value::{ClosureCell, ThunkCell, ThunkState, VmError, VmValue};
use fj_ast::PrimOp;
use fj_eval::{EvalMode, Metrics, Outcome, Value};
use std::cell::RefCell;
use std::rc::Rc;

/// Instruction index of the always-present `Halt` (the compiler reserves
/// slot 0 for it; sentinel frames return here).
const HALT_IP: u32 = 0;

struct FrameV {
    ret_ip: u32,
    env_base: usize,
    update: Option<Rc<ThunkCell>>,
}

/// The VM polls its wall-clock deadline every `DEADLINE_CHECK_MASK + 1`
/// instructions, matching the machine's cadence (`fj_eval`).
pub const DEADLINE_CHECK_MASK: u64 = 0xFFF;

/// A per-dispatch observation hook. The production tracer is a no-op
/// zero-sized type, so the generic loop compiles to the plain
/// interpreter; the profiling tracer feeds [`OpProfile`].
pub trait Tracer {
    /// Called once per dispatched instruction with its opcode index.
    fn trace(&mut self, opcode: u8);
}

/// The production tracer: does nothing, costs nothing.
pub struct NoTrace;

impl Tracer for NoTrace {
    #[inline(always)]
    fn trace(&mut self, _opcode: u8) {}
}

impl Tracer for OpProfile {
    #[inline]
    fn trace(&mut self, opcode: u8) {
        self.record(opcode);
    }
}

/// Interpreter state for one program.
pub struct Vm<'p> {
    prog: &'p Program,
    fuel: u64,
    /// Wall-clock cut-off and the limit it came from (for the error).
    deadline: Option<(std::time::Instant, std::time::Duration)>,
    metrics: Metrics,
    stack: Vec<VmValue>,
    env: Vec<VmValue>,
    frames: Vec<FrameV>,
    base: usize,
    empty_fields: Rc<Vec<VmValue>>,
}

/// Run a compiled program to a deeply forced value.
///
/// `fuel` bounds the number of instructions executed (a finer unit than
/// the machine's transition count — pass a proportionally larger budget).
///
/// # Errors
///
/// [`VmError::OutOfFuel`] past the budget, [`VmError::DivideByZero`] on
/// arithmetic faults, [`VmError::Stuck`] on runtime type errors.
pub fn run_program(prog: &Program, fuel: u64) -> Result<Outcome, VmError> {
    run_program_with_limits(prog, fuel, None)
}

/// As [`run_program`], with an additional optional wall-clock deadline:
/// the run stops with [`VmError::Timeout`] once the deadline passes,
/// mirroring the machine's `run_with_limits`.
///
/// # Errors
///
/// As [`run_program`], plus [`VmError::Timeout`].
pub fn run_program_with_limits(
    prog: &Program,
    fuel: u64,
    deadline: Option<std::time::Duration>,
) -> Result<Outcome, VmError> {
    let mut vm = Vm::new(prog, fuel, deadline);
    let answer = vm.run_code(prog.entry(), Vec::new(), None, &mut NoTrace)?;
    // Deep forcing is excluded from the counters, as in the machine.
    let metrics = vm.metrics;
    let value = vm.deep(&answer, 64)?;
    Ok(Outcome { value, metrics })
}

/// As [`run_program`], additionally collecting an opcode histogram
/// (dispatch counts plus hot pairs and triples) for `fj report
/// --vm-ops`. The deep-forcing epilogue is excluded from the profile,
/// as it is from the counters.
///
/// # Errors
///
/// As [`run_program`].
pub fn run_program_profiled(prog: &Program, fuel: u64) -> Result<(Outcome, OpProfile), VmError> {
    let mut vm = Vm::new(prog, fuel, None);
    let mut profile = OpProfile::default();
    let answer = vm.run_code(prog.entry(), Vec::new(), None, &mut profile)?;
    let metrics = vm.metrics;
    let value = vm.deep(&answer, 64)?;
    Ok((Outcome { value, metrics }, profile))
}

impl<'p> Vm<'p> {
    fn new(prog: &'p Program, fuel: u64, deadline: Option<std::time::Duration>) -> Self {
        Vm {
            prog,
            fuel,
            deadline: deadline.map(|limit| (std::time::Instant::now() + limit, limit)),
            metrics: Metrics::default(),
            stack: Vec::with_capacity(64),
            env: Vec::with_capacity(256),
            frames: Vec::with_capacity(64),
            base: 0,
            empty_fields: Rc::new(Vec::new()),
        }
    }

    /// Execute one code object to completion: push a sentinel frame that
    /// returns to `Halt`, seed its environment, and loop.
    fn run_code<T: Tracer>(
        &mut self,
        entry: u32,
        frame_env: Vec<VmValue>,
        update: Option<Rc<ThunkCell>>,
        tracer: &mut T,
    ) -> Result<VmValue, VmError> {
        let env_base = self.env.len();
        self.frames.push(FrameV {
            ret_ip: HALT_IP,
            env_base,
            update,
        });
        self.env.extend(frame_env);
        self.base = env_base;
        self.exec_loop(entry, tracer)
    }

    #[allow(clippy::too_many_lines)]
    fn exec_loop<T: Tracer>(&mut self, mut ip: u32, tracer: &mut T) -> Result<VmValue, VmError> {
        let prog = self.prog;
        let code: &Code = &prog.code;
        let ops = &code.ops;
        let lazy_fields = prog.uses_thunks && prog.mode == EvalMode::CallByNeed;
        loop {
            if self.fuel == 0 {
                return Err(VmError::OutOfFuel);
            }
            self.fuel -= 1;
            self.metrics.steps += 1;
            if self.metrics.steps & DEADLINE_CHECK_MASK == 0 {
                if let Some((cutoff, limit)) = self.deadline {
                    if std::time::Instant::now() >= cutoff {
                        return Err(VmError::Timeout { limit });
                    }
                }
            }
            let op = ops[ip as usize];
            tracer.trace(op.opcode());
            ip += 1;
            match op {
                Op::PushInt(n) => self.stack.push(VmValue::Int(n)),
                Op::Load(i) => self.stack.push(self.env[self.base + i as usize].clone()),
                Op::LoadForce(i) => {
                    let v = self.env[self.base + i as usize].clone();
                    if let VmValue::Thunk(cell) = v {
                        let forced = cell.state.borrow().clone();
                        match forced {
                            ThunkState::Forced(w) => self.stack.push(w),
                            ThunkState::Pending => {
                                // Enter the thunk: a plain call whose
                                // frame optionally updates on return.
                                let update =
                                    (prog.mode == EvalMode::CallByNeed).then(|| cell.clone());
                                let env_base = self.env.len();
                                self.frames.push(FrameV {
                                    ret_ip: ip,
                                    env_base,
                                    update,
                                });
                                if self.frames.len() > self.metrics.max_stack {
                                    self.metrics.max_stack = self.frames.len();
                                }
                                self.env.extend(cell.env.borrow().iter().cloned());
                                self.base = env_base;
                                ip = cell.label;
                            }
                        }
                    } else {
                        self.stack.push(v);
                    }
                }
                Op::MkCon { tag, arity, charge } => {
                    let v = if arity == 0 {
                        VmValue::Con(tag, self.empty_fields.clone())
                    } else {
                        let split = self.stack.len() - arity as usize;
                        VmValue::Con(tag, Rc::new(self.stack.split_off(split)))
                    };
                    if charge {
                        self.metrics.con_allocs += 1;
                    }
                    self.stack.push(v);
                }
                Op::MkClosure { label, caps } => {
                    let cap: Vec<VmValue> = code.captures[caps as usize]
                        .iter()
                        .map(|&i| self.env[self.base + i as usize].clone())
                        .collect();
                    self.stack.push(VmValue::Closure(Rc::new(ClosureCell {
                        label,
                        env: RefCell::new(cap),
                    })));
                }
                Op::MkThunk {
                    label,
                    caps,
                    charge,
                    per_projection,
                } => {
                    let cap: Vec<VmValue> = code.captures[caps as usize]
                        .iter()
                        .map(|&i| self.env[self.base + i as usize].clone())
                        .collect();
                    self.charge(charge);
                    self.stack.push(VmValue::Thunk(Rc::new(ThunkCell {
                        label,
                        env: RefCell::new(cap),
                        state: RefCell::new(ThunkState::Pending),
                        per_projection,
                    })));
                }
                Op::LetRec(group) => {
                    let specs = &code.rec_groups[group as usize];
                    // Phase 1: allocate every cell with an empty capture
                    // environment and bind it as a slot.
                    for spec in specs.iter() {
                        match spec {
                            RecBinding::Closure { label, .. } => {
                                self.metrics.let_allocs += 1;
                                self.env.push(VmValue::Closure(Rc::new(ClosureCell {
                                    label: *label,
                                    env: RefCell::new(Vec::new()),
                                })));
                            }
                            RecBinding::Thunk { label, charge, .. } => {
                                self.charge(*charge);
                                self.env.push(VmValue::Thunk(Rc::new(ThunkCell {
                                    label: *label,
                                    env: RefCell::new(Vec::new()),
                                    state: RefCell::new(ThunkState::Pending),
                                    per_projection: false,
                                })));
                            }
                            RecBinding::Int(n) => {
                                self.env.push(VmValue::Int(*n));
                            }
                        }
                    }
                    // Phase 2: fill the captures — siblings now exist.
                    let group_base = self.env.len() - specs.len();
                    for (k, spec) in specs.iter().enumerate() {
                        let captures = match spec {
                            RecBinding::Closure { captures, .. }
                            | RecBinding::Thunk { captures, .. } => captures,
                            RecBinding::Int(_) => continue,
                        };
                        let vals: Vec<VmValue> = captures
                            .iter()
                            .map(|&i| self.env[self.base + i as usize].clone())
                            .collect();
                        match &self.env[group_base + k] {
                            VmValue::Closure(c) => *c.env.borrow_mut() = vals,
                            VmValue::Thunk(t) => *t.env.borrow_mut() = vals,
                            _ => unreachable!("phase 1 pushed a cell here"),
                        }
                    }
                }
                Op::Bind { charge_let } => {
                    let v = self.stack.pop().expect("bind underflow");
                    if charge_let && v.is_closure() {
                        self.metrics.let_allocs += 1;
                    }
                    self.env.push(v);
                }
                Op::PopEnv(n) => {
                    let keep = self.env.len() - n as usize;
                    self.env.truncate(keep);
                }
                Op::Call { charge_arg } | Op::TailCall { charge_arg } => {
                    let tail = matches!(op, Op::TailCall { .. });
                    let arg = self.stack.pop().expect("call underflow");
                    let fun = self.stack.pop().expect("call underflow");
                    if charge_arg && arg.is_closure() {
                        self.metrics.arg_allocs += 1;
                    }
                    let VmValue::Closure(cell) = fun else {
                        return Err(VmError::Stuck("application of a non-function".into()));
                    };
                    if tail {
                        self.env.truncate(self.base);
                    } else {
                        let env_base = self.env.len();
                        self.frames.push(FrameV {
                            ret_ip: ip,
                            env_base,
                            update: None,
                        });
                        if self.frames.len() > self.metrics.max_stack {
                            self.metrics.max_stack = self.frames.len();
                        }
                        self.base = env_base;
                    }
                    self.env.extend(cell.env.borrow().iter().cloned());
                    self.env.push(arg);
                    ip = cell.label;
                }
                Op::CallTy | Op::TailCallTy => {
                    let tail = matches!(op, Op::TailCallTy);
                    let fun = self.stack.pop().expect("tyapp underflow");
                    let VmValue::Closure(cell) = fun else {
                        return Err(VmError::Stuck("type application of a non-function".into()));
                    };
                    if tail {
                        self.env.truncate(self.base);
                    } else {
                        let env_base = self.env.len();
                        self.frames.push(FrameV {
                            ret_ip: ip,
                            env_base,
                            update: None,
                        });
                        if self.frames.len() > self.metrics.max_stack {
                            self.metrics.max_stack = self.frames.len();
                        }
                        self.base = env_base;
                    }
                    self.env.extend(cell.env.borrow().iter().cloned());
                    ip = cell.label;
                }
                Op::Ret => {
                    let v = self.stack.pop().expect("ret underflow");
                    self.do_ret(v, &mut ip);
                }
                Op::Goto(target) => ip = target,
                Op::Jump {
                    target,
                    env_keep,
                    arity,
                } => {
                    // The paper's rule, literally: no heap cell, no
                    // substitution — truncate the slot stack to the join
                    // point's static depth, move the arguments in, branch.
                    self.metrics.jumps += 1;
                    let split = self.stack.len() - arity as usize;
                    self.env.truncate(self.base + env_keep as usize);
                    self.env.extend(self.stack.drain(split..));
                    ip = target;
                }
                Op::JumpCharged(spec) => {
                    let spec = &code.jump_specs[spec as usize];
                    self.metrics.jumps += 1;
                    let arity = spec.arity as usize;
                    let split = self.stack.len() - arity;
                    for i in 0..arity {
                        if spec.charge_mask & (1 << i) != 0 && self.stack[split + i].is_closure() {
                            self.metrics.arg_allocs += 1;
                        }
                    }
                    self.env.truncate(self.base + spec.env_keep as usize);
                    self.env.extend(self.stack.drain(split..));
                    ip = spec.target;
                }
                Op::Case(table) => {
                    let scrut = self.stack.pop().expect("case underflow");
                    self.dispatch_case(scrut, &code.cases[table as usize], lazy_fields, &mut ip)?;
                }
                Op::Prim(p) => {
                    let b = self.stack.pop().expect("prim underflow");
                    let a = self.stack.pop().expect("prim underflow");
                    let (VmValue::Int(a), VmValue::Int(b)) = (a, b) else {
                        return Err(VmError::Stuck("primop operand not an integer".into()));
                    };
                    let v = self.prim_value(p, a, b)?;
                    self.stack.push(v);
                }
                Op::Halt => {
                    return Ok(self.stack.pop().expect("halt without an answer"));
                }

                // ----------------------------------------------------------
                // Fused superinstructions. Each is semantically the exact
                // sequence it replaced (same values, same errors, same
                // counters); only the dispatch and operand-stack traffic
                // are collapsed.
                // ----------------------------------------------------------
                Op::LoadRet(i) => {
                    let v = self.env[self.base + i as usize].clone();
                    self.do_ret(v, &mut ip);
                }
                Op::LoadLoadPrim { a, b, op } => {
                    let ia = Self::slot_int(&self.env[self.base + a as usize])?;
                    let ib = Self::slot_int(&self.env[self.base + b as usize])?;
                    let v = self.prim_value(op, ia, ib)?;
                    self.stack.push(v);
                }
                Op::LoadIntPrim { a, n, op } => {
                    let ia = Self::slot_int(&self.env[self.base + a as usize])?;
                    let v = self.prim_value(op, ia, i64::from(n))?;
                    self.stack.push(v);
                }
                Op::IntPrim { n, op } => {
                    let a = self.stack.pop().expect("prim underflow");
                    let ia = Self::slot_int(&a)?;
                    let v = self.prim_value(op, ia, i64::from(n))?;
                    self.stack.push(v);
                }
                Op::LoadPrim { b, op } => {
                    let a = self.stack.pop().expect("prim underflow");
                    let ia = Self::slot_int(&a)?;
                    let ib = Self::slot_int(&self.env[self.base + b as usize])?;
                    let v = self.prim_value(op, ia, ib)?;
                    self.stack.push(v);
                }
                Op::PrimCase { op, table } => {
                    let b = self.stack.pop().expect("prim underflow");
                    let a = self.stack.pop().expect("prim underflow");
                    let (VmValue::Int(a), VmValue::Int(b)) = (a, b) else {
                        return Err(VmError::Stuck("primop operand not an integer".into()));
                    };
                    let scrut = self.prim_value(op, a, b)?;
                    self.dispatch_case(scrut, &code.cases[table as usize], lazy_fields, &mut ip)?;
                }
                Op::LoadIntPrimCase { a, n, op, table } => {
                    let ia = Self::slot_int(&self.env[self.base + a as usize])?;
                    let scrut = self.prim_value(op, ia, i64::from(n))?;
                    self.dispatch_case(scrut, &code.cases[table as usize], lazy_fields, &mut ip)?;
                }
                Op::LoadLoadPrimCase { a, b, op, table } => {
                    let ia = Self::slot_int(&self.env[self.base + a as usize])?;
                    let ib = Self::slot_int(&self.env[self.base + b as usize])?;
                    let scrut = self.prim_value(op, ia, ib)?;
                    self.dispatch_case(scrut, &code.cases[table as usize], lazy_fields, &mut ip)?;
                }
                Op::LoadCase { slot, table } => {
                    let scrut = self.env[self.base + slot as usize].clone();
                    self.dispatch_case(scrut, &code.cases[table as usize], lazy_fields, &mut ip)?;
                }
                Op::LoadJump {
                    a,
                    target,
                    env_keep,
                } => {
                    self.metrics.jumps += 1;
                    // Read before truncating: the argument slot may sit
                    // above the join's kept depth.
                    let v = self.env[self.base + a as usize].clone();
                    self.env.truncate(self.base + env_keep as usize);
                    self.env.push(v);
                    ip = target;
                }
                Op::LoadLoadJump {
                    a,
                    b,
                    target,
                    env_keep,
                } => {
                    self.metrics.jumps += 1;
                    let va = self.env[self.base + a as usize].clone();
                    let vb = self.env[self.base + b as usize].clone();
                    self.env.truncate(self.base + env_keep as usize);
                    self.env.push(va);
                    self.env.push(vb);
                    ip = target;
                }
            }
        }
    }

    /// Shared `Ret` epilogue (also the tail of [`Op::LoadRet`]).
    #[inline]
    fn do_ret(&mut self, v: VmValue, ip: &mut u32) {
        let f = self.frames.pop().expect("ret without frame");
        self.env.truncate(f.env_base);
        if let Some(cell) = f.update {
            *cell.state.borrow_mut() = ThunkState::Forced(v.clone());
        }
        self.stack.push(v);
        *ip = f.ret_ip;
        self.base = self.frames.last().map_or(0, |fr| fr.env_base);
    }

    /// An integer operand of a fused primitive (same error as the
    /// unfused `Prim` would raise).
    #[inline]
    fn slot_int(v: &VmValue) -> Result<i64, VmError> {
        match v {
            VmValue::Int(n) => Ok(*n),
            _ => Err(VmError::Stuck("primop operand not an integer".into())),
        }
    }

    /// Apply a primitive to two integers, producing the value the
    /// unfused `Prim` would push (booleans are free nullary cells).
    #[inline]
    fn prim_value(&self, p: PrimOp, a: i64, b: i64) -> Result<VmValue, VmError> {
        match p.eval(a, b) {
            Some(fj_ast::PrimResult::Int(n)) => Ok(VmValue::Int(n)),
            Some(fj_ast::PrimResult::Bool(v)) => {
                let tag = if v {
                    crate::compile::TAG_TRUE
                } else {
                    crate::compile::TAG_FALSE
                };
                Ok(VmValue::Con(tag, self.empty_fields.clone()))
            }
            None => Err(VmError::DivideByZero),
        }
    }

    /// Branch through a case table on an already-popped scrutinee
    /// (shared by `Case` and every fused `…Case` variant).
    fn dispatch_case(
        &mut self,
        scrut: VmValue,
        table: &CaseTable,
        lazy_fields: bool,
        ip: &mut u32,
    ) -> Result<(), VmError> {
        match scrut {
            VmValue::Con(tag, fields) => {
                let arm = table.con_arms.iter().find(|(t, _, _)| *t == tag).copied();
                if let Some((_, target, binder_count)) = arm {
                    if binder_count as usize != fields.len() {
                        return Err(VmError::Stuck(format!(
                            "constructor arity mismatch in case: {} has {} fields, pattern binds {}",
                            self.prog.code.idents[tag as usize],
                            fields.len(),
                            binder_count
                        )));
                    }
                    for f in fields.iter() {
                        // Call-by-need projects a *fresh* pending thunk
                        // per scrutinize, as the machine does; the clone
                        // is shared from then on.
                        let v = match f {
                            VmValue::Thunk(cell) if lazy_fields && cell.per_projection => {
                                VmValue::Thunk(Rc::new(ThunkCell {
                                    label: cell.label,
                                    env: RefCell::new(cell.env.borrow().clone()),
                                    state: RefCell::new(ThunkState::Pending),
                                    per_projection: false,
                                }))
                            }
                            other => other.clone(),
                        };
                        self.env.push(v);
                    }
                    *ip = target;
                } else if let Some(d) = table.default {
                    *ip = d;
                } else {
                    return Err(VmError::Stuck(format!(
                        "no case alternative matches {}",
                        self.prog.code.idents[tag as usize]
                    )));
                }
            }
            VmValue::Int(n) => {
                if let Some((_, target)) = table.lit_arms.iter().find(|(v, _)| *v == n) {
                    *ip = *target;
                } else if let Some(d) = table.default {
                    *ip = d;
                } else {
                    return Err(VmError::Stuck(format!(
                        "no case alternative matches literal {n}"
                    )));
                }
            }
            _ => {
                return Err(VmError::Stuck("case scrutinee is not data".into()));
            }
        }
        Ok(())
    }

    fn charge(&mut self, kind: ChargeKind) {
        match kind {
            ChargeKind::Let => self.metrics.let_allocs += 1,
            ChargeKind::Arg => self.metrics.arg_allocs += 1,
            ChargeKind::Con => self.metrics.con_allocs += 1,
            ChargeKind::Free => {}
        }
    }

    /// Force a thunk cell to weak-head normal form (a nested run;
    /// call-by-need memoizes via the sentinel frame's update slot).
    fn force_cell(&mut self, cell: &Rc<ThunkCell>) -> Result<VmValue, VmError> {
        let state = cell.state.borrow().clone();
        match state {
            ThunkState::Forced(v) => Ok(v),
            ThunkState::Pending => {
                let captured = cell.env.borrow().clone();
                let update = (self.prog.mode == EvalMode::CallByNeed).then(|| cell.clone());
                self.run_code(cell.label, captured, update, &mut NoTrace)
            }
        }
    }

    /// Mirror of the machine's `deep_force`: force to depth-bounded
    /// normal form for observation. Field forcing happens at the parent
    /// depth; each structural level consumes one unit.
    fn deep(&mut self, v: &VmValue, depth: usize) -> Result<Value, VmError> {
        if depth == 0 {
            return Err(VmError::Stuck("deep_force depth exhausted".into()));
        }
        match v {
            VmValue::Int(n) => Ok(Value::Int(*n)),
            VmValue::Closure(_) => Ok(Value::Closure),
            VmValue::Con(tag, fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for f in fields.iter() {
                    let w = match f {
                        VmValue::Thunk(cell) => self.force_cell(cell)?,
                        other => other.clone(),
                    };
                    out.push(self.deep(&w, depth - 1)?);
                }
                Ok(Value::Con(
                    self.prog.code.idents[*tag as usize].clone(),
                    out,
                ))
            }
            VmValue::Thunk(cell) => {
                let w = self.force_cell(cell)?;
                self.deep(&w, depth - 1)
            }
        }
    }
}
