//! The bytecode interpreter.
//!
//! A run holds three growable arrays — operand stack, slot stack
//! (environments of all live frames, concatenated), and call-frame
//! stack — and a program counter. No names exist at runtime: variables
//! are frame-relative slot loads, and a `jump` is a slot-stack
//! truncation plus a branch (see [`Op::Jump`]), which is the paper's
//! cost model executed literally.
//!
//! Metrics are charged exactly as the Fig. 3 machine charges them; the
//! policy was decided at compile time and sits in the instruction flags,
//! so the interpreter only tests "is this value a closure" where the
//! machine's `store_binding` would.

use crate::ops::{ChargeKind, Op, Program, RecBinding};
use crate::value::{ClosureCell, ThunkCell, ThunkState, VmError, VmValue};
use fj_eval::{EvalMode, Metrics, Outcome, Value};
use std::cell::RefCell;
use std::rc::Rc;

/// Instruction index of the always-present `Halt` (the compiler reserves
/// slot 0 for it; sentinel frames return here).
const HALT_IP: u32 = 0;

struct FrameV {
    ret_ip: u32,
    env_base: usize,
    update: Option<Rc<ThunkCell>>,
}

/// The VM polls its wall-clock deadline every `DEADLINE_CHECK_MASK + 1`
/// instructions, matching the machine's cadence (`fj_eval`).
pub const DEADLINE_CHECK_MASK: u64 = 0xFFF;

/// Interpreter state for one program.
pub struct Vm<'p> {
    prog: &'p Program,
    fuel: u64,
    /// Wall-clock cut-off and the limit it came from (for the error).
    deadline: Option<(std::time::Instant, std::time::Duration)>,
    metrics: Metrics,
    stack: Vec<VmValue>,
    env: Vec<VmValue>,
    frames: Vec<FrameV>,
    base: usize,
    empty_fields: Rc<Vec<VmValue>>,
}

/// Run a compiled program to a deeply forced value.
///
/// `fuel` bounds the number of instructions executed (a finer unit than
/// the machine's transition count — pass a proportionally larger budget).
///
/// # Errors
///
/// [`VmError::OutOfFuel`] past the budget, [`VmError::DivideByZero`] on
/// arithmetic faults, [`VmError::Stuck`] on runtime type errors.
pub fn run_program(prog: &Program, fuel: u64) -> Result<Outcome, VmError> {
    run_program_with_limits(prog, fuel, None)
}

/// As [`run_program`], with an additional optional wall-clock deadline:
/// the run stops with [`VmError::Timeout`] once the deadline passes,
/// mirroring the machine's `run_with_limits`.
///
/// # Errors
///
/// As [`run_program`], plus [`VmError::Timeout`].
pub fn run_program_with_limits(
    prog: &Program,
    fuel: u64,
    deadline: Option<std::time::Duration>,
) -> Result<Outcome, VmError> {
    let mut vm = Vm {
        prog,
        fuel,
        deadline: deadline.map(|limit| (std::time::Instant::now() + limit, limit)),
        metrics: Metrics::default(),
        stack: Vec::with_capacity(64),
        env: Vec::with_capacity(256),
        frames: Vec::with_capacity(64),
        base: 0,
        empty_fields: Rc::new(Vec::new()),
    };
    let answer = vm.run_code(prog.entry, Vec::new(), None)?;
    // Deep forcing is excluded from the counters, as in the machine.
    let metrics = vm.metrics;
    let value = vm.deep(&answer, 64)?;
    Ok(Outcome { value, metrics })
}

impl Vm<'_> {
    /// Execute one code object to completion: push a sentinel frame that
    /// returns to `Halt`, seed its environment, and loop.
    fn run_code(
        &mut self,
        entry: u32,
        frame_env: Vec<VmValue>,
        update: Option<Rc<ThunkCell>>,
    ) -> Result<VmValue, VmError> {
        let env_base = self.env.len();
        self.frames.push(FrameV {
            ret_ip: HALT_IP,
            env_base,
            update,
        });
        self.env.extend(frame_env);
        self.base = env_base;
        self.exec_loop(entry)
    }

    #[allow(clippy::too_many_lines)]
    fn exec_loop(&mut self, mut ip: u32) -> Result<VmValue, VmError> {
        let prog = self.prog;
        let ops = &prog.ops;
        let lazy_fields = prog.uses_thunks && prog.mode == EvalMode::CallByNeed;
        loop {
            if self.fuel == 0 {
                return Err(VmError::OutOfFuel);
            }
            self.fuel -= 1;
            self.metrics.steps += 1;
            if self.metrics.steps & DEADLINE_CHECK_MASK == 0 {
                if let Some((cutoff, limit)) = self.deadline {
                    if std::time::Instant::now() >= cutoff {
                        return Err(VmError::Timeout { limit });
                    }
                }
            }
            let op = &ops[ip as usize];
            ip += 1;
            match op {
                Op::PushInt(n) => self.stack.push(VmValue::Int(*n)),
                Op::Load(i) => self.stack.push(self.env[self.base + *i as usize].clone()),
                Op::LoadForce(i) => {
                    let v = self.env[self.base + *i as usize].clone();
                    if let VmValue::Thunk(cell) = v {
                        let forced = cell.state.borrow().clone();
                        match forced {
                            ThunkState::Forced(w) => self.stack.push(w),
                            ThunkState::Pending => {
                                // Enter the thunk: a plain call whose
                                // frame optionally updates on return.
                                let update =
                                    (prog.mode == EvalMode::CallByNeed).then(|| cell.clone());
                                let env_base = self.env.len();
                                self.frames.push(FrameV {
                                    ret_ip: ip,
                                    env_base,
                                    update,
                                });
                                if self.frames.len() > self.metrics.max_stack {
                                    self.metrics.max_stack = self.frames.len();
                                }
                                self.env.extend(cell.env.borrow().iter().cloned());
                                self.base = env_base;
                                ip = cell.label;
                            }
                        }
                    } else {
                        self.stack.push(v);
                    }
                }
                Op::MkCon { tag, arity, charge } => {
                    let v = if *arity == 0 {
                        VmValue::Con(*tag, self.empty_fields.clone())
                    } else {
                        let split = self.stack.len() - *arity as usize;
                        VmValue::Con(*tag, Rc::new(self.stack.split_off(split)))
                    };
                    if *charge {
                        self.metrics.con_allocs += 1;
                    }
                    self.stack.push(v);
                }
                Op::MkClosure { label, captures } => {
                    let cap: Vec<VmValue> = captures
                        .iter()
                        .map(|&i| self.env[self.base + i as usize].clone())
                        .collect();
                    self.stack.push(VmValue::Closure(Rc::new(ClosureCell {
                        label: *label,
                        env: RefCell::new(cap),
                    })));
                }
                Op::MkThunk {
                    label,
                    captures,
                    charge,
                    per_projection,
                } => {
                    let cap: Vec<VmValue> = captures
                        .iter()
                        .map(|&i| self.env[self.base + i as usize].clone())
                        .collect();
                    self.charge(*charge);
                    self.stack.push(VmValue::Thunk(Rc::new(ThunkCell {
                        label: *label,
                        env: RefCell::new(cap),
                        state: RefCell::new(ThunkState::Pending),
                        per_projection: *per_projection,
                    })));
                }
                Op::LetRec(specs) => {
                    // Phase 1: allocate every cell with an empty capture
                    // environment and bind it as a slot.
                    for spec in specs.iter() {
                        match spec {
                            RecBinding::Closure { label, .. } => {
                                self.metrics.let_allocs += 1;
                                self.env.push(VmValue::Closure(Rc::new(ClosureCell {
                                    label: *label,
                                    env: RefCell::new(Vec::new()),
                                })));
                            }
                            RecBinding::Thunk { label, charge, .. } => {
                                self.charge(*charge);
                                self.env.push(VmValue::Thunk(Rc::new(ThunkCell {
                                    label: *label,
                                    env: RefCell::new(Vec::new()),
                                    state: RefCell::new(ThunkState::Pending),
                                    per_projection: false,
                                })));
                            }
                            RecBinding::Int(n) => {
                                self.env.push(VmValue::Int(*n));
                            }
                        }
                    }
                    // Phase 2: fill the captures — siblings now exist.
                    let group_base = self.env.len() - specs.len();
                    for (k, spec) in specs.iter().enumerate() {
                        let captures = match spec {
                            RecBinding::Closure { captures, .. }
                            | RecBinding::Thunk { captures, .. } => captures,
                            RecBinding::Int(_) => continue,
                        };
                        let vals: Vec<VmValue> = captures
                            .iter()
                            .map(|&i| self.env[self.base + i as usize].clone())
                            .collect();
                        match &self.env[group_base + k] {
                            VmValue::Closure(c) => *c.env.borrow_mut() = vals,
                            VmValue::Thunk(t) => *t.env.borrow_mut() = vals,
                            _ => unreachable!("phase 1 pushed a cell here"),
                        }
                    }
                }
                Op::Bind { charge_let } => {
                    let v = self.stack.pop().expect("bind underflow");
                    if *charge_let && v.is_closure() {
                        self.metrics.let_allocs += 1;
                    }
                    self.env.push(v);
                }
                Op::PopEnv(n) => {
                    let keep = self.env.len() - *n as usize;
                    self.env.truncate(keep);
                }
                Op::Call { charge_arg } | Op::TailCall { charge_arg } => {
                    let tail = matches!(op, Op::TailCall { .. });
                    let arg = self.stack.pop().expect("call underflow");
                    let fun = self.stack.pop().expect("call underflow");
                    if *charge_arg && arg.is_closure() {
                        self.metrics.arg_allocs += 1;
                    }
                    let VmValue::Closure(cell) = fun else {
                        return Err(VmError::Stuck("application of a non-function".into()));
                    };
                    if tail {
                        self.env.truncate(self.base);
                    } else {
                        let env_base = self.env.len();
                        self.frames.push(FrameV {
                            ret_ip: ip,
                            env_base,
                            update: None,
                        });
                        if self.frames.len() > self.metrics.max_stack {
                            self.metrics.max_stack = self.frames.len();
                        }
                        self.base = env_base;
                    }
                    self.env.extend(cell.env.borrow().iter().cloned());
                    self.env.push(arg);
                    ip = cell.label;
                }
                Op::CallTy | Op::TailCallTy => {
                    let tail = matches!(op, Op::TailCallTy);
                    let fun = self.stack.pop().expect("tyapp underflow");
                    let VmValue::Closure(cell) = fun else {
                        return Err(VmError::Stuck("type application of a non-function".into()));
                    };
                    if tail {
                        self.env.truncate(self.base);
                    } else {
                        let env_base = self.env.len();
                        self.frames.push(FrameV {
                            ret_ip: ip,
                            env_base,
                            update: None,
                        });
                        if self.frames.len() > self.metrics.max_stack {
                            self.metrics.max_stack = self.frames.len();
                        }
                        self.base = env_base;
                    }
                    self.env.extend(cell.env.borrow().iter().cloned());
                    ip = cell.label;
                }
                Op::Ret => {
                    let v = self.stack.pop().expect("ret underflow");
                    let f = self.frames.pop().expect("ret without frame");
                    self.env.truncate(f.env_base);
                    if let Some(cell) = f.update {
                        *cell.state.borrow_mut() = ThunkState::Forced(v.clone());
                    }
                    self.stack.push(v);
                    ip = f.ret_ip;
                    self.base = self.frames.last().map_or(0, |fr| fr.env_base);
                }
                Op::Goto(target) => ip = *target,
                Op::Jump {
                    target,
                    env_keep,
                    arity,
                    charge_mask,
                } => {
                    // The paper's rule, literally: no heap cell, no
                    // substitution — truncate the slot stack to the join
                    // point's static depth, move the arguments in, branch.
                    self.metrics.jumps += 1;
                    let arity = *arity as usize;
                    let split = self.stack.len() - arity;
                    if *charge_mask != 0 {
                        for i in 0..arity {
                            if charge_mask & (1 << i) != 0 && self.stack[split + i].is_closure() {
                                self.metrics.arg_allocs += 1;
                            }
                        }
                    }
                    self.env.truncate(self.base + *env_keep as usize);
                    self.env.extend(self.stack.drain(split..));
                    ip = *target;
                }
                Op::Case(table) => {
                    let scrut = self.stack.pop().expect("case underflow");
                    match scrut {
                        VmValue::Con(tag, fields) => {
                            let arm = table.con_arms.iter().find(|(t, _, _)| *t == tag).copied();
                            if let Some((_, target, binder_count)) = arm {
                                if binder_count as usize != fields.len() {
                                    return Err(VmError::Stuck(format!(
                                        "constructor arity mismatch in case: {} has {} fields, pattern binds {}",
                                        prog.idents[tag as usize],
                                        fields.len(),
                                        binder_count
                                    )));
                                }
                                for f in fields.iter() {
                                    // Call-by-need projects a *fresh*
                                    // pending thunk per scrutinize, as
                                    // the machine does; the clone is
                                    // shared from then on.
                                    let v = match f {
                                        VmValue::Thunk(cell)
                                            if lazy_fields && cell.per_projection =>
                                        {
                                            VmValue::Thunk(Rc::new(ThunkCell {
                                                label: cell.label,
                                                env: RefCell::new(cell.env.borrow().clone()),
                                                state: RefCell::new(ThunkState::Pending),
                                                per_projection: false,
                                            }))
                                        }
                                        other => other.clone(),
                                    };
                                    self.env.push(v);
                                }
                                ip = target;
                            } else if let Some(d) = table.default {
                                ip = d;
                            } else {
                                return Err(VmError::Stuck(format!(
                                    "no case alternative matches {}",
                                    prog.idents[tag as usize]
                                )));
                            }
                        }
                        VmValue::Int(n) => {
                            if let Some((_, target)) = table.lit_arms.iter().find(|(v, _)| *v == n)
                            {
                                ip = *target;
                            } else if let Some(d) = table.default {
                                ip = d;
                            } else {
                                return Err(VmError::Stuck(format!(
                                    "no case alternative matches literal {n}"
                                )));
                            }
                        }
                        _ => {
                            return Err(VmError::Stuck("case scrutinee is not data".into()));
                        }
                    }
                }
                Op::Prim(p) => {
                    let b = self.stack.pop().expect("prim underflow");
                    let a = self.stack.pop().expect("prim underflow");
                    let (VmValue::Int(a), VmValue::Int(b)) = (a, b) else {
                        return Err(VmError::Stuck("primop operand not an integer".into()));
                    };
                    match p.eval(a, b) {
                        Some(fj_ast::PrimResult::Int(n)) => self.stack.push(VmValue::Int(n)),
                        Some(fj_ast::PrimResult::Bool(v)) => {
                            let tag = if v {
                                crate::compile::TAG_TRUE
                            } else {
                                crate::compile::TAG_FALSE
                            };
                            self.stack
                                .push(VmValue::Con(tag, self.empty_fields.clone()));
                        }
                        None => return Err(VmError::DivideByZero),
                    }
                }
                Op::Halt => {
                    return Ok(self.stack.pop().expect("halt without an answer"));
                }
            }
        }
    }

    fn charge(&mut self, kind: ChargeKind) {
        match kind {
            ChargeKind::Let => self.metrics.let_allocs += 1,
            ChargeKind::Arg => self.metrics.arg_allocs += 1,
            ChargeKind::Con => self.metrics.con_allocs += 1,
            ChargeKind::Free => {}
        }
    }

    /// Force a thunk cell to weak-head normal form (a nested run;
    /// call-by-need memoizes via the sentinel frame's update slot).
    fn force_cell(&mut self, cell: &Rc<ThunkCell>) -> Result<VmValue, VmError> {
        let state = cell.state.borrow().clone();
        match state {
            ThunkState::Forced(v) => Ok(v),
            ThunkState::Pending => {
                let captured = cell.env.borrow().clone();
                let update = (self.prog.mode == EvalMode::CallByNeed).then(|| cell.clone());
                self.run_code(cell.label, captured, update)
            }
        }
    }

    /// Mirror of the machine's `deep_force`: force to depth-bounded
    /// normal form for observation. Field forcing happens at the parent
    /// depth; each structural level consumes one unit.
    fn deep(&mut self, v: &VmValue, depth: usize) -> Result<Value, VmError> {
        if depth == 0 {
            return Err(VmError::Stuck("deep_force depth exhausted".into()));
        }
        match v {
            VmValue::Int(n) => Ok(Value::Int(*n)),
            VmValue::Closure(_) => Ok(Value::Closure),
            VmValue::Con(tag, fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for f in fields.iter() {
                    let w = match f {
                        VmValue::Thunk(cell) => self.force_cell(cell)?,
                        other => other.clone(),
                    };
                    out.push(self.deep(&w, depth - 1)?);
                }
                Ok(Value::Con(self.prog.idents[*tag as usize].clone(), out))
            }
            VmValue::Thunk(cell) => {
                let w = self.force_cell(cell)?;
                self.deep(&w, depth - 1)
            }
        }
    }
}
