//! Opcode histograms for `fj report --vm-ops`.
//!
//! The profile records, per executed instruction: the opcode count, the
//! (previous, current) opcode pair, and the (prev2, prev, current)
//! triple. Pair and triple heat is what picked the fused
//! superinstruction set (see DESIGN.md): a pair that accounts for a
//! large share of dispatches is a candidate single word.

use crate::ops::{NUM_OPCODES, OPCODE_NAMES};
use fj_ast::FxHashMap;

/// A dispatch histogram collected by
/// [`run_program_profiled`](crate::exec::run_program_profiled).
pub struct OpProfile {
    /// Total instructions dispatched.
    pub dispatches: u64,
    /// Per-opcode dispatch counts.
    pub counts: [u64; NUM_OPCODES],
    /// Adjacent-pair counts, `pairs[prev][cur]`.
    pub pairs: Box<[[u64; NUM_OPCODES]; NUM_OPCODES]>,
    /// Adjacent-triple counts.
    pub triples: FxHashMap<(u8, u8, u8), u64>,
    prev: Option<u8>,
    prev2: Option<u8>,
}

impl Default for OpProfile {
    fn default() -> Self {
        OpProfile {
            dispatches: 0,
            counts: [0; NUM_OPCODES],
            pairs: Box::new([[0; NUM_OPCODES]; NUM_OPCODES]),
            triples: FxHashMap::default(),
            prev: None,
            prev2: None,
        }
    }
}

impl OpProfile {
    /// Record one dispatched opcode.
    #[inline]
    pub fn record(&mut self, opcode: u8) {
        self.dispatches += 1;
        self.counts[opcode as usize] += 1;
        if let Some(p) = self.prev {
            self.pairs[p as usize][opcode as usize] += 1;
            if let Some(pp) = self.prev2 {
                *self.triples.entry((pp, p, opcode)).or_insert(0) += 1;
            }
        }
        self.prev2 = self.prev;
        self.prev = Some(opcode);
    }

    /// Fold another profile into this one (cross-program aggregation;
    /// the pair/triple chains do not bridge the program boundary).
    pub fn merge(&mut self, other: &OpProfile) {
        self.dispatches += other.dispatches;
        for (acc, c) in self.counts.iter_mut().zip(other.counts.iter()) {
            *acc += c;
        }
        for (row_acc, row) in self.pairs.iter_mut().zip(other.pairs.iter()) {
            for (acc, c) in row_acc.iter_mut().zip(row.iter()) {
                *acc += c;
            }
        }
        for (&k, &v) in &other.triples {
            *self.triples.entry(k).or_insert(0) += v;
        }
    }

    /// The `k` hottest opcodes, as `(name, count)`, descending.
    #[must_use]
    pub fn top_ops(&self, k: usize) -> Vec<(&'static str, u64)> {
        let mut v: Vec<(&'static str, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (OPCODE_NAMES[i], c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v.truncate(k);
        v
    }

    /// The `k` hottest adjacent pairs, as `(name, name, count)`,
    /// descending.
    #[must_use]
    pub fn top_pairs(&self, k: usize) -> Vec<(&'static str, &'static str, u64)> {
        let mut v: Vec<(&'static str, &'static str, u64)> = Vec::new();
        for (p, row) in self.pairs.iter().enumerate() {
            for (c, &count) in row.iter().enumerate() {
                if count > 0 {
                    v.push((OPCODE_NAMES[p], OPCODE_NAMES[c], count));
                }
            }
        }
        v.sort_by(|a, b| b.2.cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
        v.truncate(k);
        v
    }

    /// The `k` hottest adjacent triples, descending.
    #[must_use]
    pub fn top_triples(&self, k: usize) -> Vec<(&'static str, &'static str, &'static str, u64)> {
        let mut v: Vec<(&'static str, &'static str, &'static str, u64)> = self
            .triples
            .iter()
            .map(|(&(a, b, c), &count)| {
                (
                    OPCODE_NAMES[a as usize],
                    OPCODE_NAMES[b as usize],
                    OPCODE_NAMES[c as usize],
                    count,
                )
            })
            .collect();
        v.sort_by(|a, b| b.3.cmp(&a.3).then((a.0, a.1, a.2).cmp(&(b.0, b.1, b.2))));
        v.truncate(k);
        v
    }
}
