//! The flat bytecode format.
//!
//! A compiled [`Program`] is a single `Vec<Op>` shared by every function,
//! thunk, and join body; code objects are distinguished only by entry
//! label. Environments are *slot-indexed*: the compiler resolves every
//! variable to a frame-relative offset, so the interpreter never touches
//! a name or a hash map. Join points compile to plain code labels plus a
//! static environment depth; `jump` is [`Op::Jump`] — truncate the slot
//! stack in place and branch. No operand-stack fix-up is needed: the Lint
//! discipline (jumps only in Δ-preserving contexts) guarantees that every
//! jump site sits at exactly the operand depth of the join point it
//! targets, which is what lets the paper's "adjust the stack and jump"
//! compile to two machine-level moves.

use fj_ast::{Ident, PrimOp};
use fj_eval::EvalMode;

/// How a heap cell created by [`Op::MkThunk`] / [`Op::LetRec`] is charged
/// against the [`Metrics`](fj_eval::Metrics) counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChargeKind {
    /// One `let_allocs` unit.
    Let,
    /// One `arg_allocs` unit.
    Arg,
    /// One `con_allocs` unit (pre-built constructor cells).
    Con,
    /// No charge (e.g. lazy constructor fields, paid for by the cell).
    Free,
}

/// One binding of a recursive `let` group.
///
/// The interpreter allocates every cell of the group first (with empty
/// capture environments), pushes them all as slots, and only then fills
/// the environments — so siblings can capture each other (including
/// cyclically) without names.
#[derive(Clone, Debug)]
pub enum RecBinding {
    /// A `λ`/`Λ` right-hand side: a closure, charged one `let` unit.
    Closure {
        /// Entry label of the body.
        label: u32,
        /// Frame-relative slots to capture (resolved after the whole
        /// group is pushed, so they may point at siblings).
        captures: Box<[u16]>,
    },
    /// Any other right-hand side: a thunk re-running `label` on demand.
    Thunk {
        /// Entry label of the recipe code.
        label: u32,
        /// Captured slots, as for `Closure`.
        captures: Box<[u16]>,
        /// How to charge the cell at bind time: `Let` for general
        /// thunks, `Con` for pre-built constructor cells (the machine
        /// charges those at their `bind` step, before any use).
        charge: ChargeKind,
    },
    /// A literal right-hand side: a plain value, charged nothing.
    Int(i64),
}

/// Branch table of a `case` expression.
///
/// The scrutinee is popped; constructor arms match by interned tag,
/// literal arms by value, with an optional default. A matching
/// constructor arm with binders pushes every field as a fresh slot
/// (field bindings are free: the constructor cell paid at build time).
#[derive(Clone, Debug)]
pub struct CaseTable {
    /// `(tag, target, binder_count)` constructor arms. A non-zero binder
    /// count must equal the cell's field count (else the machine — and
    /// the VM — is stuck on an arity mismatch).
    pub con_arms: Box<[(u32, u32, u16)]>,
    /// `(literal, target)` arms.
    pub lit_arms: Box<[(i64, u32)]>,
    /// Fallback target, if the case has a default alternative.
    pub default: Option<u32>,
}

/// One bytecode instruction.
///
/// Every `u32` code reference is a *label id* during compilation and is
/// rewritten to an absolute instruction index by
/// [`finalize`](crate::compile), so the interpreter does plain `ip = x`.
#[derive(Clone, Debug)]
pub enum Op {
    /// Push an integer.
    PushInt(i64),
    /// Push `env[base + slot]` verbatim (aliases share thunk cells).
    Load(u16),
    /// Push `env[base + slot]`, forcing a thunk to WHNF first.
    LoadForce(u16),
    /// Pop `arity` fields, push a constructor value. `charge` adds one
    /// `con_allocs` unit (false for nullary cells and for nested nodes
    /// of an answer-shaped literal, which the machine never focuses).
    MkCon {
        /// Interned constructor tag.
        tag: u32,
        /// Field count.
        arity: u16,
        /// Whether this build charges `con_allocs`.
        charge: bool,
    },
    /// Push a closure capturing the listed slots. Never charges by
    /// itself: context decides (a closure *bound* as a let/arg charges
    /// via [`Op::Bind`]/[`Op::Call`]).
    MkClosure {
        /// Entry label of the body.
        label: u32,
        /// Frame-relative slots to capture.
        captures: Box<[u16]>,
    },
    /// Push a thunk over `label`, charging `charge` at creation.
    MkThunk {
        /// Entry label of the suspended code.
        label: u32,
        /// Frame-relative slots to capture.
        captures: Box<[u16]>,
        /// Metrics charge at creation time.
        charge: ChargeKind,
        /// Lazy constructor fields: `case` projection under call-by-need
        /// clones a fresh pending cell per projection, mirroring the
        /// machine's per-projection field thunks.
        per_projection: bool,
    },
    /// Allocate a recursive `let` group (two-phase, see [`RecBinding`]).
    LetRec(Box<[RecBinding]>),
    /// Pop the top value into a fresh slot. With `charge_let`, a closure
    /// value charges one `let_allocs` unit (the machine's `store_binding`
    /// policy; constructor and literal values are free once built).
    Bind {
        /// Charge `let_allocs` if the bound value is a closure.
        charge_let: bool,
    },
    /// Drop `n` slots (scope exit on paths that merge with shallower
    /// ones; `Ret`/`Jump` truncate wholesale instead).
    PopEnv(u16),
    /// Pop `(fun, arg)`, enter the closure. With `charge_arg`, a closure
    /// *argument* charges one `arg_allocs` unit (non-cheap arguments
    /// that evaluate to functions allocate; data and literals do not).
    Call {
        /// Charge `arg_allocs` if the argument value is a closure.
        charge_arg: bool,
    },
    /// `Call` reusing the current frame (tail position).
    TailCall {
        /// As for [`Op::Call`].
        charge_arg: bool,
    },
    /// Pop a type-lambda closure and enter it (types are erased, so no
    /// argument and no charge — the machine binds type args for free).
    CallTy,
    /// `CallTy` in tail position.
    TailCallTy,
    /// Return the top value to the calling frame (updating a call-by-need
    /// thunk if the frame demands it).
    Ret,
    /// Unconditional branch.
    Goto(u32),
    /// The `jump` rule, made literal: pop `arity` arguments, truncate the
    /// slot stack to the join point's static depth, push the arguments
    /// as the join parameters, branch. No heap traffic, no name lookup,
    /// no operand-stack scan. Bit `i` of `charge_mask` marks a non-cheap
    /// argument, which charges `arg_allocs` if it is a closure (same
    /// policy as [`Op::Call`]).
    Jump {
        /// Join body entry.
        target: u32,
        /// Slot count at the join's definition point (frame-relative).
        env_keep: u16,
        /// Parameter count.
        arity: u16,
        /// Per-argument charge-if-closure bits.
        charge_mask: u64,
    },
    /// Pop the scrutinee and branch through the table.
    Case(Box<CaseTable>),
    /// Pop two integers, apply `op`, push the result (booleans become
    /// nullary `True`/`False` cells, which are free).
    Prim(PrimOp),
    /// Stop; the top of the operand stack is the program's answer.
    Halt,
}

/// A compiled program: flat code plus the tag-interning table.
#[derive(Clone, Debug)]
pub struct Program {
    /// The instruction stream (all code objects, concatenated).
    pub ops: Vec<Op>,
    /// Interned constructor names, indexed by tag.
    pub idents: Vec<Ident>,
    /// Entry instruction of the root code object.
    pub entry: u32,
    /// The evaluation mode the program was compiled for (laziness and
    /// the charging policy are baked into the code).
    pub mode: EvalMode,
    /// Whether any instruction can create a thunk; when false the
    /// interpreter's variable loads skip the force check entirely.
    pub uses_thunks: bool,
}
