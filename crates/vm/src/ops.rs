//! The flat bytecode format.
//!
//! A compiled [`Program`] is a single `Vec<Op>` shared by every function,
//! thunk, and join body; code objects are distinguished only by entry
//! label. Environments are *slot-indexed*: the compiler resolves every
//! variable to a frame-relative offset, so the interpreter never touches
//! a name or a hash map. Join points compile to plain code labels plus a
//! static environment depth; `jump` is [`Op::Jump`] — truncate the slot
//! stack in place and branch. No operand-stack fix-up is needed: the Lint
//! discipline (jumps only in Δ-preserving contexts) guarantees that every
//! jump site sits at exactly the operand depth of the join point it
//! targets, which is what lets the paper's "adjust the stack and jump"
//! compile to two machine-level moves.
//!
//! # Op-word layout
//!
//! The hot instruction word is a *fixed 16-byte* enum: every payload that
//! would widen it — case branch tables, capture lists, recursive-binding
//! groups, charged jump specs — lives in a side table of the shared
//! [`Code`] object and is referenced by a `u32` index. The dispatch loop
//! therefore streams over a dense array of uniform words instead of
//! chasing boxes, and cloning a compiled [`Program`] is a refcount bump
//! on one [`Arc`]. A test asserts `size_of::<Op>() == 16`.

use fj_ast::{Ident, PrimOp};
use fj_eval::EvalMode;
use std::sync::Arc;

/// How a heap cell created by [`Op::MkThunk`] / [`Op::LetRec`] is charged
/// against the [`Metrics`](fj_eval::Metrics) counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChargeKind {
    /// One `let_allocs` unit.
    Let,
    /// One `arg_allocs` unit.
    Arg,
    /// One `con_allocs` unit (pre-built constructor cells).
    Con,
    /// No charge (e.g. lazy constructor fields, paid for by the cell).
    Free,
}

/// One binding of a recursive `let` group.
///
/// The interpreter allocates every cell of the group first (with empty
/// capture environments), pushes them all as slots, and only then fills
/// the environments — so siblings can capture each other (including
/// cyclically) without names. Groups live in [`Code::rec_groups`], so
/// the boxed capture lists here never touch the instruction stream.
#[derive(Clone, Debug)]
pub enum RecBinding {
    /// A `λ`/`Λ` right-hand side: a closure, charged one `let` unit.
    Closure {
        /// Entry label of the body.
        label: u32,
        /// Frame-relative slots to capture (resolved after the whole
        /// group is pushed, so they may point at siblings).
        captures: Box<[u16]>,
    },
    /// Any other right-hand side: a thunk re-running `label` on demand.
    Thunk {
        /// Entry label of the recipe code.
        label: u32,
        /// Captured slots, as for `Closure`.
        captures: Box<[u16]>,
        /// How to charge the cell at bind time: `Let` for general
        /// thunks, `Con` for pre-built constructor cells (the machine
        /// charges those at their `bind` step, before any use).
        charge: ChargeKind,
    },
    /// A literal right-hand side: a plain value, charged nothing.
    Int(i64),
}

/// Branch table of a `case` expression, stored in [`Code::cases`].
///
/// The scrutinee is popped; constructor arms match by interned tag,
/// literal arms by value, with an optional default. A matching
/// constructor arm with binders pushes every field as a fresh slot
/// (field bindings are free: the constructor cell paid at build time).
#[derive(Clone, Debug)]
pub struct CaseTable {
    /// `(tag, target, binder_count)` constructor arms. A non-zero binder
    /// count must equal the cell's field count (else the machine — and
    /// the VM — is stuck on an arity mismatch).
    pub con_arms: Box<[(u32, u32, u16)]>,
    /// `(literal, target)` arms.
    pub lit_arms: Box<[(i64, u32)]>,
    /// Fallback target, if the case has a default alternative.
    pub default: Option<u32>,
}

/// A `jump` whose `charge_mask` is non-zero (some argument may charge an
/// `arg_allocs` unit). These are rare — the common allocation-free jump
/// is the inline [`Op::Jump`] — so the 8-byte mask lives here, in
/// [`Code::jump_specs`].
#[derive(Clone, Debug)]
pub struct JumpSpec {
    /// Join body entry.
    pub target: u32,
    /// Slot count at the join's definition point (frame-relative).
    pub env_keep: u16,
    /// Parameter count.
    pub arity: u16,
    /// Per-argument charge-if-closure bits (bit `i` set marks a
    /// non-cheap argument, charged as [`Op::Call`] charges).
    pub charge_mask: u64,
}

/// One bytecode instruction — a fixed 16-byte word (asserted by test).
///
/// Every `u32` code reference is a *label id* during compilation and is
/// rewritten to an absolute instruction index by
/// [`finalize`](crate::compile), so the interpreter does plain `ip = x`.
///
/// The ops after [`Op::Halt`] are *fused superinstructions*: a peephole
/// pass over the finalized stream replaces measured-hot adjacent pairs
/// and triples with one word each (then compacts the stream), so the
/// dispatch loop pays one decode for what the naive stream paid two to
/// four for. Fusion never crosses a branch target and charges the
/// metrics counters exactly as its unfused expansion would; compiling
/// with fusion disabled keeps the one-op-per-step stream as an oracle.
#[derive(Clone, Copy, Debug)]
pub enum Op {
    /// Push an integer.
    PushInt(i64),
    /// Push `env[base + slot]` verbatim (aliases share thunk cells).
    Load(u16),
    /// Push `env[base + slot]`, forcing a thunk to WHNF first.
    LoadForce(u16),
    /// Pop `arity` fields, push a constructor value. `charge` adds one
    /// `con_allocs` unit (false for nullary cells and for nested nodes
    /// of an answer-shaped literal, which the machine never focuses).
    MkCon {
        /// Interned constructor tag.
        tag: u32,
        /// Field count.
        arity: u16,
        /// Whether this build charges `con_allocs`.
        charge: bool,
    },
    /// Push a closure capturing the slots in `Code::captures[caps]`.
    /// Never charges by itself: context decides (a closure *bound* as a
    /// let/arg charges via [`Op::Bind`]/[`Op::Call`]).
    MkClosure {
        /// Entry label of the body.
        label: u32,
        /// Capture-list index into [`Code::captures`].
        caps: u32,
    },
    /// Push a thunk over `label`, charging `charge` at creation.
    MkThunk {
        /// Entry label of the suspended code.
        label: u32,
        /// Capture-list index into [`Code::captures`].
        caps: u32,
        /// Metrics charge at creation time.
        charge: ChargeKind,
        /// Lazy constructor fields: `case` projection under call-by-need
        /// clones a fresh pending cell per projection, mirroring the
        /// machine's per-projection field thunks.
        per_projection: bool,
    },
    /// Allocate a recursive `let` group: `Code::rec_groups[idx]`
    /// (two-phase, see [`RecBinding`]).
    LetRec(u32),
    /// Pop the top value into a fresh slot. With `charge_let`, a closure
    /// value charges one `let_allocs` unit (the machine's `store_binding`
    /// policy; constructor and literal values are free once built).
    Bind {
        /// Charge `let_allocs` if the bound value is a closure.
        charge_let: bool,
    },
    /// Drop `n` slots (scope exit on paths that merge with shallower
    /// ones; `Ret`/`Jump` truncate wholesale instead).
    PopEnv(u16),
    /// Pop `(fun, arg)`, enter the closure. With `charge_arg`, a closure
    /// *argument* charges one `arg_allocs` unit (non-cheap arguments
    /// that evaluate to functions allocate; data and literals do not).
    Call {
        /// Charge `arg_allocs` if the argument value is a closure.
        charge_arg: bool,
    },
    /// `Call` reusing the current frame (tail position).
    TailCall {
        /// As for [`Op::Call`].
        charge_arg: bool,
    },
    /// Pop a type-lambda closure and enter it (types are erased, so no
    /// argument and no charge — the machine binds type args for free).
    CallTy,
    /// `CallTy` in tail position.
    TailCallTy,
    /// Return the top value to the calling frame (updating a call-by-need
    /// thunk if the frame demands it).
    Ret,
    /// Unconditional branch.
    Goto(u32),
    /// The `jump` rule, made literal: pop `arity` arguments, truncate the
    /// slot stack to the join point's static depth, push the arguments
    /// as the join parameters, branch. No heap traffic, no name lookup,
    /// no operand-stack scan. This is the charge-free common case; a
    /// jump with a non-zero charge mask compiles to [`Op::JumpCharged`].
    Jump {
        /// Join body entry.
        target: u32,
        /// Slot count at the join's definition point (frame-relative).
        env_keep: u16,
        /// Parameter count.
        arity: u16,
    },
    /// A `jump` with per-argument charge bits: `Code::jump_specs[idx]`.
    JumpCharged(u32),
    /// Pop the scrutinee and branch through `Code::cases[idx]`.
    Case(u32),
    /// Pop two integers, apply `op`, push the result (booleans become
    /// nullary `True`/`False` cells, which are free).
    Prim(PrimOp),
    /// Stop; the top of the operand stack is the program's answer.
    Halt,

    // ------------------------------------------------------------------
    // Fused superinstructions (peephole-emitted; never hand-written).
    // ------------------------------------------------------------------
    /// `Load slot; Ret` — the one-variable epilogue.
    LoadRet(u16),
    /// `Load a; Load b; Prim op`.
    LoadLoadPrim {
        /// First (deeper) operand slot.
        a: u16,
        /// Second operand slot.
        b: u16,
        /// The primitive.
        op: PrimOp,
    },
    /// `Load a; PushInt n; Prim op` — variable-vs-constant arithmetic.
    LoadIntPrim {
        /// First operand slot.
        a: u16,
        /// Second operand, an inline constant.
        n: i32,
        /// The primitive.
        op: PrimOp,
    },
    /// `PushInt n; Prim op` — the first operand is already on the stack.
    IntPrim {
        /// Second operand, an inline constant.
        n: i32,
        /// The primitive.
        op: PrimOp,
    },
    /// `Load b; Prim op` — the first operand is already on the stack.
    LoadPrim {
        /// Second operand slot.
        b: u16,
        /// The primitive.
        op: PrimOp,
    },
    /// `Prim op; Case table` — compare-and-branch without materializing
    /// the boolean on the operand stack.
    PrimCase {
        /// The primitive.
        op: PrimOp,
        /// Branch table index into [`Code::cases`].
        table: u32,
    },
    /// `Load a; PushInt n; Prim op; Case table`.
    LoadIntPrimCase {
        /// First operand slot.
        a: u16,
        /// Second operand, an inline constant.
        n: i16,
        /// The primitive.
        op: PrimOp,
        /// Branch table index into [`Code::cases`].
        table: u32,
    },
    /// `Load a; Load b; Prim op; Case table`.
    LoadLoadPrimCase {
        /// First operand slot.
        a: u16,
        /// Second operand slot.
        b: u16,
        /// The primitive.
        op: PrimOp,
        /// Branch table index into [`Code::cases`].
        table: u32,
    },
    /// `Load slot; Case table` — scrutinize a variable.
    LoadCase {
        /// Scrutinee slot.
        slot: u16,
        /// Branch table index into [`Code::cases`].
        table: u32,
    },
    /// `Load a; Jump` at arity 1, charge-free — the one-argument loop
    /// back-edge.
    LoadJump {
        /// Argument slot (read *before* the env truncation).
        a: u16,
        /// Join body entry.
        target: u32,
        /// Slot count kept at the join.
        env_keep: u16,
    },
    /// `Load a; Load b; Jump` at arity 2, charge-free.
    LoadLoadJump {
        /// First argument slot.
        a: u16,
        /// Second argument slot.
        b: u16,
        /// Join body entry.
        target: u32,
        /// Slot count kept at the join.
        env_keep: u16,
    },
}

/// The shared, read-only body of a compiled program: the instruction
/// stream plus every side table it indexes. Wrapped in an [`Arc`] by
/// [`Program`], so clones (the fuzz farm re-runs one compile across many
/// routes) are refcount bumps, not deep copies of boxed payloads.
#[derive(Debug)]
pub struct Code {
    /// The instruction stream (all code objects, concatenated).
    pub ops: Vec<Op>,
    /// Case branch tables, indexed by [`Op::Case`].
    pub cases: Vec<CaseTable>,
    /// Capture lists, indexed by [`Op::MkClosure`] / [`Op::MkThunk`]
    /// (deduplicated: identical lists share an entry).
    pub captures: Vec<Box<[u16]>>,
    /// Recursive `let` groups, indexed by [`Op::LetRec`].
    pub rec_groups: Vec<Box<[RecBinding]>>,
    /// Charged jump specs, indexed by [`Op::JumpCharged`].
    pub jump_specs: Vec<JumpSpec>,
    /// Interned constructor names, indexed by tag.
    pub idents: Vec<Ident>,
    /// Entry instruction of the root code object.
    pub entry: u32,
}

/// A compiled program: [`Arc`]-shared code plus the mode flags baked in
/// at compile time. `Clone` is a refcount bump.
#[derive(Clone, Debug)]
pub struct Program {
    /// The shared instruction stream and side tables.
    pub code: Arc<Code>,
    /// The evaluation mode the program was compiled for (laziness and
    /// the charging policy are baked into the code).
    pub mode: EvalMode,
    /// Whether any instruction can create a thunk; when false the
    /// interpreter's variable loads skip the force check entirely.
    pub uses_thunks: bool,
    /// Whether the fusion peephole ran over this stream.
    pub fused: bool,
}

impl Program {
    /// Entry instruction of the root code object.
    #[must_use]
    pub fn entry(&self) -> u32 {
        self.code.entry
    }
}

/// Number of distinct opcodes (for profile histograms).
pub const NUM_OPCODES: usize = 32;

/// Display names, indexed by [`Op::opcode`].
pub const OPCODE_NAMES: [&str; NUM_OPCODES] = [
    "PushInt",
    "Load",
    "LoadForce",
    "MkCon",
    "MkClosure",
    "MkThunk",
    "LetRec",
    "Bind",
    "PopEnv",
    "Call",
    "TailCall",
    "CallTy",
    "TailCallTy",
    "Ret",
    "Goto",
    "Jump",
    "JumpCharged",
    "Case",
    "Prim",
    "Halt",
    "LoadRet",
    "LoadLoadPrim",
    "LoadIntPrim",
    "IntPrim",
    "LoadPrim",
    "PrimCase",
    "LoadIntPrimCase",
    "LoadLoadPrimCase",
    "LoadCase",
    "LoadJump",
    "LoadLoadJump",
    "(unused)",
];

impl Op {
    /// Dense opcode index, for histogram profiling (`fj report --vm-ops`).
    #[must_use]
    pub fn opcode(&self) -> u8 {
        match self {
            Op::PushInt(_) => 0,
            Op::Load(_) => 1,
            Op::LoadForce(_) => 2,
            Op::MkCon { .. } => 3,
            Op::MkClosure { .. } => 4,
            Op::MkThunk { .. } => 5,
            Op::LetRec(_) => 6,
            Op::Bind { .. } => 7,
            Op::PopEnv(_) => 8,
            Op::Call { .. } => 9,
            Op::TailCall { .. } => 10,
            Op::CallTy => 11,
            Op::TailCallTy => 12,
            Op::Ret => 13,
            Op::Goto(_) => 14,
            Op::Jump { .. } => 15,
            Op::JumpCharged(_) => 16,
            Op::Case(_) => 17,
            Op::Prim(_) => 18,
            Op::Halt => 19,
            Op::LoadRet(_) => 20,
            Op::LoadLoadPrim { .. } => 21,
            Op::LoadIntPrim { .. } => 22,
            Op::IntPrim { .. } => 23,
            Op::LoadPrim { .. } => 24,
            Op::PrimCase { .. } => 25,
            Op::LoadIntPrimCase { .. } => 26,
            Op::LoadLoadPrimCase { .. } => 27,
            Op::LoadCase { .. } => 28,
            Op::LoadJump { .. } => 29,
            Op::LoadLoadJump { .. } => 30,
        }
    }
}
