//! A flat, jump-threaded bytecode backend for System F_J.
//!
//! The Fig. 3 machine in `fj-eval` demonstrates the paper's cost model
//! by *simulation*: it walks the term tree, substitutes names, and
//! matches join frames at runtime. This crate makes the model literal.
//! A [`compile`] pass resolves every variable to a frame-relative slot
//! and every join point to a code label plus a static stack mark, and
//! [`run_program`] executes the result on an interpreter where
//! `jump` is exactly what Section 4 of the paper promises: truncate the
//! stack, branch — no closure, no heap cell, no name.
//!
//! The backend preserves the machine's [`Metrics`](fj_eval::Metrics)
//! contract bit-for-bit (`let`/`arg`/`con` allocation units and the
//! jump count; `steps` and `max_stack` are backend-specific), so
//! Table-1 style comparisons hold across backends and the differential
//! oracle can demand equality.
//!
//! ```
//! use fj_ast::{Binder, Expr, NameSupply, Type};
//! let mut supply = NameSupply::new();
//! let x = supply.fresh("x");
//! let e = Expr::app(
//!     Expr::lam(Binder::new(x.clone(), Type::con0("Int")), Expr::Var(x)),
//!     Expr::Lit(21),
//! );
//! let out = fj_vm::run(&e, fj_eval::EvalMode::CallByValue, 1_000).unwrap();
//! assert_eq!(out.value, fj_eval::Value::Int(21));
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod exec;
pub mod ops;
pub mod profile;
pub mod value;

pub use compile::{compile, compile_with, fuse_default, CompileError, CompileOpts};
pub use exec::{run_program, run_program_profiled, run_program_with_limits};
pub use ops::{Code, Op, Program};
pub use profile::OpProfile;
pub use value::VmError;

use fj_ast::Expr;
use fj_eval::{EvalMode, Outcome};

/// Compile and run a closed term: the one-call counterpart of
/// [`fj_eval::run`], returning the same [`Outcome`] shape.
///
/// `fuel` bounds executed *instructions*, a finer unit than machine
/// transitions; budget roughly 10× the machine's step budget.
///
/// # Errors
///
/// [`VmError::Compile`] on unlowered terms (unbound names — impossible
/// for Lint-clean input), otherwise the interpreter's runtime errors.
pub fn run(e: &Expr, mode: EvalMode, fuel: u64) -> Result<Outcome, VmError> {
    let prog = compile(e, mode).map_err(VmError::Compile)?;
    run_program(&prog, fuel)
}

/// As [`run`], with an additional optional wall-clock deadline, mirroring
/// [`fj_eval::run_with_limits`] so the two backends report timeouts
/// consistently.
///
/// # Errors
///
/// As [`run`], plus [`VmError::Timeout`] past the deadline.
pub fn run_with_limits(
    e: &Expr,
    mode: EvalMode,
    fuel: u64,
    deadline: Option<std::time::Duration>,
) -> Result<Outcome, VmError> {
    let prog = compile(e, mode).map_err(VmError::Compile)?;
    run_program_with_limits(&prog, fuel, deadline)
}
