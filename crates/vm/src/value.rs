//! Runtime values of the bytecode interpreter.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A runtime value. Everything is one machine word plus a payload; heap
/// values are `Rc`-shared, so copying a value never copies a structure.
#[derive(Clone, Debug)]
pub enum VmValue {
    /// An integer.
    Int(i64),
    /// A constructor cell: interned tag plus shared fields.
    Con(u32, Rc<Vec<VmValue>>),
    /// A function (or type-function) closure.
    Closure(Rc<ClosureCell>),
    /// A suspended computation (lazy modes and `letrec` aliases).
    Thunk(Rc<ThunkCell>),
}

/// A closure: code entry plus captured slots. The environment sits in a
/// `RefCell` so recursive groups can be backpatched after every sibling
/// cell exists.
#[derive(Debug)]
pub struct ClosureCell {
    /// Entry label (absolute instruction index after finalization).
    pub label: u32,
    /// Captured values, copied into the frame on entry.
    pub env: RefCell<Vec<VmValue>>,
}

/// A thunk: code entry, captured slots, and a force-state.
#[derive(Debug)]
pub struct ThunkCell {
    /// Entry label of the suspended code.
    pub label: u32,
    /// Captured values (backpatchable, as for closures).
    pub env: RefCell<Vec<VmValue>>,
    /// Pending or (call-by-need only) forced.
    pub state: RefCell<ThunkState>,
    /// Lazy constructor fields are cloned fresh per `case` projection
    /// under call-by-need (the machine allocates a new field thunk each
    /// time it scrutinizes the cell).
    pub per_projection: bool,
}

/// Force-state of a [`ThunkCell`].
#[derive(Clone, Debug)]
pub enum ThunkState {
    /// Not yet demanded (call-by-name and call-by-value re-enter the
    /// code on every demand, exactly like the machine's update-free
    /// thunks).
    Pending,
    /// Demanded and memoized (call-by-need).
    Forced(VmValue),
}

impl VmValue {
    /// Is this value a function? (The charge-if-closure tests.)
    pub fn is_closure(&self) -> bool {
        matches!(self, VmValue::Closure(_))
    }
}

/// Why a VM run failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// The term could not be lowered to bytecode.
    Compile(crate::compile::CompileError),
    /// The instruction budget was exhausted.
    OutOfFuel,
    /// The wall-clock deadline passed (only when one was configured via
    /// [`run_program_with_limits`](crate::exec::run_program_with_limits)).
    Timeout {
        /// The configured wall-clock limit.
        limit: std::time::Duration,
    },
    /// Division or remainder by zero.
    DivideByZero,
    /// A configuration no instruction covers (runtime type error).
    Stuck(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Compile(e) => write!(f, "compile error: {e}"),
            VmError::OutOfFuel => write!(f, "instruction budget exhausted"),
            VmError::Timeout { limit } => {
                write!(f, "wall-clock deadline exhausted ({limit:?})")
            }
            VmError::DivideByZero => write!(f, "division by zero"),
            VmError::Stuck(msg) => write!(f, "vm stuck: {msg}"),
        }
    }
}

impl std::error::Error for VmError {}
