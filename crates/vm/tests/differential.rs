//! Differential tests: the bytecode VM against the Fig. 3 machine.
//!
//! The contract is strict — same value AND same allocation metrics
//! (`let`/`arg`/`con` units and the jump count). `steps` and
//! `max_stack` are backend-specific and excluded.

use fj_ast::{Binder, Expr, JoinDef, NameSupply, PrimOp, Type};
use fj_eval::{EvalMode, MachineError, Value};
use fj_testkit::{build_closed, runner, Config};
use fj_vm::VmError;

const MACHINE_FUEL: u64 = 5_000_000;
const VM_FUEL: u64 = 50_000_000;

const ALL_MODES: [EvalMode; 3] = [
    EvalMode::CallByValue,
    EvalMode::CallByName,
    EvalMode::CallByNeed,
];

/// Run both backends and demand agreement on outcome class, value, and
/// allocation metrics.
fn assert_parity(e: &Expr, mode: EvalMode) -> Result<(), String> {
    let m = fj_eval::run(e, mode, MACHINE_FUEL);
    let v = fj_vm::run(e, mode, VM_FUEL);
    match (m, v) {
        (Ok(m), Ok(v)) => {
            if m.value != v.value {
                return Err(format!(
                    "{mode:?}: value mismatch: machine {} vs vm {}\n{e}",
                    m.value, v.value
                ));
            }
            let (a, b) = (&m.metrics, &v.metrics);
            if (a.let_allocs, a.arg_allocs, a.con_allocs, a.jumps)
                != (b.let_allocs, b.arg_allocs, b.con_allocs, b.jumps)
            {
                return Err(format!(
                    "{mode:?}: metric mismatch: machine let={} arg={} con={} jumps={} \
                     vs vm let={} arg={} con={} jumps={}\n{e}",
                    a.let_allocs,
                    a.arg_allocs,
                    a.con_allocs,
                    a.jumps,
                    b.let_allocs,
                    b.arg_allocs,
                    b.con_allocs,
                    b.jumps
                ));
            }
            Ok(())
        }
        (Err(MachineError::DivideByZero), Err(VmError::DivideByZero))
        | (Err(MachineError::OutOfFuel), Err(VmError::OutOfFuel))
        | (Err(MachineError::Stuck(_)), Err(VmError::Stuck(_))) => Ok(()),
        (m, v) => Err(format!("{mode:?}: outcome mismatch: {m:?} vs {v:?}\n{e}")),
    }
}

fn int() -> Type {
    Type::con0("Int")
}

/// ISSUE acceptance: 200 generated closed programs, equal values and
/// equal heap-allocation metrics, in every evaluation mode.
#[test]
fn generated_programs_agree_with_machine() {
    runner::check_with(
        Config {
            cases: 200,
            ..Config::default()
        },
        "vm agrees with machine on generated programs",
        |g| {
            let (_d, e) = build_closed(g);
            for mode in ALL_MODES {
                assert_parity(&e, mode)?;
            }
            Ok(())
        },
    );
}

/// The tentpole's headline invariant, as an exact-count test: a join
/// loop taking N jumps performs ZERO heap allocation on both backends —
/// a jump is a branch plus a stack truncation, nothing else.
#[test]
fn jump_is_allocation_free() {
    let mut s = NameSupply::new();
    let j = s.fresh("loop");
    let x = s.fresh("x");
    // joinrec loop(x) = if x < 1000 then jump loop (x+1) else x
    // in jump loop 0
    let def = JoinDef {
        name: j.clone(),
        ty_params: vec![],
        params: vec![Binder::new(x.clone(), int())],
        body: Expr::ite(
            Expr::prim2(PrimOp::Lt, Expr::var(&x), Expr::Lit(1000)),
            Expr::jump(
                &j,
                vec![],
                vec![Expr::prim2(PrimOp::Add, Expr::var(&x), Expr::Lit(1))],
                int(),
            ),
            Expr::var(&x),
        ),
    };
    let e = Expr::joinrec(vec![def], Expr::jump(&j, vec![], vec![Expr::Lit(0)], int()));
    for mode in ALL_MODES {
        let m = fj_eval::run(&e, mode, MACHINE_FUEL).unwrap();
        let v = fj_vm::run(&e, mode, VM_FUEL).unwrap();
        assert_eq!(v.value, Value::Int(1000));
        assert_eq!(v.value, m.value);
        // 1 entry jump + 1000 loop jumps.
        assert_eq!(v.metrics.jumps, 1001, "{mode:?}");
        assert_eq!(v.metrics.jumps, m.metrics.jumps, "{mode:?}");
        assert_eq!(
            v.metrics.total_allocs(),
            m.metrics.total_allocs(),
            "{mode:?}: allocation parity"
        );
    }
    // The headline exact count: by value (the bench configuration), the
    // 1001 jumps perform zero heap allocation — each is a branch plus a
    // stack truncation. (Lazy modes charge the non-atomic argument
    // `x+1` one `arg` thunk per jump, exactly as the machine does.)
    let v = fj_vm::run(&e, EvalMode::CallByValue, VM_FUEL).unwrap();
    assert_eq!(v.metrics.total_allocs(), 0, "vm jump must not allocate");
}

/// Hand-picked shapes the generator reaches rarely: recursive lets,
/// higher-order results, nested constructors, case defaults, literal
/// alternatives, shadowing, unused joins, jump-under-case.
#[test]
fn targeted_shapes_agree_with_machine() {
    let mut s = NameSupply::new();
    let f = s.fresh("f");
    let g = s.fresh("g");
    let x = s.fresh("x");
    let y = s.fresh("y");
    let j = s.fresh("j");
    let b = |n: &fj_ast::Name| Binder::new(n.clone(), int());

    let cases: Vec<Expr> = vec![
        // letrec even/odd-style loop through a lambda.
        Expr::letrec(
            vec![(
                b(&f),
                Expr::lam(
                    b(&x),
                    Expr::ite(
                        Expr::prim2(PrimOp::Lt, Expr::var(&x), Expr::Lit(10)),
                        Expr::app(
                            Expr::var(&f),
                            Expr::prim2(PrimOp::Add, Expr::var(&x), Expr::Lit(1)),
                        ),
                        Expr::var(&x),
                    ),
                ),
            )],
            Expr::app(Expr::var(&f), Expr::Lit(0)),
        ),
        // A let-bound closure applied twice (arg + let charging).
        Expr::let1(
            b(&g),
            Expr::lam(
                b(&x),
                Expr::prim2(PrimOp::Mul, Expr::var(&x), Expr::var(&x)),
            ),
            Expr::prim2(
                PrimOp::Add,
                Expr::app(Expr::var(&g), Expr::Lit(3)),
                Expr::app(Expr::var(&g), Expr::Lit(4)),
            ),
        ),
        // Nested constructor scrutinized twice (per-projection thunks).
        Expr::let1(
            b(&y),
            Expr::Con(
                fj_ast::Ident::new("Pair"),
                vec![],
                vec![
                    Expr::prim2(PrimOp::Add, Expr::Lit(1), Expr::Lit(2)),
                    Expr::Lit(7),
                ],
            ),
            Expr::case(
                Expr::var(&y),
                vec![fj_ast::Alt {
                    con: fj_ast::AltCon::Con(fj_ast::Ident::new("Pair")),
                    binders: vec![b(&x), b(&f)],
                    rhs: Expr::case(
                        Expr::var(&y),
                        vec![fj_ast::Alt {
                            con: fj_ast::AltCon::Con(fj_ast::Ident::new("Pair")),
                            binders: vec![b(&g), b(&j)],
                            rhs: Expr::prim2(PrimOp::Add, Expr::var(&x), Expr::var(&g)),
                        }],
                    ),
                }],
            ),
        ),
        // Literal alternatives with a default.
        Expr::case(
            Expr::prim2(PrimOp::Add, Expr::Lit(2), Expr::Lit(2)),
            vec![
                fj_ast::Alt::simple(fj_ast::AltCon::Lit(3), Expr::Lit(30)),
                fj_ast::Alt::simple(fj_ast::AltCon::Lit(4), Expr::Lit(40)),
                fj_ast::Alt::simple(fj_ast::AltCon::Default, Expr::Lit(0)),
            ],
        ),
        // Unused join point around a value.
        Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![b(&x)],
                body: Expr::var(&x),
            },
            Expr::Lit(5),
        ),
        // Jump from one arm, plain value from the other (merge point).
        Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![b(&x)],
                body: Expr::prim2(PrimOp::Mul, Expr::var(&x), Expr::Lit(2)),
            },
            Expr::prim2(
                PrimOp::Add,
                Expr::ite(
                    Expr::prim2(PrimOp::Lt, Expr::Lit(1), Expr::Lit(2)),
                    Expr::jump(&j, vec![], vec![Expr::Lit(21)], int()),
                    Expr::Lit(0),
                ),
                Expr::Lit(0),
            ),
        ),
        // Shadowing: inner let reuses an outer slot's name.
        Expr::let1(
            b(&x),
            Expr::prim2(PrimOp::Add, Expr::Lit(1), Expr::Lit(1)),
            Expr::let1(
                b(&x),
                Expr::prim2(PrimOp::Mul, Expr::var(&x), Expr::Lit(10)),
                Expr::var(&x),
            ),
        ),
        // Division by zero surfaces identically.
        Expr::prim2(
            PrimOp::Div,
            Expr::Lit(1),
            Expr::prim2(PrimOp::Sub, Expr::Lit(2), Expr::Lit(2)),
        ),
        // A function value as the program result.
        Expr::let1(b(&f), Expr::lam(b(&x), Expr::var(&x)), Expr::var(&f)),
        // Data result with lazy fields (deep force at the boundary).
        Expr::Con(
            fj_ast::Ident::new("Pair"),
            vec![],
            vec![
                Expr::prim2(PrimOp::Add, Expr::Lit(20), Expr::Lit(1)),
                Expr::Con(
                    fj_ast::Ident::new("Just"),
                    vec![],
                    vec![Expr::prim2(PrimOp::Mul, Expr::Lit(2), Expr::Lit(3))],
                ),
            ],
        ),
        // letrec with a constructor cell and an alias in the group.
        Expr::letrec(
            vec![
                (
                    b(&y),
                    Expr::Con(fj_ast::Ident::new("Just"), vec![], vec![Expr::Lit(9)]),
                ),
                (b(&x), Expr::var(&y)),
            ],
            Expr::case(
                Expr::var(&x),
                vec![
                    fj_ast::Alt {
                        con: fj_ast::AltCon::Con(fj_ast::Ident::new("Just")),
                        binders: vec![b(&g)],
                        rhs: Expr::var(&g),
                    },
                    fj_ast::Alt::simple(fj_ast::AltCon::Default, Expr::Lit(0)),
                ],
            ),
        ),
    ];
    for e in &cases {
        for mode in ALL_MODES {
            if let Err(msg) = assert_parity(e, mode) {
                panic!("{msg}");
            }
        }
    }
}

/// Deep recursion through joins must not overflow the VM (frames are a
/// heap vector, not the Rust stack) and must match the machine's count.
#[test]
fn long_join_loop_matches_machine_counters() {
    let mut s = NameSupply::new();
    let j = s.fresh("loop");
    let acc = s.fresh("acc");
    let n = s.fresh("n");
    // joinrec loop(acc, n) = if n < 1 then acc
    //                        else jump loop (acc+n) (n-1)
    // in jump loop 0 100000      (sum 1..=100000)
    let def = JoinDef {
        name: j.clone(),
        ty_params: vec![],
        params: vec![
            Binder::new(acc.clone(), int()),
            Binder::new(n.clone(), int()),
        ],
        body: Expr::ite(
            Expr::prim2(PrimOp::Lt, Expr::var(&n), Expr::Lit(1)),
            Expr::var(&acc),
            Expr::jump(
                &j,
                vec![],
                vec![
                    Expr::prim2(PrimOp::Add, Expr::var(&acc), Expr::var(&n)),
                    Expr::prim2(PrimOp::Sub, Expr::var(&n), Expr::Lit(1)),
                ],
                int(),
            ),
        ),
    };
    let e = Expr::joinrec(
        vec![def],
        Expr::jump(&j, vec![], vec![Expr::Lit(0), Expr::Lit(100_000)], int()),
    );
    let m = fj_eval::run(&e, EvalMode::CallByValue, MACHINE_FUEL).unwrap();
    let v = fj_vm::run(&e, EvalMode::CallByValue, VM_FUEL).unwrap();
    assert_eq!(v.value, Value::Int(5_000_050_000));
    assert_eq!(m.value, v.value);
    assert_eq!(m.metrics.jumps, v.metrics.jumps);
    assert_eq!(v.metrics.total_allocs(), 0);
}
