//! Fusion-oracle tests: the superinstruction peephole must be invisible
//! except in speed — same values, bit-identical allocation counters —
//! and the compact op word must stay compact.

use fj_ast::{Binder, Expr, JoinDef, NameSupply, PrimOp, Type};
use fj_eval::{EvalMode, Value};
use fj_testkit::{build_closed, runner, Config};
use fj_vm::{compile_with, run_program, CompileOpts, Op};

const VM_FUEL: u64 = 50_000_000;

const ALL_MODES: [EvalMode; 3] = [
    EvalMode::CallByValue,
    EvalMode::CallByName,
    EvalMode::CallByNeed,
];

fn int() -> Type {
    Type::con0("Int")
}

/// joinrec loop(acc, n) = if n < 1 then acc else jump loop (acc+n) (n-1)
/// in jump loop 0 `limit` — the canonical hot loop the fusion pass
/// targets (Load/Prim/Jump traffic).
fn sum_loop(limit: i64) -> Expr {
    let mut s = NameSupply::new();
    let j = s.fresh("loop");
    let acc = s.fresh("acc");
    let n = s.fresh("n");
    let def = JoinDef {
        name: j.clone(),
        ty_params: vec![],
        params: vec![
            Binder::new(acc.clone(), int()),
            Binder::new(n.clone(), int()),
        ],
        body: Expr::ite(
            Expr::prim2(PrimOp::Lt, Expr::var(&n), Expr::Lit(1)),
            Expr::var(&acc),
            Expr::jump(
                &j,
                vec![],
                vec![
                    Expr::prim2(PrimOp::Add, Expr::var(&acc), Expr::var(&n)),
                    Expr::prim2(PrimOp::Sub, Expr::var(&n), Expr::Lit(1)),
                ],
                int(),
            ),
        ),
    };
    Expr::joinrec(
        vec![def],
        Expr::jump(&j, vec![], vec![Expr::Lit(0), Expr::Lit(limit)], int()),
    )
}

/// The tentpole's layout claim: the hot instruction word is a small
/// fixed-size `Copy` value. `PushInt(i64)` forces 8-byte alignment, so
/// 16 bytes (discriminant + payload) is the floor — and the assert
/// keeps anyone from accidentally fattening a variant past it.
#[test]
fn op_word_is_16_bytes() {
    assert_eq!(std::mem::size_of::<Op>(), 16);
    assert_eq!(std::mem::size_of::<Option<Op>>(), 16);
}

/// Cloning a compiled program must share the code and side tables, not
/// copy them: `Program::clone` is a refcount bump.
#[test]
fn program_clone_shares_code_via_arc() {
    let e = sum_loop(100);
    let prog = compile_with(&e, EvalMode::CallByValue, CompileOpts { fuse: true }).unwrap();
    let cloned = prog.clone();
    assert!(
        std::sync::Arc::ptr_eq(&prog.code, &cloned.code),
        "clone must share the Arc'd code block"
    );
}

/// The peephole actually fires on the canonical loop: the fused stream
/// is strictly shorter and contains at least one superinstruction.
#[test]
fn fusion_shrinks_the_hot_loop_stream() {
    let e = sum_loop(1000);
    let unfused = compile_with(&e, EvalMode::CallByValue, CompileOpts { fuse: false }).unwrap();
    let fused = compile_with(&e, EvalMode::CallByValue, CompileOpts { fuse: true }).unwrap();
    assert!(!unfused.fused);
    assert!(fused.fused);
    assert!(
        fused.code.ops.len() < unfused.code.ops.len(),
        "fusion must shrink the stream: {} -> {}",
        unfused.code.ops.len(),
        fused.code.ops.len()
    );
    let supers = fused.code.ops.iter().filter(|op| op.opcode() >= 20).count();
    assert!(supers > 0, "expected fused superinstructions in the stream");
}

/// Exact-count oracle on the canonical loop: the fused stream charges
/// the same counters as the unfused stream, down to the last jump, and
/// the loop stays allocation-free.
#[test]
fn fused_counters_exact_on_join_loop() {
    // Lazy modes force the accumulator thunk chain quadratically, so the
    // all-modes parity check runs a short loop; the exact-count check
    // below runs the long one by value (the bench configuration).
    let short = sum_loop(1000);
    for mode in ALL_MODES {
        let unfused = compile_with(&short, mode, CompileOpts { fuse: false }).unwrap();
        let fused = compile_with(&short, mode, CompileOpts { fuse: true }).unwrap();
        let u = run_program(&unfused, VM_FUEL).unwrap();
        let f = run_program(&fused, VM_FUEL).unwrap();
        assert_eq!(f.value, Value::Int(500_500));
        assert_eq!(u.value, f.value, "{mode:?}");
        assert_eq!(
            (
                u.metrics.let_allocs,
                u.metrics.arg_allocs,
                u.metrics.con_allocs,
                u.metrics.jumps
            ),
            (
                f.metrics.let_allocs,
                f.metrics.arg_allocs,
                f.metrics.con_allocs,
                f.metrics.jumps
            ),
            "{mode:?}: fusion changed the counters"
        );
    }
    let e = sum_loop(100_000);
    let unfused = compile_with(&e, EvalMode::CallByValue, CompileOpts { fuse: false }).unwrap();
    let fused = compile_with(&e, EvalMode::CallByValue, CompileOpts { fuse: true }).unwrap();
    let u = run_program(&unfused, VM_FUEL).unwrap();
    let f = run_program(&fused, VM_FUEL).unwrap();
    assert_eq!(f.value, Value::Int(5_000_050_000));
    assert_eq!(u.value, f.value);
    assert_eq!(f.metrics.jumps, 100_001);
    assert_eq!(u.metrics.jumps, f.metrics.jumps);
    assert_eq!(f.metrics.total_allocs(), 0, "fused jumps must not allocate");
    assert_eq!(u.metrics.total_allocs(), 0);
}

/// Pairwise fusion oracle over generated programs: value and all four
/// shared counters agree between the fused and unfused streams in every
/// evaluation mode.
#[test]
fn fused_vs_unfused_generated_programs() {
    runner::check_with(
        Config {
            cases: 200,
            ..Config::default()
        },
        "fused vm agrees with unfused vm on generated programs",
        |g| {
            let (_d, e) = build_closed(g);
            for mode in ALL_MODES {
                let unfused = compile_with(&e, mode, CompileOpts { fuse: false })
                    .map_err(|err| format!("{mode:?}: compile: {err}"))?;
                let fused = compile_with(&e, mode, CompileOpts { fuse: true })
                    .map_err(|err| format!("{mode:?}: compile: {err}"))?;
                let u = run_program(&unfused, VM_FUEL);
                let f = run_program(&fused, VM_FUEL);
                match (u, f) {
                    (Ok(u), Ok(f)) => {
                        if u.value != f.value {
                            return Err(format!(
                                "{mode:?}: fusion changed the value: {} vs {}\n{e}",
                                u.value, f.value
                            ));
                        }
                        let (a, b) = (&u.metrics, &f.metrics);
                        if (a.let_allocs, a.arg_allocs, a.con_allocs, a.jumps)
                            != (b.let_allocs, b.arg_allocs, b.con_allocs, b.jumps)
                        {
                            return Err(format!(
                                "{mode:?}: fusion changed the counters: \
                                 unfused let={} arg={} con={} jumps={} vs \
                                 fused let={} arg={} con={} jumps={}\n{e}",
                                a.let_allocs,
                                a.arg_allocs,
                                a.con_allocs,
                                a.jumps,
                                b.let_allocs,
                                b.arg_allocs,
                                b.con_allocs,
                                b.jumps
                            ));
                        }
                    }
                    (Err(ue), Err(fe)) => {
                        let (u, f) = (ue.to_string(), fe.to_string());
                        if u != f {
                            return Err(format!(
                                "{mode:?}: fusion changed the error: {u} vs {f}\n{e}"
                            ));
                        }
                    }
                    (u, f) => {
                        return Err(format!("{mode:?}: outcome mismatch: {u:?} vs {f:?}\n{e}"))
                    }
                }
            }
            Ok(())
        },
    );
}
