//! # fj-bench — shared helpers for the Criterion benchmark harness
//!
//! The benches in `benches/` regenerate the paper's evaluation artifacts:
//!
//! * `table1` — Table 1 (allocations per NoFib-analogue program,
//!   baseline vs join points), plus wall-clock time of running each
//!   optimized program on the abstract machine;
//! * `fusion` — the Sec. 5 stream-fusion series;
//! * `ablation` — the join-points pipeline with individual passes
//!   removed (experiment A-ablate in DESIGN.md);
//! * `machine` — raw abstract-machine throughput across evaluation modes.

#![warn(missing_docs)]

use fj_ast::Expr;
use fj_core::OptConfig;
use fj_eval::{run, EvalMode, Outcome};

/// Compile a surface program under a pipeline and return the optimized
/// term (panics on error — bench inputs are fixed and known-good).
pub fn prepare(source: &str, cfg: &OptConfig) -> (Expr, fj_ast::DataEnv) {
    let mut lowered = fj_surface::compile(source).expect("bench program compiles");
    let out = fj_core::optimize(&lowered.expr, &lowered.data_env, &mut lowered.supply, cfg)
        .expect("bench program optimizes");
    (out, lowered.data_env)
}

/// Run an optimized term by value with a large budget.
pub fn execute(e: &Expr) -> Outcome {
    run(e, EvalMode::CallByValue, 100_000_000).expect("bench program runs")
}
