//! Experiment F-fusion (paper Sec. 5): the stream pipeline across
//! {skip-less, skip-ful} × {baseline, join points} × n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fj_bench::execute;
use fj_core::{optimize, OptConfig};
use fj_fusion::StepVariant;

fn bench_fusion(c: &mut Criterion) {
    // Print the allocation series once (the figure-shaped artifact).
    let pts = fj_nofib::fusion_exp::run_fusion_experiment(&[100, 1_000]);
    println!("{}", fj_nofib::fusion_exp::format_fusion(&pts));

    let mut group = c.benchmark_group("fusion");
    group.sample_size(10);
    for n in [100_i64, 1_000] {
        for variant in [StepVariant::Skipless, StepVariant::Skip] {
            for (label, cfg) in [
                ("baseline", OptConfig::baseline()),
                ("join-points", OptConfig::join_points()),
            ] {
                let mut d = fj_ast::Dsl::new();
                let e = fj_nofib::fusion_exp::pipeline(&mut d, variant, n);
                let opt = optimize(&e, &d.data_env, &mut d.supply, &cfg).unwrap();
                group.bench_with_input(
                    BenchmarkId::new(format!("{variant:?}/{label}"), n),
                    &opt,
                    |b, opt| b.iter(|| execute(std::hint::black_box(opt))),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fusion);
criterion_main!(benches);
