//! Experiment A-ablate: what each pass contributes. Optimization
//! wall-time per configuration over the whole suite, plus the allocation
//! ablation table printed once.

use criterion::{criterion_group, criterion_main, Criterion};
use fj_core::OptConfig;

fn bench_ablation(c: &mut Criterion) {
    let rows = fj_nofib::run_ablation();
    println!("{}", fj_nofib::format_ablation(&rows));

    let mut group = c.benchmark_group("ablation-optimize-time");
    group.sample_size(10);
    let configs: Vec<(&str, OptConfig)> = vec![
        ("join-points", OptConfig::join_points()),
        ("baseline", OptConfig::baseline()),
        ("without-contify", OptConfig::join_points_without(fj_core::Pass::Contify)),
        ("without-float-in", OptConfig::join_points_without(fj_core::Pass::FloatIn)),
    ];
    for (label, cfg) in configs {
        group.bench_function(label, |b| {
            b.iter(|| {
                for p in fj_nofib::programs().iter().take(4) {
                    let mut lowered = fj_surface::compile(p.source).unwrap();
                    let out = fj_core::optimize(
                        &lowered.expr,
                        &lowered.data_env,
                        &mut lowered.supply,
                        std::hint::black_box(&cfg),
                    )
                    .unwrap();
                    std::hint::black_box(out);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
