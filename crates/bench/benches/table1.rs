//! Table 1 (paper Sec. 7): per-program machine time for the optimized
//! output of both pipelines, plus the allocation table printed once.
//!
//! The *allocation* numbers are the paper's metric (deterministic; see
//! `cargo run -p fj-nofib -- table1`); the wall-clock samples here show
//! the same programs' interpreter cost.

use criterion::{criterion_group, criterion_main, Criterion};
use fj_bench::{execute, prepare};
use fj_core::OptConfig;

fn bench_table1(c: &mut Criterion) {
    // Print the paper-style allocation table once, so `cargo bench`
    // regenerates the actual Table 1 artifact alongside the timings.
    let rows = fj_nofib::run_table1();
    println!("{}", fj_nofib::format_table1(&rows));

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for p in fj_nofib::programs() {
        let (base, _) = prepare(p.source, &OptConfig::baseline());
        let (joined, _) = prepare(p.source, &OptConfig::join_points());
        group.bench_function(format!("{}/baseline", p.name), |b| {
            b.iter(|| execute(std::hint::black_box(&base)))
        });
        group.bench_function(format!("{}/join-points", p.name), |b| {
            b.iter(|| execute(std::hint::black_box(&joined)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
