//! Abstract-machine throughput: the same loop under the three evaluation
//! modes, and join-point vs letrec dispatch cost.

use criterion::{criterion_group, criterion_main, Criterion};
use fj_ast::{Dsl, Expr, PrimOp, Type};
use fj_eval::{run, EvalMode};

fn sum_loop_letrec(d: &mut Dsl, n: i64) -> Expr {
    d.letrec_loop(
        "go",
        vec![("n", Type::Int), ("acc", Type::Int)],
        Type::Int,
        |_, go, ps| {
            Expr::ite(
                Expr::prim2(PrimOp::Le, Expr::var(&ps[0]), Expr::Lit(0)),
                Expr::var(&ps[1]),
                Expr::apps(
                    Expr::var(go),
                    [
                        Expr::prim2(PrimOp::Sub, Expr::var(&ps[0]), Expr::Lit(1)),
                        Expr::prim2(PrimOp::Add, Expr::var(&ps[1]), Expr::var(&ps[0])),
                    ],
                ),
            )
        },
        |_, go| Expr::apps(Expr::var(go), [Expr::Lit(n), Expr::Lit(0)]),
    )
}

fn sum_loop_join(d: &mut Dsl, n: i64) -> Expr {
    d.joinrec_loop(
        "go",
        vec![("n", Type::Int), ("acc", Type::Int)],
        |_, go, ps| {
            Expr::ite(
                Expr::prim2(PrimOp::Le, Expr::var(&ps[0]), Expr::Lit(0)),
                Expr::var(&ps[1]),
                Expr::jump(
                    go,
                    vec![],
                    vec![
                        Expr::prim2(PrimOp::Sub, Expr::var(&ps[0]), Expr::Lit(1)),
                        Expr::prim2(PrimOp::Add, Expr::var(&ps[1]), Expr::var(&ps[0])),
                    ],
                    Type::Int,
                ),
            )
        },
        |_, go| Expr::jump(go, vec![], vec![Expr::Lit(n), Expr::Lit(0)], Type::Int),
    )
}

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    group.sample_size(10);
    let mut d = Dsl::new();
    let letrec = sum_loop_letrec(&mut d, 1_000);
    let join = sum_loop_join(&mut d, 1_000);
    for mode in [EvalMode::CallByName, EvalMode::CallByNeed, EvalMode::CallByValue] {
        group.bench_function(format!("letrec-sum/{mode:?}"), |b| {
            b.iter(|| run(std::hint::black_box(&letrec), mode, 10_000_000).unwrap())
        });
        group.bench_function(format!("join-sum/{mode:?}"), |b| {
            b.iter(|| run(std::hint::black_box(&join), mode, 10_000_000).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
