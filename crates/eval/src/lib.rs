//! # fj-eval — the System F_J abstract machine (Fig. 3)
//!
//! An interpreter for System F_J terms in the style of the paper's
//! operational semantics: configurations ⟨e; s; Σ⟩ with a frame stack and
//! a heap. Join points are stack-allocated frames; jumps pop the stack to
//! their binding. Three evaluation modes (call-by-name, call-by-need,
//! call-by-value) and the allocation accounting the paper's evaluation is
//! based on ([`Metrics`]).
//!
//! ## Example
//!
//! ```
//! use fj_ast::{Dsl, Expr, PrimOp, Type};
//! use fj_eval::{run_int, EvalMode};
//!
//! let e = Expr::prim2(PrimOp::Mul, Expr::Lit(6), Expr::Lit(7));
//! assert_eq!(run_int(&e, EvalMode::CallByName, 1_000)?, 42);
//! # Ok::<(), fj_eval::MachineError>(())
//! ```

#![warn(missing_docs)]

mod machine;
mod metrics;

pub use machine::{run, run_int, run_with_limits, EvalMode, Machine, MachineError, Outcome, Value};
pub use metrics::Metrics;

#[cfg(test)]
mod tests;
