//! Machine tests: semantics per Fig. 3, all three evaluation modes, and
//! the allocation-accounting invariants the benchmarks depend on.

use crate::{run, run_int, EvalMode, MachineError, Value};
use fj_ast::{Binder, Dsl, Expr, Ident, JoinDef, PrimOp, Type};

const FUEL: u64 = 1_000_000;

fn all_modes() -> [EvalMode; 3] {
    [
        EvalMode::CallByName,
        EvalMode::CallByNeed,
        EvalMode::CallByValue,
    ]
}

/// `let rec go n acc = if n <= 0 then acc else go (n-1) (acc+n) in go n 0`.
fn sum_loop_letrec(d: &mut Dsl, n: i64) -> Expr {
    d.letrec_loop(
        "go",
        vec![("n", Type::Int), ("acc", Type::Int)],
        Type::Int,
        |_, go, ps| {
            Expr::ite(
                Expr::prim2(PrimOp::Le, Expr::var(&ps[0]), Expr::Lit(0)),
                Expr::var(&ps[1]),
                Expr::apps(
                    Expr::var(go),
                    [
                        Expr::prim2(PrimOp::Sub, Expr::var(&ps[0]), Expr::Lit(1)),
                        Expr::prim2(PrimOp::Add, Expr::var(&ps[1]), Expr::var(&ps[0])),
                    ],
                ),
            )
        },
        |_, go| Expr::apps(Expr::var(go), [Expr::Lit(n), Expr::Lit(0)]),
    )
}

/// The same loop as a recursive join point.
fn sum_loop_join(d: &mut Dsl, n: i64) -> Expr {
    d.joinrec_loop(
        "go",
        vec![("n", Type::Int), ("acc", Type::Int)],
        |_, go, ps| {
            Expr::ite(
                Expr::prim2(PrimOp::Le, Expr::var(&ps[0]), Expr::Lit(0)),
                Expr::var(&ps[1]),
                Expr::jump(
                    go,
                    vec![],
                    vec![
                        Expr::prim2(PrimOp::Sub, Expr::var(&ps[0]), Expr::Lit(1)),
                        Expr::prim2(PrimOp::Add, Expr::var(&ps[1]), Expr::var(&ps[0])),
                    ],
                    Type::Int,
                ),
            )
        },
        |_, go| Expr::jump(go, vec![], vec![Expr::Lit(n), Expr::Lit(0)], Type::Int),
    )
}

#[test]
fn arithmetic_all_modes() {
    let e = Expr::prim2(
        PrimOp::Add,
        Expr::prim2(PrimOp::Mul, Expr::Lit(6), Expr::Lit(7)),
        Expr::prim2(PrimOp::Sub, Expr::Lit(0), Expr::Lit(2)),
    );
    for mode in all_modes() {
        assert_eq!(run_int(&e, mode, FUEL).unwrap(), 40, "{mode:?}");
    }
}

#[test]
fn comparison_returns_bool_datatype() {
    let e = Expr::prim2(PrimOp::Lt, Expr::Lit(1), Expr::Lit(2));
    for mode in all_modes() {
        let v = run(&e, mode, FUEL).unwrap().value;
        assert_eq!(v, Value::Con(Ident::new("True"), vec![]), "{mode:?}");
    }
}

#[test]
fn beta_and_let() {
    let mut d = Dsl::new();
    let x = d.binder("x", Type::Int);
    let y = d.binder("y", Type::Int);
    // let y = 10 in (\x. x + y) 32
    let e = Expr::let1(
        y.clone(),
        Expr::Lit(10),
        Expr::app(
            Expr::lam(
                x.clone(),
                Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::var(&y.name)),
            ),
            Expr::Lit(32),
        ),
    );
    for mode in all_modes() {
        assert_eq!(run_int(&e, mode, FUEL).unwrap(), 42, "{mode:?}");
    }
}

#[test]
fn case_on_maybe() {
    let mut d = Dsl::new();
    let scrut = d.just(
        Type::Int,
        Expr::prim2(PrimOp::Add, Expr::Lit(1), Expr::Lit(2)),
    );
    let e = d.case_maybe(Type::Int, scrut, Expr::Lit(0), |_, x| {
        Expr::prim2(PrimOp::Mul, Expr::var(x), Expr::Lit(10))
    });
    for mode in all_modes() {
        assert_eq!(run_int(&e, mode, FUEL).unwrap(), 30, "{mode:?}");
    }
}

#[test]
fn case_literal_and_default() {
    let e = Expr::case(
        Expr::prim2(PrimOp::Add, Expr::Lit(2), Expr::Lit(3)),
        vec![
            fj_ast::Alt::simple(fj_ast::AltCon::Lit(4), Expr::Lit(100)),
            fj_ast::Alt::simple(fj_ast::AltCon::Lit(5), Expr::Lit(200)),
            fj_ast::Alt::simple(fj_ast::AltCon::Default, Expr::Lit(0)),
        ],
    );
    for mode in all_modes() {
        assert_eq!(run_int(&e, mode, FUEL).unwrap(), 200, "{mode:?}");
    }
}

#[test]
fn letrec_factorial() {
    let mut d = Dsl::new();
    let e = d.letrec_loop(
        "fact",
        vec![("n", Type::Int)],
        Type::Int,
        |_, fact, ps| {
            Expr::ite(
                Expr::prim2(PrimOp::Le, Expr::var(&ps[0]), Expr::Lit(1)),
                Expr::Lit(1),
                Expr::prim2(
                    PrimOp::Mul,
                    Expr::var(&ps[0]),
                    Expr::app(
                        Expr::var(fact),
                        Expr::prim2(PrimOp::Sub, Expr::var(&ps[0]), Expr::Lit(1)),
                    ),
                ),
            )
        },
        |_, fact| Expr::app(Expr::var(fact), Expr::Lit(10)),
    );
    for mode in all_modes() {
        assert_eq!(run_int(&e, mode, FUEL).unwrap(), 3_628_800, "{mode:?}");
    }
}

#[test]
fn join_loop_matches_letrec_loop() {
    for mode in all_modes() {
        let mut d = Dsl::new();
        let via_let = sum_loop_letrec(&mut d, 100);
        let via_join = sum_loop_join(&mut d, 100);
        let a = run_int(&via_let, mode, FUEL).unwrap();
        let b = run_int(&via_join, mode, FUEL).unwrap();
        assert_eq!(a, 5050, "{mode:?}");
        assert_eq!(b, 5050, "{mode:?}");
    }
}

/// The paper's headline asymmetry: the join-point loop allocates *nothing*
/// under call-by-value, while the letrec loop allocates its closure.
#[test]
fn join_loop_allocates_nothing_cbv() {
    let mut d = Dsl::new();
    let via_join = sum_loop_join(&mut d, 1000);
    let out = run(&via_join, EvalMode::CallByValue, FUEL).unwrap();
    assert_eq!(out.metrics.total_allocs(), 0, "{}", out.metrics);
    assert!(out.metrics.jumps >= 1000);

    let via_let = sum_loop_letrec(&mut d, 1000);
    let out_let = run(&via_let, EvalMode::CallByValue, FUEL).unwrap();
    assert!(out_let.metrics.let_allocs >= 1, "{}", out_let.metrics);
}

/// Fig. 3's worked example: a jump discards its evaluation context.
/// `join j x = x in (jump j 2 τ) 3` evaluates to 2 — the application
/// frame `□ 3` is thrown away.
#[test]
fn jump_discards_context() {
    let mut d = Dsl::new();
    let j = d.name("j");
    let x = d.binder("x", Type::Int);
    let e = Expr::join1(
        JoinDef {
            name: j.clone(),
            ty_params: vec![],
            params: vec![x.clone()],
            body: Expr::var(&x.name),
        },
        Expr::app(
            Expr::jump(
                &j,
                vec![],
                vec![Expr::Lit(2)],
                Type::fun(Type::Int, Type::Int),
            ),
            Expr::Lit(3),
        ),
    );
    for mode in all_modes() {
        assert_eq!(run_int(&e, mode, FUEL).unwrap(), 2, "{mode:?}");
    }
}

/// A jump from deep inside nested cases still lands at its join point.
#[test]
fn jump_through_nested_cases() {
    let mut d = Dsl::new();
    let j = d.name("j");
    let x = d.binder("x", Type::Int);
    let body = Expr::ite(
        Expr::prim2(PrimOp::Lt, Expr::Lit(1), Expr::Lit(2)),
        Expr::ite(
            Expr::prim2(PrimOp::Lt, Expr::Lit(3), Expr::Lit(4)),
            Expr::jump(&j, vec![], vec![Expr::Lit(99)], Type::Int),
            Expr::Lit(0),
        ),
        Expr::Lit(0),
    );
    let e = Expr::join1(
        JoinDef {
            name: j,
            ty_params: vec![],
            params: vec![x.clone()],
            body: Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::Lit(1)),
        },
        body,
    );
    for mode in all_modes() {
        assert_eq!(run_int(&e, mode, FUEL).unwrap(), 100, "{mode:?}");
    }
}

/// A polymorphic join point instantiated at two types.
#[test]
fn polymorphic_join_dispatch() {
    let mut d = Dsl::new();
    let j = d.name("j");
    let a = d.name("a");
    let x = Binder::new(d.name("x"), Type::Var(a.clone()));
    // join j @a (x:a) = 7 in case True of
    //   True  -> jump j @Int 5 Int
    //   False -> jump j @Bool True Int
    let e = Expr::join1(
        JoinDef {
            name: j.clone(),
            ty_params: vec![a],
            params: vec![x],
            body: Expr::Lit(7),
        },
        Expr::ite(
            Expr::bool(true),
            Expr::jump(&j, vec![Type::Int], vec![Expr::Lit(5)], Type::Int),
            Expr::jump(&j, vec![Type::bool()], vec![Expr::bool(true)], Type::Int),
        ),
    );
    for mode in all_modes() {
        assert_eq!(run_int(&e, mode, FUEL).unwrap(), 7, "{mode:?}");
    }
}

#[test]
fn call_by_name_is_lazy() {
    let mut d = Dsl::new();
    // let boom = <diverge> in 5  — fine lazily, OutOfFuel strictly.
    let boom = d.binder("boom", Type::Int);
    let diverge = d.letrec_loop(
        "spin",
        vec![("n", Type::Int)],
        Type::Int,
        |_, spin, ps| Expr::app(Expr::var(spin), Expr::var(&ps[0])),
        |_, spin| Expr::app(Expr::var(spin), Expr::Lit(0)),
    );
    let e = Expr::let1(boom, diverge, Expr::Lit(5));
    assert_eq!(run_int(&e, EvalMode::CallByName, 10_000).unwrap(), 5);
    assert_eq!(run_int(&e, EvalMode::CallByNeed, 10_000).unwrap(), 5);
    assert_eq!(
        run_int(&e, EvalMode::CallByValue, 10_000),
        Err(MachineError::OutOfFuel)
    );
}

#[test]
fn call_by_need_shares_work() {
    let mut d = Dsl::new();
    // let x = <expensive> in x + x: by-need evaluates once, by-name twice.
    let x = d.binder("x", Type::Int);
    let expensive = {
        let mut d2 = Dsl::new();
        sum_loop_letrec(&mut d2, 50)
    };
    let e = Expr::let1(
        x.clone(),
        expensive,
        Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::var(&x.name)),
    );
    let name = run(&e, EvalMode::CallByName, FUEL).unwrap();
    let need = run(&e, EvalMode::CallByNeed, FUEL).unwrap();
    assert_eq!(name.value, Value::Int(2550));
    assert_eq!(need.value, Value::Int(2550));
    assert!(
        need.metrics.steps < name.metrics.steps,
        "need {} vs name {}",
        need.metrics.steps,
        name.metrics.steps
    );
}

#[test]
fn constructor_allocations_counted_once_per_cell() {
    let mut d = Dsl::new();
    // case Just (1+2) of { Nothing -> 0; Just x -> x }
    let scrut = d.just(
        Type::Int,
        Expr::prim2(PrimOp::Add, Expr::Lit(1), Expr::Lit(2)),
    );
    let e = d.case_maybe(Type::Int, scrut, Expr::Lit(0), |_, x| Expr::var(x));
    for mode in all_modes() {
        let out = run(&e, mode, FUEL).unwrap();
        assert_eq!(out.metrics.con_allocs, 1, "{mode:?}: {}", out.metrics);
    }
}

#[test]
fn nullary_constructors_are_free() {
    let e = Expr::ite(Expr::bool(true), Expr::Lit(1), Expr::Lit(0));
    for mode in all_modes() {
        let out = run(&e, mode, FUEL).unwrap();
        assert_eq!(out.metrics.con_allocs, 0, "{mode:?}");
        assert_eq!(out.metrics.total_allocs(), 0, "{mode:?}");
    }
}

#[test]
fn deep_force_builds_list_value() {
    let mut d = Dsl::new();
    let e = d.int_list(&[1, 2]);
    for mode in all_modes() {
        let v = run(&e, mode, FUEL).unwrap().value;
        let expect = Value::Con(
            Ident::new("Cons"),
            vec![
                Value::Int(1),
                Value::Con(
                    Ident::new("Cons"),
                    vec![Value::Int(2), Value::Con(Ident::new("Nil"), vec![])],
                ),
            ],
        );
        assert_eq!(v, expect, "{mode:?}");
    }
}

#[test]
fn errors_are_reported() {
    let mut d = Dsl::new();
    let x = d.name("nope");
    assert_eq!(
        run_int(&Expr::var(&x), EvalMode::CallByName, FUEL),
        Err(MachineError::UnboundVar(x.clone()))
    );
    let j = d.name("j");
    assert_eq!(
        run_int(
            &Expr::jump(&j, vec![], vec![], Type::Int),
            EvalMode::CallByName,
            FUEL
        ),
        Err(MachineError::NoJoinFrame(j))
    );
    assert_eq!(
        run_int(
            &Expr::prim2(PrimOp::Div, Expr::Lit(1), Expr::Lit(0)),
            EvalMode::CallByValue,
            FUEL
        ),
        Err(MachineError::DivideByZero)
    );
}

/// Entering the same lambda twice must not confuse bindings (binder
/// freshening at β).
#[test]
fn reentrant_lambda_bindings() {
    let mut d = Dsl::new();
    let f = d.binder("f", Type::fun(Type::Int, Type::Int));
    let x = d.binder("x", Type::Int);
    // let f = \x. x * 2 in f 3 + f 4
    let e = Expr::let1(
        f.clone(),
        Expr::lam(
            x.clone(),
            Expr::prim2(PrimOp::Mul, Expr::var(&x.name), Expr::Lit(2)),
        ),
        Expr::prim2(
            PrimOp::Add,
            Expr::app(Expr::var(&f.name), Expr::Lit(3)),
            Expr::app(Expr::var(&f.name), Expr::Lit(4)),
        ),
    );
    for mode in all_modes() {
        assert_eq!(run_int(&e, mode, FUEL).unwrap(), 14, "{mode:?}");
    }
}

/// Answers reaching a join frame drop it (`ans` rule): a join point whose
/// body never jumps is simply skipped.
#[test]
fn unused_join_is_skipped() {
    let mut d = Dsl::new();
    let j = d.name("j");
    let e = Expr::join1(
        JoinDef {
            name: j,
            ty_params: vec![],
            params: vec![],
            body: Expr::Lit(0),
        },
        Expr::Lit(42),
    );
    for mode in all_modes() {
        let out = run(&e, mode, FUEL).unwrap();
        assert_eq!(out.value, Value::Int(42), "{mode:?}");
        assert_eq!(out.metrics.jumps, 0);
        assert_eq!(out.metrics.total_allocs(), 0);
    }
}

/// Two join points in a recursive group, mutually jumping: even/odd.
#[test]
fn mutual_recursive_joins() {
    let mut d = Dsl::new();
    let even = d.name("even");
    let odd = d.name("odd");
    let n1 = d.binder("n", Type::Int);
    let n2 = d.binder("n", Type::Int);
    let mk_jump = |target: &fj_ast::Name, n: &fj_ast::Name| {
        Expr::jump(
            target,
            vec![],
            vec![Expr::prim2(PrimOp::Sub, Expr::var(n), Expr::Lit(1))],
            Type::bool(),
        )
    };
    let even_def = JoinDef {
        name: even.clone(),
        ty_params: vec![],
        params: vec![n1.clone()],
        body: Expr::ite(
            Expr::prim2(PrimOp::Eq, Expr::var(&n1.name), Expr::Lit(0)),
            Expr::bool(true),
            mk_jump(&odd, &n1.name),
        ),
    };
    let odd_def = JoinDef {
        name: odd,
        ty_params: vec![],
        params: vec![n2.clone()],
        body: Expr::ite(
            Expr::prim2(PrimOp::Eq, Expr::var(&n2.name), Expr::Lit(0)),
            Expr::bool(false),
            mk_jump(&even, &n2.name),
        ),
    };
    let e = Expr::joinrec(
        vec![even_def, odd_def],
        Expr::jump(&even, vec![], vec![Expr::Lit(9)], Type::bool()),
    );
    for mode in all_modes() {
        let v = run(&e, mode, FUEL).unwrap().value;
        assert_eq!(v, Value::Con(Ident::new("False"), vec![]), "{mode:?}");
    }
}

/// Exact allocation accounting, mode by mode: a `let`-bound closure
/// costs exactly one allocation; the same abstraction as a join point
/// costs exactly zero (Fig. 3 stack-allocates join points).
#[test]
fn let_closure_costs_one_join_costs_zero_exactly() {
    // let f = \x. x+1 in f (1+2)
    let mut d = Dsl::new();
    let f = d.binder("f", Type::fun(Type::Int, Type::Int));
    let x = d.binder("x", Type::Int);
    let let_fn = Expr::let1(
        f.clone(),
        Expr::lam(
            x.clone(),
            Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::Lit(1)),
        ),
        Expr::app(
            Expr::var(&f.name),
            Expr::prim2(PrimOp::Add, Expr::Lit(1), Expr::Lit(2)),
        ),
    );
    // join j x = x+1 in jump j (1+2)
    let mut d2 = Dsl::new();
    let joined = d2.joinrec_loop(
        "j",
        vec![("x", Type::Int)],
        |_, _, ps| Expr::prim2(PrimOp::Add, Expr::var(&ps[0]), Expr::Lit(1)),
        |_, j| {
            Expr::jump(
                j,
                vec![],
                vec![Expr::prim2(PrimOp::Add, Expr::Lit(1), Expr::Lit(2))],
                Type::Int,
            )
        },
    );
    for mode in all_modes() {
        // A non-cheap argument costs 1 thunk under name/need and nothing
        // under value (it arrives already evaluated).
        let arg_cost = if mode == EvalMode::CallByValue { 0 } else { 1 };

        let o = run(&let_fn, mode, FUEL).unwrap();
        assert_eq!(o.value, Value::Int(4), "{mode:?}");
        assert_eq!(
            o.metrics.let_allocs, 1,
            "{mode:?}: the closure costs exactly 1"
        );
        assert_eq!(o.metrics.arg_allocs, arg_cost, "{mode:?}");
        assert_eq!(o.metrics.con_allocs, 0, "{mode:?}");
        assert_eq!(o.metrics.jumps, 0, "{mode:?}");

        let o = run(&joined, mode, FUEL).unwrap();
        assert_eq!(o.value, Value::Int(4), "{mode:?}");
        assert_eq!(
            o.metrics.let_allocs, 0,
            "{mode:?}: a join binding costs exactly 0"
        );
        assert_eq!(
            o.metrics.arg_allocs, arg_cost,
            "{mode:?}: jump args charge like fn args"
        );
        assert_eq!(o.metrics.jumps, 1, "{mode:?}");
    }
}

/// The loop pair: the `letrec` closure is the single allocation
/// difference from its contified twin, in every mode.
#[test]
fn loop_closure_is_the_exact_allocation_difference() {
    for mode in all_modes() {
        let mut d = Dsl::new();
        let via_letrec = run(&sum_loop_letrec(&mut d, 4), mode, FUEL).unwrap();
        let mut d2 = Dsl::new();
        let via_join = run(&sum_loop_join(&mut d2, 4), mode, FUEL).unwrap();
        assert_eq!(via_letrec.value, Value::Int(10), "{mode:?}");
        assert_eq!(via_join.value, Value::Int(10), "{mode:?}");
        assert_eq!(
            via_letrec.metrics.let_allocs, 1,
            "{mode:?}: one loop closure"
        );
        assert_eq!(
            via_join.metrics.let_allocs, 0,
            "{mode:?}: join loop is free"
        );
        assert_eq!(
            via_letrec.metrics.arg_allocs, via_join.metrics.arg_allocs,
            "{mode:?}: argument traffic is identical"
        );
        assert_eq!(
            via_join.metrics.jumps, 5,
            "{mode:?}: initial + 4 iterations"
        );
        assert_eq!(via_letrec.metrics.jumps, 0, "{mode:?}");
    }
}

/// Constructor cells cost exactly one allocation each, charged at build
/// time; nullary constructors are free; unforced cells are never charged.
#[test]
fn constructor_cell_counts_are_exact() {
    for mode in all_modes() {
        // case Just (1+2) of { Nothing -> 0; Just x -> x }: one cell.
        let mut d = Dsl::new();
        let scrut = d.just(
            Type::Int,
            Expr::prim2(PrimOp::Add, Expr::Lit(1), Expr::Lit(2)),
        );
        let e = d.case_maybe(Type::Int, scrut, Expr::Lit(0), |_, x| Expr::var(x));
        let o = run(&e, mode, FUEL).unwrap();
        assert_eq!(o.value, Value::Int(3), "{mode:?}");
        assert_eq!(o.metrics.con_allocs, 1, "{mode:?}: exactly the Just cell");
        assert_eq!(o.metrics.let_allocs, 0, "{mode:?}");
        assert_eq!(o.metrics.arg_allocs, 0, "{mode:?}");

        // case Nothing of …: nullary scrutinee allocates nothing at all.
        let mut d = Dsl::new();
        let scrut = d.nothing(Type::Int);
        let e = d.case_maybe(Type::Int, scrut, Expr::Lit(0), |_, x| Expr::var(x));
        let o = run(&e, mode, FUEL).unwrap();
        assert_eq!(o.value, Value::Int(0), "{mode:?}");
        assert_eq!(
            o.metrics.total_allocs(),
            0,
            "{mode:?}: Nothing is a shared static"
        );

        // A separately *built* tail (let-bound) is its own cell: forcing
        // both cells of `let t = [2] in 1:t` charges exactly two.
        let mut d = Dsl::new();
        let nil = d.nil(Type::Int);
        let inner = d.cons(Type::Int, Expr::Lit(2), nil);
        let tb = d.binder("t", d.list_ty(Type::Int));
        let xs = d.cons(Type::Int, Expr::Lit(1), Expr::var(&tb.name));
        let body = d.case_list(Type::Int, xs, Expr::Lit(0), |d2, h, t2| {
            let sub = d2.case_list(Type::Int, Expr::var(t2), Expr::Lit(0), |_, h2, _| {
                Expr::var(h2)
            });
            Expr::prim2(PrimOp::Add, Expr::var(h), sub)
        });
        let e = Expr::let1(tb, inner, body);
        let o = run(&e, mode, FUEL).unwrap();
        assert_eq!(o.value, Value::Int(3), "{mode:?}");
        assert_eq!(
            o.metrics.con_allocs, 2,
            "{mode:?}: both built cells, Nil free"
        );
        assert_eq!(
            o.metrics.let_allocs, 0,
            "{mode:?}: the cell charge subsumes the let"
        );

        // A fully-literal nested constructor is one build: the inner cell
        // rides along as a field of the outer (static data, as in GHC).
        let mut d = Dsl::new();
        let nil = d.nil(Type::Int);
        let tail = d.cons(Type::Int, Expr::Lit(2), nil);
        let xs = d.cons(Type::Int, Expr::Lit(1), tail);
        let e = d.case_list(Type::Int, xs, Expr::Lit(0), |d2, h, t| {
            let sub = d2.case_list(Type::Int, Expr::var(t), Expr::Lit(0), |_, h2, _| {
                Expr::var(h2)
            });
            Expr::prim2(PrimOp::Add, Expr::var(h), sub)
        });
        let o = run(&e, mode, FUEL).unwrap();
        assert_eq!(o.value, Value::Int(3), "{mode:?}");
        assert_eq!(
            o.metrics.con_allocs, 1,
            "{mode:?}: literal spine builds once"
        );

        // An unforced tail is never charged: inspect only the head.
        let mut d = Dsl::new();
        let nil = d.nil(Type::Int);
        let tail = d.cons(Type::Int, Expr::Lit(2), nil);
        let xs = d.cons(Type::Int, Expr::Lit(1), tail);
        let e = d.case_list(Type::Int, xs, Expr::Lit(0), |_, h, _| Expr::var(h));
        let o = run(&e, mode, FUEL).unwrap();
        assert_eq!(o.value, Value::Int(1), "{mode:?}");
        assert_eq!(
            o.metrics.con_allocs, 1,
            "{mode:?}: the unforced tail cell is free"
        );
    }
}

/// Argument thunks: cheap arguments (atoms, nullary constructors) are
/// substituted inline and cost nothing; each non-cheap argument costs
/// exactly one under name/need and nothing under value.
#[test]
fn argument_thunk_counts_are_exact() {
    for mode in all_modes() {
        let mk = |arg: Expr| {
            let mut d = Dsl::new();
            let x = d.binder("x", Type::Int);
            Expr::app(
                Expr::lam(
                    x.clone(),
                    Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::var(&x.name)),
                ),
                arg,
            )
        };
        // Cheap literal argument: free everywhere.
        let o = run(&mk(Expr::Lit(5)), mode, FUEL).unwrap();
        assert_eq!(o.value, Value::Int(10), "{mode:?}");
        assert_eq!(
            o.metrics.arg_allocs, 0,
            "{mode:?}: literals substitute inline"
        );

        // Computed argument: one thunk under name/need, free under value.
        // Used twice in the body, still charged once (at creation).
        let o = run(
            &mk(Expr::prim2(PrimOp::Add, Expr::Lit(2), Expr::Lit(3))),
            mode,
            FUEL,
        )
        .unwrap();
        assert_eq!(o.value, Value::Int(10), "{mode:?}");
        let expect = if mode == EvalMode::CallByValue { 0 } else { 1 };
        assert_eq!(
            o.metrics.arg_allocs, expect,
            "{mode:?}: charged once at creation"
        );
    }
}
