//! The System F_J abstract machine (Fig. 3 of the paper).
//!
//! A configuration is `⟨e; s; Σ⟩`: a focus expression, a stack of frames,
//! and a heap of bindings. The rules are transliterated from the paper:
//!
//! * `push` — move an evaluation frame (argument, type argument, case,
//!   join binding) onto the stack;
//! * `β` / `β_τ` — bind an argument and enter a (type) lambda;
//! * `bind` — allocate `let` bindings in the heap Σ;
//! * `look` — dereference a variable (with an update frame under
//!   call-by-need);
//! * `case` — select an alternative and bind its fields;
//! * `jump` — **pop the stack down to the join point's frame, discarding
//!   everything in between** (the rule that makes jumps "adjust the stack
//!   and jump"), leaving the `join` frame in place for recursive jumps;
//! * `ans` — drop a join frame once an answer reaches it (its bindings are
//!   dead code at that point).
//!
//! Join points are *stack-allocated*: a `join` binding pushes a frame and
//! allocates nothing in Σ. That asymmetry with `let` is what the paper's
//! benchmark numbers measure, and [`Metrics`](crate::Metrics) counts it.
//!
//! Three evaluation modes are provided: call-by-name (the paper's Fig. 3),
//! call-by-need (standard update frames), and call-by-value (strict
//! arguments, strict `let`, as sketched in the paper's Sec. 10). The
//! benchmark harness uses call-by-value, matching the paper's remark that
//! everything applies equally to a strict language; the soundness test
//! suite exercises all three.

use crate::metrics::Metrics;
use fj_ast::{
    Alt, AltCon, Expr, Ident, JoinBind, LetBind, Name, NameSupply, PrimOp, PrimResult, Subst, Type,
};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// The machine polls its wall-clock deadline every `DEADLINE_CHECK_MASK
/// + 1` steps (a power of two so the check is a cheap bit-test).
pub const DEADLINE_CHECK_MASK: u64 = 0xFFF;

/// Evaluation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EvalMode {
    /// Call-by-name: arguments bound unevaluated, re-evaluated per use
    /// (the paper's Fig. 3).
    CallByName,
    /// Call-by-need: call-by-name plus update frames (sharing).
    CallByNeed,
    /// Call-by-value: arguments and `let` right-hand sides evaluated
    /// before binding; constructors build evaluated cells.
    CallByValue,
}

/// Why a run did not produce an answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// The step budget was exhausted (possibly a diverging program).
    OutOfFuel,
    /// The wall-clock deadline passed (possibly a diverging program).
    /// Only produced when a deadline was configured via
    /// [`run_with_limits`] or [`Machine::with_deadline`].
    Timeout {
        /// The configured wall-clock limit.
        limit: Duration,
    },
    /// A variable had no heap binding.
    UnboundVar(Name),
    /// A jump found no matching join frame on the stack.
    NoJoinFrame(Name),
    /// Division or remainder by zero.
    DivideByZero,
    /// The machine reached a configuration no rule covers.
    Stuck(String),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::OutOfFuel => write!(f, "step budget exhausted"),
            MachineError::Timeout { limit } => {
                write!(f, "wall-clock deadline exhausted ({limit:?})")
            }
            MachineError::UnboundVar(x) => write!(f, "unbound variable {x} at runtime"),
            MachineError::NoJoinFrame(j) => write!(f, "no join frame for label {j}"),
            MachineError::DivideByZero => write!(f, "division by zero"),
            MachineError::Stuck(msg) => write!(f, "machine stuck: {msg}"),
        }
    }
}

impl std::error::Error for MachineError {}

/// Recover ownership of a shared expression: free when the `Rc` is
/// unique (the common case for program text), one structural clone when
/// it still aliases a heap binding.
fn take(e: Rc<Expr>) -> Expr {
    Rc::try_unwrap(e).unwrap_or_else(|rc| (*rc).clone())
}

/// A fully forced, observable result value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A saturated constructor of forced fields.
    Con(Ident, Vec<Value>),
    /// A function value (not inspectable).
    Closure,
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Con(c, fields) if fields.is_empty() => write!(f, "{c}"),
            Value::Con(c, fields) => {
                write!(f, "({c}")?;
                for v in fields {
                    write!(f, " {v}")?;
                }
                write!(f, ")")
            }
            Value::Closure => write!(f, "<closure>"),
        }
    }
}

/// The result of a successful run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The fully forced result.
    pub value: Value,
    /// Counters from the run proper (deep forcing of the final value is
    /// *excluded* so lazy-structure materialization doesn't distort the
    /// allocation comparison).
    pub metrics: Metrics,
}

/// Run a closed term to a deeply forced value.
///
/// # Errors
///
/// Returns a [`MachineError`] on divergence past `fuel` steps, runtime
/// type errors (stuck states), or arithmetic faults.
pub fn run(e: &Expr, mode: EvalMode, fuel: u64) -> Result<Outcome, MachineError> {
    run_with_limits(e, mode, fuel, None)
}

/// As [`run`], with an additional optional wall-clock deadline: a
/// divergent (or merely slow) program stops with
/// [`MachineError::Timeout`] once the deadline passes, mirroring the
/// VM's `run_with_limits`. The deadline is checked every
/// [`DEADLINE_CHECK_MASK`]` + 1` steps so the hot loop stays cheap.
///
/// # Errors
///
/// As [`run`], plus [`MachineError::Timeout`].
pub fn run_with_limits(
    e: &Expr,
    mode: EvalMode,
    fuel: u64,
    deadline: Option<Duration>,
) -> Result<Outcome, MachineError> {
    let mut m = Machine::new(mode, fuel);
    if let Some(limit) = deadline {
        m = m.with_deadline(limit);
    }
    let answer = m.eval(e.clone())?;
    let metrics = m.metrics;
    let value = m.deep_force(answer, 64)?;
    Ok(Outcome { value, metrics })
}

/// Convenience: run and expect an integer result.
///
/// # Errors
///
/// As [`run`], plus a `Stuck` error if the result is not an integer.
pub fn run_int(e: &Expr, mode: EvalMode, fuel: u64) -> Result<i64, MachineError> {
    match run(e, mode, fuel)?.value {
        Value::Int(n) => Ok(n),
        other => Err(MachineError::Stuck(format!(
            "expected Int result, got {other}"
        ))),
    }
}

/// A heap binding. Payloads are shared (`Rc`) so `look` hands out an
/// alias instead of deep-cloning the stored term; a structural clone
/// happens only if the alias later needs to be taken apart while the
/// heap still holds it.
#[derive(Debug)]
enum HeapObj {
    Thunk(Rc<Expr>),
    Value(Rc<Expr>),
}

#[derive(Debug)]
enum Frame {
    /// `□ e` — pending argument.
    AppArg(Expr),
    /// CBV: the function answer, while its argument is evaluated in focus.
    AppFun(Rc<Expr>),
    /// `□ τ`.
    TyArg(Type),
    /// `case □ of alts`.
    Case(Vec<Alt>),
    /// `join jb in □`. Shared so `jump` can borrow the matched definition
    /// without cloning the whole group on every loop iteration.
    Join(Rc<JoinBind>),
    /// Call-by-need update.
    Update(Name),
    /// Evaluating the left primop operand; right pending.
    PrimL(PrimOp, Expr),
    /// Left operand known; evaluating the right.
    PrimR(PrimOp, i64),
    /// CBV: evaluating constructor fields left to right.
    ConArgs {
        con: Ident,
        tys: Vec<Type>,
        done: Vec<Expr>,
        pending: Vec<Expr>,
    },
    /// CBV: evaluating jump arguments before transferring control.
    JumpArgs {
        label: Name,
        tys: Vec<Type>,
        done: Vec<Expr>,
        pending: Vec<Expr>,
        res: Type,
    },
    /// CBV: strict `let` — binder name and body, waiting on the RHS.
    LetStrict(fj_ast::Binder, Expr),
}

/// The machine itself. Most callers want [`run`]; the struct is public so
/// benchmarks can drive it incrementally and read [`Machine::metrics`].
#[derive(Debug)]
pub struct Machine {
    mode: EvalMode,
    fuel: u64,
    /// Wall-clock cut-off and the limit it came from (for the error).
    deadline: Option<(Instant, Duration)>,
    heap: HashMap<Name, HeapObj>,
    stack: Vec<Frame>,
    supply: NameSupply,
    /// Counters for the run so far.
    pub metrics: Metrics,
    /// True when the current focus answer came from the heap (already
    /// counted) rather than from evaluating program text.
    focus_reused: bool,
}

impl Machine {
    /// A fresh machine.
    pub fn new(mode: EvalMode, fuel: u64) -> Self {
        Machine {
            mode,
            fuel,
            deadline: None,
            heap: HashMap::new(),
            stack: Vec::new(),
            supply: NameSupply::starting_at(1_000_000_000),
            metrics: Metrics::default(),
            focus_reused: false,
        }
    }

    /// Give the machine a wall-clock deadline, starting now.
    #[must_use]
    pub fn with_deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some((Instant::now() + limit, limit));
        self
    }

    fn spend(&mut self) -> Result<(), MachineError> {
        if self.fuel == 0 {
            return Err(MachineError::OutOfFuel);
        }
        self.fuel -= 1;
        self.metrics.steps += 1;
        if self.metrics.steps & DEADLINE_CHECK_MASK == 0 {
            if let Some((cutoff, limit)) = self.deadline {
                if Instant::now() >= cutoff {
                    return Err(MachineError::Timeout { limit });
                }
            }
        }
        if self.stack.len() > self.metrics.max_stack {
            self.metrics.max_stack = self.stack.len();
        }
        Ok(())
    }

    fn is_answer(&self, e: &Expr) -> bool {
        match e {
            Expr::Lam(..) | Expr::TyLam(..) | Expr::Lit(_) => true,
            Expr::Con(_, _, args) => {
                self.mode != EvalMode::CallByValue
                    || args.iter().all(|a| self.is_answer(a) || a.is_atom())
            }
            _ => false,
        }
    }

    /// Is an expression freely duplicable (variable, literal, nullary
    /// constructor)? Such operands are substituted inline and never charge.
    fn is_cheap(e: &Expr) -> bool {
        e.is_atom() || matches!(e, Expr::Con(_, _, args) if args.is_empty())
    }

    /// Store one binding in the heap and charge the metrics policy:
    ///
    /// * closures (`λ`/`Λ` answers): one unit against `src`;
    /// * pre-built constructor cells arriving *unevaluated from program
    ///   text*: one `con` unit (their build point);
    /// * already-evaluated answers (call-by-value): free — they were
    ///   charged when the focus built them;
    /// * anything else: a thunk, one unit against `src`.
    fn store_binding(&mut self, fresh: Name, e: Expr, src: Charge, evaluated: bool) {
        if self.is_answer(&e) {
            match &e {
                Expr::Lam(..) | Expr::TyLam(..) => self.charge(src),
                Expr::Con(_, _, args) if !args.is_empty() && !evaluated => {
                    self.metrics.con_allocs += 1;
                }
                _ => {}
            }
            self.heap.insert(fresh, HeapObj::Value(Rc::new(e)));
        } else {
            self.charge(src);
            self.heap.insert(fresh, HeapObj::Thunk(Rc::new(e)));
        }
    }

    fn charge(&mut self, src: Charge) {
        match src {
            Charge::Let => self.metrics.let_allocs += 1,
            Charge::Arg => self.metrics.arg_allocs += 1,
            Charge::Free => {}
        }
    }

    /// Bind `params ↦ args` with fresh names and return `body` with the
    /// parameters renamed; cheap arguments are substituted inline.
    fn bind_params(
        &mut self,
        params: impl IntoIterator<Item = (Name, Expr)>,
        body: &Expr,
        ty_params: impl IntoIterator<Item = (Name, Type)>,
        src: Charge,
        evaluated: bool,
    ) -> Expr {
        let params: Vec<(Name, Expr)> = params.into_iter().collect();
        let mut renames: Vec<(Name, Expr)> = Vec::new();
        let mut binds: Vec<(Name, Expr)> = Vec::new();
        for (p, arg) in params {
            if Self::is_cheap(&arg) {
                renames.push((p, arg));
            } else {
                let fresh = self.supply.fresh_like(&p);
                renames.push((p, Expr::Var(fresh.clone())));
                binds.push((fresh, arg));
            }
        }
        let body2 = {
            let mut subst = Subst::new(&mut self.supply);
            for (p, img) in renames {
                subst = subst.bind_term(p, img);
            }
            for (a, t) in ty_params {
                subst = subst.bind_ty(a, t);
            }
            subst.apply(body)
        };
        for (fresh, arg) in binds {
            self.store_binding(fresh, arg, src, evaluated);
        }
        body2
    }

    /// Evaluate to an answer (weak head normal form).
    ///
    /// # Errors
    ///
    /// See [`run`].
    pub fn eval(&mut self, start: Expr) -> Result<Expr, MachineError> {
        let answer = self.eval_shared(Rc::new(start))?;
        Ok(take(answer))
    }

    /// The evaluation loop proper, over a shared focus. Answers looked up
    /// from the heap stay aliased until something needs to take them apart.
    fn eval_shared(&mut self, start: Rc<Expr>) -> Result<Rc<Expr>, MachineError> {
        let base_stack = self.stack.len();
        let mut focus = start;
        loop {
            self.spend()?;
            if self.is_answer(&focus) {
                // Charge constructor allocation the first time this cell is
                // built from program text.
                if !self.focus_reused {
                    if let Expr::Con(_, _, args) = &*focus {
                        if !args.is_empty() {
                            self.metrics.con_allocs += 1;
                        }
                    }
                }
                // Mark handled: from here on this answer is a built value.
                self.focus_reused = true;
                if self.stack.len() == base_stack {
                    return Ok(focus);
                }
                let frame = self.stack.pop().expect("stack above base");
                focus = self.consume(focus, frame)?;
                continue;
            }
            self.focus_reused = false;
            focus = self.dispatch(focus)?;
        }
    }

    /// An answer meets the top frame.
    #[allow(clippy::too_many_lines)]
    fn consume(&mut self, answer: Rc<Expr>, frame: Frame) -> Result<Rc<Expr>, MachineError> {
        match frame {
            Frame::AppArg(arg) => match &*answer {
                Expr::Lam(b, body) => {
                    if self.mode == EvalMode::CallByValue
                        && !(arg.is_atom() || self.is_answer(&arg))
                    {
                        // Evaluate the argument first.
                        self.stack.push(Frame::AppFun(Rc::clone(&answer)));
                        self.focus_reused = false;
                        Ok(Rc::new(arg))
                    } else {
                        let name = b.name.clone();
                        Ok(Rc::new(self.bind_params(
                            [(name, arg)],
                            body,
                            [],
                            Charge::Arg,
                            false,
                        )))
                    }
                }
                other => Err(MachineError::Stuck(format!(
                    "applied non-function answer: {other}"
                ))),
            },
            Frame::AppFun(fun) => match &*fun {
                Expr::Lam(b, body) => {
                    let name = b.name.clone();
                    let arg = take(answer);
                    Ok(Rc::new(self.bind_params(
                        [(name, arg)],
                        body,
                        [],
                        Charge::Arg,
                        true,
                    )))
                }
                other => Err(MachineError::Stuck(format!(
                    "AppFun frame holds non-lambda: {other}"
                ))),
            },
            Frame::TyArg(t) => match &*answer {
                Expr::TyLam(a, body) => Ok(Rc::new(self.bind_params(
                    [],
                    body,
                    [(a.clone(), t)],
                    Charge::Free,
                    false,
                ))),
                other => Err(MachineError::Stuck(format!(
                    "type-applied non-type-lambda: {other}"
                ))),
            },
            Frame::Case(alts) => self.select_alt(&answer, alts),
            Frame::Join(_) => {
                // `ans` rule: the join binding is dead once an answer
                // reaches it.
                self.focus_reused = true;
                Ok(answer)
            }
            Frame::Update(x) => {
                self.heap.insert(x, HeapObj::Value(Rc::clone(&answer)));
                self.focus_reused = true;
                Ok(answer)
            }
            Frame::PrimL(op, rhs) => match &*answer {
                Expr::Lit(a) => {
                    self.stack.push(Frame::PrimR(op, *a));
                    self.focus_reused = false;
                    Ok(Rc::new(rhs))
                }
                other => Err(MachineError::Stuck(format!(
                    "primop operand not an integer: {other}"
                ))),
            },
            Frame::PrimR(op, a) => match &*answer {
                Expr::Lit(b) => match op.eval(a, *b) {
                    Some(PrimResult::Int(n)) => Ok(Rc::new(Expr::Lit(n))),
                    Some(PrimResult::Bool(v)) => Ok(Rc::new(Expr::bool(v))),
                    None => Err(MachineError::DivideByZero),
                },
                other => Err(MachineError::Stuck(format!(
                    "primop operand not an integer: {other}"
                ))),
            },
            Frame::ConArgs {
                con,
                tys,
                mut done,
                mut pending,
            } => {
                done.push(take(answer));
                if let Some(next) = pending.pop() {
                    self.stack.push(Frame::ConArgs {
                        con,
                        tys,
                        done,
                        pending,
                    });
                    self.focus_reused = false;
                    Ok(Rc::new(next))
                } else {
                    // Freshly completed cell: charge it here (the focus
                    // answer path would see focus_reused=true).
                    if !done.is_empty() {
                        self.metrics.con_allocs += 1;
                    }
                    self.focus_reused = true;
                    Ok(Rc::new(Expr::Con(con, tys, done)))
                }
            }
            Frame::JumpArgs {
                label,
                tys,
                mut done,
                mut pending,
                res,
            } => {
                done.push(take(answer));
                while let Some(next) = pending.pop() {
                    if next.is_atom() {
                        done.push(next);
                    } else {
                        self.stack.push(Frame::JumpArgs {
                            label,
                            tys,
                            done,
                            pending,
                            res,
                        });
                        self.focus_reused = false;
                        return Ok(Rc::new(next));
                    }
                }
                self.perform_jump(&label, tys, done, true)
            }
            Frame::LetStrict(b, body) => {
                let arg = take(answer);
                Ok(Rc::new(self.bind_params(
                    [(b.name, arg)],
                    &body,
                    [],
                    Charge::Let,
                    true,
                )))
            }
        }
    }

    /// A non-answer in focus: apply the matching `push`/`bind`/`look`/
    /// `jump` rule.
    #[allow(clippy::too_many_lines)]
    fn dispatch(&mut self, focus: Rc<Expr>) -> Result<Rc<Expr>, MachineError> {
        // Regain ownership to deconstruct: free for program text (unique),
        // one structural clone when the focus aliases a heap thunk — the
        // cost the pre-sharing machine paid eagerly at every `look`.
        match take(focus) {
            Expr::Var(x) => match self.heap.get(&x) {
                Some(HeapObj::Value(v)) => {
                    let v = Rc::clone(v);
                    self.focus_reused = true;
                    Ok(v)
                }
                Some(HeapObj::Thunk(e)) => {
                    let e = Rc::clone(e);
                    if self.mode == EvalMode::CallByNeed {
                        self.stack.push(Frame::Update(x));
                    }
                    Ok(e)
                }
                None => Err(MachineError::UnboundVar(x)),
            },
            Expr::App(f, a) => {
                self.stack.push(Frame::AppArg(Expr::unshare(a)));
                Ok(Rc::new(Expr::unshare(f)))
            }
            Expr::TyApp(f, t) => {
                self.stack.push(Frame::TyArg(t));
                Ok(Rc::new(Expr::unshare(f)))
            }
            Expr::Prim(op, mut args) => {
                if args.len() != 2 {
                    return Err(MachineError::Stuck(format!(
                        "primop {op} with {} operands",
                        args.len()
                    )));
                }
                let b = args.pop().expect("two operands");
                let a = args.pop().expect("two operands");
                self.stack.push(Frame::PrimL(op, b));
                Ok(Rc::new(a))
            }
            Expr::Case(s, alts) => {
                self.stack.push(Frame::Case(alts));
                Ok(Rc::new(Expr::unshare(s)))
            }
            Expr::Let(bind, body) => self.bind_let(bind, Expr::unshare(body)).map(Rc::new),
            Expr::Join(jb, body) => {
                self.stack.push(Frame::Join(Rc::new(jb)));
                Ok(Rc::new(Expr::unshare(body)))
            }
            Expr::Jump(j, tys, args, res) => {
                if self.mode == EvalMode::CallByValue
                    && args.iter().any(|a| !(a.is_atom() || self.is_answer(a)))
                {
                    let mut pending: Vec<Expr> = args;
                    pending.reverse();
                    let mut done = Vec::new();
                    // Atoms pass through untouched (forcing them here would
                    // copy heap values inline for nothing).
                    while let Some(next) = pending.pop() {
                        if next.is_atom() {
                            done.push(next);
                        } else {
                            self.stack.push(Frame::JumpArgs {
                                label: j,
                                tys,
                                done,
                                pending,
                                res,
                            });
                            self.focus_reused = false;
                            return Ok(Rc::new(next));
                        }
                    }
                    self.perform_jump(&j, tys, done, true)
                } else {
                    self.perform_jump(&j, tys, args, false)
                }
            }
            // CBV constructors with unevaluated fields.
            Expr::Con(c, tys, args) => {
                debug_assert_eq!(self.mode, EvalMode::CallByValue);
                let mut pending: Vec<Expr> = args;
                pending.reverse();
                match pending.pop() {
                    Some(first) => {
                        self.stack.push(Frame::ConArgs {
                            con: c,
                            tys,
                            done: Vec::new(),
                            pending,
                        });
                        Ok(Rc::new(first))
                    }
                    None => Ok(Rc::new(Expr::Con(c, tys, Vec::new()))),
                }
            }
            other => Err(MachineError::Stuck(format!("no rule for focus: {other}"))),
        }
    }

    fn bind_let(&mut self, bind: LetBind, body: Expr) -> Result<Expr, MachineError> {
        match bind {
            LetBind::NonRec(b, rhs) => {
                if self.mode == EvalMode::CallByValue && !(self.is_answer(&rhs) || rhs.is_atom()) {
                    self.stack.push(Frame::LetStrict(b, body));
                    Ok(Expr::unshare(rhs))
                } else {
                    Ok(self.bind_params(
                        [(b.name, Expr::unshare(rhs))],
                        &body,
                        [],
                        Charge::Let,
                        false,
                    ))
                }
            }
            LetBind::Rec(binds) => {
                // Allocate the whole group, with the group names renamed
                // consistently in all right-hand sides and the body.
                let fresh: Vec<Name> = binds
                    .iter()
                    .map(|(b, _)| self.supply.fresh_like(&b.name))
                    .collect();
                let rename = |this: &mut Self, e: &Expr| {
                    let mut s = Subst::new(&mut this.supply);
                    for ((b, _), f) in binds.iter().zip(&fresh) {
                        s = s.bind_term(b.name.clone(), Expr::Var(f.clone()));
                    }
                    s.apply(e)
                };
                let rhss: Vec<Expr> = binds.iter().map(|(_, rhs)| rename(self, rhs)).collect();
                let body2 = rename(self, &body);
                for (f, rhs) in fresh.into_iter().zip(rhss) {
                    self.store_binding(f, rhs, Charge::Let, false);
                }
                Ok(body2)
            }
        }
    }

    fn select_alt(&mut self, answer: &Expr, mut alts: Vec<Alt>) -> Result<Rc<Expr>, MachineError> {
        match answer {
            Expr::Con(c, _, args) => {
                let idx = alts
                    .iter()
                    .position(|a| matches!(&a.con, AltCon::Con(c2) if c2 == c))
                    .or_else(|| alts.iter().position(|a| a.con == AltCon::Default));
                let Some(idx) = idx else {
                    return Err(MachineError::Stuck(format!(
                        "no case alternative for constructor {c}"
                    )));
                };
                // Move the selected alternative out; the discarded ones are
                // dropped with the frame, and the taken branch is never
                // cloned.
                let alt = alts.swap_remove(idx);
                if alt.con == AltCon::Default {
                    self.focus_reused = false;
                    return Ok(Rc::new(alt.rhs));
                }
                if alt.binders.len() != args.len() {
                    return Err(MachineError::Stuck(format!(
                        "field arity mismatch scrutinizing {c}"
                    )));
                }
                // Field bindings are free: the constructor paid for them.
                let pairs: Vec<(Name, Expr)> = alt
                    .binders
                    .iter()
                    .map(|b| b.name.clone())
                    .zip(args.iter().cloned())
                    .collect();
                let rhs = self.bind_params(pairs, &alt.rhs, [], Charge::Free, true);
                self.focus_reused = false;
                Ok(Rc::new(rhs))
            }
            Expr::Lit(n) => {
                let idx = alts
                    .iter()
                    .position(|a| matches!(&a.con, AltCon::Lit(m) if m == n))
                    .or_else(|| alts.iter().position(|a| a.con == AltCon::Default));
                let Some(idx) = idx else {
                    return Err(MachineError::Stuck(format!(
                        "no case alternative for literal {n}"
                    )));
                };
                self.focus_reused = false;
                Ok(Rc::new(alts.swap_remove(idx).rhs))
            }
            other => Err(MachineError::Stuck(format!(
                "case scrutinee is not data: {other}"
            ))),
        }
    }

    /// The `jump` rule: pop to the join frame binding `label` (leaving the
    /// frame in place), bind the parameters, and enter the body.
    fn perform_jump(
        &mut self,
        label: &Name,
        tys: Vec<Type>,
        args: Vec<Expr>,
        evaluated: bool,
    ) -> Result<Rc<Expr>, MachineError> {
        self.metrics.jumps += 1;
        loop {
            match self.stack.last() {
                None => return Err(MachineError::NoJoinFrame(label.clone())),
                Some(Frame::Join(jb)) => {
                    if jb.defs().iter().any(|d| &d.name == label) {
                        // Alias the group (cheap) so the matched definition
                        // can be borrowed across `bind_params` without
                        // cloning its body on every recursive jump.
                        let jb = Rc::clone(jb);
                        let def = jb
                            .defs()
                            .iter()
                            .find(|d| &d.name == label)
                            .expect("label found above");
                        let pairs: Vec<(Name, Expr)> = def
                            .params
                            .iter()
                            .map(|b| b.name.clone())
                            .zip(args)
                            .collect();
                        let ty_pairs: Vec<(Name, Type)> =
                            def.ty_params.iter().cloned().zip(tys).collect();
                        let body =
                            self.bind_params(pairs, &def.body, ty_pairs, Charge::Arg, evaluated);
                        self.focus_reused = false;
                        return Ok(Rc::new(body));
                    }
                    // A join frame for some other group: discard it too.
                    self.stack.pop();
                }
                Some(_) => {
                    self.stack.pop();
                }
            }
        }
    }

    /// Force an answer into a deep [`Value`], recursing through
    /// constructor fields (bounded by `depth` to keep cyclic structures
    /// from spinning).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from forcing fields.
    pub fn deep_force(&mut self, answer: Expr, depth: usize) -> Result<Value, MachineError> {
        if depth == 0 {
            return Err(MachineError::Stuck("deep_force depth exhausted".into()));
        }
        match answer {
            Expr::Lit(n) => Ok(Value::Int(n)),
            Expr::Lam(..) | Expr::TyLam(..) => Ok(Value::Closure),
            Expr::Con(c, _, args) => {
                let mut fields = Vec::with_capacity(args.len());
                for a in args {
                    let v = self.eval(a)?;
                    fields.push(self.deep_force(v, depth - 1)?);
                }
                Ok(Value::Con(c, fields))
            }
            other => {
                let v = self.eval(other)?;
                self.deep_force(v, depth - 1)
            }
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Charge {
    Let,
    Arg,
    Free,
}
