//! Allocation and step accounting — the evaluation metric of the paper.
//!
//! The paper reports *heap allocations* as "a repeatable proxy for runtime"
//! (Sec. 7). Our machine counts the allocation events GHC's story is about:
//!
//! * **`let`-bound thunks and closures**: **+1 per binding** whose RHS is
//!   not freely duplicable (variables, literals, and nullary constructors
//!   are substituted inline and cost nothing). This is the cost that
//!   contification eliminates — a `join` binding is a stack frame, **+0**
//!   (Fig. 3 stack-allocates join points).
//! * **argument bindings** (β, jump arguments): **+1** for a non-cheap
//!   argument — a thunk under call-by-name, a fresh closure under
//!   call-by-value. Jump arguments are charged *the same way* as function
//!   arguments, so "join vs function" comparisons isolate exactly the
//!   closure/context cost the paper talks about. Already-evaluated values
//!   passed along (call-by-value) are free: they were charged when built.
//! * **data construction**: **+1 per constructor cell with at least one
//!   field**, charged once at the point the cell is built (nullary
//!   constructors are shared statics in GHC and cost nothing; call-by-need
//!   updates and case-field rebinding never recount a cell).
//! * **case field bindings** and call-by-need updates: **+0** — the fields
//!   were paid for when the constructor was built.

use std::fmt;

/// Counters collected during one machine run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Machine transitions taken.
    pub steps: u64,
    /// Heap closures/thunks allocated by `let` bindings.
    pub let_allocs: u64,
    /// Thunks/values allocated for non-atomic function and jump arguments.
    pub arg_allocs: u64,
    /// Constructor cells allocated (constructors with ≥ 1 field).
    pub con_allocs: u64,
    /// Jumps taken (each is a stack adjustment, never an allocation).
    pub jumps: u64,
    /// High-water mark of the frame stack.
    pub max_stack: usize,
}

impl Metrics {
    /// Total allocation events — the number the paper's Table 1 compares.
    pub fn total_allocs(&self) -> u64 {
        self.let_allocs + self.arg_allocs + self.con_allocs
    }

    /// Percentage change in total allocations from `baseline` to `self`,
    /// as the paper reports it (negative = improvement).
    ///
    /// Returns `-100.0` when the baseline allocates and `self` does not,
    /// and `0.0` when neither allocates.
    pub fn alloc_delta_pct(&self, baseline: &Metrics) -> f64 {
        let b = baseline.total_allocs() as f64;
        let n = self.total_allocs() as f64;
        if b == 0.0 {
            if n == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (n - b) / b * 100.0
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "steps={} allocs={} (let={} arg={} con={}) jumps={} max_stack={}",
            self.steps,
            self.total_allocs(),
            self.let_allocs,
            self.arg_allocs,
            self.con_allocs,
            self.jumps,
            self.max_stack
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_components() {
        let m = Metrics {
            let_allocs: 2,
            arg_allocs: 3,
            con_allocs: 5,
            ..Metrics::default()
        };
        assert_eq!(m.total_allocs(), 10);
    }

    #[test]
    fn delta_pct() {
        let base = Metrics {
            let_allocs: 100,
            ..Metrics::default()
        };
        let new = Metrics {
            let_allocs: 92,
            ..Metrics::default()
        };
        let d = new.alloc_delta_pct(&base);
        assert!((d + 8.0).abs() < 1e-9, "{d}");
        let zero = Metrics::default();
        assert_eq!(zero.alloc_delta_pct(&base), -100.0);
        assert_eq!(zero.alloc_delta_pct(&zero), 0.0);
    }
}
