//! # fj-fusion — stream fusion over System F_J (paper Sec. 5)
//!
//! The paper's second headline result: with recursive join points,
//! Svenningsson's **skip-less** streams (`Step s a = Done | Yield a s`)
//! fuse just as well as Coutts et al.'s **skip-ful** streams
//! (`SStep s a = SDone | SYield a s | SSkip s`) — without paying Skip's
//! extra constructor, extra case alternatives, and awkward `zip`.
//!
//! This crate builds stream pipelines **in the object language**: each
//! combinator is a meta-level Rust function that constructs the composed
//! stepper expression a Haskell compiler would arrive at after inlining
//! the stream library (the `Stream` existential is gone by then, which is
//! why no existential types are needed here — mirroring the paper's own
//! simplification of omitting existentials). The result is handed to the
//! `fj-core` optimizer:
//!
//! * **skip-less + join points**: `filter`'s recursive inner stepper
//!   contifies, `jfloat` pushes every consumer `case` to the loop's
//!   return points, and the pipeline collapses into one allocation-free
//!   loop;
//! * **skip-less + baseline**: the recursive stepper blocks case-of-case,
//!   so per-element closures and `Step` cells survive;
//! * **skip-ful + baseline**: fuses (that was Skip's whole point), but
//!   with more tests per element and a clunkier `zip`.
//!
//! ## Example
//!
//! ```
//! use fj_ast::{Dsl, Expr, PrimOp, Type};
//! use fj_fusion::{enum_from_to, filter_s, int_lambda, map_s, sum_s, StepVariant};
//! use fj_eval::{run_int, EvalMode};
//!
//! let mut d = Dsl::new();
//! // sum (map (*2) (filter even [1..10]))
//! let s = enum_from_to(&mut d, StepVariant::Skipless, Expr::Lit(1), Expr::Lit(10));
//! let even = int_lambda(&mut d, |_, x| {
//!     Expr::prim2(PrimOp::Eq,
//!         Expr::prim2(PrimOp::Rem, Expr::var(x), Expr::Lit(2)),
//!         Expr::Lit(0))
//! });
//! let s = filter_s(&mut d, even, s);
//! let double = int_lambda(&mut d, |_, x| {
//!     Expr::prim2(PrimOp::Mul, Expr::var(x), Expr::Lit(2))
//! });
//! let s = map_s(&mut d, double, Type::Int, s);
//! let program = sum_s(&mut d, s);
//! assert_eq!(run_int(&program, EvalMode::CallByName, 100_000)?, 60);
//! # Ok::<(), fj_eval::MachineError>(())
//! ```

// This crate is meta-level term *construction* (it builds object-language
// streams for the optimizer to consume), where pre-cloning locals for
// closure captures is the dominant idiom; the workspace-wide
// redundant-clone gate exists to protect optimizer pass code, not this.
#![allow(clippy::redundant_clone)]
#![warn(missing_docs)]

use fj_ast::{Alt, AltCon, Binder, Dsl, Expr, Ident, Name, PrimOp, Type};

/// Which `Step` datatype a pipeline is built over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StepVariant {
    /// `Step s a = Done | Yield a s` — Svenningsson's unfold/destroy.
    Skipless,
    /// `SStep s a = SDone | SYield a s | SSkip s` — Coutts et al.
    Skip,
}

impl StepVariant {
    fn ty_con(self) -> &'static str {
        match self {
            StepVariant::Skipless => "Step",
            StepVariant::Skip => "SStep",
        }
    }

    fn done(self) -> &'static str {
        match self {
            StepVariant::Skipless => "Done",
            StepVariant::Skip => "SDone",
        }
    }

    fn yield_(self) -> &'static str {
        match self {
            StepVariant::Skipless => "Yield",
            StepVariant::Skip => "SYield",
        }
    }
}

/// A stream in post-inlining form: a state type, an element type, an
/// initial state, and a stepper expression of type
/// `state -> Step state elem`.
#[derive(Clone, Debug)]
pub struct Stream {
    /// Which `Step` datatype the stepper returns.
    pub variant: StepVariant,
    /// The stepper's state type.
    pub state_ty: Type,
    /// The element type.
    pub elem_ty: Type,
    /// The initial state.
    pub init: Expr,
    /// The stepper: `λ(s : state). Step state elem`.
    pub step_fn: Expr,
}

impl Stream {
    /// The `Step state elem` (or `SStep …`) result type of the stepper.
    pub fn step_ty(&self) -> Type {
        Type::Con(
            Ident::new(self.variant.ty_con()),
            vec![self.state_ty.clone(), self.elem_ty.clone()],
        )
    }
}

fn con(name: &str, tys: Vec<Type>, args: Vec<Expr>) -> Expr {
    Expr::Con(Ident::new(name), tys, args)
}

/// Build `λ(x:Int). body(x)` — convenience for predicates and mappers.
pub fn int_lambda(d: &mut Dsl, body: impl FnOnce(&mut Dsl, &Name) -> Expr) -> Expr {
    let x = d.binder("x", Type::Int);
    let n = x.name.clone();
    let b = body(d, &n);
    Expr::lam(x, b)
}

/// Build `λ(a:Int) (b:Int). body(a, b)`.
pub fn int_lambda2(d: &mut Dsl, body: impl FnOnce(&mut Dsl, &Name, &Name) -> Expr) -> Expr {
    let a = d.binder("a", Type::Int);
    let b = d.binder("b", Type::Int);
    let (an, bn) = (a.name.clone(), b.name.clone());
    let e = body(d, &an, &bn);
    Expr::lams([a, b], e)
}

/// `enumFromTo lo hi`: yields `lo, lo+1, …, hi`.
pub fn enum_from_to(d: &mut Dsl, variant: StepVariant, lo: Expr, hi: Expr) -> Stream {
    let s = d.binder("s", Type::Int);
    let state = Type::Int;
    let step_res = vec![state.clone(), Type::Int];
    let body = Expr::ite(
        Expr::prim2(PrimOp::Gt, Expr::var(&s.name), hi),
        con(variant.done(), step_res.clone(), vec![]),
        con(
            variant.yield_(),
            step_res,
            vec![
                Expr::var(&s.name),
                Expr::prim2(PrimOp::Add, Expr::var(&s.name), Expr::Lit(1)),
            ],
        ),
    );
    Stream {
        variant,
        state_ty: state,
        elem_ty: Type::Int,
        init: lo,
        step_fn: Expr::lam(s, body),
    }
}

/// Case over a `Step`-typed scrutinee, building the two (or three)
/// alternatives. `skip` is only consulted for [`StepVariant::Skip`].
#[allow(clippy::too_many_arguments)]
fn case_step(
    d: &mut Dsl,
    variant: StepVariant,
    scrut: Expr,
    state_ty: &Type,
    elem_ty: &Type,
    done: Expr,
    yield_: impl FnOnce(&mut Dsl, &Name, &Name) -> Expr,
    skip: impl FnOnce(&mut Dsl, &Name) -> Expr,
) -> Expr {
    let x = d.binder("x", elem_ty.clone());
    let st = d.binder("st", state_ty.clone());
    let (xn, stn) = (x.name.clone(), st.name.clone());
    let yield_rhs = yield_(d, &xn, &stn);
    let mut alts = vec![
        Alt::simple(AltCon::Con(Ident::new(variant.done())), done),
        Alt {
            con: AltCon::Con(Ident::new(variant.yield_())),
            binders: vec![x, st],
            rhs: yield_rhs,
        },
    ];
    if variant == StepVariant::Skip {
        let st2 = d.binder("st", state_ty.clone());
        let st2n = st2.name.clone();
        let skip_rhs = skip(d, &st2n);
        alts.push(Alt {
            con: AltCon::Con(Ident::new("SSkip")),
            binders: vec![st2],
            rhs: skip_rhs,
        });
    }
    Expr::case(scrut, alts)
}

/// `map f s` — apply `f : elem -> out` to every element.
pub fn map_s(d: &mut Dsl, f: Expr, out_elem_ty: Type, s: Stream) -> Stream {
    let variant = s.variant;
    let st_in = d.binder("s", s.state_ty.clone());
    let out_tys = vec![s.state_ty.clone(), out_elem_ty.clone()];
    let scrut = Expr::app(s.step_fn.clone(), Expr::var(&st_in.name));
    let state_ty = s.state_ty.clone();
    let elem_ty = s.elem_ty.clone();
    let out_tys2 = out_tys.clone();
    let body = case_step(
        d,
        variant,
        scrut,
        &state_ty,
        &elem_ty,
        con(variant.done(), out_tys.clone(), vec![]),
        |_, x, st| {
            con(
                variant.yield_(),
                out_tys.clone(),
                vec![Expr::app(f, Expr::var(x)), Expr::var(st)],
            )
        },
        |_, st| con("SSkip", out_tys2, vec![Expr::var(st)]),
    );
    Stream {
        variant,
        state_ty: s.state_ty,
        elem_ty: out_elem_ty,
        init: s.init,
        step_fn: Expr::lam(st_in, body),
    }
}

/// `filter p s` — keep elements satisfying `p : elem -> Bool`.
///
/// **This is the combinator Sec. 5 revolves around.** Skip-less filtering
/// needs a *recursive* stepper (loop until a match); skip-ful filtering
/// emits `SSkip` instead.
pub fn filter_s(d: &mut Dsl, p: Expr, s: Stream) -> Stream {
    let variant = s.variant;
    let step_tys = vec![s.state_ty.clone(), s.elem_ty.clone()];
    match variant {
        StepVariant::Skip => {
            let st_in = d.binder("s", s.state_ty.clone());
            let scrut = Expr::app(s.step_fn.clone(), Expr::var(&st_in.name));
            let state_ty = s.state_ty.clone();
            let elem_ty = s.elem_ty.clone();
            let tys = step_tys.clone();
            let body = case_step(
                d,
                variant,
                scrut,
                &state_ty,
                &elem_ty,
                con("SDone", tys.clone(), vec![]),
                |_, x, st| {
                    Expr::ite(
                        Expr::app(p, Expr::var(x)),
                        con("SYield", tys.clone(), vec![Expr::var(x), Expr::var(st)]),
                        con("SSkip", tys.clone(), vec![Expr::var(st)]),
                    )
                },
                |_, st| con("SSkip", step_tys.clone(), vec![Expr::var(st)]),
            );
            Stream {
                variant,
                state_ty: s.state_ty,
                elem_ty: s.elem_ty,
                init: s.init,
                step_fn: Expr::lam(st_in, body),
            }
        }
        StepVariant::Skipless => {
            // step' = \s. letrec loop = \s2. case step s2 of
            //                Done -> Done
            //                Yield x s' -> if p x then Yield x s' else loop s'
            //             in loop s
            let st_in = d.binder("s", s.state_ty.clone());
            let loop_ty = Type::fun(s.state_ty.clone(), s.step_ty());
            let loop_n = d.name("floop");
            let s2 = d.binder("s2", s.state_ty.clone());
            let scrut = Expr::app(s.step_fn.clone(), Expr::var(&s2.name));
            let state_ty = s.state_ty.clone();
            let elem_ty = s.elem_ty.clone();
            let tys = step_tys.clone();
            let loop_n2 = loop_n.clone();
            let loop_body = case_step(
                d,
                variant,
                scrut,
                &state_ty,
                &elem_ty,
                con("Done", tys.clone(), vec![]),
                |_, x, st| {
                    Expr::ite(
                        Expr::app(p, Expr::var(x)),
                        con("Yield", tys.clone(), vec![Expr::var(x), Expr::var(st)]),
                        Expr::app(Expr::var(&loop_n2), Expr::var(st)),
                    )
                },
                |_, _| unreachable!("skipless has no skip alternative"),
            );
            let body = Expr::letrec(
                vec![(
                    Binder::new(loop_n.clone(), loop_ty),
                    Expr::lam(s2, loop_body),
                )],
                Expr::app(Expr::var(&loop_n), Expr::var(&st_in.name)),
            );
            Stream {
                variant,
                state_ty: s.state_ty,
                elem_ty: s.elem_ty,
                init: s.init,
                step_fn: Expr::lam(st_in, body),
            }
        }
    }
}

/// `take n s` — at most the first `n` elements. State becomes
/// `Pair Int state`.
pub fn take_s(d: &mut Dsl, n: Expr, s: Stream) -> Stream {
    let variant = s.variant;
    let new_state = d.pair_ty(Type::Int, s.state_ty.clone());
    let out_tys = vec![new_state.clone(), s.elem_ty.clone()];
    let ps = d.binder("ps", new_state.clone());
    let k = d.binder("k", Type::Int);
    let inner = d.binder("st", s.state_ty.clone());
    let scrut = Expr::app(s.step_fn.clone(), Expr::var(&inner.name));
    let state_ty = s.state_ty.clone();
    let elem_ty = s.elem_ty.clone();
    let kn = k.name.clone();
    let pair_tys = vec![Type::Int, s.state_ty.clone()];
    let pair_tys2 = pair_tys.clone();
    let out_tys2 = out_tys.clone();
    let kn2 = kn.clone();
    let step_case = case_step(
        d,
        variant,
        scrut,
        &state_ty,
        &elem_ty,
        con(variant.done(), out_tys.clone(), vec![]),
        |_, x, st| {
            let new_pair = con(
                "MkPair",
                pair_tys.clone(),
                vec![
                    Expr::prim2(PrimOp::Sub, Expr::var(&kn), Expr::Lit(1)),
                    Expr::var(st),
                ],
            );
            con(
                variant.yield_(),
                out_tys.clone(),
                vec![Expr::var(x), new_pair],
            )
        },
        |_, st| {
            let new_pair = con("MkPair", pair_tys2, vec![Expr::var(&kn2), Expr::var(st)]);
            con("SSkip", out_tys2, vec![new_pair])
        },
    );
    let body = Expr::case(
        Expr::var(&ps.name),
        vec![Alt {
            con: AltCon::Con(Ident::new("MkPair")),
            binders: vec![k.clone(), inner],
            rhs: Expr::ite(
                Expr::prim2(PrimOp::Le, Expr::var(&k.name), Expr::Lit(0)),
                con(
                    variant.done(),
                    vec![new_state.clone(), s.elem_ty.clone()],
                    vec![],
                ),
                step_case,
            ),
        }],
    );
    let init_state = con(
        "MkPair",
        vec![Type::Int, s.state_ty.clone()],
        vec![n, s.init],
    );
    Stream {
        variant,
        state_ty: new_state,
        elem_ty: s.elem_ty,
        init: init_state,
        step_fn: Expr::lam(ps, body),
    }
}

/// `append s1 s2` — `s1` then `s2`. State is `Either st1 st2`.
///
/// Note the variant asymmetry the paper highlights: with `SSkip`, the
/// transition from the first stream to the second is just a skip; the
/// skip-less version must take a step of `s2` on the spot.
pub fn append_s(d: &mut Dsl, s1: Stream, s2: Stream) -> Stream {
    assert_eq!(s1.variant, s2.variant, "cannot mix Step variants");
    assert_eq!(s1.elem_ty, s2.elem_ty, "element types must match");
    let variant = s1.variant;
    let state = Type::Con(
        Ident::new("Either"),
        vec![s1.state_ty.clone(), s2.state_ty.clone()],
    );
    let out_tys = vec![state.clone(), s1.elem_ty.clone()];
    let either_tys = vec![s1.state_ty.clone(), s2.state_ty.clone()];

    let st = d.binder("st", state.clone());
    let a = d.binder("a", s1.state_ty.clone());
    let b = d.binder("b", s2.state_ty.clone());

    let right_tys = either_tys.clone();
    let left_tys = either_tys.clone();

    // Right branch: step s2, wrapping new states in Right.
    let step2_case = {
        let scrut = Expr::app(s2.step_fn.clone(), Expr::var(&b.name));
        let tys = out_tys.clone();
        let tys2 = out_tys.clone();
        let rt = right_tys.clone();
        let rt2 = right_tys.clone();
        let s2_state = s2.state_ty.clone();
        let s2_elem = s2.elem_ty.clone();
        case_step(
            d,
            variant,
            scrut,
            &s2_state,
            &s2_elem,
            con(variant.done(), tys.clone(), vec![]),
            |_, x, stn| {
                con(
                    variant.yield_(),
                    tys,
                    vec![Expr::var(x), con("Right", rt, vec![Expr::var(stn)])],
                )
            },
            |_, stn| con("SSkip", tys2, vec![con("Right", rt2, vec![Expr::var(stn)])]),
        )
    };

    let left_done = match variant {
        // Skip: skip into the second stream's initial state.
        StepVariant::Skip => con(
            "SSkip",
            out_tys.clone(),
            vec![con("Right", either_tys.clone(), vec![s2.init.clone()])],
        ),
        // Skip-less: must take a step of s2 immediately.
        StepVariant::Skipless => {
            let scrut = Expr::app(s2.step_fn.clone(), s2.init.clone());
            let tys = out_tys.clone();
            let rt = either_tys.clone();
            let s2_state = s2.state_ty.clone();
            let s2_elem = s2.elem_ty.clone();
            case_step(
                d,
                variant,
                scrut,
                &s2_state,
                &s2_elem,
                con(variant.done(), tys.clone(), vec![]),
                |_, x, stn| {
                    con(
                        variant.yield_(),
                        tys,
                        vec![Expr::var(x), con("Right", rt, vec![Expr::var(stn)])],
                    )
                },
                |_, _| unreachable!("skipless has no skip alternative"),
            )
        }
    };

    let step1_case = {
        let scrut = Expr::app(s1.step_fn.clone(), Expr::var(&a.name));
        let tys = out_tys.clone();
        let tys2 = out_tys.clone();
        let lt = left_tys.clone();
        let lt2 = left_tys.clone();
        let s1_state = s1.state_ty.clone();
        let s1_elem = s1.elem_ty.clone();
        case_step(
            d,
            variant,
            scrut,
            &s1_state,
            &s1_elem,
            left_done,
            |_, x, stn| {
                con(
                    variant.yield_(),
                    tys,
                    vec![Expr::var(x), con("Left", lt, vec![Expr::var(stn)])],
                )
            },
            |_, stn| con("SSkip", tys2, vec![con("Left", lt2, vec![Expr::var(stn)])]),
        )
    };

    let body = Expr::case(
        Expr::var(&st.name),
        vec![
            Alt {
                con: AltCon::Con(Ident::new("Left")),
                binders: vec![a],
                rhs: step1_case,
            },
            Alt {
                con: AltCon::Con(Ident::new("Right")),
                binders: vec![b],
                rhs: step2_case,
            },
        ],
    );
    let init = con("Left", either_tys, vec![s1.init]);
    Stream {
        variant,
        state_ty: state,
        elem_ty: s1.elem_ty,
        init,
        step_fn: Expr::lam(st, body),
    }
}

/// `zipWith f s1 s2` (skip-less only — see the paper's point about `zip`
/// under `Skip`; the skip-ful encoding needs a buffered element and is
/// provided as [`zip_with_skip`]).
pub fn zip_with_s(d: &mut Dsl, f: Expr, out_ty: Type, s1: Stream, s2: Stream) -> Stream {
    assert_eq!(s1.variant, StepVariant::Skipless);
    assert_eq!(s2.variant, StepVariant::Skipless);
    let variant = StepVariant::Skipless;
    let state = d.pair_ty(s1.state_ty.clone(), s2.state_ty.clone());
    let out_tys = vec![state.clone(), out_ty.clone()];
    let ps = d.binder("ps", state.clone());
    let a = d.binder("a", s1.state_ty.clone());
    let b = d.binder("b", s2.state_ty.clone());
    let pair_tys = vec![s1.state_ty.clone(), s2.state_ty.clone()];
    let bn = b.name.clone();
    let inner = {
        let scrut1 = Expr::app(s1.step_fn.clone(), Expr::var(&a.name));
        let s2_step = s2.step_fn.clone();
        let out_tys2 = out_tys.clone();
        let pair_tys2 = pair_tys.clone();
        let s2_state = s2.state_ty.clone();
        let s2_elem = s2.elem_ty.clone();
        let s1_state = s1.state_ty.clone();
        let s1_elem = s1.elem_ty.clone();
        case_step(
            d,
            variant,
            scrut1,
            &s1_state,
            &s1_elem,
            con(variant.done(), out_tys.clone(), vec![]),
            |d2, x, a2| {
                let scrut2 = Expr::app(s2_step, Expr::var(&bn));
                let x = x.clone();
                let a2 = a2.clone();
                case_step(
                    d2,
                    variant,
                    scrut2,
                    &s2_state,
                    &s2_elem,
                    con(variant.done(), out_tys2.clone(), vec![]),
                    move |_, y, b2| {
                        con(
                            variant.yield_(),
                            out_tys2.clone(),
                            vec![
                                Expr::apps(f, [Expr::var(&x), Expr::var(y)]),
                                con(
                                    "MkPair",
                                    pair_tys2.clone(),
                                    vec![Expr::var(&a2), Expr::var(b2)],
                                ),
                            ],
                        )
                    },
                    |_, _| unreachable!("skipless"),
                )
            },
            |_, _| unreachable!("skipless"),
        )
    };
    let body = Expr::case(
        Expr::var(&ps.name),
        vec![Alt {
            con: AltCon::Con(Ident::new("MkPair")),
            binders: vec![a.clone(), b.clone()],
            rhs: inner,
        }],
    );
    let init = con("MkPair", pair_tys, vec![s1.init, s2.init]);
    Stream {
        variant,
        state_ty: state,
        elem_ty: out_ty,
        init,
        step_fn: Expr::lam(ps, body),
    }
}

/// `zipWith f s1 s2` for skip-ful streams: the state must carry a
/// buffered left element (`Pair (Pair st1 st2) (Maybe elem1)`) —
/// demonstrating the paper's point that `Skip` makes `zip` "more
/// complicated and less efficient".
pub fn zip_with_skip(d: &mut Dsl, f: Expr, out_ty: Type, s1: Stream, s2: Stream) -> Stream {
    assert_eq!(s1.variant, StepVariant::Skip);
    assert_eq!(s2.variant, StepVariant::Skip);
    let variant = StepVariant::Skip;
    let pair_states = d.pair_ty(s1.state_ty.clone(), s2.state_ty.clone());
    let maybe_e1 = d.maybe_ty(s1.elem_ty.clone());
    let state = d.pair_ty(pair_states.clone(), maybe_e1.clone());
    let out_tys = vec![state.clone(), out_ty.clone()];
    let st_tys = vec![s1.state_ty.clone(), s2.state_ty.clone()];
    let outer_tys = vec![pair_states.clone(), maybe_e1.clone()];

    let ps = d.binder("ps", state.clone());
    let inner_pair = d.binder("ab", pair_states.clone());
    let buf = d.binder("buf", maybe_e1.clone());
    let a = d.binder("a", s1.state_ty.clone());
    let b = d.binder("b", s2.state_ty.clone());

    let mk_state = {
        let outer_tys = outer_tys.clone();
        let st_tys = st_tys.clone();
        move |ae: Expr, be: Expr, bufe: Expr| {
            con(
                "MkPair",
                outer_tys.clone(),
                vec![con("MkPair", st_tys.clone(), vec![ae, be]), bufe],
            )
        }
    };

    // No buffered element: pull from s1, buffer its yield.
    let an = a.name.clone();
    let bn = b.name.clone();
    let e1 = s1.elem_ty.clone();
    let pull_left = {
        let scrut = Expr::app(s1.step_fn.clone(), Expr::var(&an));
        let out1 = out_tys.clone();
        let out1b = out_tys.clone();
        let mk1 = mk_state.clone();
        let mk1b = mk_state.clone();
        let bn1 = bn.clone();
        let bn2 = bn.clone();
        let e1a = e1.clone();
        let e1b = e1.clone();
        let s1_state = s1.state_ty.clone();
        let s1_elem = s1.elem_ty.clone();
        case_step(
            d,
            variant,
            scrut,
            &s1_state,
            &s1_elem,
            con("SDone", out_tys.clone(), vec![]),
            |d2, x, a2| {
                let just = d2.just(e1a, Expr::var(x));
                con(
                    "SSkip",
                    out1,
                    vec![mk1(Expr::var(a2), Expr::var(&bn1), just)],
                )
            },
            |d2, a2| {
                let nothing = d2.nothing(e1b);
                con(
                    "SSkip",
                    out1b,
                    vec![mk1b(Expr::var(a2), Expr::var(&bn2), nothing)],
                )
            },
        )
    };

    // Buffered element x: pull from s2, emit f x y.
    let x_buf = d.binder("x", s1.elem_ty.clone());
    let xn = x_buf.name.clone();
    let an2 = a.name.clone();
    let pull_right = {
        let scrut = Expr::app(s2.step_fn.clone(), Expr::var(&b.name));
        let out2 = out_tys.clone();
        let out2b = out_tys.clone();
        let mk2 = mk_state.clone();
        let mk2b = mk_state.clone();
        let e1a = e1.clone();
        let e1b = e1.clone();
        let an3 = an2.clone();
        let xn2 = xn.clone();
        let s2_state = s2.state_ty.clone();
        let s2_elem = s2.elem_ty.clone();
        case_step(
            d,
            variant,
            scrut,
            &s2_state,
            &s2_elem,
            con("SDone", out_tys.clone(), vec![]),
            |d2, y, b2| {
                let nothing = d2.nothing(e1a);
                con(
                    "SYield",
                    out2,
                    vec![
                        Expr::apps(f, [Expr::var(&xn), Expr::var(y)]),
                        mk2(Expr::var(&an2), Expr::var(b2), nothing),
                    ],
                )
            },
            |d2, b2| {
                let just = d2.just(e1b, Expr::var(&xn2));
                con(
                    "SSkip",
                    out2b,
                    vec![mk2b(Expr::var(&an3), Expr::var(b2), just)],
                )
            },
        )
    };

    let buf_case = Expr::case(
        Expr::var(&buf.name),
        vec![
            Alt::simple(AltCon::Con(Ident::new("Nothing")), pull_left),
            Alt {
                con: AltCon::Con(Ident::new("Just")),
                binders: vec![x_buf],
                rhs: pull_right,
            },
        ],
    );
    let body = Expr::case(
        Expr::var(&ps.name),
        vec![Alt {
            con: AltCon::Con(Ident::new("MkPair")),
            binders: vec![inner_pair.clone(), buf],
            rhs: Expr::case(
                Expr::var(&inner_pair.name),
                vec![Alt {
                    con: AltCon::Con(Ident::new("MkPair")),
                    binders: vec![a.clone(), b.clone()],
                    rhs: buf_case,
                }],
            ),
        }],
    );
    let init = {
        let nothing = d.nothing(s1.elem_ty.clone());
        con(
            "MkPair",
            outer_tys,
            vec![con("MkPair", st_tys, vec![s1.init, s2.init]), nothing],
        )
    };
    Stream {
        variant,
        state_ty: state,
        elem_ty: out_ty,
        init,
        step_fn: Expr::lam(ps, body),
    }
}

/// `foldl f z s` — consume the stream with `f : acc -> elem -> acc`.
/// Produces the classic consumer loop the paper's `any` example ends in.
pub fn fold_s(d: &mut Dsl, f: Expr, z: Expr, acc_ty: Type, s: Stream) -> Expr {
    let variant = s.variant;
    let loop_n = d.name("go");
    let loop_ty = Type::funs([s.state_ty.clone(), acc_ty.clone()], acc_ty.clone());
    let st = d.binder("st", s.state_ty.clone());
    let acc = d.binder("acc", acc_ty.clone());
    let scrut = Expr::app(s.step_fn.clone(), Expr::var(&st.name));
    let state_ty = s.state_ty.clone();
    let elem_ty = s.elem_ty.clone();
    let loop_v = loop_n.clone();
    let accn = acc.name.clone();
    let loop_v2 = loop_n.clone();
    let accn2 = acc.name.clone();
    let accn3 = acc.name.clone();
    let body = case_step(
        d,
        variant,
        scrut,
        &state_ty,
        &elem_ty,
        Expr::var(&accn3),
        |_, x, stn| {
            Expr::apps(
                Expr::var(&loop_v),
                [
                    Expr::var(stn),
                    Expr::apps(f, [Expr::var(&accn), Expr::var(x)]),
                ],
            )
        },
        |_, stn| Expr::apps(Expr::var(&loop_v2), [Expr::var(stn), Expr::var(&accn2)]),
    );
    Expr::letrec(
        vec![(
            Binder::new(loop_n.clone(), loop_ty),
            Expr::lams([st, acc], body),
        )],
        Expr::apps(Expr::var(&loop_n), [s.init, z]),
    )
}

/// `sum s` for integer streams.
pub fn sum_s(d: &mut Dsl, s: Stream) -> Expr {
    let add = int_lambda2(d, |_, a, b| {
        Expr::prim2(PrimOp::Add, Expr::var(a), Expr::var(b))
    });
    fold_s(d, add, Expr::Lit(0), Type::Int, s)
}

/// `length s`.
pub fn length_s(d: &mut Dsl, s: Stream) -> Expr {
    let x = d.binder("n", Type::Int);
    let ignored = d.binder("e", s.elem_ty.clone());
    let inc = Expr::lams(
        [x.clone(), ignored],
        Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::Lit(1)),
    );
    fold_s(d, inc, Expr::Lit(0), Type::Int, s)
}

#[cfg(test)]
mod tests;
