//! Fusion tests: combinator correctness against Rust references, and the
//! Sec. 5 claims — skip-less pipelines fuse to allocation-free loops
//! under the join-points pipeline, but not under the baseline.

use crate::{
    append_s, enum_from_to, filter_s, fold_s, int_lambda, int_lambda2, length_s, map_s, sum_s,
    take_s, zip_with_s, zip_with_skip, StepVariant, Stream,
};
use fj_ast::{Dsl, Expr, PrimOp, Type};
use fj_check::lint;
use fj_core::{optimize, OptConfig};
use fj_eval::{run, run_int, EvalMode, Metrics};

const FUEL: u64 = 10_000_000;

fn both() -> [StepVariant; 2] {
    [StepVariant::Skipless, StepVariant::Skip]
}

fn eval_checked(d: &Dsl, e: &Expr) -> i64 {
    lint(e, &d.data_env).unwrap_or_else(|err| panic!("lint: {err}\n{e}"));
    run_int(e, EvalMode::CallByName, FUEL).unwrap_or_else(|err| panic!("eval: {err}\n{e}"))
}

/// `sum [1..n]`.
#[test]
fn enum_sum() {
    for v in both() {
        let mut d = Dsl::new();
        let s = enum_from_to(&mut d, v, Expr::Lit(1), Expr::Lit(100));
        let e = sum_s(&mut d, s);
        assert_eq!(eval_checked(&d, &e), 5050, "{v:?}");
    }
}

/// `sum (map (*3) [1..10])`.
#[test]
fn map_sum() {
    for v in both() {
        let mut d = Dsl::new();
        let s = enum_from_to(&mut d, v, Expr::Lit(1), Expr::Lit(10));
        let triple = int_lambda(&mut d, |_, x| {
            Expr::prim2(PrimOp::Mul, Expr::var(x), Expr::Lit(3))
        });
        let s = map_s(&mut d, triple, Type::Int, s);
        let e = sum_s(&mut d, s);
        assert_eq!(eval_checked(&d, &e), 165, "{v:?}");
    }
}

/// `sum (filter even [1..20])`.
#[test]
fn filter_sum() {
    let expect: i64 = (1..=20).filter(|x| x % 2 == 0).sum();
    for v in both() {
        let mut d = Dsl::new();
        let s = enum_from_to(&mut d, v, Expr::Lit(1), Expr::Lit(20));
        let even = int_lambda(&mut d, |_, x| {
            Expr::prim2(
                PrimOp::Eq,
                Expr::prim2(PrimOp::Rem, Expr::var(x), Expr::Lit(2)),
                Expr::Lit(0),
            )
        });
        let s = filter_s(&mut d, even, s);
        let e = sum_s(&mut d, s);
        assert_eq!(eval_checked(&d, &e), expect, "{v:?}");
    }
}

/// `length (take 7 [5..100])`.
#[test]
fn take_length() {
    for v in both() {
        let mut d = Dsl::new();
        let s = enum_from_to(&mut d, v, Expr::Lit(5), Expr::Lit(100));
        let s = take_s(&mut d, Expr::Lit(7), s);
        let e = length_s(&mut d, s);
        assert_eq!(eval_checked(&d, &e), 7, "{v:?}");
    }
}

/// `take` larger than the stream.
#[test]
fn take_overlong() {
    for v in both() {
        let mut d = Dsl::new();
        let s = enum_from_to(&mut d, v, Expr::Lit(1), Expr::Lit(3));
        let s = take_s(&mut d, Expr::Lit(100), s);
        let e = sum_s(&mut d, s);
        assert_eq!(eval_checked(&d, &e), 6, "{v:?}");
    }
}

/// `sum ([1..3] ++ [10..12])`.
#[test]
fn append_sum() {
    for v in both() {
        let mut d = Dsl::new();
        let s1 = enum_from_to(&mut d, v, Expr::Lit(1), Expr::Lit(3));
        let s2 = enum_from_to(&mut d, v, Expr::Lit(10), Expr::Lit(12));
        let s = append_s(&mut d, s1, s2);
        let e = sum_s(&mut d, s);
        assert_eq!(eval_checked(&d, &e), 6 + 33, "{v:?}");
    }
}

/// Appending an empty first stream.
#[test]
fn append_empty_first() {
    for v in both() {
        let mut d = Dsl::new();
        let s1 = enum_from_to(&mut d, v, Expr::Lit(5), Expr::Lit(4)); // empty
        let s2 = enum_from_to(&mut d, v, Expr::Lit(1), Expr::Lit(2));
        let s = append_s(&mut d, s1, s2);
        let e = sum_s(&mut d, s);
        assert_eq!(eval_checked(&d, &e), 3, "{v:?}");
    }
}

/// `sum (zipWith (*) [1..5] [10..14])` — skip-less zip.
#[test]
fn zip_skipless() {
    let expect: i64 = (1..=5).zip(10..=14).map(|(a, b)| a * b).sum();
    let mut d = Dsl::new();
    let s1 = enum_from_to(&mut d, StepVariant::Skipless, Expr::Lit(1), Expr::Lit(5));
    let s2 = enum_from_to(&mut d, StepVariant::Skipless, Expr::Lit(10), Expr::Lit(14));
    let mul = int_lambda2(&mut d, |_, a, b| {
        Expr::prim2(PrimOp::Mul, Expr::var(a), Expr::var(b))
    });
    let s = zip_with_s(&mut d, mul, Type::Int, s1, s2);
    let e = sum_s(&mut d, s);
    assert_eq!(eval_checked(&d, &e), expect);
}

/// The same zip with skip-ful streams (and a filter in one leg, which is
/// where SSkip actually shows up in the zip).
#[test]
fn zip_skipful_with_filter() {
    let expect: i64 = (1..=10)
        .filter(|x| x % 2 == 0)
        .zip(10..=14)
        .map(|(a, b)| a * b)
        .sum();
    let mut d = Dsl::new();
    let s1 = enum_from_to(&mut d, StepVariant::Skip, Expr::Lit(1), Expr::Lit(10));
    let even = int_lambda(&mut d, |_, x| {
        Expr::prim2(
            PrimOp::Eq,
            Expr::prim2(PrimOp::Rem, Expr::var(x), Expr::Lit(2)),
            Expr::Lit(0),
        )
    });
    let s1 = filter_s(&mut d, even, s1);
    let s2 = enum_from_to(&mut d, StepVariant::Skip, Expr::Lit(10), Expr::Lit(14));
    let mul = int_lambda2(&mut d, |_, a, b| {
        Expr::prim2(PrimOp::Mul, Expr::var(a), Expr::var(b))
    });
    let s = zip_with_skip(&mut d, mul, Type::Int, s1, s2);
    let e = sum_s(&mut d, s);
    assert_eq!(eval_checked(&d, &e), expect);
}

/// A general fold: product.
#[test]
fn fold_product() {
    let mut d = Dsl::new();
    let s = enum_from_to(&mut d, StepVariant::Skipless, Expr::Lit(1), Expr::Lit(6));
    let mul = int_lambda2(&mut d, |_, a, b| {
        Expr::prim2(PrimOp::Mul, Expr::var(a), Expr::var(b))
    });
    let e = fold_s(&mut d, mul, Expr::Lit(1), Type::Int, s);
    assert_eq!(eval_checked(&d, &e), 720);
}

// ---------------------------------------------------------------------
// The Sec. 5 evaluation claims.
// ---------------------------------------------------------------------

/// Build `sum (map (λx. x*2+1) (filter odd [1..n]))` in a given variant.
fn pipeline(d: &mut Dsl, v: StepVariant, n: i64) -> Expr {
    let s = enum_from_to(d, v, Expr::Lit(1), Expr::Lit(n));
    let odd = int_lambda(d, |_, x| {
        Expr::prim2(
            PrimOp::Eq,
            Expr::prim2(PrimOp::Rem, Expr::var(x), Expr::Lit(2)),
            Expr::Lit(1),
        )
    });
    let s = filter_s(d, odd, s);
    let f = int_lambda(d, |_, x| {
        Expr::prim2(
            PrimOp::Add,
            Expr::prim2(PrimOp::Mul, Expr::var(x), Expr::Lit(2)),
            Expr::Lit(1),
        )
    });
    let s = map_s(d, f, Type::Int, s);
    sum_s(d, s)
}

fn pipeline_reference(n: i64) -> i64 {
    (1..=n).filter(|x| x % 2 == 1).map(|x| x * 2 + 1).sum()
}

fn optimized_metrics(v: StepVariant, cfg: &OptConfig, n: i64) -> (i64, Metrics, Expr) {
    let mut d = Dsl::new();
    let e = pipeline(&mut d, v, n);
    lint(&e, &d.data_env).unwrap_or_else(|err| panic!("lint input: {err}"));
    let out = optimize(&e, &d.data_env, &mut d.supply, &cfg.clone().with_lint(true))
        .unwrap_or_else(|err| panic!("optimize: {err}"));
    let o =
        run(&out, EvalMode::CallByValue, FUEL).unwrap_or_else(|err| panic!("eval: {err}\n{out}"));
    match o.value {
        fj_eval::Value::Int(k) => (k, o.metrics, out),
        other => panic!("expected Int, got {other}"),
    }
}

/// **The headline**: skip-less + join points fuses completely — zero
/// allocations, independent of n.
#[test]
fn skipless_with_joins_fuses_completely() {
    for n in [10, 100] {
        let (val, m, out) = optimized_metrics(StepVariant::Skipless, &OptConfig::join_points(), n);
        assert_eq!(val, pipeline_reference(n));
        assert_eq!(
            m.total_allocs(),
            0,
            "skip-less + join points must be allocation-free at n={n}: {m}\n{out}"
        );
    }
}

/// Skip-less + baseline does NOT fuse: the recursive stepper survives and
/// allocations grow with n.
#[test]
fn skipless_baseline_fails_to_fuse() {
    let (val_small, m_small, _) =
        optimized_metrics(StepVariant::Skipless, &OptConfig::baseline(), 10);
    let (val_big, m_big, _) = optimized_metrics(StepVariant::Skipless, &OptConfig::baseline(), 100);
    assert_eq!(val_small, pipeline_reference(10));
    assert_eq!(val_big, pipeline_reference(100));
    assert!(
        m_big.total_allocs() > m_small.total_allocs(),
        "baseline allocations must grow with n: {} vs {}",
        m_small,
        m_big
    );
    assert!(
        m_big.total_allocs() >= 90,
        "per-element allocation expected: {m_big}"
    );
}

/// Sec. 5's "straight win": with join points, skip-less matches skip-ful
/// on allocations (both zero) and on steps (within noise), while the
/// residual program is *smaller* — "simpler code, less of it".
#[test]
fn skipless_joins_matches_skipful_with_less_code() {
    let n = 100;
    let (val_nl, m_nl, out_nl) =
        optimized_metrics(StepVariant::Skipless, &OptConfig::join_points(), n);
    let (val_sk, m_sk, out_sk) = optimized_metrics(StepVariant::Skip, &OptConfig::join_points(), n);
    assert_eq!(val_nl, val_sk);
    assert_eq!(m_nl.total_allocs(), 0);
    assert_eq!(m_sk.total_allocs(), 0);
    let ratio = m_nl.steps as f64 / m_sk.steps as f64;
    assert!(
        (0.8..=1.2).contains(&ratio),
        "step counts should be comparable: {} vs {}",
        m_nl.steps,
        m_sk.steps
    );
    // Residual loops are near-identical once fused.
    let size_ratio = out_nl.size() as f64 / out_sk.size() as f64;
    assert!(
        (0.7..=1.3).contains(&size_ratio),
        "residual code comparable: {} vs {}",
        out_nl.size(),
        out_sk.size()
    );
    // "Less code" is a *source* claim: the skip-less library pipeline is
    // smaller before optimization (two alternatives everywhere, not three).
    let mut d1 = Dsl::new();
    let src_nl = pipeline(&mut d1, StepVariant::Skipless, n).size();
    let mut d2 = Dsl::new();
    let src_sk = pipeline(&mut d2, StepVariant::Skip, n).size();
    assert!(
        src_nl < src_sk,
        "skip-less library code must be smaller: {src_nl} vs {src_sk}"
    );
}

/// Regression: zip pipelines under the baseline config used to die in
/// the post-pass lint (`NotADatatype(Int)`). The simplifier's shared
/// big-alternative function absorbed the dupable context *and* left the
/// context on the residual case, so consuming the case applied it twice
/// around an ordinary (non-aborting) call. Only a jump may absorb it.
#[test]
fn zip_pipeline_survives_baseline_sharing() {
    let n = 40i64;
    let expect: i64 = (1..=n)
        .zip((1..=n).map(|x| x * 3))
        .map(|(a, b)| a + b)
        .sum();
    for v in both() {
        for cfg in [OptConfig::join_points(), OptConfig::baseline()] {
            let mut d = Dsl::new();
            let s1 = enum_from_to(&mut d, v, Expr::Lit(1), Expr::Lit(n));
            let triple = int_lambda(&mut d, |_, x| {
                Expr::prim2(PrimOp::Mul, Expr::var(x), Expr::Lit(3))
            });
            let s2 = enum_from_to(&mut d, v, Expr::Lit(1), Expr::Lit(n));
            let s2 = map_s(&mut d, triple, Type::Int, s2);
            let add = int_lambda2(&mut d, |_, a, b| {
                Expr::prim2(PrimOp::Add, Expr::var(a), Expr::var(b))
            });
            let z = match v {
                StepVariant::Skipless => zip_with_s(&mut d, add, Type::Int, s1, s2),
                StepVariant::Skip => zip_with_skip(&mut d, add, Type::Int, s1, s2),
            };
            let e = sum_s(&mut d, z);
            let out = optimize(&e, &d.data_env, &mut d.supply, &cfg.with_lint(true))
                .unwrap_or_else(|err| panic!("{v:?} optimize: {err}"));
            assert_eq!(
                run_int(&out, EvalMode::CallByValue, FUEL).unwrap(),
                expect,
                "{v:?}"
            );
        }
    }
}

/// Optimized pipelines stay observationally correct across all modes.
#[test]
fn optimized_pipelines_preserve_semantics() {
    for v in both() {
        for cfg in [OptConfig::join_points(), OptConfig::baseline()] {
            let mut d = Dsl::new();
            let e = pipeline(&mut d, v, 30);
            let out = optimize(&e, &d.data_env, &mut d.supply, &cfg.with_lint(true))
                .unwrap_or_else(|err| panic!("optimize: {err}"));
            for mode in [
                EvalMode::CallByName,
                EvalMode::CallByNeed,
                EvalMode::CallByValue,
            ] {
                assert_eq!(
                    run_int(&out, mode, FUEL).unwrap(),
                    pipeline_reference(30),
                    "{v:?} {mode:?}"
                );
            }
        }
    }
}

/// Stream type plumbing.
#[test]
fn step_ty_shapes() {
    let mut d = Dsl::new();
    let s: Stream = enum_from_to(&mut d, StepVariant::Skipless, Expr::Lit(1), Expr::Lit(5));
    assert_eq!(s.step_ty().to_string(), "Step Int Int");
    let s2 = enum_from_to(&mut d, StepVariant::Skip, Expr::Lit(1), Expr::Lit(5));
    assert_eq!(s2.step_ty().to_string(), "SStep Int Int");
}
