//! Shared harness for the service-layer integration tests: spawn a real
//! TCP server on an ephemeral port, talk to it over sockets.

// Each test binary uses a different subset of the harness.
#![allow(dead_code)]

use fj_server::{serve, ServeConfig, ServerState};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running server and the handle to join it after `shutdown`.
pub struct Server {
    pub addr: SocketAddr,
    pub state: Arc<ServerState>,
    handle: Option<JoinHandle<std::io::Result<()>>>,
}

impl Server {
    /// Bind an ephemeral port and serve `state` on a background thread.
    pub fn spawn(cfg: ServeConfig) -> Server {
        let state = Arc::new(ServerState::with_config(4, 16 << 20, cfg));
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");
        let handle = std::thread::spawn({
            let state = Arc::clone(&state);
            move || serve(listener, state)
        });
        Server {
            addr,
            state,
            handle: Some(handle),
        }
    }

    /// Send `shutdown` on a fresh connection and join the serve thread.
    /// Returns whether the serve loop exited cleanly.
    pub fn shutdown(mut self) -> bool {
        if let Ok(mut c) = Client::connect(self.addr) {
            let _ = c.roundtrip("{\"op\": \"shutdown\"}");
        }
        match self.handle.take() {
            Some(h) => h.join().map(|r| r.is_ok()).unwrap_or(false),
            None => false,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Belt-and-braces: a panicking test should still stop the serve
        // thread so `cargo test` does not leak listeners.
        if self.handle.is_some() {
            if let Ok(mut c) = Client::connect(self.addr) {
                let _ = c.roundtrip("{\"op\": \"shutdown\"}");
            }
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// A line-oriented test client with a read timeout so a server bug can
/// never hang the suite.
pub struct Client {
    pub reader: BufReader<TcpStream>,
    pub writer: TcpStream,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Send one line (newline appended).
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        self.writer.write_all(&framed)?;
        self.writer.flush()
    }

    /// Send raw bytes exactly as given.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Read one response line (trailing newline stripped). `Ok(None)`
    /// means the server closed the connection.
    pub fn recv(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// Send a request, expect exactly one response line back.
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        self.send(line)?;
        match self.recv()? {
            Some(resp) => Ok(resp),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection instead of answering",
            )),
        }
    }
}

/// Poll `cond` until it holds or `budget` expires; returns whether it
/// ever held. Counter-based assertions use this instead of sleeps.
pub fn eventually(budget: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + budget;
    loop {
        if cond() {
            return true;
        }
        if std::time::Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Assert a response is the error envelope with the given tag and code.
pub fn assert_error(resp: &str, tag: &str, code: u8) {
    assert!(
        resp.starts_with("{\"ok\": false"),
        "expected an error envelope, got: {resp}"
    );
    assert!(
        resp.contains(&format!("\"tag\": \"{tag}\"")),
        "expected tag {tag} in: {resp}"
    );
    assert!(
        resp.contains(&format!("\"code\": {code}")),
        "expected code {code} in: {resp}"
    );
}

/// A tiny always-compiles program for liveness probes.
pub const PROBE: &str = "{\"op\": \"compile\", \"program\": \"def main : Int = 1 + 2;\"}";

/// Assert the server still answers a well-formed compile on a fresh
/// connection — the "still healthy" check after every hostile input.
pub fn assert_healthy(addr: SocketAddr) {
    let mut c = Client::connect(addr).expect("healthy connect");
    let resp = c.roundtrip(PROBE).expect("healthy roundtrip");
    assert!(
        resp.starts_with("{\"ok\": true"),
        "server unhealthy after hostile input: {resp}"
    );
}
