//! Protocol-edge tests for the hostile-input surface: every malformed,
//! oversized, torn, or mistimed frame must map to the documented tag and
//! exit code — and the server must stay healthy afterwards.

mod common;

use common::{assert_error, assert_healthy, eventually, Client, Server, PROBE};
use fj_server::ServeConfig;
use std::time::Duration;

fn quick_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_cap: 8,
        drain: Duration::from_millis(500),
        ..ServeConfig::default()
    }
}

#[test]
fn malformed_json_is_a_proto_error_and_server_survives() {
    let server = Server::spawn(quick_cfg());
    let mut c = Client::connect(server.addr).unwrap();
    for bad in [
        "{not json",
        "]][[",
        "{\"op\": \"compile\", \"program\": }",
        "\u{fffd}\u{fffd}garbage",
    ] {
        let resp = c.roundtrip(bad).unwrap();
        assert_error(&resp, "proto", 2);
    }
    // Same connection still serves real work after the barrage.
    let resp = c.roundtrip(PROBE).unwrap();
    assert!(resp.starts_with("{\"ok\": true"), "got: {resp}");
    assert_healthy(server.addr);
    assert!(server.shutdown());
}

#[test]
fn empty_lines_are_skipped_not_answered() {
    let server = Server::spawn(quick_cfg());
    let mut c = Client::connect(server.addr).unwrap();
    // Blank and whitespace-only frames produce no response at all; the
    // next real request gets the next response line.
    c.send_raw(b"\n\r\n   \n").unwrap();
    let resp = c.roundtrip(PROBE).unwrap();
    assert!(resp.starts_with("{\"ok\": true"), "got: {resp}");
    let snap = server.state.service_snapshot();
    assert_eq!(snap.received, 1, "blank frames must not count as requests");
    assert!(server.shutdown());
}

#[test]
fn oversized_frame_is_rejected_while_reading_and_connection_closes() {
    let server = Server::spawn(ServeConfig {
        max_line: 1024,
        ..quick_cfg()
    });
    let mut c = Client::connect(server.addr).unwrap();
    // Twice the limit, no newline anywhere: the limit must trip *during*
    // the read — no terminator ever arrives, so waiting for one before
    // checking would hang forever.
    c.send_raw(&vec![b'x'; 2 * 1024]).unwrap();
    let resp = c.recv().unwrap().expect("an in-protocol rejection line");
    assert_error(&resp, "proto", 2);
    assert!(resp.contains("frame limit"), "got: {resp}");
    assert_eq!(c.recv().unwrap(), None, "connection must close after");
    assert!(
        eventually(Duration::from_secs(2), || {
            server.state.service_snapshot().disc_oversize == 1
        }),
        "oversize disconnect must be counted"
    );
    assert_healthy(server.addr);
    assert!(server.shutdown());
}

#[test]
fn partial_frame_then_disconnect_leaves_server_healthy() {
    let server = Server::spawn(quick_cfg());
    {
        let mut c = Client::connect(server.addr).unwrap();
        c.send_raw(b"{\"op\": \"compile\", \"prog").unwrap();
        // Drop the connection with the frame torn.
    }
    assert!(
        eventually(Duration::from_secs(2), || {
            server.state.service_snapshot().disc_clean >= 1
        }),
        "a torn-frame EOF is a clean disconnect"
    );
    let snap = server.state.service_snapshot();
    assert_eq!(snap.received, 0, "a torn frame is not a request");
    assert_healthy(server.addr);
    assert!(server.shutdown());
}

#[test]
fn pipelined_batch_after_error_gets_every_response_in_order() {
    let server = Server::spawn(quick_cfg());
    let mut c = Client::connect(server.addr).unwrap();
    // One write, three frames: bad JSON, then two real compiles. The
    // error must not desynchronize the stream — three responses, in
    // request order.
    let mut batch = Vec::new();
    batch.extend_from_slice(b"{broken\n");
    batch.extend_from_slice(PROBE.as_bytes());
    batch.push(b'\n');
    batch.extend_from_slice(b"{\"op\": \"compile\", \"program\": \"def main : Int = 2 * 3;\"}\n");
    c.send_raw(&batch).unwrap();

    let first = c.recv().unwrap().expect("response 1");
    assert_error(&first, "proto", 2);
    let second = c.recv().unwrap().expect("response 2");
    assert!(second.starts_with("{\"ok\": true"), "got: {second}");
    let third = c.recv().unwrap().expect("response 3");
    assert!(third.starts_with("{\"ok\": true"), "got: {third}");
    assert!(server.shutdown());
}

#[test]
fn idle_connection_is_cut_off_with_a_proto_error() {
    let server = Server::spawn(ServeConfig {
        idle_timeout: Duration::from_millis(150),
        ..quick_cfg()
    });
    let mut c = Client::connect(server.addr).unwrap();
    // Send nothing. The slow-loris defense must reap the connection with
    // an explanatory line, not hold a reader thread forever.
    let resp = c.recv().unwrap().expect("an idle-timeout line");
    assert_error(&resp, "proto", 2);
    assert!(resp.contains("idle timeout"), "got: {resp}");
    assert_eq!(c.recv().unwrap(), None, "connection must close after");
    assert!(
        eventually(Duration::from_secs(2), || {
            server.state.service_snapshot().disc_timeout == 1
        }),
        "timeout disconnect must be counted"
    );
    assert_healthy(server.addr);
    assert!(server.shutdown());
}

#[test]
fn connection_cap_sheds_in_protocol_with_retry_hint() {
    let server = Server::spawn(ServeConfig {
        max_conns: 1,
        ..quick_cfg()
    });
    // First connection occupies the only slot.
    let mut held = Client::connect(server.addr).unwrap();
    let resp = held.roundtrip(PROBE).unwrap();
    assert!(resp.starts_with("{\"ok\": true"), "got: {resp}");

    // Second connection must be shed with `overloaded`, not ignored.
    let mut shed = Client::connect(server.addr).unwrap();
    let resp = shed.recv().unwrap().expect("an overloaded line");
    assert_error(&resp, "overloaded", 6);
    assert!(resp.contains("retry_after_ms"), "got: {resp}");
    assert_eq!(shed.recv().unwrap(), None, "shed connection closes");

    let snap = server.state.service_snapshot();
    assert_eq!(snap.conns_shed, 1);
    // The held connection is unaffected by its neighbor being shed.
    let resp = held.roundtrip(PROBE).unwrap();
    assert!(resp.starts_with("{\"ok\": true"), "got: {resp}");
    drop(held);
    assert!(
        eventually(Duration::from_secs(2), || {
            server.state.service_snapshot().conns_active == 0
        }),
        "slot must free after the held connection closes"
    );
    assert_healthy(server.addr);
    assert!(server.shutdown());
}

#[test]
fn request_panic_is_an_internal_error_and_connection_survives() {
    let server = Server::spawn(ServeConfig {
        chaos: true,
        ..quick_cfg()
    });
    let mut c = Client::connect(server.addr).unwrap();
    let resp = c.roundtrip("{\"op\": \"__chaos_panic\"}").unwrap();
    assert_error(&resp, "internal", 7);
    assert!(resp.contains("panicked"), "got: {resp}");
    // Crash-only isolation: the same connection keeps working, and the
    // panic is visible in the counters.
    let resp = c.roundtrip(PROBE).unwrap();
    assert!(resp.starts_with("{\"ok\": true"), "got: {resp}");
    let snap = server.state.service_snapshot();
    assert_eq!(snap.panics, 1);
    assert!(snap.failed >= 1, "the panic response counts as failed");
    assert_healthy(server.addr);
    assert!(server.shutdown());
}

#[test]
fn chaos_ops_are_dead_without_the_chaos_flag() {
    let server = Server::spawn(quick_cfg());
    let mut c = Client::connect(server.addr).unwrap();
    // Without `chaos: true` the fault-injection ops are unknown ops — a
    // production server cannot be panicked from the wire.
    let resp = c.roundtrip("{\"op\": \"__chaos_panic\"}").unwrap();
    assert_error(&resp, "proto", 2);
    assert_eq!(server.state.service_snapshot().panics, 0);
    assert!(server.shutdown());
}

#[test]
fn stats_reports_the_service_geometry_and_counters() {
    let server = Server::spawn(ServeConfig {
        workers: 3,
        queue_cap: 5,
        max_conns: 7,
        ..quick_cfg()
    });
    let mut c = Client::connect(server.addr).unwrap();
    let _ = c.roundtrip(PROBE).unwrap();
    let resp = c.roundtrip("{\"op\": \"stats\"}").unwrap();
    for needle in [
        "\"service\"",
        "\"workers\": 3",
        "\"queue_cap\": 5",
        "\"max_conns\": 7",
        "\"received\"",
        "\"completed\"",
        "\"shed\"",
        "\"disconnects\"",
    ] {
        assert!(resp.contains(needle), "missing {needle} in: {resp}");
    }
    assert!(server.shutdown());
}
