//! The chaos soak: honest clients and a seeded client saboteur share one
//! server. The honest clients must get correct answers (or explicit
//! `overloaded` sheds), the saboteur must never wedge or kill the
//! daemon, and the service counters must reconcile exactly:
//! `received == completed + failed + shed` once the server is idle.

mod common;

use common::{assert_error, assert_healthy, eventually, Client, Server, PROBE};
use fj_server::ServeConfig;
use fj_testkit::chaos::{honest_client, run_episode, ChaosConfig, Episode};
use fj_testkit::SplitMix64;
use std::time::Duration;

/// Fixed soak seed: failures replay exactly. Change it only on purpose.
const SOAK_SEED: u64 = 0xF1_5E57;

#[test]
fn chaos_soak_counters_reconcile_and_honest_clients_win() {
    let cfg = ServeConfig {
        workers: 2,
        queue_cap: 4,
        max_conns: 64,
        max_line: 4096,
        idle_timeout: Duration::from_millis(400),
        drain: Duration::from_millis(800),
        chaos: true,
    };
    let server = Server::spawn(cfg);
    let chaos_cfg = ChaosConfig {
        oversize_len: 8192, // > max_line: every Oversize episode trips the cap
        ..ChaosConfig::default()
    };

    // Two honest clients compile steadily while the saboteur rages.
    let honest: Vec<_> = (0..2)
        .map(|i| {
            let addr = server.addr;
            std::thread::spawn(move || {
                let source = format!("def main : Int = {i} + 1;");
                honest_client(addr, &source, 40, &chaos_cfg)
            })
        })
        .collect();

    // The saboteur: three threads, each running a deterministic stream
    // of hostile episodes derived from the soak seed.
    let saboteurs: Vec<_> = (0..3)
        .map(|t| {
            let addr = server.addr;
            std::thread::spawn(move || {
                let mut rng = SplitMix64::new(SOAK_SEED.wrapping_add(t));
                let mut opened = 0u64;
                for _ in 0..12 {
                    let episode = Episode::pick(&mut rng);
                    let report = run_episode(episode, addr, &mut rng, &chaos_cfg);
                    opened += report.conns_opened;
                }
                opened
            })
        })
        .collect();

    let mut sab_conns = 0u64;
    for s in saboteurs {
        sab_conns += s.join().expect("saboteur thread panicked");
    }
    let (mut ok, mut overloaded, mut other) = (0u64, 0u64, 0u64);
    for h in honest {
        let (o, ov, ot) = h
            .join()
            .expect("honest thread panicked")
            .expect("the server broke an honest connection");
        ok += o;
        overloaded += ov;
        other += ot;
    }

    // Honest clients: every request answered, correctly or with an
    // explicit shed — never a silent drop or a wrong-tag error.
    assert_eq!(ok + overloaded + other, 80, "every honest request answered");
    assert_eq!(other, 0, "honest compiles only succeed or shed");
    assert!(ok > 0, "some honest requests must get through");
    assert!(sab_conns > 0, "the saboteur must actually connect");

    // Let in-flight hostile stragglers finish, then audit the books.
    let state = std::sync::Arc::clone(&server.state);
    assert!(
        eventually(Duration::from_secs(5), || {
            let s = state.service_snapshot();
            s.conns_active == 0 && s.received == s.completed + s.failed + s.shed
        }),
        "counters must reconcile once idle: {:?}",
        state.service_snapshot()
    );
    let snap = state.service_snapshot();
    assert!(
        snap.received >= 80,
        "at least the honest load was received: {snap:?}"
    );
    // Bounds held: nothing exceeded the configured admission caps.
    assert!(snap.conns_active <= 64);
    // The saboteur's oversize and slow-loris work shows up as counted
    // disconnects, not silent thread deaths.
    assert!(
        snap.disc_clean + snap.disc_io + snap.disc_timeout + snap.disc_oversize > 0,
        "disconnect reasons must be recorded: {snap:?}"
    );
    assert_healthy(server.addr);
    assert!(server.shutdown(), "serve must exit cleanly after the soak");
}

#[test]
fn full_queue_sheds_requests_with_retry_hint_deterministically() {
    // One worker, one queue slot: with the worker parked on a chaos
    // sleep and the slot taken, every further request must shed.
    let server = Server::spawn(ServeConfig {
        workers: 1,
        queue_cap: 1,
        idle_timeout: Duration::from_secs(5),
        drain: Duration::from_secs(2),
        chaos: true,
        ..ServeConfig::default()
    });

    // Park the only worker.
    let mut sleeper = Client::connect(server.addr).unwrap();
    sleeper
        .send("{\"op\": \"__chaos_sleep\", \"ms\": 600}")
        .unwrap();
    // Wait until the worker has actually dequeued the sleep, so the
    // queue slot is free for the blocker below (no race on try_push).
    assert!(
        eventually(Duration::from_secs(2), || {
            server.state.service_snapshot().received >= 1
        }),
        "sleeper request must be received"
    );
    std::thread::sleep(Duration::from_millis(100));

    // Fill the single queue slot.
    let mut blocker = Client::connect(server.addr).unwrap();
    blocker
        .send("{\"op\": \"__chaos_sleep\", \"ms\": 10}")
        .unwrap();
    assert!(
        eventually(Duration::from_secs(2), || {
            server.state.service_snapshot().received >= 2
        }),
        "blocker request must be received"
    );
    std::thread::sleep(Duration::from_millis(50));

    // Now the pool is saturated: this request must shed, in-protocol,
    // with a retry hint — and the connection must stay open.
    let mut shed = Client::connect(server.addr).unwrap();
    let resp = shed.roundtrip(PROBE).unwrap();
    assert_error(&resp, "overloaded", 6);
    assert!(resp.contains("\"retry_after_ms\": "), "got: {resp}");
    assert_eq!(server.state.service_snapshot().shed, 1);

    // Back off and retry on the same connection: once the sleeper wakes,
    // the retried request succeeds — shedding is per-request.
    assert!(
        eventually(Duration::from_secs(3), || {
            server.state.service_snapshot().completed >= 2
        }),
        "parked work must eventually finish"
    );
    let resp = shed.roundtrip(PROBE).unwrap();
    assert!(resp.starts_with("{\"ok\": true"), "got: {resp}");

    // The parked clients got their answers too.
    assert_eq!(
        sleeper.recv().unwrap().as_deref(),
        Some("{\"ok\": true, \"slept_ms\": 600}")
    );
    assert_eq!(
        blocker.recv().unwrap().as_deref(),
        Some("{\"ok\": true, \"slept_ms\": 10}")
    );
    assert!(server.shutdown());
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let server = Server::spawn(ServeConfig {
        workers: 2,
        queue_cap: 4,
        drain: Duration::from_secs(2),
        chaos: true,
        ..ServeConfig::default()
    });

    // A slow request is mid-flight when shutdown arrives.
    let mut slow = Client::connect(server.addr).unwrap();
    slow.send("{\"op\": \"__chaos_sleep\", \"ms\": 300}")
        .unwrap();
    assert!(
        eventually(Duration::from_secs(2), || {
            server.state.service_snapshot().received >= 1
        }),
        "slow request must be in flight first"
    );

    let state = std::sync::Arc::clone(&server.state);
    let clean = server.shutdown();
    assert!(clean, "serve must exit cleanly");
    // Drain semantics: the in-flight request completed — it was not
    // abandoned mid-compile.
    assert_eq!(
        slow.recv().unwrap().as_deref(),
        Some("{\"ok\": true, \"slept_ms\": 300}"),
        "in-flight work must finish inside the drain window"
    );
    let snap = state.service_snapshot();
    assert_eq!(snap.received, snap.completed + snap.failed + snap.shed);
}

#[test]
fn new_connections_refused_while_draining() {
    let server = Server::spawn(ServeConfig {
        workers: 1,
        queue_cap: 2,
        drain: Duration::from_secs(2),
        chaos: true,
        ..ServeConfig::default()
    });
    // Park the worker so the drain window stays open after shutdown.
    let mut sleeper = Client::connect(server.addr).unwrap();
    sleeper
        .send("{\"op\": \"__chaos_sleep\", \"ms\": 500}")
        .unwrap();
    assert!(
        eventually(Duration::from_secs(2), || {
            server.state.service_snapshot().received >= 1
        }),
        "sleeper must be in flight"
    );

    // Shutdown on a second connection (queued behind the sleeper).
    let mut ctl = Client::connect(server.addr).unwrap();
    ctl.send("{\"op\": \"shutdown\"}").unwrap();

    // While draining, the listener is gone: new connections fail fast
    // (refused) instead of being accepted and silently dropped.
    assert!(
        eventually(Duration::from_secs(2), || {
            Client::connect(server.addr).is_err()
        }),
        "the listener must stop accepting during drain"
    );
    assert_eq!(
        sleeper.recv().unwrap().as_deref(),
        Some("{\"ok\": true, \"slept_ms\": 500}"),
        "drain still finishes the in-flight request"
    );
}
