//! # On-disk persistence for the optimization cache
//!
//! [`FileStore`] implements [`fj_core::CacheStore`] over a plain
//! directory: one file per cache key, written atomically (temp file +
//! rename), containing the *surface text* of the input and output terms.
//!
//! ## Why text, not a binary AST dump
//!
//! The store's integrity domain is the filesystem — anything there can
//! be truncated, corrupted, hand-edited, or left over from an older
//! build. Instead of trusting bytes, the store serializes through the
//! frontend's own unparser ([`fj_surface::unparse_entry`]) and
//! deserializes by **re-running the full frontend**
//! ([`fj_surface::parse_entry`] + [`fj_surface::lower_entry`]): a loaded
//! entry is lexed, parsed, lowered, and then α-verified against the
//! live request (and its output Core-Linted) by the cache before
//! adoption. A bad file fails one of those stages and costs a cache
//! miss — it can never produce a wrong term. The files are also
//! human-readable, which makes the cache directory debuggable with
//! `cat`.
//!
//! ## File format
//!
//! ```text
//! fj-cache 1
//! key <term> <cfg> <env> <mode>          -- the CacheKey, hex fields
//! input <byte-length>
//! <that many bytes of surface text: data decls + expression>
//! output <byte-length>
//! <that many bytes of surface text>
//! end
//! ```
//!
//! The file name is the key spelled in hex, so lookups are a single
//! `read`; the key line inside echoes it so a renamed or cross-copied
//! file is detected as corrupt. `data` declarations ride inside each
//! section (the unparser emits the non-prelude environment sorted by
//! name), so an entry is self-contained: re-lowering rebuilds the
//! datatype environment and its fingerprint is compared against the
//! request's.
//!
//! ## Crash safety & concurrency
//!
//! Writes go to a unique temp file in the same directory and are
//! `rename`d into place — readers see either the old complete file or
//! the new complete file, never a torn one (rename is atomic on POSIX
//! for same-directory moves). Concurrent writers of the same key race
//! benignly: both files carry the same content up to α-equivalence, and
//! last-rename-wins. All IO failures degrade to a miss (`load`) or a
//! counted no-op (`store`); a read-only cache directory serves hits and
//! refuses writes without ever failing a compile.

use fj_ast::{DataEnv, Expr};
use fj_core::{CacheKey, CacheStore, DiskLoad, StoredEntry};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Format version; bumped whenever the layout or the surface grammar
/// changes incompatibly. A version mismatch is [`DiskLoad::Corrupt`].
const FORMAT_VERSION: u32 = 1;

/// Reject absurdly large files before reading them into memory.
const MAX_FILE_BYTES: u64 = 64 << 20;

/// A directory of persisted cache entries. See the module docs.
pub struct FileStore {
    dir: PathBuf,
    /// Distinguishes temp files of concurrent writers within a process.
    temp_seq: AtomicU64,
}

impl FileStore {
    /// Open (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// The `create_dir_all` error if the directory cannot be created.
    pub fn open(dir: &Path) -> std::io::Result<FileStore> {
        std::fs::create_dir_all(dir)?;
        Ok(FileStore {
            dir: dir.to_path_buf(),
            temp_seq: AtomicU64::new(0),
        })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!(
            "{:016x}-{:016x}-{:016x}-{}.fjc",
            key.term,
            key.cfg,
            key.env,
            if key.resilient { "r" } else { "s" }
        ))
    }

    fn key_line(key: &CacheKey) -> String {
        format!(
            "key {:016x} {:016x} {:016x} {}",
            key.term,
            key.cfg,
            key.env,
            if key.resilient { "r" } else { "s" }
        )
    }
}

/// Split `text` after its first newline; `None` if there is none.
fn take_line(text: &str) -> Option<(&str, &str)> {
    let nl = text.find('\n')?;
    Some((&text[..nl], &text[nl + 1..]))
}

/// Parse a `<tag> <byte-length>` header and split off that many bytes of
/// payload plus the trailing newline.
fn take_section<'a>(text: &'a str, tag: &str) -> Option<(&'a str, &'a str)> {
    let (header, rest) = take_line(text)?;
    let len: usize = header.strip_prefix(tag)?.strip_prefix(' ')?.parse().ok()?;
    if rest.len() < len {
        return None;
    }
    let (payload, rest) = rest.split_at(len);
    let rest = rest.strip_prefix('\n')?;
    Some((payload, rest))
}

/// Re-run the frontend over one persisted section. The entry text is
/// self-contained (`data` decls + bare expression).
fn relower(text: &str) -> Option<fj_surface::Lowered> {
    let toks = fj_surface::lex(text).ok()?;
    let (datas, expr) = fj_surface::parse_entry(&toks).ok()?;
    fj_surface::lower_entry(&datas, &expr).ok()
}

impl CacheStore for FileStore {
    fn load(&self, key: &CacheKey) -> DiskLoad {
        let path = self.path_for(key);
        match std::fs::metadata(&path) {
            Ok(meta) if meta.len() > MAX_FILE_BYTES => return DiskLoad::Corrupt,
            Ok(_) => {}
            Err(_) => return DiskLoad::Absent,
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            // Present but unreadable (permissions, encoding): treat as
            // absent — the compile must still succeed.
            return DiskLoad::Absent;
        };
        let Some(entry) = decode(&text, key) else {
            return DiskLoad::Corrupt;
        };
        DiskLoad::Entry(entry)
    }

    fn store(&self, key: &CacheKey, input: &Expr, output: &Expr, env: &DataEnv) -> bool {
        use std::io::Write;
        let mut text = format!("fj-cache {FORMAT_VERSION}\n{}\n", Self::key_line(key));
        for (tag, term) in [("input", input), ("output", output)] {
            let body = fj_surface::unparse_entry(term, env);
            text.push_str(tag);
            text.push(' ');
            text.push_str(&body.len().to_string());
            text.push('\n');
            text.push_str(&body);
            text.push('\n');
        }
        text.push_str("end\n");
        // Unique temp name in the same directory so the rename is atomic;
        // pid + sequence keeps concurrent processes and threads apart.
        let temp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.temp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let written = std::fs::File::create(&temp)
            .and_then(|mut f| f.write_all(text.as_bytes()).and_then(|()| f.sync_all()));
        if written.is_err() {
            let _ = std::fs::remove_file(&temp);
            return false;
        }
        if std::fs::rename(&temp, self.path_for(key)).is_err() {
            let _ = std::fs::remove_file(&temp);
            return false;
        }
        true
    }
}

/// Decode one persisted file; `None` on any structural problem.
fn decode(text: &str, key: &CacheKey) -> Option<Box<StoredEntry>> {
    let (version, rest) = take_line(text)?;
    if version != format!("fj-cache {FORMAT_VERSION}") {
        return None;
    }
    let (key_echo, rest) = take_line(rest)?;
    if key_echo != FileStore::key_line(key) {
        return None;
    }
    let (input_text, rest) = take_section(rest, "input")?;
    let (output_text, rest) = take_section(rest, "output")?;
    if rest != "end\n" {
        return None;
    }
    let input = relower(input_text)?;
    let output = relower(output_text)?;
    if input.data_env.fingerprint() != output.data_env.fingerprint() {
        return None;
    }
    let env_fingerprint = input.data_env.fingerprint();
    // Both re-lowerings drew from fresh supplies; the larger peek is past
    // every name in either term.
    let supply_high = input.supply.peek().max(output.supply.peek());
    Some(Box::new(StoredEntry {
        input: input.expr,
        output: output.expr,
        env_fingerprint,
        supply_high,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_core::{optimize_cached, OptCache, OptConfig, DEFAULT_CACHE_BYTES};
    use std::sync::Arc;

    /// A scratch directory that cleans up on drop. Names come from a
    /// process-wide counter, so parallel tests never collide.
    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "fj-persist-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    const PROGRAM: &str = "\
data Shape = Circle Int | Square Int Int;
def area : Shape -> Int =
  \\(s : Shape) -> case s of {
    Circle r -> 3 * r * r;
    Square w h -> w * h
  };
def main : Int = area (Square 3 4) + area (Circle 2);
";

    fn cache_with(dir: &Path) -> OptCache {
        OptCache::with_budget(4, DEFAULT_CACHE_BYTES)
            .with_store(Arc::new(FileStore::open(dir).unwrap()))
    }

    /// Compile `PROGRAM` through the given cache; returns the optimized
    /// term and whether it was a hit.
    fn compile_through(cache: &OptCache) -> (Arc<Expr>, bool) {
        let mut lowered = fj_surface::compile(PROGRAM).unwrap();
        let (term, _, hit) = optimize_cached(
            &lowered.expr,
            &lowered.data_env,
            &mut lowered.supply,
            &OptConfig::join_points(),
            false,
            cache,
        )
        .unwrap();
        (term, hit)
    }

    #[test]
    fn restart_round_trip_is_a_disk_hit() {
        let tmp = TempDir::new("roundtrip");
        let (cold_term, cold_hit) = compile_through(&cache_with(&tmp.0));
        assert!(!cold_hit);

        // "Restart": a fresh cache over the same directory.
        let cache2 = cache_with(&tmp.0);
        let (warm_term, warm_hit) = compile_through(&cache2);
        assert!(warm_hit, "restarted cache must hit from disk");
        assert!(fj_ast::alpha_eq(&cold_term, &warm_term));
        let stats = cache2.stats();
        assert_eq!((stats.disk_hits, stats.misses), (1, 0), "{stats:?}");
    }

    #[test]
    fn files_survive_cat_level_inspection() {
        // The format promise: entries are readable surface text carrying
        // their data declarations.
        let tmp = TempDir::new("readable");
        compile_through(&cache_with(&tmp.0));
        let mut entries = std::fs::read_dir(&tmp.0).unwrap();
        let file = entries.next().unwrap().unwrap().path();
        let text = std::fs::read_to_string(file).unwrap();
        assert!(text.starts_with("fj-cache 1\nkey "), "{text}");
        assert!(text.contains("data Shape ="), "{text}");
        assert!(text.ends_with("end\n"), "{text}");
    }

    #[test]
    fn truncated_and_garbage_files_cost_a_miss_not_a_wrong_term() {
        let tmp = TempDir::new("corrupt");
        compile_through(&cache_with(&tmp.0));
        let file = std::fs::read_dir(&tmp.0)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let pristine = std::fs::read_to_string(&file).unwrap();

        let corruptions: Vec<String> = vec![
            pristine[..pristine.len() / 2].to_string(), // truncated
            "total garbage\n".to_string(),
            pristine.replace("fj-cache 1", "fj-cache 999"), // future version
            pristine.replace("case", "craze"),              // unparsable payload
            pristine.replacen("input ", "input 9", 1),      // broken length hdr
        ];
        for bad in corruptions {
            std::fs::write(&file, &bad).unwrap();
            let cache = cache_with(&tmp.0);
            let (_, hit) = compile_through(&cache);
            assert!(!hit, "corrupt file must miss: {bad:.60}");
            let stats = cache.stats();
            assert_eq!(stats.disk_hits, 0, "{stats:?}");
            assert!(
                stats.disk_verify_failures >= 1 || stats.disk_misses >= 1,
                "{stats:?}"
            );
            // The recompile rewrote a good entry; restore for next round.
        }
    }

    #[test]
    fn cross_copied_entries_are_rejected_by_the_key_echo() {
        // Copy a valid entry onto a *different* key's file name: the key
        // line inside no longer matches, so it must decode as corrupt.
        let tmp = TempDir::new("crosscopy");
        let cache = cache_with(&tmp.0);
        compile_through(&cache);
        let file = std::fs::read_dir(&tmp.0)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let other = tmp
            .0
            .join(format!("{:016x}-{:016x}-{:016x}-s.fjc", 1u64, 2u64, 3u64));
        std::fs::copy(&file, &other).unwrap();
        let store = FileStore::open(&tmp.0).unwrap();
        let stray_key = CacheKey {
            term: 1,
            cfg: 2,
            env: 3,
            resilient: false,
        };
        assert!(matches!(store.load(&stray_key), DiskLoad::Corrupt));
    }

    #[test]
    fn read_only_cache_dir_serves_hits_and_swallows_writes() {
        use std::os::unix::fs::PermissionsExt;
        let tmp = TempDir::new("readonly");
        compile_through(&cache_with(&tmp.0));
        let mut perms = std::fs::metadata(&tmp.0).unwrap().permissions();
        perms.set_mode(0o555);
        std::fs::set_permissions(&tmp.0, perms).unwrap();

        // Hits still work against a read-only directory...
        let cache = OptCache::with_budget(4, DEFAULT_CACHE_BYTES).with_store(Arc::new(FileStore {
            dir: tmp.0.clone(),
            temp_seq: AtomicU64::new(0),
        }));
        let (_, hit) = compile_through(&cache);
        assert!(hit, "read-only directory must still serve");

        // ...and a write of a new entry degrades to a counted failure.
        // (Under root the mode bits don't bind, so only assert the
        // failure when the directory actually refuses a probe write.)
        let probe = tmp.0.join(".probe");
        let refused = std::fs::File::create(&probe).is_err();
        let _ = std::fs::remove_file(&probe);
        let mut lowered = fj_surface::compile("def main : Int = 40 + 2;").unwrap();
        let (_, _, hit2) = optimize_cached(
            &lowered.expr,
            &lowered.data_env,
            &mut lowered.supply,
            &OptConfig::join_points(),
            false,
            &cache,
        )
        .unwrap();
        assert!(!hit2);
        let stats = cache.stats();
        if refused {
            assert_eq!(stats.disk_write_failures, 1, "{stats:?}");
        }

        let mut perms = std::fs::metadata(&tmp.0).unwrap().permissions();
        perms.set_mode(0o755);
        std::fs::set_permissions(&tmp.0, perms).unwrap();
    }

    #[test]
    fn unwritable_store_fails_countedly_never_fatally() {
        // Deterministic write failure on any platform and any privilege:
        // the "directory" is a file, so temp-file creation can't succeed.
        let tmp = TempDir::new("notadir");
        let bogus = tmp.0.join("blocked");
        std::fs::write(&bogus, b"not a directory").unwrap();
        let cache = OptCache::with_budget(4, DEFAULT_CACHE_BYTES).with_store(Arc::new(FileStore {
            dir: bogus,
            temp_seq: AtomicU64::new(0),
        }));
        let (_, hit) = compile_through(&cache);
        assert!(!hit, "nothing persisted, nothing to hit");
        let stats = cache.stats();
        assert_eq!(stats.disk_write_failures, 1, "{stats:?}");
        assert_eq!(stats.misses, 1, "the compile itself must succeed");
    }

    #[test]
    fn concurrent_writers_of_one_key_leave_a_valid_file() {
        let tmp = TempDir::new("racing");
        let dir = tmp.0.clone();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    // Each thread gets its own store (and cache) over the
                    // shared directory — as separate server processes
                    // would.
                    let (_, _) = compile_through(&cache_with(&dir));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // No temp litter, and whatever file won the race is adoptable.
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert!(
            names.iter().all(|n| n.ends_with(".fjc")),
            "temp litter: {names:?}"
        );
        assert_eq!(names.len(), 1, "one key, one file: {names:?}");
        let (_, hit) = compile_through(&cache_with(&dir));
        assert!(hit);
    }
}
