//! # fj-server — `fj serve`, a sharded compile service
//!
//! A zero-dependency, std-only TCP daemon that speaks newline-delimited
//! JSON: one request object per line in, one response object per line
//! out. The point of serving compiles instead of forking `fj` per file is
//! the **content-addressed optimization cache**
//! ([`fj_core::cache::OptCache`]): editors and CI recompile the same
//! programs over and over, and optimization is a pure function of
//! `(term, datatype environment, configuration)` up to α-equivalence, so
//! the second compile of any program is a cache hit that runs **zero
//! optimizer passes**.
//!
//! Three cache tiers stack under the service: a sharded, byte-budgeted
//! LRU **textual front cache** (a byte-identical recompile is a refcount
//! bump), the byte-budgeted LRU **term cache** above, and an optional
//! **persistent tier** ([`persist::FileStore`], `--cache-dir`) that
//! stores entries as unparsed source and re-lowers, α-verifies, and
//! lints them on load — so a restarted daemon is warm from request one,
//! and a corrupt or stale file can only cost a miss, never a wrong
//! term. `--cache-bytes` budgets each in-memory layer; concurrent
//! identical misses are single-flighted by the term cache.
//!
//! ## Protocol
//!
//! Requests are JSON objects with an `"op"` field:
//!
//! | op         | fields                                                            |
//! |------------|-------------------------------------------------------------------|
//! | `compile`  | `program` (or `programs`: array), `preset`, `resilient`, `deadline_ms`, `max_growth`, `cache` |
//! | `run`      | as `compile`, plus `backend`, `mode`, `fuel`, `timeout_ms`        |
//! | `report`   | as `compile`; responds with the full per-pass pipeline report     |
//! | `stats`    | —                                                                 |
//! | `shutdown` | —                                                                 |
//!
//! `preset` is `"join-points"` (default), `"baseline"`, or `"none"`;
//! `cache` is `"use"` (default) or `"bypass"`. A batch `compile` with
//! `"programs"` fans the batch out over [`fj_core::par_map`] — the same
//! worker pool as `fj bench` — and responds with one result per program,
//! in order.
//!
//! Errors are never transport failures: the response is
//! `{"ok": false, "error": {"tag": …, "code": …, "message": …}}` where
//! `code` matches the `fj` CLI's exit codes (2 parse/protocol, 3
//! type/lint, 4 optimizer, 5 budget, 1 runtime), so a script can treat a
//! served compile exactly like a spawned one. Two tags are service-only:
//! `overloaded` (code 6) when admission control sheds a request or
//! connection — the error object carries a `retry_after_ms` hint — and
//! `internal` (code 7) when a request handler panicked and was isolated
//! by the crash-only worker pool.
//!
//! ## Execution model & overload policy
//!
//! The daemon runs a **bounded worker pool** fed by a **bounded queue**
//! ([`service`]): a fixed number of workers handle requests, a
//! connection cap bounds admitted sockets, a max frame length is
//! enforced *while reading*, idle connections are disconnected, and
//! `shutdown` drains in-flight work under a deadline. When any bound is
//! hit the server *sheds* — answers `overloaded` — instead of queueing
//! without limit. See `ServeConfig` for the knobs and DESIGN.md
//! ("Service robustness & overload policy") for the rationale.

#![warn(missing_docs)]

pub mod json;
pub mod persist;
pub mod service;

pub use persist::FileStore;
pub use service::{accept_backoff, serve, ServeConfig, ServiceSnapshot};

use fj_ast::{alpha_fingerprint, DataEnv, Expr, NameSupply};
use fj_core::cache::{CacheStore, OptCache, DEFAULT_CACHE_BYTES, DEFAULT_SHARDS};
use fj_core::stats::PipelineReport;
use fj_core::{
    leaked_guard_workers, optimize_cached, optimize_resilient, optimize_with_report, BudgetKind,
    CacheStats, OptConfig, OptError,
};
use fj_eval::{EvalMode, MachineError, Metrics, Outcome};
use fj_surface::SurfaceError;
use fj_vm::VmError;
use json::Value;
use service::ServiceStats;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// A request failure, tagged like the `fj` CLI's exit codes so served
/// and spawned compiles fail identically.
#[derive(Clone, Debug)]
pub enum ServeError {
    /// Malformed request JSON, unknown op, or missing/ill-typed fields.
    Proto(String),
    /// Lexical or syntactic error in the submitted program.
    Parse(String),
    /// Lowering or lint (type) error.
    Type(String),
    /// The optimizer failed (strict pipelines only).
    Optimizer(String),
    /// A budget was exhausted: pass deadline, run fuel, or run deadline.
    Budget(String),
    /// The program failed at runtime (`run` op only).
    Runtime(String),
    /// Admission control shed this request or connection: the worker
    /// queue or connection cap is full. Carries a client back-off hint.
    Overloaded {
        /// What was shed (request vs connection) and why.
        message: String,
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request handler panicked; the crash-only worker isolated it.
    Internal(String),
}

impl ServeError {
    /// An [`ServeError::Overloaded`] with the given back-off hint.
    pub fn overloaded(message: &str, retry_after_ms: u64) -> ServeError {
        ServeError::Overloaded {
            message: message.to_string(),
            retry_after_ms,
        }
    }

    /// Machine-readable tag for the `error.tag` response field.
    pub fn tag(&self) -> &'static str {
        match self {
            ServeError::Proto(_) => "proto",
            ServeError::Parse(_) => "parse",
            ServeError::Type(_) => "type",
            ServeError::Optimizer(_) => "optimizer",
            ServeError::Budget(_) => "budget",
            ServeError::Runtime(_) => "runtime",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::Internal(_) => "internal",
        }
    }

    /// The `fj` CLI exit code this failure maps to.
    pub fn code(&self) -> u8 {
        match self {
            ServeError::Proto(_) | ServeError::Parse(_) => 2,
            ServeError::Type(_) => 3,
            ServeError::Optimizer(_) => 4,
            ServeError::Budget(_) => 5,
            ServeError::Runtime(_) => 1,
            ServeError::Overloaded { .. } => 6,
            ServeError::Internal(_) => 7,
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            ServeError::Proto(m)
            | ServeError::Parse(m)
            | ServeError::Type(m)
            | ServeError::Optimizer(m)
            | ServeError::Budget(m)
            | ServeError::Runtime(m)
            | ServeError::Overloaded { message: m, .. }
            | ServeError::Internal(m) => m,
        }
    }

    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("tag".to_string(), Value::str(self.tag())),
            ("code".to_string(), Value::num(u64::from(self.code()))),
            ("message".to_string(), Value::str(self.message())),
        ];
        if let ServeError::Overloaded { retry_after_ms, .. } = self {
            fields.push(("retry_after_ms".to_string(), Value::num(*retry_after_ms)));
        }
        Value::obj([("error", Value::Obj(fields))])
    }
}

fn opt_error(e: &OptError) -> ServeError {
    match e {
        // A growth breach is the optimizer *refusing a term*, not running
        // out of time — the CLI exits 4 for it, so the served code must
        // match. The wall-clock and pass-count budgets stay in the budget
        // family (5).
        OptError::Budget {
            kind: BudgetKind::Growth,
            ..
        } => ServeError::Optimizer(e.to_string()),
        OptError::Budget { .. } => ServeError::Budget(e.to_string()),
        OptError::Type(_) => ServeError::Type(e.to_string()),
        _ => ServeError::Optimizer(e.to_string()),
    }
}

/// Where a compile's result came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Served from the cache: zero passes ran.
    Hit,
    /// The pipeline ran and the result was memoized.
    Miss,
    /// The request asked to skip the cache (`"cache": "bypass"`).
    Bypass,
}

impl CacheDisposition {
    /// The `cache` response field value.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheDisposition::Hit => "hit",
            CacheDisposition::Miss => "miss",
            CacheDisposition::Bypass => "bypass",
        }
    }
}

/// A served compile: the optimized term, the pipeline report of the run
/// that produced it (the memoized run, on a hit), and where it came from.
pub struct Compiled {
    /// The optimized program.
    pub term: Arc<Expr>,
    /// The producing run's report.
    pub report: Arc<PipelineReport>,
    /// Hit, miss, or bypass.
    pub cache: CacheDisposition,
    /// The program's datatype environment (prelude + its `data` decls).
    pub data_env: Arc<DataEnv>,
    /// The adopting name supply, positioned past every name in `term`.
    pub supply: NameSupply,
}

/// Per-request compile options, decoded from the request object.
#[derive(Clone, Debug)]
pub struct CompileOpts {
    /// Pipeline preset name: `join-points`, `baseline`, or `none`.
    pub preset: String,
    /// Roll back failing passes instead of failing the request.
    pub resilient: bool,
    /// Optional per-pass deadline.
    pub deadline: Option<Duration>,
    /// Optional per-pass term-growth budget (the CLI's `--max-growth`).
    pub max_growth: Option<f64>,
    /// `false` to skip both cache lookup and insert.
    pub use_cache: bool,
}

impl Default for CompileOpts {
    fn default() -> Self {
        CompileOpts {
            preset: "join-points".to_string(),
            resilient: false,
            deadline: None,
            max_growth: None,
            use_cache: true,
        }
    }
}

impl CompileOpts {
    fn from_request(req: &Value) -> Result<CompileOpts, ServeError> {
        let mut opts = CompileOpts::default();
        if let Some(p) = req.get("preset") {
            opts.preset = p
                .as_str()
                .ok_or_else(|| ServeError::Proto("`preset` must be a string".to_string()))?
                .to_string();
        }
        if let Some(r) = req.get("resilient") {
            opts.resilient = r
                .as_bool()
                .ok_or_else(|| ServeError::Proto("`resilient` must be a boolean".to_string()))?;
        }
        if let Some(d) = req.get("deadline_ms") {
            let ms = d.as_u64().ok_or_else(|| {
                ServeError::Proto("`deadline_ms` must be a non-negative integer".to_string())
            })?;
            opts.deadline = Some(Duration::from_millis(ms));
        }
        if let Some(g) = req.get("max_growth") {
            let factor = g.as_f64().filter(|f| *f > 0.0).ok_or_else(|| {
                ServeError::Proto("`max_growth` must be a positive number".to_string())
            })?;
            opts.max_growth = Some(factor);
        }
        match req.get("cache").map(|c| c.as_str()) {
            None => {}
            Some(Some("use")) => opts.use_cache = true,
            Some(Some("bypass")) => opts.use_cache = false,
            Some(_) => {
                return Err(ServeError::Proto(
                    "`cache` must be \"use\" or \"bypass\"".to_string(),
                ))
            }
        }
        opts.config()
            .ok_or_else(|| ServeError::Proto(format!("unknown preset `{}`", opts.preset)))?;
        Ok(opts)
    }

    /// The [`OptConfig`] these options denote; `None` for an unknown
    /// preset name.
    pub fn config(&self) -> Option<OptConfig> {
        let cfg = match self.preset.as_str() {
            "join-points" => OptConfig::join_points(),
            "baseline" => OptConfig::baseline(),
            "none" => OptConfig::none(),
            _ => return None,
        };
        let cfg = match self.deadline {
            Some(limit) => cfg.with_pass_deadline(limit),
            None => cfg,
        };
        Some(match self.max_growth {
            Some(factor) => cfg.with_max_growth(factor),
            None => cfg,
        })
    }
}

/// Key of the textual front cache: source hash, configuration
/// fingerprint, and mode bit. The entry stores the full source for an
/// exact-match check, so a 64-bit collision can never serve a wrong term.
type SourceKey = (u64, u64, bool);

/// One memoized `(source text, configuration)` compile.
struct SourceEntry {
    source: String,
    term: Arc<Expr>,
    report: Arc<PipelineReport>,
    data_env: Arc<DataEnv>,
    supply: NameSupply,
    /// Budget charge: source bytes plus an estimate of both terms.
    bytes: usize,
    /// LRU stamp (the server's source clock at the last hit or insert).
    stamp: u64,
}

/// One shard of the textual front cache: a byte-bounded LRU map.
#[derive(Default)]
struct SourceShard {
    map: std::collections::HashMap<SourceKey, SourceEntry>,
    /// Sum of `bytes` over resident entries; bounded by the per-shard
    /// slice of the budget.
    bytes: usize,
}

/// Per-node byte estimate when charging a source entry's retained terms
/// against the budget (mirrors the term cache's own accounting).
const SOURCE_NODE_BYTES: usize = 96;

/// Fixed overhead charged per source entry.
const SOURCE_ENTRY_OVERHEAD: usize = 256;

fn source_hash(source: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    source.hash(&mut h);
    h.finish()
}

/// The shared state behind one `fj serve` instance: the two cache layers
/// and request counters. All methods take `&self`; one
/// `Arc<ServerState>` is shared by every connection thread.
///
/// Caching is two-layered. The **textual front cache** keys on the exact
/// source bytes plus the configuration fingerprint: a byte-identical
/// recompile skips the *entire* frontend — no lexing, no parsing, no
/// lowering, no lint — and is genuinely a refcount bump. Behind it sits
/// the **content-addressed [`OptCache`]**, which keys on the
/// α-fingerprint of the *lowered term*: a program whose binders were
/// renamed or whose whitespace moved still re-parses, but runs zero
/// optimizer passes. Both layers serve α-equal terms by construction, so
/// either hit is reported as `"cache": "hit"` on the wire.
pub struct ServerState {
    cache: OptCache,
    sources: Vec<Mutex<SourceShard>>,
    /// Per-shard slice of the textual layer's byte budget.
    source_budget: usize,
    /// Monotonic LRU clock for the textual layer.
    source_clock: AtomicU64,
    source_hits: AtomicU64,
    requests: AtomicU64,
    started: Instant,
    shutdown: AtomicBool,
    config: ServeConfig,
    service: ServiceStats,
}

impl ServerState {
    /// A server whose [`OptCache`] spans `shards` shards under a
    /// `cache_bytes` byte budget (the textual front cache gets an equal
    /// budget of its own) and the default service geometry.
    pub fn new(shards: usize, cache_bytes: usize) -> ServerState {
        ServerState::with_config(shards, cache_bytes, ServeConfig::default())
    }

    /// A server with explicit cache geometry *and* service tuning
    /// (worker pool size, queue capacity, connection cap, frame limit,
    /// idle timeout, drain deadline).
    pub fn with_config(shards: usize, cache_bytes: usize, config: ServeConfig) -> ServerState {
        let shards = shards.max(1);
        ServerState {
            cache: OptCache::with_budget(shards, cache_bytes),
            sources: (0..shards)
                .map(|_| Mutex::new(SourceShard::default()))
                .collect(),
            source_budget: cache_bytes / shards,
            source_clock: AtomicU64::new(1),
            source_hits: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            config,
            service: ServiceStats::default(),
        }
    }

    /// A server with the default cache geometry.
    pub fn with_defaults() -> ServerState {
        ServerState::new(DEFAULT_SHARDS, DEFAULT_CACHE_BYTES)
    }

    /// Attach a persistent cache tier (e.g. a [`FileStore`]): probed on
    /// term-cache misses, written behind on every successful pipeline
    /// run, so a restarted server is warm from its first request.
    #[must_use]
    pub fn with_store(mut self, store: Arc<dyn CacheStore>) -> ServerState {
        self.cache = std::mem::take(&mut self.cache).with_store(store);
        self
    }

    /// The service tuning this server runs with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// A point-in-time copy of the service-layer counters (connections,
    /// admission, sheds, panics, disconnect reasons).
    pub fn service_snapshot(&self) -> ServiceSnapshot {
        self.service.snapshot()
    }

    pub(crate) fn service(&self) -> &ServiceStats {
        &self.service
    }

    /// Has a `shutdown` request been served?
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The shard lock for one source key, surviving poisoning: a
    /// panicking request handler (isolated by the crash-only worker
    /// pool) must degrade to an `internal` error for *that* request, not
    /// wedge every future cache lookup behind a poisoned mutex.
    fn lock_sources(&self, key: &SourceKey) -> MutexGuard<'_, SourceShard> {
        let mix = key.0.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(13)
            ^ key.1.rotate_left(29)
            ^ u64::from(key.2);
        self.sources[(mix as usize) % self.sources.len()]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Cache counters (hits, misses, evictions, occupancy) for the
    /// content-addressed term cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// How many requests were served by the textual front cache.
    pub fn source_hits(&self) -> u64 {
        self.source_hits.load(Ordering::Relaxed)
    }

    fn source_lookup(&self, key: SourceKey, source: &str) -> Option<Compiled> {
        let mut shard = self.lock_sources(&key);
        let entry = shard.map.get_mut(&key)?;
        // The hash key can collide; the stored text makes the hit exact.
        if entry.source != source {
            return None;
        }
        entry.stamp = self.source_clock.fetch_add(1, Ordering::Relaxed);
        Some(Compiled {
            term: Arc::clone(&entry.term),
            report: Arc::clone(&entry.report),
            cache: CacheDisposition::Hit,
            data_env: Arc::clone(&entry.data_env),
            supply: entry.supply.clone(),
        })
    }

    fn source_insert(&self, key: SourceKey, source: &str, compiled: &Compiled) {
        let cost = source.len()
            + (compiled.report.census_before.size + compiled.report.census_after.size)
                * SOURCE_NODE_BYTES
            + SOURCE_ENTRY_OVERHEAD;
        if cost > self.source_budget {
            return;
        }
        let mut shard = self.lock_sources(&key);
        // This insert only runs after a full compile, i.e. after
        // `source_lookup` declined — either the key is vacant or it holds
        // a *different* source that hashed onto it. Replacing (rather
        // than keeping the incumbent) means a collision can never starve
        // a program of caching: last writer wins.
        if let Some(old) = shard.map.remove(&key) {
            shard.bytes -= old.bytes;
        }
        // Byte-budgeted LRU, matching the term cache's policy.
        while shard.bytes + cost > self.source_budget && !shard.map.is_empty() {
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            {
                if let Some(e) = shard.map.remove(&oldest) {
                    shard.bytes -= e.bytes;
                }
            }
        }
        shard.bytes += cost;
        shard.map.insert(
            key,
            SourceEntry {
                source: source.to_string(),
                term: Arc::clone(&compiled.term),
                report: Arc::clone(&compiled.report),
                data_env: Arc::clone(&compiled.data_env),
                supply: compiled.supply.clone(),
                bytes: cost,
                stamp: self.source_clock.fetch_add(1, Ordering::Relaxed),
            },
        );
    }

    /// Occupancy of the textual front cache: `(entries, bytes)` summed
    /// over shards.
    pub fn source_occupancy(&self) -> (usize, usize) {
        self.sources
            .iter()
            .map(|s| {
                let s = s.lock().unwrap_or_else(PoisonError::into_inner);
                (s.map.len(), s.bytes)
            })
            .fold((0, 0), |(n, b), (n2, b2)| (n + n2, b + b2))
    }

    /// Frontend + optimizer for one source program, through both cache
    /// layers.
    ///
    /// This is the library face of the `compile` op: the differential
    /// suites call it directly so they can compare *terms*, not wire
    /// strings.
    ///
    /// # Errors
    ///
    /// [`ServeError`] mirroring the CLI's exit-code families; see the
    /// crate docs.
    pub fn compile_source(&self, source: &str, opts: &CompileOpts) -> Result<Compiled, ServeError> {
        let cfg = opts
            .config()
            .ok_or_else(|| ServeError::Proto(format!("unknown preset `{}`", opts.preset)))?;
        let src_key = cfg
            .fingerprint()
            .map(|cfg_fp| (source_hash(source), cfg_fp, opts.resilient));
        if opts.use_cache {
            if let Some(key) = src_key {
                if let Some(compiled) = self.source_lookup(key, source) {
                    self.source_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(compiled);
                }
            }
        }
        let mut lowered = fj_surface::compile(source).map_err(|e| match e {
            SurfaceError::Lex { .. } | SurfaceError::Parse { .. } => {
                ServeError::Parse(e.to_string())
            }
            SurfaceError::Lower { .. } => ServeError::Type(e.to_string()),
        })?;
        let (term, report, cache) = if opts.use_cache {
            // `optimize_cached` lints the input on every pipeline run and
            // skips the lint on α-verified hits.
            let (term, report, hit) = optimize_cached(
                &lowered.expr,
                &lowered.data_env,
                &mut lowered.supply,
                &cfg,
                opts.resilient,
                &self.cache,
            )
            .map_err(|e| opt_error(&e))?;
            let disposition = if hit {
                CacheDisposition::Hit
            } else {
                CacheDisposition::Miss
            };
            (term, report, disposition)
        } else {
            fj_check::lint(&lowered.expr, &lowered.data_env)
                .map_err(|e| ServeError::Type(format!("ill-typed input: {e}")))?;
            let run = if opts.resilient {
                optimize_resilient(&lowered.expr, &lowered.data_env, &mut lowered.supply, &cfg)
            } else {
                optimize_with_report(&lowered.expr, &lowered.data_env, &mut lowered.supply, &cfg)
            };
            let (out, report) = run.map_err(|e| opt_error(&e))?;
            (Arc::new(out), Arc::new(report), CacheDisposition::Bypass)
        };
        let compiled = Compiled {
            term,
            report,
            cache,
            data_env: Arc::new(lowered.data_env),
            supply: lowered.supply,
        };
        if opts.use_cache {
            if let Some(key) = src_key {
                self.source_insert(key, source, &compiled);
            }
        }
        Ok(compiled)
    }

    /// Handle one request line. Returns the response line (no trailing
    /// newline) and whether this request asked the server to shut down.
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let req = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                return (
                    error_response(&ServeError::Proto(format!("bad JSON: {e}"))),
                    false,
                )
            }
        };
        let op = req.get("op").and_then(Value::as_str).unwrap_or("");
        match op {
            "compile" => (self.op_compile(&req), false),
            "run" => (self.op_run(&req), false),
            "report" => (self.op_report(&req), false),
            "stats" => (self.op_stats(), false),
            "shutdown" => {
                self.shutdown.store(true, Ordering::SeqCst);
                (ok_response([("shutting_down", Value::Bool(true))]), true)
            }
            // Fault-injection ops for the chaos harness, dead unless the
            // server was built with `ServeConfig { chaos: true, .. }`:
            // a panic (exercises crash-only request isolation) and a
            // sleep (fills the worker pool deterministically so tests
            // can force the queue to shed).
            "__chaos_panic" if self.config.chaos => {
                panic!("chaos: injected request panic")
            }
            "__chaos_sleep" if self.config.chaos => {
                let ms = req
                    .get("ms")
                    .and_then(Value::as_u64)
                    .unwrap_or(100)
                    .min(5_000);
                std::thread::sleep(Duration::from_millis(ms));
                (ok_response([("slept_ms", Value::num(ms))]), false)
            }
            other => (
                error_response(&ServeError::Proto(if other.is_empty() {
                    "missing `op` field".to_string()
                } else {
                    format!("unknown op `{other}`")
                })),
                false,
            ),
        }
    }

    fn op_compile(&self, req: &Value) -> String {
        let opts = match CompileOpts::from_request(req) {
            Ok(o) => o,
            Err(e) => return error_response(&e),
        };
        if let Some(batch) = req.get("programs") {
            let Some(items) = batch.as_arr() else {
                return error_response(&ServeError::Proto(
                    "`programs` must be an array of strings".to_string(),
                ));
            };
            let mut sources = Vec::with_capacity(items.len());
            for item in items {
                match item.as_str() {
                    Some(s) => sources.push(s.to_string()),
                    None => {
                        return error_response(&ServeError::Proto(
                            "`programs` must be an array of strings".to_string(),
                        ))
                    }
                }
            }
            // The batch fans out over the same worker pool as
            // `optimize_many`; per-program failures stay per-program.
            let results: Vec<Value> =
                fj_core::par_map(sources, |src| match self.compile_source(&src, &opts) {
                    Ok(c) => {
                        let mut fields = vec![("ok".to_string(), Value::Bool(true))];
                        if let Value::Obj(rest) = compiled_json(&c) {
                            fields.extend(rest);
                        }
                        Value::Obj(fields)
                    }
                    Err(e) => {
                        let mut fields = vec![("ok".to_string(), Value::Bool(false))];
                        if let Value::Obj(rest) = e.to_json() {
                            fields.extend(rest);
                        }
                        Value::Obj(fields)
                    }
                });
            return Value::obj([("ok", Value::Bool(true)), ("results", Value::Arr(results))])
                .to_string();
        }
        let Some(source) = req.get("program").and_then(Value::as_str) else {
            return error_response(&ServeError::Proto(
                "missing `program` (or `programs`) field".to_string(),
            ));
        };
        match self.compile_source(source, &opts) {
            Ok(c) => {
                let mut fields = vec![("ok".to_string(), Value::Bool(true))];
                if let Value::Obj(rest) = compiled_json(&c) {
                    fields.extend(rest);
                }
                Value::Obj(fields).to_string()
            }
            Err(e) => error_response(&e),
        }
    }

    fn op_run(&self, req: &Value) -> String {
        let opts = match CompileOpts::from_request(req) {
            Ok(o) => o,
            Err(e) => return error_response(&e),
        };
        let Some(source) = req.get("program").and_then(Value::as_str) else {
            return error_response(&ServeError::Proto("missing `program` field".to_string()));
        };
        let backend = req
            .get("backend")
            .and_then(Value::as_str)
            .unwrap_or("machine");
        let mode = match req.get("mode").and_then(Value::as_str).unwrap_or("value") {
            "name" => EvalMode::CallByName,
            "need" => EvalMode::CallByNeed,
            "value" => EvalMode::CallByValue,
            other => return error_response(&ServeError::Proto(format!("unknown mode `{other}`"))),
        };
        let fuel = match req.get("fuel") {
            None => 100_000_000,
            Some(v) => match v.as_u64() {
                Some(n) => n,
                None => {
                    return error_response(&ServeError::Proto(
                        "`fuel` must be a non-negative integer".to_string(),
                    ))
                }
            },
        };
        let timeout = match req.get("timeout_ms") {
            None => None,
            Some(v) => match v.as_u64() {
                Some(ms) => Some(Duration::from_millis(ms)),
                None => {
                    return error_response(&ServeError::Proto(
                        "`timeout_ms` must be a non-negative integer".to_string(),
                    ))
                }
            },
        };
        let compiled = match self.compile_source(source, &opts) {
            Ok(c) => c,
            Err(e) => return error_response(&e),
        };
        let outcome: Result<Outcome, ServeError> = match backend {
            "machine" => {
                fj_eval::run_with_limits(&compiled.term, mode, fuel, timeout).map_err(|e| match e {
                    MachineError::OutOfFuel | MachineError::Timeout { .. } => {
                        ServeError::Budget(e.to_string())
                    }
                    other => ServeError::Runtime(other.to_string()),
                })
            }
            "vm" => {
                fj_vm::run_with_limits(&compiled.term, mode, fuel, timeout).map_err(|e| match e {
                    VmError::OutOfFuel | VmError::Timeout { .. } => {
                        ServeError::Budget(e.to_string())
                    }
                    other => ServeError::Runtime(other.to_string()),
                })
            }
            other => {
                return error_response(&ServeError::Proto(format!("unknown backend `{other}`")))
            }
        };
        match outcome {
            Ok(out) => ok_response([
                ("cache", Value::str(compiled.cache.as_str())),
                ("value", Value::str(out.value.to_string())),
                ("metrics", metrics_json(&out.metrics)),
                ("backend", Value::str(backend)),
            ]),
            Err(e) => error_response(&e),
        }
    }

    fn op_report(&self, req: &Value) -> String {
        let opts = match CompileOpts::from_request(req) {
            Ok(o) => o,
            Err(e) => return error_response(&e),
        };
        let Some(source) = req.get("program").and_then(Value::as_str) else {
            return error_response(&ServeError::Proto("missing `program` field".to_string()));
        };
        match self.compile_source(source, &opts) {
            Ok(c) => {
                let passes: Vec<Value> = c
                    .report
                    .passes
                    .iter()
                    .map(|p| {
                        Value::obj([
                            ("pass", Value::str(p.pass)),
                            ("applied", Value::Bool(p.outcome.is_applied())),
                            ("outcome", Value::str(p.outcome.to_string())),
                            ("rewrites", Value::num(p.rewrites.total())),
                            ("size_after", Value::num(p.census_after.size as u64)),
                            ("wall_ns", Value::num(p.wall.as_nanos() as u64)),
                        ])
                    })
                    .collect();
                ok_response([
                    ("cache", Value::str(c.cache.as_str())),
                    (
                        "size_before",
                        Value::num(c.report.census_before.size as u64),
                    ),
                    ("size_after", Value::num(c.report.census_after.size as u64)),
                    ("passes", Value::Arr(passes)),
                    (
                        "leaked_guard_workers",
                        Value::num(c.report.leaked_workers as u64),
                    ),
                ])
            }
            Err(e) => error_response(&e),
        }
    }

    fn op_stats(&self) -> String {
        let cache = self.cache.stats();
        let (source_entries, source_bytes) = self.source_occupancy();
        let sv = self.service.snapshot();
        ok_response([
            (
                "requests",
                Value::num(self.requests.load(Ordering::Relaxed)),
            ),
            (
                "cache",
                Value::obj([
                    ("hits", Value::num(cache.hits)),
                    ("source_hits", Value::num(self.source_hits())),
                    ("misses", Value::num(cache.misses)),
                    ("bypasses", Value::num(cache.bypasses)),
                    ("coalesced", Value::num(cache.coalesced)),
                    ("evictions", Value::num(cache.evictions)),
                    ("entries", Value::num(cache.entries as u64)),
                    ("bytes", Value::num(cache.bytes as u64)),
                    ("budget", Value::num(cache.budget as u64)),
                    ("shards", Value::num(cache.shards as u64)),
                    ("source_entries", Value::num(source_entries as u64)),
                    ("source_bytes", Value::num(source_bytes as u64)),
                ]),
            ),
            (
                "disk",
                Value::obj([
                    ("enabled", Value::Bool(self.cache.has_store())),
                    ("hits", Value::num(cache.disk_hits)),
                    ("misses", Value::num(cache.disk_misses)),
                    ("loads", Value::num(cache.disk_loads)),
                    ("writes", Value::num(cache.disk_writes)),
                    ("verify_failures", Value::num(cache.disk_verify_failures)),
                    ("write_failures", Value::num(cache.disk_write_failures)),
                ]),
            ),
            (
                "service",
                Value::obj([
                    ("workers", Value::num(self.config.workers as u64)),
                    ("queue_cap", Value::num(self.config.queue_cap as u64)),
                    ("max_conns", Value::num(self.config.max_conns as u64)),
                    ("max_line", Value::num(self.config.max_line as u64)),
                    ("conns_accepted", Value::num(sv.conns_accepted)),
                    ("conns_active", Value::num(sv.conns_active)),
                    ("conns_shed", Value::num(sv.conns_shed)),
                    ("accept_errors", Value::num(sv.accept_errors)),
                    ("received", Value::num(sv.received)),
                    ("completed", Value::num(sv.completed)),
                    ("failed", Value::num(sv.failed)),
                    ("shed", Value::num(sv.shed)),
                    ("panics", Value::num(sv.panics)),
                    (
                        "disconnects",
                        Value::obj([
                            ("clean", Value::num(sv.disc_clean)),
                            ("io", Value::num(sv.disc_io)),
                            ("timeout", Value::num(sv.disc_timeout)),
                            ("oversize", Value::num(sv.disc_oversize)),
                        ]),
                    ),
                    ("draining", Value::Bool(self.shutting_down())),
                ]),
            ),
            (
                "leaked_guard_workers",
                Value::num(leaked_guard_workers() as u64),
            ),
            (
                "uptime_ms",
                Value::num(self.started.elapsed().as_millis() as u64),
            ),
        ])
    }
}

fn ok_response(fields: impl IntoIterator<Item = (&'static str, Value)>) -> String {
    let mut all = vec![("ok", Value::Bool(true))];
    all.extend(fields);
    Value::obj(all).to_string()
}

fn error_response(e: &ServeError) -> String {
    let mut fields = vec![("ok".to_string(), Value::Bool(false))];
    if let Value::Obj(rest) = e.to_json() {
        fields.extend(rest);
    }
    Value::Obj(fields).to_string()
}

fn compiled_json(c: &Compiled) -> Value {
    let rolled_back = c.report.rolled_back().count();
    Value::obj([
        ("cache", Value::str(c.cache.as_str())),
        (
            "fingerprint",
            Value::str(format!("{:016x}", alpha_fingerprint(&c.term))),
        ),
        (
            "size_before",
            Value::num(c.report.census_before.size as u64),
        ),
        ("size_after", Value::num(c.report.census_after.size as u64)),
        ("passes", Value::num(c.report.passes.len() as u64)),
        ("rolled_back", Value::num(rolled_back as u64)),
        ("rewrites", Value::num(c.report.totals().total())),
        ("wall_us", Value::num(c.report.wall.as_micros() as u64)),
    ])
}

fn metrics_json(m: &Metrics) -> Value {
    Value::obj([
        ("steps", Value::num(m.steps)),
        ("let_allocs", Value::num(m.let_allocs)),
        ("arg_allocs", Value::num(m.arg_allocs)),
        ("con_allocs", Value::num(m.con_allocs)),
        ("jumps", Value::num(m.jumps)),
        ("max_stack", Value::num(m.max_stack as u64)),
    ])
}

/// One program's serve-bench measurement.
#[derive(Clone, Debug)]
pub struct ServeBenchRow {
    /// Program name.
    pub name: String,
    /// Suite name.
    pub suite: String,
    /// First compile: both layers miss, full frontend + pipeline.
    pub cold_ns: u128,
    /// α-hit: the text was perturbed (fresh comment), so the frontend
    /// re-runs but the term cache serves the passes (best of three).
    pub warm_ns: u128,
    /// Textual hit: byte-identical source, pure refcount bump (best of
    /// three).
    pub hot_ns: u128,
    /// Restart-warm: the first compile on a *fresh* server sharing the
    /// first server's cache directory — both memory layers cold, served
    /// by a verified disk hit (frontend + α-check + lint, zero passes).
    pub restart_ns: u128,
}

/// The `fj bench --phase serve` measurement: per-program cold (miss) vs
/// warm (term-cache hit) vs hot (source-cache hit) compile latency
/// through a live in-process [`ServerState`].
#[derive(Clone, Debug)]
pub struct ServeBench {
    /// Per-program rows, in input order.
    pub rows: Vec<ServeBenchRow>,
    /// Term-cache counters at the end of the run (first server).
    pub cache: CacheStats,
    /// Textual front-cache hits at the end of the run (first server).
    pub source_hits: u64,
    /// Counters of the restarted server: its `disk_hits` is the number
    /// of programs served warm from the persistent tier.
    pub restart_cache: CacheStats,
}

/// Measure cold/warm/hot/restart compile latency for
/// `(name, suite, source)` programs. Cold/warm/hot run through a fresh
/// *storeless* server so those rows measure exactly what they always
/// did (no write-behind fsync in the cold path); a second, untimed
/// server then populates a scratch cache directory, and a third fresh
/// server sharing that directory measures the restart-warm row.
/// Programs that fail to compile are skipped (the bench measures the
/// cache, not the frontend).
pub fn run_bench_serve(programs: &[(String, String, String)]) -> ServeBench {
    // A scratch persistent tier so the bench can measure a restart.
    let dir = std::env::temp_dir().join(format!("fj-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = FileStore::open(&dir).ok().map(Arc::new);
    let with_store = |mut state: ServerState| {
        if let Some(store) = &store {
            state = state.with_store(Arc::clone(store) as Arc<dyn CacheStore>);
        }
        state
    };
    let state = ServerState::with_defaults();
    let opts = CompileOpts::default();
    let mut rows = Vec::with_capacity(programs.len());
    let mut survivors = Vec::with_capacity(programs.len());
    for (name, suite, source) in programs {
        let cold_started = Instant::now();
        let cold = state.compile_source(source, &opts);
        let cold_ns = cold_started.elapsed().as_nanos();
        let Ok(cold) = cold else { continue };
        debug_assert_eq!(cold.cache, CacheDisposition::Miss);
        // Warm: a fresh trailing comment each time defeats the textual
        // layer but lowers to an α-equal term, so the term cache serves.
        let mut warm_ns = u128::MAX;
        for i in 0..3 {
            let perturbed = format!("{source}\n-- warm probe {i}\n");
            let warm_started = Instant::now();
            let warm = state.compile_source(&perturbed, &opts);
            warm_ns = warm_ns.min(warm_started.elapsed().as_nanos());
            debug_assert!(matches!(warm, Ok(ref c) if c.cache == CacheDisposition::Hit));
            drop(warm);
        }
        // Hot: byte-identical source, served by the textual layer.
        let mut hot_ns = u128::MAX;
        for _ in 0..3 {
            let hot_started = Instant::now();
            let hot = state.compile_source(source, &opts);
            hot_ns = hot_ns.min(hot_started.elapsed().as_nanos());
            debug_assert!(matches!(hot, Ok(ref c) if c.cache == CacheDisposition::Hit));
            drop(hot);
        }
        rows.push(ServeBenchRow {
            name: name.clone(),
            suite: suite.clone(),
            cold_ns,
            warm_ns,
            hot_ns,
            restart_ns: 0,
        });
        survivors.push(source.clone());
    }
    // Populate the persistent tier (untimed): a store-backed server
    // compiles every survivor cold, paying the write-behind here so the
    // timed rows above and below never include a disk write.
    let populate = with_store(ServerState::with_defaults());
    for source in &survivors {
        let _ = populate.compile_source(source, &opts);
    }
    // Restart: a fresh server, memory layers empty, same cache
    // directory. The first (and only timed) compile of each program must
    // be served by the persistent tier.
    let restarted = with_store(ServerState::with_defaults());
    for (row, source) in rows.iter_mut().zip(&survivors) {
        let started = Instant::now();
        let warm = restarted.compile_source(source, &opts);
        row.restart_ns = started.elapsed().as_nanos();
        debug_assert!(matches!(warm, Ok(ref c) if c.cache == CacheDisposition::Hit));
        drop(warm);
    }
    let bench = ServeBench {
        rows,
        cache: state.cache_stats(),
        source_hits: state.source_hits(),
        restart_cache: restarted.cache_stats(),
    };
    let _ = std::fs::remove_dir_all(&dir);
    bench
}

/// Render a [`ServeBench`] as the `BENCH_serve.json` snapshot
/// (hand-written JSON; the workspace takes no serialization dependency).
pub fn format_bench_serve_json(bench: &ServeBench) -> String {
    use std::fmt::Write;
    let ratio = |cold: u128, hot: u128| {
        if hot == 0 {
            f64::INFINITY
        } else {
            cold as f64 / hot as f64
        }
    };
    let mut out = String::new();
    writeln!(out, "{{").unwrap();
    writeln!(out, "  \"generated_by\": \"fj bench --phase serve\",").unwrap();
    writeln!(out, "  \"pipeline\": \"join_points\",").unwrap();
    writeln!(out, "  \"unit\": \"nanoseconds\",").unwrap();
    writeln!(out, "  \"programs\": [").unwrap();
    for (i, r) in bench.rows.iter().enumerate() {
        let comma = if i + 1 == bench.rows.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"name\": \"{}\", \"suite\": \"{}\", \"cold_ns\": {}, \"warm_ns\": {}, \
             \"hot_ns\": {}, \"restart_ns\": {}, \"warm_speedup\": {:.2}, \
             \"hot_speedup\": {:.2}, \"restart_speedup\": {:.2}}}{comma}",
            r.name,
            r.suite,
            r.cold_ns,
            r.warm_ns,
            r.hot_ns,
            r.restart_ns,
            ratio(r.cold_ns, r.warm_ns),
            ratio(r.cold_ns, r.hot_ns),
            ratio(r.cold_ns, r.restart_ns)
        )
        .unwrap();
    }
    writeln!(out, "  ],").unwrap();
    let cold_total: u128 = bench.rows.iter().map(|r| r.cold_ns).sum();
    let warm_total: u128 = bench.rows.iter().map(|r| r.warm_ns).sum();
    let hot_total: u128 = bench.rows.iter().map(|r| r.hot_ns).sum();
    let restart_total: u128 = bench.rows.iter().map(|r| r.restart_ns).sum();
    let hits = bench.cache.hits + bench.source_hits;
    let requests = hits + bench.cache.misses;
    let hit_rate = if requests == 0 {
        0.0
    } else {
        hits as f64 / requests as f64
    };
    writeln!(
        out,
        "  \"total\": {{\"cold_ns\": {}, \"warm_ns\": {}, \"hot_ns\": {}, \
         \"restart_ns\": {}, \"warm_speedup\": {:.2}, \"hit_speedup\": {:.2}, \
         \"restart_speedup\": {:.2}, \"requests\": {}, \
         \"term_hits\": {}, \"source_hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}},",
        cold_total,
        warm_total,
        hot_total,
        restart_total,
        ratio(cold_total, warm_total),
        ratio(cold_total, hot_total),
        ratio(cold_total, restart_total),
        requests,
        bench.cache.hits,
        bench.source_hits,
        bench.cache.misses,
        hit_rate
    )
    .unwrap();
    let disk = &bench.restart_cache;
    writeln!(
        out,
        "  \"restart\": {{\"disk_hits\": {}, \"disk_loads\": {}, \"disk_misses\": {}, \
         \"disk_verify_failures\": {}, \"pipeline_misses\": {}}}",
        disk.disk_hits, disk.disk_loads, disk.disk_misses, disk.disk_verify_failures, disk.misses
    )
    .unwrap();
    writeln!(out, "}}").unwrap();
    out
}

/// One connection-count stage of the `serve-load` bench.
#[derive(Clone, Debug)]
pub struct LoadRow {
    /// Concurrent client connections in this stage.
    pub conns: usize,
    /// Requests sent across all connections.
    pub requests: u64,
    /// Requests answered `ok: true`.
    pub completed: u64,
    /// Requests shed with `overloaded`.
    pub shed: u64,
    /// Requests answered with any other error (should be zero: the load
    /// generator only sends well-formed compiles).
    pub failed: u64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 90th-percentile request latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Completed requests per second of client wall time.
    pub throughput_rps: f64,
}

/// The `fj bench --phase serve-load` measurement: latency percentiles
/// and shed rate vs concurrent connection count, against a live TCP
/// server with the default pool geometry.
#[derive(Clone, Debug)]
pub struct LoadBench {
    /// One row per connection count, ascending.
    pub rows: Vec<LoadRow>,
    /// Worker-pool size the server ran with.
    pub workers: usize,
    /// Request-queue capacity the server ran with.
    pub queue_cap: usize,
    /// Requests sent per connection per stage.
    pub per_conn: usize,
}

fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drive a live server with `conns` concurrent clients, each sending
/// `per_conn` compile requests round-robin over `programs`. Each stage
/// starts a fresh server (pre-warmed so every request is a cache hit:
/// the bench measures the *service*, not the optimizer).
///
/// # Errors
///
/// Propagates socket-setup errors; per-request failures are counted,
/// not raised.
pub fn run_bench_serve_load(
    programs: &[(String, String, String)],
    conn_counts: &[usize],
    per_conn: usize,
) -> std::io::Result<LoadBench> {
    let cfg = ServeConfig::default();
    let mut rows = Vec::with_capacity(conn_counts.len());
    for &conns in conn_counts {
        let state = Arc::new(ServerState::with_config(
            DEFAULT_SHARDS,
            DEFAULT_CACHE_BYTES,
            cfg.clone(),
        ));
        // Pre-warm both cache layers so stage latency is service latency.
        let opts = CompileOpts::default();
        for (_, _, source) in programs {
            let _ = state.compile_source(source, &opts);
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let server = std::thread::spawn({
            let state = Arc::clone(&state);
            move || serve(listener, state)
        });

        let started = Instant::now();
        let mut clients = Vec::with_capacity(conns);
        for c in 0..conns {
            let programs = programs.to_vec();
            clients.push(std::thread::spawn(move || -> std::io::Result<_> {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                let mut reader = BufReader::new(stream.try_clone()?);
                let mut writer = stream;
                let mut latencies = Vec::with_capacity(per_conn);
                let (mut completed, mut shed, mut failed) = (0u64, 0u64, 0u64);
                for i in 0..per_conn {
                    let (_, _, source) = &programs[(c + i) % programs.len()];
                    let mut req = Value::obj([
                        ("op", Value::str("compile")),
                        ("program", Value::str(source.as_str())),
                    ])
                    .to_string();
                    req.push('\n');
                    let sent = Instant::now();
                    writer.write_all(req.as_bytes())?;
                    writer.flush()?;
                    let mut resp = String::new();
                    reader.read_line(&mut resp)?;
                    latencies.push(sent.elapsed().as_micros() as u64);
                    if resp.starts_with("{\"ok\": true") {
                        completed += 1;
                    } else if resp.contains("\"tag\": \"overloaded\"") {
                        shed += 1;
                    } else {
                        failed += 1;
                    }
                }
                Ok((latencies, completed, shed, failed))
            }));
        }
        let mut latencies = Vec::with_capacity(conns * per_conn);
        let (mut completed, mut shed, mut failed) = (0u64, 0u64, 0u64);
        for client in clients {
            let (lat, c, s, f) = client.join().expect("load client panicked")?;
            latencies.extend(lat);
            completed += c;
            shed += s;
            failed += f;
        }
        let elapsed = started.elapsed();

        // Tear the stage's server down cleanly before the next stage.
        if let Ok(ctl) = TcpStream::connect(addr) {
            let mut reader = BufReader::new(ctl.try_clone()?);
            let mut ctl = ctl;
            let _ = ctl.write_all(b"{\"op\": \"shutdown\"}\n");
            let mut bye = String::new();
            let _ = reader.read_line(&mut bye);
        }
        let _ = server.join();

        latencies.sort_unstable();
        let requests = (conns * per_conn) as u64;
        rows.push(LoadRow {
            conns,
            requests,
            completed,
            shed,
            failed,
            p50_us: percentile_us(&latencies, 0.50),
            p90_us: percentile_us(&latencies, 0.90),
            p99_us: percentile_us(&latencies, 0.99),
            throughput_rps: if elapsed.as_secs_f64() > 0.0 {
                completed as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
        });
    }
    Ok(LoadBench {
        rows,
        workers: cfg.workers,
        queue_cap: cfg.queue_cap,
        per_conn,
    })
}

/// Render a [`LoadBench`] as the `BENCH_serve_load.json` snapshot.
pub fn format_bench_serve_load_json(bench: &LoadBench) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "{{").unwrap();
    writeln!(out, "  \"generated_by\": \"fj bench --phase serve-load\",").unwrap();
    writeln!(out, "  \"unit\": \"microseconds\",").unwrap();
    writeln!(out, "  \"workers\": {},", bench.workers).unwrap();
    writeln!(out, "  \"queue_cap\": {},", bench.queue_cap).unwrap();
    writeln!(out, "  \"requests_per_conn\": {},", bench.per_conn).unwrap();
    writeln!(out, "  \"rows\": [").unwrap();
    for (i, r) in bench.rows.iter().enumerate() {
        let comma = if i + 1 == bench.rows.len() { "" } else { "," };
        let shed_rate = if r.requests == 0 {
            0.0
        } else {
            r.shed as f64 / r.requests as f64
        };
        writeln!(
            out,
            "    {{\"conns\": {}, \"requests\": {}, \"completed\": {}, \"shed\": {}, \
             \"failed\": {}, \"shed_rate\": {:.4}, \"p50_us\": {}, \"p90_us\": {}, \
             \"p99_us\": {}, \"throughput_rps\": {:.1}}}{comma}",
            r.conns,
            r.requests,
            r.completed,
            r.shed,
            r.failed,
            shed_rate,
            r.p50_us,
            r.p90_us,
            r.p99_us,
            r.throughput_rps
        )
        .unwrap();
    }
    writeln!(out, "  ],").unwrap();
    let requests: u64 = bench.rows.iter().map(|r| r.requests).sum();
    let completed: u64 = bench.rows.iter().map(|r| r.completed).sum();
    let shed: u64 = bench.rows.iter().map(|r| r.shed).sum();
    let failed: u64 = bench.rows.iter().map(|r| r.failed).sum();
    writeln!(
        out,
        "  \"total\": {{\"requests\": {requests}, \"completed\": {completed}, \
         \"shed\": {shed}, \"failed\": {failed}}}"
    )
    .unwrap();
    writeln!(out, "}}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = "\
def main : Int =
  letrec go : Int -> Int = \\(n : Int) -> if n <= 0 then 0 else go (n - 1)
  in go 5;
";

    /// A compile request line for `PROGRAM` with the given extras.
    fn compile_req(extra: &[(&'static str, Value)]) -> String {
        let mut fields = vec![
            ("op", Value::str("compile")),
            ("program", Value::str(PROGRAM)),
        ];
        fields.extend(extra.iter().cloned());
        Value::obj(fields).to_string()
    }

    #[test]
    fn second_compile_hits() {
        let state = ServerState::with_defaults();
        let (first, _) = state.handle_line(&compile_req(&[]));
        // Byte-identical resubmission: served by the textual front cache.
        let (second, _) = state.handle_line(&compile_req(&[]));
        assert!(first.contains("\"cache\": \"miss\""), "{first}");
        assert!(second.contains("\"cache\": \"hit\""), "{second}");
        // Perturbed text, α-equal term: served by the term cache.
        let renamed = "\
def main : Int =
  letrec walk : Int -> Int = \\(k : Int) -> if k <= 0 then 0 else walk (k - 1)
  in walk 5;
";
        let third_req = Value::obj([
            ("op", Value::str("compile")),
            ("program", Value::str(renamed)),
        ])
        .to_string();
        let (third, _) = state.handle_line(&third_req);
        assert!(third.contains("\"cache\": \"hit\""), "{third}");
        let first = json::parse(&first).unwrap();
        let second = json::parse(&second).unwrap();
        let third = json::parse(&third).unwrap();
        assert_eq!(first.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(
            first.get("fingerprint").and_then(Value::as_str),
            second.get("fingerprint").and_then(Value::as_str),
            "textual hit must return the same optimized term"
        );
        assert_eq!(
            first.get("fingerprint").and_then(Value::as_str),
            third.get("fingerprint").and_then(Value::as_str),
            "α-hit must return the same optimized term"
        );
        let (stats, _) = state.handle_line(r#"{"op": "stats"}"#);
        let stats = json::parse(&stats).unwrap();
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Value::as_u64), Some(1));
        assert_eq!(cache.get("source_hits").and_then(Value::as_u64), Some(1));
        assert_eq!(cache.get("misses").and_then(Value::as_u64), Some(1));
        assert_eq!(stats.get("requests").and_then(Value::as_u64), Some(4));
    }

    #[test]
    fn cache_bypass_never_hits() {
        let state = ServerState::with_defaults();
        for _ in 0..2 {
            let (resp, _) = state.handle_line(&compile_req(&[("cache", Value::str("bypass"))]));
            assert!(resp.contains("\"cache\": \"bypass\""), "{resp}");
        }
        assert_eq!(state.cache_stats().entries, 0);
    }

    #[test]
    fn error_tags_mirror_cli_exit_codes() {
        let state = ServerState::with_defaults();
        let cases: Vec<(String, &str, u64)> = vec![
            ("{not json".to_string(), "proto", 2),
            (r#"{"op": "mystery"}"#.to_string(), "proto", 2),
            (r#"{"op": "compile"}"#.to_string(), "proto", 2),
            (
                Value::obj([
                    ("op", Value::str("compile")),
                    ("program", Value::str("def main : Int = (;")),
                ])
                .to_string(),
                "parse",
                2,
            ),
            (
                Value::obj([
                    ("op", Value::str("compile")),
                    ("program", Value::str("def main : Int = nonexistent;")),
                ])
                .to_string(),
                "type",
                3,
            ),
            (
                Value::obj([
                    ("op", Value::str("run")),
                    ("program", Value::str(PROGRAM)),
                    ("fuel", Value::num(1)),
                ])
                .to_string(),
                "budget",
                5,
            ),
        ];
        for (line, tag, code) in cases {
            let (resp, _) = state.handle_line(&line);
            let v = json::parse(&resp).unwrap();
            assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{resp}");
            let err = v.get("error").expect("error object");
            assert_eq!(err.get("tag").and_then(Value::as_str), Some(tag), "{resp}");
            assert_eq!(
                err.get("code").and_then(Value::as_u64),
                Some(code),
                "{resp}"
            );
        }
    }

    /// The adversarial bands on the wire. One step inside the parser's
    /// depth limit compiles; one step outside is a clean `parse`/2. A
    /// strict compile that blows the per-pass growth budget is
    /// `optimizer`/4 — the optimizer refused the term, matching the
    /// CLI's exit code — while a generous budget compiles the same
    /// program, and a malformed budget is rejected at the protocol.
    #[test]
    fn adversarial_bands_fail_cleanly_on_the_served_route() {
        let state = ServerState::with_defaults();
        let compile = |extra: &[(&'static str, Value)]| {
            let (resp, _) = state.handle_line(&compile_req(extra));
            json::parse(&resp).unwrap()
        };

        // Parser depth: each paren pair descends two grammar levels.
        let deep = |pairs: usize| {
            format!(
                "def main : Int = {}1{};",
                "(".repeat(pairs),
                ")".repeat(pairs)
            )
        };
        let limit_pairs = fj_surface::MAX_NESTING_DEPTH / 2;
        let inside = compile(&[("program", Value::str(deep(limit_pairs - 1)))]);
        assert_eq!(inside.get("ok").and_then(Value::as_bool), Some(true));
        let outside = compile(&[("program", Value::str(deep(limit_pairs)))]);
        let err = outside.get("error").expect("error object");
        assert_eq!(err.get("tag").and_then(Value::as_str), Some("parse"));
        assert_eq!(err.get("code").and_then(Value::as_u64), Some(2));
        assert!(
            err.get("message")
                .and_then(Value::as_str)
                .is_some_and(|m| m.contains("nesting exceeds depth limit")),
            "{outside}"
        );

        // Growth budget: a large non-foldable loop body keeps its size
        // through contification, so a factor below 1 must trip.
        let terms: Vec<String> = (1..120).map(|i| format!("n * {i}")).collect();
        let big = format!(
            "def main : Int =\n  letrec loop : Int -> Int -> Int =\n    \
             \\(n : Int) (acc : Int) ->\n      \
             if n <= 0 then acc else loop (n - 1) (acc + {})\n  in loop 10 0;",
            terms.join(" + ")
        );
        let tripped = compile(&[
            ("program", Value::str(big.clone())),
            ("max_growth", Value::Num(0.5)),
        ]);
        let err = tripped.get("error").expect("error object");
        assert_eq!(err.get("tag").and_then(Value::as_str), Some("optimizer"));
        assert_eq!(err.get("code").and_then(Value::as_u64), Some(4));
        assert!(
            err.get("message")
                .and_then(Value::as_str)
                .is_some_and(|m| m.contains("growth budget")),
            "{tripped}"
        );
        let generous = compile(&[
            ("program", Value::str(big)),
            ("max_growth", Value::Num(100.0)),
        ]);
        assert_eq!(
            generous.get("ok").and_then(Value::as_bool),
            Some(true),
            "{generous}"
        );

        let malformed = compile(&[("max_growth", Value::Num(-1.0))]);
        let err = malformed.get("error").expect("error object");
        assert_eq!(err.get("tag").and_then(Value::as_str), Some("proto"));
        assert_eq!(err.get("code").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn run_op_executes_on_both_backends() {
        let state = ServerState::with_defaults();
        for backend in ["machine", "vm"] {
            let req = Value::obj([
                ("op", Value::str("run")),
                ("program", Value::str(PROGRAM)),
                ("backend", Value::str(backend)),
            ])
            .to_string();
            let (resp, _) = state.handle_line(&req);
            let v = json::parse(&resp).unwrap();
            assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{resp}");
            assert_eq!(v.get("value").and_then(Value::as_str), Some("0"), "{resp}");
            assert!(v.get("metrics").and_then(|m| m.get("steps")).is_some());
        }
    }

    #[test]
    fn batch_compile_fans_out_and_keeps_order() {
        let state = ServerState::with_defaults();
        let programs: Vec<Value> = (0..6)
            .map(|i| Value::str(format!("def main : Int = {i} + {i};")))
            .chain([Value::str("def main : Int = (;")])
            .collect();
        let req = Value::obj([
            ("op", Value::str("compile")),
            ("programs", Value::Arr(programs)),
        ])
        .to_string();
        let (resp, _) = state.handle_line(&req);
        let v = json::parse(&resp).unwrap();
        let results = v.get("results").and_then(Value::as_arr).unwrap();
        assert_eq!(results.len(), 7);
        for r in &results[..6] {
            assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true), "{r}");
        }
        assert_eq!(
            results[6]
                .get("error")
                .and_then(|e| e.get("tag"))
                .and_then(Value::as_str),
            Some("parse")
        );
    }

    #[test]
    fn report_op_lists_passes() {
        let state = ServerState::with_defaults();
        let req = Value::obj([
            ("op", Value::str("report")),
            ("program", Value::str(PROGRAM)),
        ])
        .to_string();
        let (resp, _) = state.handle_line(&req);
        let v = json::parse(&resp).unwrap();
        let passes = v.get("passes").and_then(Value::as_arr).unwrap();
        assert!(!passes.is_empty());
        assert!(passes
            .iter()
            .all(|p| p.get("applied").and_then(Value::as_bool) == Some(true)));
    }

    #[test]
    fn live_tcp_round_trip_and_shutdown() {
        use std::io::{BufRead, BufReader, Write};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let state = Arc::new(ServerState::with_defaults());
        let server = std::thread::spawn({
            let state = Arc::clone(&state);
            move || serve(listener, state)
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut send = |line: &str| {
            writeln!(writer, "{line}").unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            resp
        };
        let first = send(&compile_req(&[]));
        assert!(first.contains("\"cache\": \"miss\""), "{first}");
        let second = send(&compile_req(&[]));
        assert!(second.contains("\"cache\": \"hit\""), "{second}");
        let bye = send(r#"{"op": "shutdown"}"#);
        assert!(bye.contains("\"shutting_down\": true"), "{bye}");
        server.join().unwrap().unwrap();
        assert!(state.shutting_down());
    }

    #[test]
    fn bench_serve_shows_hit_speedup() {
        let programs = vec![(
            "count".to_string(),
            "spectral".to_string(),
            PROGRAM.to_string(),
        )];
        let bench = run_bench_serve(&programs);
        assert_eq!(bench.rows.len(), 1);
        assert_eq!(bench.cache.misses, 1);
        assert_eq!(bench.cache.hits, 3, "three warm probes must α-hit");
        assert_eq!(bench.source_hits, 3, "three hot repeats must text-hit");
        // The restarted server never ran a pipeline: every program was
        // served warm from the persistent tier.
        assert_eq!(
            bench.restart_cache.disk_hits, 1,
            "{:?}",
            bench.restart_cache
        );
        assert_eq!(bench.restart_cache.misses, 0, "{:?}", bench.restart_cache);
        assert!(bench.rows[0].restart_ns > 0);
        let json_text = format_bench_serve_json(&bench);
        for key in [
            "generated_by",
            "cold_ns",
            "warm_ns",
            "hot_ns",
            "restart_ns",
            "hit_speedup",
            "restart_speedup",
            "hit_rate",
            "\"term_hits\": 3",
            "\"source_hits\": 3",
            "\"disk_hits\": 1",
            "\"pipeline_misses\": 0",
        ] {
            assert!(json_text.contains(key), "missing {key} in {json_text}");
        }
    }

    #[test]
    fn colliding_source_keys_replace_instead_of_starving() {
        // Regression: `source_insert` used to keep the incumbent on a
        // key collision, so the colliding program could never be cached.
        // Drive the private API with a fabricated shared key.
        let state = ServerState::with_defaults();
        let opts = CompileOpts::default();
        let src_a = "def main : Int = 1 + 1;";
        let src_b = "def main : Int = 2 + 2;";
        let a = state.compile_source(src_a, &opts).unwrap();
        let b = state.compile_source(src_b, &opts).unwrap();
        let key: SourceKey = (42, 42, false);
        state.source_insert(key, src_a, &a);
        // The collision is detected (exact text mismatch), not served:
        assert!(state.source_lookup(key, src_b).is_none());
        // ...and the colliding insert replaces, so B becomes cacheable:
        state.source_insert(key, src_b, &b);
        let got = state.source_lookup(key, src_b).expect("B must be resident");
        assert!(
            fj_ast::alpha_eq(&got.term, &b.term),
            "replaced entry must serve B's term, not A's"
        );
        assert!(state.source_lookup(key, src_a).is_none());
    }

    #[test]
    fn source_cache_is_byte_bounded_and_lru() {
        // A budget sized for a couple of entries on one shard.
        let state = ServerState::new(1, 8_192);
        let opts = CompileOpts::default();
        let hot = "def main : Int = 7 * 6;";
        assert_eq!(
            state.compile_source(hot, &opts).unwrap().cache,
            CacheDisposition::Miss
        );
        for i in 0..12 {
            let cold = format!("def main : Int = {i} + {i} * {i};");
            let _ = state.compile_source(&cold, &opts).unwrap();
            // Re-touch the hot program between every cold insert.
            assert_eq!(
                state.compile_source(hot, &opts).unwrap().cache,
                CacheDisposition::Hit,
                "round {i}: LRU must keep the repeatedly-hit source"
            );
            let (_, bytes) = state.source_occupancy();
            assert!(bytes <= 8_192, "source budget exceeded: {bytes}");
        }
        let (entries, _) = state.source_occupancy();
        assert!(entries < 13, "churn must have evicted cold sources");
    }
}
