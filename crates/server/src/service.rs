//! The service execution model under `fj serve`: a bounded worker pool
//! with admission control, hostile-input framing, crash-only request
//! handling, and a graceful drain.
//!
//! ## Execution model
//!
//! ```text
//!             ┌─ reader thread per admitted connection (≤ max_conns) ─┐
//! accept ───> │ FrameReader: max-line enforced *while reading*,       │
//!  loop       │ idle timeout, lossy UTF-8 — hostile bytes become      │
//! (nonblock,  │ in-protocol `proto` errors or counted disconnects     │
//!  backoff)   └──────────────┬────────────────────────────────────────┘
//!                            │ try_push          (full ⇒ shed with
//!                   ┌────────▼─────────┐          `overloaded` + retry
//!                   │  BoundedQueue    │          hint; never queued
//!                   └────────┬─────────┘          without limit)
//!             ┌──────────────▼───────────────┐
//!             │ fixed pool of `workers`      │  catch_unwind per request:
//!             │ threads: handle_line +       │  a handler panic is an
//!             │ catch_unwind                 │  `internal` error response,
//!             └──────────────────────────────┘  the daemon survives
//! ```
//!
//! Admission control is two-level: a **connection cap** (`max_conns`)
//! sheds whole connections at accept time, and the **bounded request
//! queue** sheds individual requests when every worker is busy and the
//! queue is full. Both sheds answer in-protocol with an `overloaded`
//! error carrying a `retry_after_ms` hint, so a well-behaved client can
//! back off instead of seeing a silent close.
//!
//! Shutdown is a **drain**: the accept loop stops admitting, readers
//! stop pulling new frames, queued requests finish, and
//! [`serve`] returns once everything is idle or the `drain` deadline
//! passes — whichever comes first. A worker stuck past the deadline is
//! abandoned (crash-only exit), never waited on forever.

use crate::{error_response, ServeError, ServerState};
use fj_core::{panic_message, quiet_panics, BoundedQueue};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How often the nonblocking accept loop re-checks for connections and
/// the shutdown flag. This replaces the old self-connect "poke": a
/// `shutdown` request can never hang waiting for a wake-up connection
/// that might itself be shed.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Upper bound on the accept-error backoff sleep.
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_millis(500);

/// How often drain progress is re-checked during shutdown.
const DRAIN_POLL: Duration = Duration::from_millis(5);

/// Per-read poll quantum for connection reads; idle time accumulates in
/// these steps until the configured idle timeout trips.
const READ_POLL: Duration = Duration::from_millis(25);

/// Tuning knobs for the serving layer (the caches are configured
/// separately, on [`ServerState::new`]). Stored inside the
/// [`ServerState`] so `serve` and the `stats` op see the same values.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Fixed size of the request worker pool.
    pub workers: usize,
    /// Bounded request-queue capacity; a full queue sheds.
    pub queue_cap: usize,
    /// Maximum concurrently admitted connections; excess is shed.
    pub max_conns: usize,
    /// Maximum request-frame length in bytes, enforced *while reading*.
    pub max_line: usize,
    /// Disconnect a connection that produces no complete frame for this
    /// long (slow-loris defense).
    pub idle_timeout: Duration,
    /// How long `shutdown` waits for in-flight work before exiting.
    pub drain: Duration,
    /// Honor the `__chaos_panic` / `__chaos_sleep` fault-injection ops
    /// (test harnesses only; off by default).
    pub chaos: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .clamp(1, 16);
        ServeConfig {
            workers,
            queue_cap: workers * 8,
            max_conns: 256,
            max_line: 1 << 20,
            idle_timeout: Duration::from_secs(10),
            drain: Duration::from_secs(2),
            chaos: false,
        }
    }
}

/// Why a connection ended, counted in [`ServiceStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Disconnect {
    /// EOF, shutdown drain, or post-`shutdown` close.
    Clean,
    /// A transport error mid-connection (previously discarded silently).
    Io,
    /// The idle timeout tripped: a slow-loris client was cut off.
    Timeout,
    /// A frame exceeded `max_line` and the connection was closed.
    Oversize,
}

/// Service-layer counters. All request-level counters reconcile:
/// `received == completed + failed + shed` once the queue is idle.
#[derive(Default)]
pub(crate) struct ServiceStats {
    pub(crate) conns_accepted: AtomicU64,
    pub(crate) conns_shed: AtomicU64,
    pub(crate) conns_active: AtomicU64,
    pub(crate) accept_errors: AtomicU64,
    pub(crate) received: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) panics: AtomicU64,
    pub(crate) disc_clean: AtomicU64,
    pub(crate) disc_io: AtomicU64,
    pub(crate) disc_timeout: AtomicU64,
    pub(crate) disc_oversize: AtomicU64,
}

/// A point-in-time copy of the service counters, for tests and the
/// `stats` op.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceSnapshot {
    /// Connections accepted by the listener (admitted + shed).
    pub conns_accepted: u64,
    /// Connections shed at the connection cap.
    pub conns_shed: u64,
    /// Connections currently admitted (gauge).
    pub conns_active: u64,
    /// Transient accept-loop errors (EMFILE and friends), backed off.
    pub accept_errors: u64,
    /// Non-empty request frames received from admitted connections.
    pub received: u64,
    /// Requests answered with `ok: true`.
    pub completed: u64,
    /// Requests answered with an in-protocol error (parse, type, …,
    /// including `internal` panic responses).
    pub failed: u64,
    /// Requests shed with `overloaded` because the queue was full.
    pub shed: u64,
    /// Request handlers that panicked (each also counts as `failed`).
    pub panics: u64,
    /// Connections that ended cleanly (EOF, shutdown drain).
    pub disc_clean: u64,
    /// Connections that ended on a transport error.
    pub disc_io: u64,
    /// Connections cut off by the idle timeout.
    pub disc_timeout: u64,
    /// Connections closed for an oversized frame.
    pub disc_oversize: u64,
}

impl ServiceStats {
    pub(crate) fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_shed: self.conns_shed.load(Ordering::Relaxed),
            conns_active: self.conns_active.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            received: self.received.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            disc_clean: self.disc_clean.load(Ordering::Relaxed),
            disc_io: self.disc_io.load(Ordering::Relaxed),
            disc_timeout: self.disc_timeout.load(Ordering::Relaxed),
            disc_oversize: self.disc_oversize.load(Ordering::Relaxed),
        }
    }
}

/// One request in flight between a reader and the worker pool.
struct Job {
    line: String,
    reply: mpsc::SyncSender<(String, bool)>,
}

/// The backoff sleep after `consecutive` accept errors in a row:
/// exponential from 1ms, capped at [`ACCEPT_BACKOFF_CAP`]. Transient
/// resource exhaustion (EMFILE/ENFILE) degrades into slow accepting
/// instead of a hot spin that starves the very connections whose close
/// would free descriptors.
pub fn accept_backoff(consecutive: u32) -> Duration {
    let shift = consecutive.saturating_sub(1).min(16);
    Duration::from_millis(1u64 << shift).min(ACCEPT_BACKOFF_CAP)
}

/// The `retry_after_ms` hint attached to shed responses: proportional to
/// the queue depth per worker, clamped to a sane band.
fn retry_hint_ms(queue_len: usize, workers: usize) -> u64 {
    let per_worker = queue_len as u64 / workers.max(1) as u64;
    per_worker
        .saturating_add(1)
        .saturating_mul(10)
        .clamp(10, 2_000)
}

/// Serve requests on `listener` until a `shutdown` op arrives, then
/// drain and return. The execution model is the bounded pool described
/// in the module docs; all tuning comes from the state's
/// [`ServeConfig`]. Blocks the calling thread.
///
/// # Errors
///
/// Propagates listener-level setup errors (nonblocking mode, local
/// address). Per-connection errors never escape: they are counted in
/// the service stats and end only that connection.
pub fn serve(listener: TcpListener, state: Arc<ServerState>) -> std::io::Result<()> {
    let cfg = state.config().clone();
    listener.set_nonblocking(true)?;
    let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(cfg.queue_cap));
    let live_workers = Arc::new(AtomicU64::new(cfg.workers as u64));
    for _ in 0..cfg.workers {
        let q = Arc::clone(&queue);
        let st = Arc::clone(&state);
        let live = Arc::clone(&live_workers);
        std::thread::spawn(move || {
            worker_loop(&q, &st);
            live.fetch_sub(1, Ordering::SeqCst);
        });
    }

    let mut consecutive_errors = 0u32;
    while !state.shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => {
                consecutive_errors = 0;
                // One-line request/response traffic is latency-bound:
                // without this, Nagle + delayed ACK add ~40ms per turn.
                let _ = stream.set_nodelay(true);
                let sv = state.service();
                sv.conns_accepted.fetch_add(1, Ordering::Relaxed);
                if sv.conns_active.load(Ordering::Relaxed) >= cfg.max_conns as u64 {
                    // Over the connection cap: shed in-protocol, close.
                    sv.conns_shed.fetch_add(1, Ordering::Relaxed);
                    shed_connection(stream, &queue, &cfg);
                    continue;
                }
                sv.conns_active.fetch_add(1, Ordering::Relaxed);
                let st = Arc::clone(&state);
                let q = Arc::clone(&queue);
                std::thread::spawn(move || {
                    handle_connection(stream, &st, &q);
                    st.service().conns_active.fetch_sub(1, Ordering::Relaxed);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                consecutive_errors = 0;
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                state
                    .service()
                    .accept_errors
                    .fetch_add(1, Ordering::Relaxed);
                consecutive_errors = consecutive_errors.saturating_add(1);
                std::thread::sleep(accept_backoff(consecutive_errors));
            }
        }
    }

    // Graceful drain: stop accepting (listener drops here), let admitted
    // connections notice the flag and queued requests finish, then close
    // the queue so idle workers exit. Past the deadline, anything still
    // running is abandoned rather than waited on.
    drop(listener);
    let deadline = Instant::now() + cfg.drain;
    while Instant::now() < deadline {
        let idle = state.service().conns_active.load(Ordering::Relaxed) == 0 && queue.is_empty();
        if idle {
            break;
        }
        std::thread::sleep(DRAIN_POLL);
    }
    queue.close();
    while live_workers.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(DRAIN_POLL);
    }
    Ok(())
}

/// Answer a connection shed at the connection cap with a single
/// `overloaded` line, then close it.
fn shed_connection(stream: TcpStream, queue: &BoundedQueue<Job>, cfg: &ServeConfig) {
    let hint = retry_hint_ms(queue.len(), cfg.workers);
    let e = ServeError::overloaded("connection shed: server at its connection cap", hint);
    let mut stream = stream;
    let _ = write_line(&mut stream, &error_response(&e));
}

/// Pull jobs until the queue closes and drains. Each request runs under
/// `catch_unwind`: a panic becomes a structured `internal` error
/// response and a counter bump — the worker, the connection, and the
/// daemon all survive (crash-only requests).
fn worker_loop(queue: &BoundedQueue<Job>, state: &ServerState) {
    while let Some(job) = queue.pop() {
        let run = || catch_unwind(AssertUnwindSafe(|| state.handle_line(&job.line)));
        // Chaos harnesses inject panics on purpose; keep their reports
        // off stderr. Real deployments keep the default hook and log.
        let outcome = if state.config().chaos {
            quiet_panics(run)
        } else {
            run()
        };
        let sv = state.service();
        let (response, shutdown) = match outcome {
            Ok(reply) => reply,
            Err(payload) => {
                sv.panics.fetch_add(1, Ordering::Relaxed);
                let e = ServeError::Internal(format!(
                    "request handler panicked: {}",
                    panic_message(payload)
                ));
                (error_response(&e), false)
            }
        };
        // Every response is built by `ok_response`/`error_response`, so
        // the leading field is authoritative for the outcome counters.
        if response.starts_with("{\"ok\": false") {
            sv.failed.fetch_add(1, Ordering::Relaxed);
        } else {
            sv.completed.fetch_add(1, Ordering::Relaxed);
        }
        // A dead connection can't hear the reply; the counters above
        // already recorded the outcome.
        let _ = job.reply.send((response, shutdown));
    }
}

/// What one attempt to read a frame produced.
enum Frame {
    /// A complete newline-terminated request line (lossy UTF-8: hostile
    /// bytes become replacement characters and fail JSON parsing
    /// in-protocol rather than killing the connection).
    Line(String),
    /// Clean EOF (any partial trailing frame is discarded).
    Eof,
    /// No complete frame within the idle timeout.
    Timeout,
    /// The frame exceeded `max_line` before a newline arrived.
    Oversize,
    /// A transport error.
    Io,
    /// The server is draining; stop reading new requests.
    Shutdown,
}

/// An incremental line framer over a blocking socket with a short read
/// timeout. The buffer never grows past `max_line` plus one read chunk:
/// oversized frames are rejected *while reading*, not after buffering.
struct FrameReader {
    stream: TcpStream,
    pending: Vec<u8>,
    /// Bytes of `pending` already scanned for a newline.
    scanned: usize,
    max_line: usize,
    idle_timeout: Duration,
    poll: Duration,
}

impl FrameReader {
    fn new(stream: TcpStream, cfg: &ServeConfig) -> std::io::Result<FrameReader> {
        let poll = READ_POLL
            .min(cfg.idle_timeout)
            .max(Duration::from_millis(1));
        stream.set_read_timeout(Some(poll))?;
        Ok(FrameReader {
            stream,
            pending: Vec::new(),
            scanned: 0,
            max_line: cfg.max_line,
            idle_timeout: cfg.idle_timeout,
            poll,
        })
    }

    fn read_frame(&mut self, shutting_down: impl Fn() -> bool) -> Frame {
        let mut idle = Duration::ZERO;
        loop {
            if let Some(pos) = self.pending[self.scanned..]
                .iter()
                .position(|&b| b == b'\n')
            {
                let pos = self.scanned + pos;
                let rest = self.pending.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.pending, rest);
                self.scanned = 0;
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Frame::Line(String::from_utf8_lossy(&line).into_owned());
            }
            self.scanned = self.pending.len();
            if self.pending.len() > self.max_line {
                return Frame::Oversize;
            }
            // Already-buffered complete frames (pipelining) are served
            // above even while draining; only *new* reads stop.
            if shutting_down() {
                return Frame::Shutdown;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Frame::Eof,
                Ok(n) => {
                    idle = Duration::ZERO;
                    self.pending.extend_from_slice(&chunk[..n]);
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    idle += self.poll;
                    if idle >= self.idle_timeout {
                        return Frame::Timeout;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Frame::Io,
            }
        }
    }
}

fn write_line(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    // One write per response: a trailing-newline write of its own can
    // stall behind Nagle until the previous segment is acknowledged.
    let mut framed = Vec::with_capacity(line.len() + 1);
    framed.extend_from_slice(line.as_bytes());
    framed.push(b'\n');
    writer.write_all(&framed)?;
    writer.flush()
}

/// Drive one admitted connection: frame requests defensively, admit them
/// to the worker queue (or shed), write responses in order, and record
/// why the connection ended.
fn handle_connection(stream: TcpStream, state: &ServerState, queue: &BoundedQueue<Job>) {
    let cfg = state.config();
    let sv = state.service();
    let mut framer = match stream.try_clone().and_then(|s| FrameReader::new(s, cfg)) {
        Ok(f) => f,
        Err(_) => {
            sv.disc_io.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let mut writer = stream;
    let reason = loop {
        match framer.read_frame(|| state.shutting_down()) {
            Frame::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                sv.received.fetch_add(1, Ordering::Relaxed);
                let (reply_tx, reply_rx) = mpsc::sync_channel(1);
                let job = Job {
                    line,
                    reply: reply_tx,
                };
                if queue.try_push(job).is_err() {
                    // Admission refused: shed this request, keep the
                    // connection — the client may back off and retry.
                    sv.shed.fetch_add(1, Ordering::Relaxed);
                    let hint = retry_hint_ms(queue.len(), cfg.workers);
                    let e = ServeError::overloaded("request shed: worker queue is full", hint);
                    if write_line(&mut writer, &error_response(&e)).is_err() {
                        break Disconnect::Io;
                    }
                    continue;
                }
                match reply_rx.recv() {
                    Ok((response, shutdown)) => {
                        if write_line(&mut writer, &response).is_err() {
                            break Disconnect::Io;
                        }
                        if shutdown {
                            break Disconnect::Clean;
                        }
                    }
                    // The pool was torn down mid-request (drain deadline).
                    Err(_) => break Disconnect::Io,
                }
            }
            Frame::Eof | Frame::Shutdown => break Disconnect::Clean,
            Frame::Timeout => {
                let e = ServeError::Proto(format!(
                    "idle timeout: no complete request within {}ms",
                    cfg.idle_timeout.as_millis()
                ));
                let _ = write_line(&mut writer, &error_response(&e));
                break Disconnect::Timeout;
            }
            Frame::Oversize => {
                let e = ServeError::Proto(format!(
                    "request line exceeds the {}-byte frame limit",
                    cfg.max_line
                ));
                let _ = write_line(&mut writer, &error_response(&e));
                break Disconnect::Oversize;
            }
            Frame::Io => break Disconnect::Io,
        }
    };
    let counter = match reason {
        Disconnect::Clean => &sv.disc_clean,
        Disconnect::Io => &sv.disc_io,
        Disconnect::Timeout => &sv.disc_timeout,
        Disconnect::Oversize => &sv.disc_oversize,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_grows_exponentially_and_caps() {
        assert_eq!(accept_backoff(1), Duration::from_millis(1));
        assert_eq!(accept_backoff(2), Duration::from_millis(2));
        assert_eq!(accept_backoff(3), Duration::from_millis(4));
        assert_eq!(accept_backoff(6), Duration::from_millis(32));
        // Capped: a long error streak never sleeps unboundedly...
        assert_eq!(accept_backoff(11), ACCEPT_BACKOFF_CAP);
        // ...and huge streak counters don't overflow the shift.
        assert_eq!(accept_backoff(u32::MAX), ACCEPT_BACKOFF_CAP);
    }

    #[test]
    fn retry_hint_tracks_queue_depth() {
        assert_eq!(retry_hint_ms(0, 4), 10);
        assert!(retry_hint_ms(64, 4) > retry_hint_ms(8, 4));
        assert_eq!(retry_hint_ms(usize::MAX, 1), 2_000, "hint is clamped");
    }
}
