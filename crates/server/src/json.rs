//! A zero-dependency JSON value, parser, and serializer.
//!
//! The workspace builds offline, so `fj serve` cannot lean on serde; the
//! wire format is newline-delimited JSON, which needs exactly this much
//! machinery: a recursive-descent parser over one line of input and a
//! writer with correct string escaping. Objects preserve insertion order
//! so responses serialize deterministically (the serve smoke test greps
//! raw response text).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order (duplicate keys: last one wins on
    /// lookup, all are serialized — don't produce duplicates).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object; `None` for absent keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as a non-negative integer, if it is a number that is
    /// one (no fraction, no sign, within `u64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// This value as a finite float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) if n.is_finite() => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Build an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Build a number value from an unsigned integer.
    pub fn num(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ": {v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parse one JSON document. Trailing non-whitespace is an error.
///
/// # Errors
///
/// A human-readable message with the byte offset of the problem.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(format!("bad \\u escape at byte {}", self.pos)),
                            }
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let n = u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape `{text}`"))?;
        self.pos = end;
        Ok(n)
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let src = r#"{"op": "compile", "n": 42, "neg": -7, "pi": 1.5, "ok": true, "nil": null, "xs": [1, 2, 3], "nested": {"a": "b"}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("compile"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(42));
        assert_eq!(v.get("neg"), Some(&Value::Num(-7.0)));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("nil"), Some(&Value::Null));
        assert_eq!(
            v.get("xs").and_then(Value::as_arr).map(<[Value]>::len),
            Some(3)
        );
        let reparsed = parse(&v.to_string()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" back\\slash \u{1}\u{1F600}";
        let v = Value::str(original);
        let parsed = parse(&v.to_string()).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
        // Escaped input parses too, including a surrogate pair.
        let v = parse(r#""aA\n😀""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn program_sources_survive_the_wire() {
        // A realistic payload: a surface program with newlines and
        // operators, embedded as a JSON string field.
        let program = "let go = \\n. if n <= 0 then 0 else go (n - 1)\nin go 10";
        let req = Value::obj([
            ("op", Value::str("compile")),
            ("program", Value::str(program)),
        ]);
        let wire = req.to_string();
        assert!(!wire.contains('\n'), "wire format must stay one line");
        let parsed = parse(&wire).unwrap();
        assert_eq!(parsed.get("program").and_then(Value::as_str), Some(program));
    }
}
