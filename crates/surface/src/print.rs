//! Pretty-printer for the surface AST: the inverse of the parser.
//!
//! The Core pretty-printer (`fj-ast`) prints the *internal* language —
//! unique names, `join`/`jump` forms — which the surface grammar cannot
//! express, so it is useless for parser round-trip testing. This module
//! prints the **surface** AST back into surface syntax, inserting
//! parentheses exactly where the grammar's precedence demands them, so
//! that for any parsed program `p`, `parse(print(p))` succeeds and
//! equals `p` up to source positions (see [`strip_program_positions`]).
//!
//! One asymmetry is inherent to the grammar: a negative literal in
//! expression position prints as `-n`, which re-parses as negation of
//! `n` ([`SExpr::Neg`]). The parser itself never produces negative
//! expression literals, so round-tripping parser output is unaffected.

use crate::ast::{BinOp, SAlt, SBinder, SData, SDef, SExpr, SJoinDef, SPat, SProgram, STy};
use crate::token::Pos;
use std::fmt::Write;

// Expression precedence levels, loosest to tightest, mirroring the
// grammar: expr < opexpr (comparisons) < arith < term < fexpr < aexpr.
const EXPR: u8 = 0;
const CMP: u8 = 1;
const ADD: u8 = 2;
const MUL: u8 = 3;
const APP: u8 = 4;
const ATOM: u8 = 5;

// Type precedence: forall/arrow < constructor application < atom.
const TY_FUN: u8 = 0;
const TY_APP: u8 = 1;
const TY_ATOM: u8 = 2;

/// Render a whole program in parseable surface syntax.
pub fn print_program(p: &SProgram) -> String {
    let mut out = String::new();
    for d in &p.datas {
        out.push_str(&print_data(d));
        out.push('\n');
    }
    for d in &p.defs {
        out.push_str(&print_def(d));
        out.push('\n');
    }
    out
}

/// Render one `data` declaration (with trailing `;`).
pub fn print_data(d: &SData) -> String {
    let mut out = String::new();
    write!(out, "data {}", d.name).unwrap();
    for pv in &d.params {
        write!(out, " {pv}").unwrap();
    }
    out.push_str(" =");
    for (i, (cname, fields)) in d.ctors.iter().enumerate() {
        out.push_str(if i == 0 { " " } else { " | " });
        out.push_str(cname);
        for f in fields {
            out.push(' ');
            out.push_str(&ty_prec(f, TY_ATOM));
        }
    }
    out.push(';');
    out
}

/// Render one `def` declaration (with trailing `;`).
pub fn print_def(d: &SDef) -> String {
    format!(
        "def {} : {} =\n  {};",
        d.name,
        print_ty(&d.ty),
        print_expr(&d.body)
    )
}

/// Render a type.
pub fn print_ty(t: &STy) -> String {
    ty_prec(t, TY_FUN)
}

fn ty_prec(t: &STy, required: u8) -> String {
    let (s, prec) = match t {
        STy::Var(v) => (v.clone(), TY_ATOM),
        STy::Con(c, args) if args.is_empty() => (c.clone(), TY_ATOM),
        STy::Con(c, args) => {
            let mut s = c.clone();
            for a in args {
                s.push(' ');
                s.push_str(&ty_prec(a, TY_ATOM));
            }
            (s, TY_APP)
        }
        STy::Fun(a, b) => (
            format!("{} -> {}", ty_prec(a, TY_APP), ty_prec(b, TY_FUN)),
            TY_FUN,
        ),
        STy::Forall(v, body) => (format!("forall {v}. {}", ty_prec(body, TY_FUN)), TY_FUN),
    };
    if prec < required {
        format!("({s})")
    } else {
        s
    }
}

/// Render an expression.
pub fn print_expr(e: &SExpr) -> String {
    expr_prec(e, EXPR)
}

fn expr_prec(e: &SExpr, required: u8) -> String {
    let (s, prec) = match e {
        SExpr::Var(x, _) => (x.clone(), ATOM),
        SExpr::Con(c, _) => (c.clone(), ATOM),
        SExpr::Lit(n) => (n.to_string(), if *n < 0 { APP } else { ATOM }),
        SExpr::Neg(inner) => (format!("-{}", expr_prec(inner, ATOM)), APP),
        SExpr::App(f, a) => (format!("{} {}", expr_prec(f, APP), expr_prec(a, ATOM)), APP),
        SExpr::TyApp(f, t) => (
            format!("{} @{}", expr_prec(f, APP), ty_prec(t, TY_ATOM)),
            APP,
        ),
        SExpr::BinOp(op, a, b) => {
            let (sym, prec) = binop(*op);
            // + - and * / % associate to the left, so the right operand
            // needs the next level up; comparisons are non-associative,
            // so *both* operands do.
            let lhs_req = if prec == CMP { prec + 1 } else { prec };
            let s = format!("{} {sym} {}", expr_prec(a, lhs_req), expr_prec(b, prec + 1));
            (s, prec)
        }
        SExpr::Lam(binders, body) => {
            let mut s = String::from("\\");
            for b in binders {
                match b {
                    SBinder::Val(x, t) => write!(s, "({x} : {})", print_ty(t)).unwrap(),
                    SBinder::Ty(a) => write!(s, "@{a}").unwrap(),
                }
                s.push(' ');
            }
            s.push_str("-> ");
            s.push_str(&expr_prec(body, EXPR));
            (s, EXPR)
        }
        SExpr::Let(x, t, rhs, body, _) => (
            format!(
                "let {x} : {} = {} in {}",
                print_ty(t),
                expr_prec(rhs, EXPR),
                expr_prec(body, EXPR)
            ),
            EXPR,
        ),
        SExpr::LetRec(binds, body, _) => {
            let mut s = String::from("letrec ");
            for (i, (x, t, rhs)) in binds.iter().enumerate() {
                if i > 0 {
                    s.push_str(" and ");
                }
                write!(s, "{x} : {} = {}", print_ty(t), expr_prec(rhs, EXPR)).unwrap();
            }
            write!(s, " in {}", expr_prec(body, EXPR)).unwrap();
            (s, EXPR)
        }
        SExpr::Case(scrut, alts, _) => {
            let mut s = format!("case {} of {{ ", expr_prec(scrut, EXPR));
            for (i, alt) in alts.iter().enumerate() {
                if i > 0 {
                    s.push_str("; ");
                }
                s.push_str(&print_alt(alt));
            }
            s.push_str(" }");
            // Despite the closing brace, `case` is not in the grammar's
            // atom first-set, so it parenthesizes like the other keyword
            // forms whenever it appears as an operand or argument.
            (s, EXPR)
        }
        SExpr::If(c, t, f) => (
            format!(
                "if {} then {} else {}",
                expr_prec(c, EXPR),
                expr_prec(t, EXPR),
                expr_prec(f, EXPR)
            ),
            EXPR,
        ),
        SExpr::Join(rec, defs, body, _) => {
            let mut s = String::from(if *rec { "joinrec " } else { "join " });
            for (i, d) in defs.iter().enumerate() {
                if i > 0 {
                    s.push_str(" and ");
                }
                s.push_str(&d.name);
                for b in &d.binders {
                    match b {
                        SBinder::Val(x, t) => write!(s, " ({x} : {})", print_ty(t)).unwrap(),
                        SBinder::Ty(a) => write!(s, " @{a}").unwrap(),
                    }
                }
                write!(s, " = {}", expr_prec(&d.body, EXPR)).unwrap();
            }
            write!(s, " in {}", expr_prec(body, EXPR)).unwrap();
            (s, EXPR)
        }
        SExpr::Jump(label, tys, args, ret, _) => {
            let mut s = format!("jump {label}");
            for t in tys {
                write!(s, " @{}", ty_prec(t, TY_ATOM)).unwrap();
            }
            for a in args {
                write!(s, " {}", expr_prec(a, ATOM)).unwrap();
            }
            write!(s, " : {}", ty_prec(ret, TY_ATOM)).unwrap();
            (s, EXPR)
        }
    };
    if prec < required {
        format!("({s})")
    } else {
        s
    }
}

fn print_alt(alt: &SAlt) -> String {
    let pat = match &alt.pat {
        SPat::Con(c, fields) => {
            let mut s = c.clone();
            for f in fields {
                s.push(' ');
                s.push_str(f);
            }
            s
        }
        SPat::Lit(n) => n.to_string(),
        SPat::Wild => "_".to_string(),
    };
    format!("{pat} -> {}", expr_prec(&alt.rhs, EXPR))
}

fn binop(op: BinOp) -> (&'static str, u8) {
    match op {
        BinOp::Add => ("+", ADD),
        BinOp::Sub => ("-", ADD),
        BinOp::Mul => ("*", MUL),
        BinOp::Div => ("/", MUL),
        BinOp::Rem => ("%", MUL),
        BinOp::Eq => ("==", CMP),
        BinOp::Ne => ("/=", CMP),
        BinOp::Lt => ("<", CMP),
        BinOp::Le => ("<=", CMP),
        BinOp::Gt => (">", CMP),
        BinOp::Ge => (">=", CMP),
    }
}

const NO_POS: Pos = Pos { line: 0, col: 0 };

/// Erase all source positions (for comparing ASTs across a print/parse
/// round trip, where positions necessarily move).
pub fn strip_program_positions(p: &SProgram) -> SProgram {
    SProgram {
        datas: p
            .datas
            .iter()
            .map(|d| SData {
                pos: NO_POS,
                ..d.clone()
            })
            .collect(),
        defs: p
            .defs
            .iter()
            .map(|d| SDef {
                name: d.name.clone(),
                ty: d.ty.clone(),
                body: strip_expr_positions(&d.body),
                pos: NO_POS,
            })
            .collect(),
    }
}

/// Erase all source positions in an expression.
pub fn strip_expr_positions(e: &SExpr) -> SExpr {
    match e {
        SExpr::Var(x, _) => SExpr::Var(x.clone(), NO_POS),
        SExpr::Con(c, _) => SExpr::Con(c.clone(), NO_POS),
        SExpr::Lit(n) => SExpr::Lit(*n),
        SExpr::App(f, a) => SExpr::App(
            Box::new(strip_expr_positions(f)),
            Box::new(strip_expr_positions(a)),
        ),
        SExpr::TyApp(f, t) => SExpr::TyApp(Box::new(strip_expr_positions(f)), t.clone()),
        SExpr::Lam(bs, body) => SExpr::Lam(bs.clone(), Box::new(strip_expr_positions(body))),
        SExpr::Let(x, t, rhs, body, _) => SExpr::Let(
            x.clone(),
            t.clone(),
            Box::new(strip_expr_positions(rhs)),
            Box::new(strip_expr_positions(body)),
            NO_POS,
        ),
        SExpr::LetRec(binds, body, _) => SExpr::LetRec(
            binds
                .iter()
                .map(|(x, t, rhs)| (x.clone(), t.clone(), strip_expr_positions(rhs)))
                .collect(),
            Box::new(strip_expr_positions(body)),
            NO_POS,
        ),
        SExpr::Case(scrut, alts, _) => SExpr::Case(
            Box::new(strip_expr_positions(scrut)),
            alts.iter()
                .map(|a| SAlt {
                    pat: a.pat.clone(),
                    rhs: strip_expr_positions(&a.rhs),
                    pos: NO_POS,
                })
                .collect(),
            NO_POS,
        ),
        SExpr::If(c, t, f) => SExpr::If(
            Box::new(strip_expr_positions(c)),
            Box::new(strip_expr_positions(t)),
            Box::new(strip_expr_positions(f)),
        ),
        SExpr::BinOp(op, a, b) => SExpr::BinOp(
            *op,
            Box::new(strip_expr_positions(a)),
            Box::new(strip_expr_positions(b)),
        ),
        SExpr::Neg(inner) => SExpr::Neg(Box::new(strip_expr_positions(inner))),
        SExpr::Join(rec, defs, body, _) => SExpr::Join(
            *rec,
            defs.iter()
                .map(|d| SJoinDef {
                    name: d.name.clone(),
                    binders: d.binders.clone(),
                    body: strip_expr_positions(&d.body),
                })
                .collect(),
            Box::new(strip_expr_positions(body)),
            NO_POS,
        ),
        SExpr::Jump(label, tys, args, ret, _) => SExpr::Jump(
            label.clone(),
            tys.clone(),
            args.iter().map(strip_expr_positions).collect(),
            ret.clone(),
            NO_POS,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_expr;

    fn round(src: &str) {
        let p1 = parse_expr(&lex(src).unwrap()).unwrap();
        let printed = print_expr(&p1);
        let p2 = parse_expr(&lex(&printed).unwrap())
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(
            strip_expr_positions(&p1),
            strip_expr_positions(&p2),
            "round trip changed the AST:\n  src:     {src}\n  printed: {printed}"
        );
    }

    #[test]
    fn operators_round_trip_with_precedence() {
        round("1 + 2 * 3 < 10");
        round("(1 + 2) * 3");
        round("1 - 2 - 3"); // left associativity must be preserved
        round("1 - (2 - 3)");
        round("2 * (3 + 4) % 5");
        round("f 1 + g 2");
        round("f (g 2)");
        round("f (-5)");
        round("-f 5");
    }

    #[test]
    fn binding_forms_round_trip() {
        round("let x : Int = 1 + 2 in x * x");
        round("letrec f : Int -> Int = \\(n : Int) -> f n in f 3");
        round(
            "letrec ev : Int -> Bool = \\(n : Int) -> od (n - 1) \
             and od : Int -> Bool = \\(n : Int) -> ev (n - 1) in ev 4",
        );
        round("\\@a (x : a) -> x");
        round("(\\(x : Int) -> x + 1) 41");
        round("if 1 < 2 then 3 else 4");
        round("1 + (if 1 < 2 then 3 else 4)");
        round("case xs of { Nil -> 0; Cons h t -> h; _ -> 9 }");
        round("case f x of { -1 -> 0; 0 -> 1; _ -> 2 }");
        round("1 + (case x of { Nothing -> 0; Just y -> y })");
        round("(1 < 2) == (3 < 4)");
    }

    #[test]
    fn type_applications_round_trip() {
        round("just @Int 5");
        round("id @(List Int) xs");
        round("\\@a (x : List a) -> cons @a x");
    }

    #[test]
    fn types_print_with_minimal_parens() {
        let cases = [
            ("Int -> Int -> Int", "Int -> Int -> Int"),
            ("(Int -> Int) -> Int", "(Int -> Int) -> Int"),
            ("List (Maybe Int) -> Int", "List (Maybe Int) -> Int"),
            ("forall a. a -> List a", "forall a. a -> List a"),
            ("(forall a. a) -> Int", "(forall a. a) -> Int"),
        ];
        for (src, expect) in cases {
            let with_def = format!("def f : {src} = 0;");
            let p = crate::parser::parse_program(&lex(&with_def).unwrap()).unwrap();
            assert_eq!(print_ty(&p.defs[0].ty), expect);
        }
    }
}
