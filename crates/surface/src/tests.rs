//! End-to-end frontend tests: compile, lint, run.

use crate::{compile, Lowered};
use fj_ast::Ident;
use fj_check::lint;
use fj_eval::{run, run_int, EvalMode, Value};

const FUEL: u64 = 2_000_000;

fn compile_lint(src: &str) -> Lowered {
    let lowered = compile(src).unwrap_or_else(|e| panic!("compile: {e}"));
    lint(&lowered.expr, &lowered.data_env)
        .unwrap_or_else(|e| panic!("lint: {e}\n{}", lowered.expr));
    lowered
}

fn run_main(src: &str) -> i64 {
    let lowered = compile_lint(src);
    run_int(&lowered.expr, EvalMode::CallByName, FUEL)
        .unwrap_or_else(|e| panic!("eval: {e}\n{}", lowered.expr))
}

#[test]
fn arithmetic_program() {
    assert_eq!(run_main("def main : Int = 1 + 2 * 3 - 4;"), 3);
}

#[test]
fn defs_see_earlier_defs() {
    let src = "
        def double : Int -> Int = \\(x : Int) -> x * 2;
        def main : Int = double (double 10);
    ";
    assert_eq!(run_main(src), 40);
}

#[test]
fn letrec_loop() {
    let src = "
        def main : Int =
          letrec go : Int -> Int -> Int =
            \\(n : Int) (acc : Int) ->
              if n <= 0 then acc else go (n - 1) (acc + n)
          in go 10 0;
    ";
    assert_eq!(run_main(src), 55);
}

#[test]
fn user_datatypes() {
    let src = "
        data Shape = Circle Int | Square Int Int;
        def area : Shape -> Int =
          \\(s : Shape) -> case s of {
            Circle r -> 3 * r * r;
            Square w h -> w * h
          };
        def main : Int = area (Circle 2) + area (Square 3 4);
    ";
    assert_eq!(run_main(src), 24);
}

#[test]
fn polymorphic_lists() {
    let src = "
        def sum : List Int -> Int =
          \\(xs : List Int) ->
            letrec go : List Int -> Int -> Int =
              \\(ys : List Int) (acc : Int) ->
                case ys of {
                  Nil -> acc;
                  Cons h t -> go t (acc + h)
                }
            in go xs 0;
        def main : Int =
          sum (Cons @Int 1 (Cons @Int 2 (Cons @Int 3 (Nil @Int))));
    ";
    assert_eq!(run_main(src), 6);
}

#[test]
fn polymorphic_identity() {
    let src = "
        def id : forall a. a -> a = \\@a (x : a) -> x;
        def main : Int = id @Int 42;
    ";
    assert_eq!(run_main(src), 42);
}

#[test]
fn maybe_results() {
    let src = "
        def safeDiv : Int -> Int -> Maybe Int =
          \\(a : Int) (b : Int) ->
            if b == 0 then Nothing @Int else Just @Int (a / b);
        def main : Int =
          case safeDiv 10 2 of {
            Nothing -> 0 - 1;
            Just q -> q
          };
    ";
    assert_eq!(run_main(src), 5);
}

#[test]
fn literal_cases() {
    let src = "
        def classify : Int -> Int =
          \\(n : Int) -> case n of { 0 -> 10; 1 -> 20; _ -> 30 };
        def main : Int = classify 1 + classify 7;
    ";
    assert_eq!(run_main(src), 50);
}

#[test]
fn boolean_value_program() {
    let src = "def main : Bool = 3 < 4;";
    let lowered = compile_lint(src);
    let v = run(&lowered.expr, EvalMode::CallByNeed, FUEL)
        .unwrap()
        .value;
    assert_eq!(v, Value::Con(Ident::new("True"), vec![]));
}

#[test]
fn pairs_and_projections() {
    let src = "
        def swap : Pair Int Bool -> Pair Bool Int =
          \\(p : Pair Int Bool) -> case p of {
            MkPair a b -> MkPair @Bool @Int b a
          };
        def main : Int =
          case swap (MkPair @Int @Bool 7 True) of {
            MkPair x y -> y
          };
    ";
    assert_eq!(run_main(src), 7);
}

#[test]
fn unbound_variable_rejected() {
    let e = compile("def main : Int = nope;").unwrap_err();
    assert!(e.to_string().contains("not in scope"), "{e}");
}

#[test]
fn unsaturated_constructor_rejected() {
    let e = compile("def main : Maybe Int = Just @Int;").unwrap_err();
    assert!(e.to_string().contains("saturated"), "{e}");
}

#[test]
fn missing_type_args_rejected() {
    let e = compile("def main : Maybe Int = Just 5;").unwrap_err();
    assert!(e.to_string().contains("type argument"), "{e}");
}

#[test]
fn missing_main_rejected() {
    let e = compile("def f : Int = 1;").unwrap_err();
    assert!(e.to_string().contains("main"), "{e}");
}

#[test]
fn duplicate_datatype_rejected() {
    let e = compile("data Bool = T | F; def main : Int = 1;").unwrap_err();
    assert!(e.to_string().contains("duplicate"), "{e}");
}

#[test]
fn mutual_recursion_via_letrec() {
    let src = "
        def main : Bool =
          letrec even : Int -> Bool =
            \\(n : Int) -> if n == 0 then True else odd (n - 1)
          and odd : Int -> Bool =
            \\(n : Int) -> if n == 0 then False else even (n - 1)
          in even 10;
    ";
    let lowered = compile_lint(src);
    let v = run(&lowered.expr, EvalMode::CallByName, FUEL)
        .unwrap()
        .value;
    assert_eq!(v, Value::Con(Ident::new("True"), vec![]));
}

/// The compiled pipeline composes with the optimizer: a surface program's
/// loop contifies and runs allocation-free under call-by-value.
#[test]
fn surface_program_optimizes() {
    let src = "
        def main : Int =
          letrec go : Int -> Int -> Int =
            \\(n : Int) (acc : Int) ->
              if n <= 0 then acc else go (n - 1) (acc + n)
          in go 100 0;
    ";
    let mut lowered = compile_lint(src);
    let cfg = fj_core::OptConfig::join_points().with_lint(true);
    let out =
        fj_core::optimize(&lowered.expr, &lowered.data_env, &mut lowered.supply, &cfg).unwrap();
    assert_eq!(run_int(&out, EvalMode::CallByValue, FUEL).unwrap(), 5050);
    let m = run(&out, EvalMode::CallByValue, FUEL).unwrap().metrics;
    assert_eq!(
        m.total_allocs(),
        0,
        "contified loop must be allocation-free: {m}"
    );
}

/// Shadowing: inner binders hide outer ones.
#[test]
fn shadowing_resolves_innermost() {
    let src = "
        def main : Int =
          let x : Int = 1 in
          let x : Int = x + 10 in
          x;
    ";
    assert_eq!(run_main(src), 11);
}
