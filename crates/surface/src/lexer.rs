//! Hand-written lexer for the surface language.
//!
//! Comments run from `--` to end of line. Whitespace is insignificant
//! (the grammar is fully delimited, so no layout rule is needed).

use crate::token::{Pos, Spanned, Tok};
use crate::SurfaceError;

/// Tokenize a source string.
///
/// # Errors
///
/// Returns [`SurfaceError`] on unknown characters or malformed literals.
pub fn lex(src: &str) -> Result<Vec<Spanned>, SurfaceError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! pos {
        () => {
            Pos { line, col }
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c == '\n' {
            i += 1;
            line += 1;
            col = 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        // Comments: -- to end of line.
        if c == '-' && i + 1 < bytes.len() && bytes[i + 1] as char == '-' {
            while i < bytes.len() && bytes[i] as char != '\n' {
                i += 1;
            }
            continue;
        }
        let start = pos!();
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let begin = i;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' || ch == '\'' {
                    i += 1;
                    col += 1;
                } else {
                    break;
                }
            }
            let word = &src[begin..i];
            let tok = match word {
                "_" => Tok::Underscore,
                "data" => Tok::Data,
                "def" => Tok::Def,
                "let" => Tok::Let,
                "letrec" => Tok::LetRec,
                "and" => Tok::And,
                "in" => Tok::In,
                "case" => Tok::Case,
                "of" => Tok::Of,
                "if" => Tok::If,
                "then" => Tok::Then,
                "else" => Tok::Else,
                "forall" => Tok::Forall,
                "join" => Tok::Join,
                "joinrec" => Tok::JoinRec,
                "jump" => Tok::Jump,
                w if w.starts_with(|ch: char| ch.is_ascii_uppercase()) => Tok::ConId(w.to_string()),
                w => Tok::Ident(w.to_string()),
            };
            out.push(Spanned { tok, pos: start });
            continue;
        }
        // Integers (negative literals are parsed as unary minus upstream).
        if c.is_ascii_digit() {
            let begin = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
                col += 1;
            }
            let text = &src[begin..i];
            let n: i64 = text.parse().map_err(|_| SurfaceError::Lex {
                pos: start,
                msg: format!("integer literal out of range: {text}"),
            })?;
            out.push(Spanned {
                tok: Tok::Int(n),
                pos: start,
            });
            continue;
        }
        // Multi-character operators first.
        let two = if i + 1 < bytes.len() {
            &src[i..i + 2]
        } else {
            ""
        };
        let (tok, len) = match two {
            "->" => (Tok::Arrow, 2),
            "==" => (Tok::EqEq, 2),
            "/=" => (Tok::NotEq, 2),
            "<=" => (Tok::Le, 2),
            ">=" => (Tok::Ge, 2),
            _ => match c {
                '\\' => (Tok::Backslash, 1),
                '=' => (Tok::Equals, 1),
                ':' => (Tok::Colon, 1),
                ';' => (Tok::Semi, 1),
                '|' => (Tok::Bar, 1),
                '(' => (Tok::LParen, 1),
                ')' => (Tok::RParen, 1),
                '{' => (Tok::LBrace, 1),
                '}' => (Tok::RBrace, 1),
                '@' => (Tok::At, 1),
                '.' => (Tok::Dot, 1),
                '+' => (Tok::Plus, 1),
                '-' => (Tok::Minus, 1),
                '*' => (Tok::Star, 1),
                '/' => (Tok::Slash, 1),
                '%' => (Tok::Percent, 1),
                '<' => (Tok::Lt, 1),
                '>' => (Tok::Gt, 1),
                other => {
                    return Err(SurfaceError::Lex {
                        pos: start,
                        msg: format!("unexpected character {other:?}"),
                    })
                }
            },
        };
        out.push(Spanned { tok, pos: start });
        i += len;
        col += len as u32;
    }
    out.push(Spanned {
        tok: Tok::Eof,
        pos: pos!(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("let go = Just"),
            vec![
                Tok::Let,
                Tok::Ident("go".into()),
                Tok::Equals,
                Tok::ConId("Just".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("a <= b -> c /= d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::Arrow,
                Tok::Ident("c".into()),
                Tok::NotEq,
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("1 -- comment -> ignored\n2"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Eof]
        );
    }

    #[test]
    fn positions_track_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn minus_vs_comment() {
        assert_eq!(
            toks("1 - 2"),
            vec![Tok::Int(1), Tok::Minus, Tok::Int(2), Tok::Eof]
        );
    }

    #[test]
    fn bad_char_reports_position() {
        let err = lex("a $ b").unwrap_err();
        match err {
            SurfaceError::Lex { pos, .. } => assert_eq!(pos, Pos { line: 1, col: 3 }),
            other => panic!("expected lex error, got {other}"),
        }
    }

    use crate::token::Pos;
}
