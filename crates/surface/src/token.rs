//! Tokens and source positions for the surface language.

use std::fmt;

/// A line/column position (1-based) in the source text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Lower-case identifier (variable).
    Ident(String),
    /// Upper-case identifier (data/type constructor).
    ConId(String),
    /// Integer literal.
    Int(i64),
    /// `data`
    Data,
    /// `def`
    Def,
    /// `let`
    Let,
    /// `letrec`
    LetRec,
    /// `and`
    And,
    /// `in`
    In,
    /// `case`
    Case,
    /// `of`
    Of,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `forall`
    Forall,
    /// `join`
    Join,
    /// `joinrec`
    JoinRec,
    /// `jump`
    Jump,
    /// `\`
    Backslash,
    /// `->`
    Arrow,
    /// `=`
    Equals,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `|`
    Bar,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `@`
    At,
    /// `_`
    Underscore,
    /// `.`
    Dot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `/=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) | Tok::ConId(s) => write!(f, "{s}"),
            Tok::Int(n) => write!(f, "{n}"),
            Tok::Data => write!(f, "data"),
            Tok::Def => write!(f, "def"),
            Tok::Let => write!(f, "let"),
            Tok::LetRec => write!(f, "letrec"),
            Tok::And => write!(f, "and"),
            Tok::In => write!(f, "in"),
            Tok::Case => write!(f, "case"),
            Tok::Of => write!(f, "of"),
            Tok::If => write!(f, "if"),
            Tok::Then => write!(f, "then"),
            Tok::Else => write!(f, "else"),
            Tok::Forall => write!(f, "forall"),
            Tok::Join => write!(f, "join"),
            Tok::JoinRec => write!(f, "joinrec"),
            Tok::Jump => write!(f, "jump"),
            Tok::Backslash => write!(f, "\\"),
            Tok::Arrow => write!(f, "->"),
            Tok::Equals => write!(f, "="),
            Tok::Colon => write!(f, ":"),
            Tok::Semi => write!(f, ";"),
            Tok::Bar => write!(f, "|"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::At => write!(f, "@"),
            Tok::Underscore => write!(f, "_"),
            Tok::Dot => write!(f, "."),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::EqEq => write!(f, "=="),
            Tok::NotEq => write!(f, "/="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}
