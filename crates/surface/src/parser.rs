//! Recursive-descent parser for the surface language.
//!
//! Grammar sketch (fully delimited — no layout):
//!
//! ```text
//! program  ::= (data | def)*
//! data     ::= 'data' ConId ident* '=' ctor ('|' ctor)* ';'
//! ctor     ::= ConId atype*
//! def      ::= 'def' ident ':' type '=' expr ';'
//! type     ::= 'forall' ident+ '.' type | btype ('->' type)?
//! btype    ::= atype+                      -- ConId application
//! atype    ::= ConId | ident | '(' type ')'
//! expr     ::= '\' binder+ '->' expr
//!            | 'let' ident ':' type '=' expr 'in' expr
//!            | 'letrec' bindgrp 'in' expr
//!            | 'join' jdef 'in' expr
//!            | 'joinrec' jdef ('and' jdef)* 'in' expr
//!            | 'jump' ident ('@' atype | aexpr)* ':' atype
//!            | 'case' expr 'of' '{' alt (';' alt)* '}'
//!            | 'if' expr 'then' expr 'else' expr
//!            | opexpr
//! jdef     ::= ident binder* '=' expr
//! opexpr   ::= arith (cmpop arith)?        -- comparisons non-associative
//! arith    ::= term (('+'|'-') term)*
//! term     ::= fexpr (('*'|'/'|'%') fexpr)*
//! fexpr    ::= aexpr (aexpr | '@' atype)*  -- application
//! aexpr    ::= ident | ConId | int | '-' aexpr | '(' expr ')'
//! binder   ::= '(' ident ':' type ')' | '@' ident
//! alt      ::= ConId ident* '->' expr | int '->' expr | '_' '->' expr
//! ```

use crate::ast::{BinOp, SAlt, SBinder, SData, SDef, SExpr, SJoinDef, SPat, SProgram, STy};
use crate::token::{Pos, Spanned, Tok};
use crate::SurfaceError;

/// Parse a whole program.
///
/// # Errors
///
/// Returns [`SurfaceError::Parse`] with a position on malformed input.
pub fn parse_program(tokens: &[Spanned]) -> Result<SProgram, SurfaceError> {
    let mut p = Parser {
        toks: tokens,
        at: 0,
        depth: 0,
    };
    let mut datas = Vec::new();
    let mut defs = Vec::new();
    loop {
        match p.peek() {
            Tok::Eof => break,
            Tok::Data => datas.push(p.data_decl()?),
            Tok::Def => defs.push(p.def_decl()?),
            other => return Err(p.err(format!("expected `data` or `def`, found `{other}`"))),
        }
    }
    Ok(SProgram { datas, defs })
}

/// Parse a single expression (used by tests and the REPL example).
///
/// # Errors
///
/// As [`parse_program`].
pub fn parse_expr(tokens: &[Spanned]) -> Result<SExpr, SurfaceError> {
    let mut p = Parser {
        toks: tokens,
        at: 0,
        depth: 0,
    };
    let e = p.expr()?;
    p.expect(&Tok::Eof)?;
    Ok(e)
}

/// Parse a cache-entry payload: `data` declarations followed by one
/// expression. This is the on-disk shape the persistent cache uses — a
/// bare term plus whatever datatypes it mentions, with no `def main`
/// wrapper (which would add a spurious `let` on re-lowering).
///
/// # Errors
///
/// As [`parse_program`].
pub fn parse_entry(tokens: &[Spanned]) -> Result<(Vec<SData>, SExpr), SurfaceError> {
    let mut p = Parser {
        toks: tokens,
        at: 0,
        depth: 0,
    };
    let mut datas = Vec::new();
    while p.peek() == &Tok::Data {
        datas.push(p.data_decl()?);
    }
    let e = p.expr()?;
    p.expect(&Tok::Eof)?;
    Ok((datas, e))
}

/// Hard ceiling on grammar recursion depth. Each level of expression or
/// type nesting costs a handful of stack frames, so 500 levels stays well
/// inside the default 2 MiB test-thread stack while still accepting any
/// program a human (or the generator) writes. Deeper input gets a clean
/// `ParseError` instead of a stack overflow.
pub const MAX_NESTING_DEPTH: usize = 500;

struct Parser<'a> {
    toks: &'a [Spanned],
    at: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> &Tok {
        &self.toks[self.at].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.at].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.at].tok.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    /// Bump the recursion depth, failing cleanly past the ceiling. Called
    /// on every entry to the recursive grammar productions (`expr`,
    /// `aexpr`, `ty`, `atype`); the shared counter covers mutual
    /// recursion between them.
    fn enter(&mut self) -> Result<(), SurfaceError> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(self.err(format!("nesting exceeds depth limit ({MAX_NESTING_DEPTH})")));
        }
        Ok(())
    }

    fn err(&self, msg: String) -> SurfaceError {
        SurfaceError::Parse {
            pos: self.pos(),
            msg,
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), SurfaceError> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, SurfaceError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    fn conid(&mut self) -> Result<String, SurfaceError> {
        match self.peek().clone() {
            Tok::ConId(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected constructor name, found `{other}`"))),
        }
    }

    // ---- declarations ------------------------------------------------

    fn data_decl(&mut self) -> Result<SData, SurfaceError> {
        let pos = self.pos();
        self.expect(&Tok::Data)?;
        let name = self.conid()?;
        let mut params = Vec::new();
        while let Tok::Ident(_) = self.peek() {
            params.push(self.ident()?);
        }
        self.expect(&Tok::Equals)?;
        let mut ctors = vec![self.ctor_decl()?];
        while self.peek() == &Tok::Bar {
            self.bump();
            ctors.push(self.ctor_decl()?);
        }
        self.expect(&Tok::Semi)?;
        Ok(SData {
            name,
            params,
            ctors,
            pos,
        })
    }

    fn ctor_decl(&mut self) -> Result<(String, Vec<STy>), SurfaceError> {
        let name = self.conid()?;
        let mut fields = Vec::new();
        while let Tok::ConId(_) | Tok::Ident(_) | Tok::LParen = self.peek() {
            fields.push(self.atype()?);
        }
        Ok((name, fields))
    }

    fn def_decl(&mut self) -> Result<SDef, SurfaceError> {
        let pos = self.pos();
        self.expect(&Tok::Def)?;
        let name = self.ident()?;
        self.expect(&Tok::Colon)?;
        let ty = self.ty()?;
        self.expect(&Tok::Equals)?;
        let body = self.expr()?;
        self.expect(&Tok::Semi)?;
        Ok(SDef {
            name,
            ty,
            body,
            pos,
        })
    }

    // ---- types --------------------------------------------------------

    fn ty(&mut self) -> Result<STy, SurfaceError> {
        self.enter()?;
        let r = self.ty_inner();
        self.depth -= 1;
        r
    }

    fn ty_inner(&mut self) -> Result<STy, SurfaceError> {
        if self.peek() == &Tok::Forall {
            self.bump();
            let mut vars = vec![self.ident()?];
            while let Tok::Ident(_) = self.peek() {
                vars.push(self.ident()?);
            }
            self.expect(&Tok::Dot)?;
            let body = self.ty()?;
            return Ok(vars
                .into_iter()
                .rev()
                .fold(body, |acc, v| STy::Forall(v, Box::new(acc))));
        }
        let lhs = self.btype()?;
        if self.peek() == &Tok::Arrow {
            self.bump();
            let rhs = self.ty()?;
            Ok(STy::Fun(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn btype(&mut self) -> Result<STy, SurfaceError> {
        let head = self.atype()?;
        let mut args = Vec::new();
        while let Tok::ConId(_) | Tok::Ident(_) | Tok::LParen = self.peek() {
            args.push(self.atype()?);
        }
        if args.is_empty() {
            return Ok(head);
        }
        match head {
            STy::Con(name, existing) if existing.is_empty() => Ok(STy::Con(name, args)),
            _ => Err(self.err("only type constructors can be applied".into())),
        }
    }

    fn atype(&mut self) -> Result<STy, SurfaceError> {
        self.enter()?;
        let r = self.atype_inner();
        self.depth -= 1;
        r
    }

    fn atype_inner(&mut self) -> Result<STy, SurfaceError> {
        match self.peek().clone() {
            Tok::ConId(s) => {
                self.bump();
                Ok(STy::Con(s, Vec::new()))
            }
            Tok::Ident(s) => {
                self.bump();
                Ok(STy::Var(s))
            }
            Tok::LParen => {
                self.bump();
                let t = self.ty()?;
                self.expect(&Tok::RParen)?;
                Ok(t)
            }
            other => Err(self.err(format!("expected a type, found `{other}`"))),
        }
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<SExpr, SurfaceError> {
        self.enter()?;
        let r = self.expr_inner();
        self.depth -= 1;
        r
    }

    fn expr_inner(&mut self) -> Result<SExpr, SurfaceError> {
        match self.peek() {
            Tok::Backslash => self.lambda(),
            Tok::Let => self.let_expr(),
            Tok::LetRec => self.letrec_expr(),
            Tok::Join => self.join_expr(false),
            Tok::JoinRec => self.join_expr(true),
            Tok::Jump => self.jump_expr(),
            Tok::Case => self.case_expr(),
            Tok::If => self.if_expr(),
            _ => self.op_expr(),
        }
    }

    /// `(x : t)` and `@a` binders, zero or more (shared by lambdas and
    /// join-point definitions).
    fn binders(&mut self) -> Result<Vec<SBinder>, SurfaceError> {
        let mut binders = Vec::new();
        loop {
            match self.peek() {
                Tok::LParen => {
                    self.bump();
                    let x = self.ident()?;
                    self.expect(&Tok::Colon)?;
                    let t = self.ty()?;
                    self.expect(&Tok::RParen)?;
                    binders.push(SBinder::Val(x, t));
                }
                Tok::At => {
                    self.bump();
                    binders.push(SBinder::Ty(self.ident()?));
                }
                _ => break,
            }
        }
        Ok(binders)
    }

    fn lambda(&mut self) -> Result<SExpr, SurfaceError> {
        self.expect(&Tok::Backslash)?;
        let binders = self.binders()?;
        if binders.is_empty() {
            return Err(self.err("lambda needs at least one binder".into()));
        }
        self.expect(&Tok::Arrow)?;
        let body = self.expr()?;
        Ok(SExpr::Lam(binders, Box::new(body)))
    }

    fn join_expr(&mut self, rec: bool) -> Result<SExpr, SurfaceError> {
        let pos = self.pos();
        self.bump(); // `join` or `joinrec`
        let mut defs = Vec::new();
        loop {
            let name = self.ident()?;
            let binders = self.binders()?;
            self.expect(&Tok::Equals)?;
            let body = self.expr()?;
            defs.push(SJoinDef {
                name,
                binders,
                body,
            });
            if rec && self.peek() == &Tok::And {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Tok::In)?;
        let body = self.expr()?;
        Ok(SExpr::Join(rec, defs, Box::new(body), pos))
    }

    fn jump_expr(&mut self) -> Result<SExpr, SurfaceError> {
        let pos = self.pos();
        self.expect(&Tok::Jump)?;
        let label = self.ident()?;
        let mut tys = Vec::new();
        let mut args = Vec::new();
        loop {
            match self.peek() {
                Tok::At => {
                    self.bump();
                    if !args.is_empty() {
                        return Err(
                            self.err("jump type arguments must precede value arguments".into())
                        );
                    }
                    tys.push(self.atype()?);
                }
                Tok::Ident(_) | Tok::ConId(_) | Tok::Int(_) | Tok::LParen | Tok::Minus => {
                    args.push(self.aexpr()?);
                }
                _ => break,
            }
        }
        self.expect(&Tok::Colon)?;
        let ret = self.atype()?;
        Ok(SExpr::Jump(label, tys, args, ret, pos))
    }

    fn let_expr(&mut self) -> Result<SExpr, SurfaceError> {
        let pos = self.pos();
        self.expect(&Tok::Let)?;
        let x = self.ident()?;
        self.expect(&Tok::Colon)?;
        let t = self.ty()?;
        self.expect(&Tok::Equals)?;
        let rhs = self.expr()?;
        self.expect(&Tok::In)?;
        let body = self.expr()?;
        Ok(SExpr::Let(x, t, Box::new(rhs), Box::new(body), pos))
    }

    fn letrec_expr(&mut self) -> Result<SExpr, SurfaceError> {
        let pos = self.pos();
        self.expect(&Tok::LetRec)?;
        let mut binds = Vec::new();
        loop {
            let x = self.ident()?;
            self.expect(&Tok::Colon)?;
            let t = self.ty()?;
            self.expect(&Tok::Equals)?;
            let rhs = self.expr()?;
            binds.push((x, t, rhs));
            if self.peek() == &Tok::And {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Tok::In)?;
        let body = self.expr()?;
        Ok(SExpr::LetRec(binds, Box::new(body), pos))
    }

    fn case_expr(&mut self) -> Result<SExpr, SurfaceError> {
        let pos = self.pos();
        self.expect(&Tok::Case)?;
        let scrut = self.expr()?;
        self.expect(&Tok::Of)?;
        self.expect(&Tok::LBrace)?;
        let mut alts = vec![self.alt()?];
        while self.peek() == &Tok::Semi {
            self.bump();
            if self.peek() == &Tok::RBrace {
                break; // allow trailing semicolon
            }
            alts.push(self.alt()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(SExpr::Case(Box::new(scrut), alts, pos))
    }

    fn alt(&mut self) -> Result<SAlt, SurfaceError> {
        let pos = self.pos();
        let pat = match self.peek().clone() {
            Tok::ConId(c) => {
                self.bump();
                let mut fields = Vec::new();
                loop {
                    match self.peek().clone() {
                        Tok::Ident(x) => {
                            self.bump();
                            fields.push(x);
                        }
                        Tok::Underscore => {
                            self.bump();
                            fields.push("_wild".to_string());
                        }
                        _ => break,
                    }
                }
                SPat::Con(c, fields)
            }
            Tok::Int(n) => {
                self.bump();
                SPat::Lit(n)
            }
            Tok::Minus => {
                self.bump();
                match self.peek().clone() {
                    Tok::Int(n) => {
                        self.bump();
                        SPat::Lit(-n)
                    }
                    other => {
                        return Err(self.err(format!(
                            "expected integer after `-` in pattern, found `{other}`"
                        )))
                    }
                }
            }
            Tok::Underscore => {
                self.bump();
                SPat::Wild
            }
            other => return Err(self.err(format!("expected a pattern, found `{other}`"))),
        };
        self.expect(&Tok::Arrow)?;
        let rhs = self.expr()?;
        Ok(SAlt { pat, rhs, pos })
    }

    fn if_expr(&mut self) -> Result<SExpr, SurfaceError> {
        self.expect(&Tok::If)?;
        let c = self.expr()?;
        self.expect(&Tok::Then)?;
        let t = self.expr()?;
        self.expect(&Tok::Else)?;
        let f = self.expr()?;
        Ok(SExpr::If(Box::new(c), Box::new(t), Box::new(f)))
    }

    fn op_expr(&mut self) -> Result<SExpr, SurfaceError> {
        let lhs = self.arith()?;
        let op = match self.peek() {
            Tok::EqEq => BinOp::Eq,
            Tok::NotEq => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.arith()?;
        Ok(SExpr::BinOp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn arith(&mut self) -> Result<SExpr, SurfaceError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.term()?;
            lhs = SExpr::BinOp(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn term(&mut self) -> Result<SExpr, SurfaceError> {
        let mut lhs = self.fexpr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.fexpr()?;
            lhs = SExpr::BinOp(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn fexpr(&mut self) -> Result<SExpr, SurfaceError> {
        let mut head = self.aexpr()?;
        loop {
            match self.peek() {
                Tok::Ident(_) | Tok::ConId(_) | Tok::Int(_) | Tok::LParen => {
                    let arg = self.aexpr()?;
                    head = SExpr::App(Box::new(head), Box::new(arg));
                }
                Tok::At => {
                    self.bump();
                    let t = self.atype()?;
                    head = SExpr::TyApp(Box::new(head), t);
                }
                _ => return Ok(head),
            }
        }
    }

    fn aexpr(&mut self) -> Result<SExpr, SurfaceError> {
        self.enter()?;
        let r = self.aexpr_inner();
        self.depth -= 1;
        r
    }

    fn aexpr_inner(&mut self) -> Result<SExpr, SurfaceError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Ident(x) => {
                self.bump();
                Ok(SExpr::Var(x, pos))
            }
            Tok::ConId(c) => {
                self.bump();
                Ok(SExpr::Con(c, pos))
            }
            Tok::Int(n) => {
                self.bump();
                Ok(SExpr::Lit(n))
            }
            Tok::Minus => {
                self.bump();
                let e = self.aexpr()?;
                Ok(SExpr::Neg(Box::new(e)))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!("expected an expression, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn pe(src: &str) -> SExpr {
        parse_expr(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn precedence() {
        // 1 + 2 * 3 < 10  parses as (1 + (2*3)) < 10
        let e = pe("1 + 2 * 3 < 10");
        match e {
            SExpr::BinOp(BinOp::Lt, l, _) => match *l {
                SExpr::BinOp(BinOp::Add, _, r) => {
                    assert!(matches!(*r, SExpr::BinOp(BinOp::Mul, _, _)));
                }
                other => panic!("expected +, got {other:?}"),
            },
            other => panic!("expected <, got {other:?}"),
        }
    }

    #[test]
    fn application_binds_tighter_than_ops() {
        let e = pe("f 1 + g 2");
        assert!(matches!(e, SExpr::BinOp(BinOp::Add, _, _)));
    }

    #[test]
    fn lambda_and_typeapp() {
        let e = pe("\\@a (x : a) -> just @a x");
        match e {
            SExpr::Lam(bs, body) => {
                assert_eq!(bs.len(), 2);
                assert!(matches!(bs[0], SBinder::Ty(_)));
                assert!(matches!(*body, SExpr::App(..)));
            }
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn case_with_patterns() {
        let e = pe("case xs of { Nil -> 0; Cons h t -> h; _ -> 9 }");
        match e {
            SExpr::Case(_, alts, _) => {
                assert_eq!(alts.len(), 3);
                assert_eq!(
                    alts[1].pat,
                    SPat::Con("Cons".into(), vec!["h".into(), "t".into()])
                );
                assert_eq!(alts[2].pat, SPat::Wild);
            }
            other => panic!("expected case, got {other:?}"),
        }
    }

    #[test]
    fn letrec_groups() {
        let e = pe("letrec ev : Int -> Bool = \\(n : Int) -> od (n - 1) \
             and od : Int -> Bool = \\(n : Int) -> ev (n - 1) in ev 4");
        match e {
            SExpr::LetRec(binds, _, _) => assert_eq!(binds.len(), 2),
            other => panic!("expected letrec, got {other:?}"),
        }
    }

    #[test]
    fn program_with_data_and_defs() {
        let src = "
            data Shape = Circle Int | Square Int Int;
            def area : Shape -> Int =
              \\(s : Shape) -> case s of { Circle r -> 3 * r * r; Square w h -> w * h };
            def main : Int = area (Square 3 4);
        ";
        let p = parse_program(&lex(src).unwrap()).unwrap();
        assert_eq!(p.datas.len(), 1);
        assert_eq!(p.defs.len(), 2);
        assert_eq!(p.datas[0].ctors.len(), 2);
    }

    #[test]
    fn negative_literals() {
        let e = pe("-5 + 3");
        assert!(matches!(e, SExpr::BinOp(BinOp::Add, _, _)));
        let alt = pe("case x of { -1 -> 0; _ -> 1 }");
        match alt {
            SExpr::Case(_, alts, _) => assert_eq!(alts[0].pat, SPat::Lit(-1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn forall_types() {
        let src = "def id : forall a. a -> a = \\@a (x : a) -> x; def main : Int = id @Int 5;";
        let p = parse_program(&lex(src).unwrap()).unwrap();
        assert!(matches!(p.defs[0].ty, STy::Forall(..)));
    }

    #[test]
    fn error_has_position() {
        let err = parse_expr(&lex("let = 5").unwrap()).unwrap_err();
        assert!(err.to_string().contains("expected identifier"));
    }
}
