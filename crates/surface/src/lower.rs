//! Lowering: surface syntax → System F_J.
//!
//! The surface language is explicitly typed (annotations on every binder,
//! explicit `@ty` instantiation), so lowering is name resolution plus a
//! little local type reconstruction: `case` field binders get their types
//! by typing the (already lowered, annotated) scrutinee and instantiating
//! the constructor's fields — no global inference is ever needed.

use crate::ast::{BinOp, SAlt, SBinder, SData, SExpr, SJoinDef, SPat, SProgram, STy};
use crate::token::Pos;
use crate::SurfaceError;
use fj_ast::{Alt, AltCon, Binder, DataEnv, Expr, Ident, JoinDef, Name, NameSupply, PrimOp, Type};
use fj_check::{type_of, Gamma};
use std::collections::HashMap;

/// The output of lowering a program.
#[derive(Debug)]
pub struct Lowered {
    /// Prelude plus the program's own `data` declarations.
    pub data_env: DataEnv,
    /// The whole program as one expression
    /// (`let def₁ = … in … let defₙ = … in main`).
    pub expr: Expr,
    /// The name supply, positioned after all lowering-created names
    /// (hand to the optimizer).
    pub supply: NameSupply,
}

/// Lower a parsed program. The program must contain a `def main`.
///
/// # Errors
///
/// Returns [`SurfaceError::Lower`] for unbound names, unknown or
/// unsaturated constructors, and malformed declarations.
pub fn lower_program(p: &SProgram) -> Result<Lowered, SurfaceError> {
    let mut lw = Lowerer {
        data_env: DataEnv::prelude(),
        supply: NameSupply::new(),
        types: HashMap::new(),
        pending: HashMap::new(),
    };
    for d in &p.datas {
        lw.pending.insert(d.name.clone(), d.params.len());
    }
    for d in &p.datas {
        lw.declare_data(d)?;
    }
    lw.pending.clear();

    let mut scope = Scope::default();
    let mut defs: Vec<(Binder, Expr)> = Vec::new();
    let mut main: Option<Name> = None;
    for d in &p.defs {
        let ty = lw.lower_ty(&d.ty, &scope, d.pos)?;
        let body = lw.lower_expr(&d.body, &scope)?;
        let name = lw.supply.fresh(&d.name);
        lw.types.insert(name.clone(), ty.clone());
        scope.vars.insert(d.name.clone(), name.clone());
        if d.name == "main" {
            main = Some(name.clone());
        }
        defs.push((Binder::new(name, ty), body));
    }
    let Some(main) = main else {
        return Err(SurfaceError::Lower {
            pos: Pos { line: 1, col: 1 },
            msg: "program has no `def main`".into(),
        });
    };
    let expr = defs
        .into_iter()
        .rev()
        .fold(Expr::var(&main), |acc, (b, rhs)| Expr::let1(b, rhs, acc));
    Ok(Lowered {
        data_env: lw.data_env,
        expr,
        supply: lw.supply,
    })
}

/// Lower a standalone expression against the prelude (handy in tests and
/// examples). No top-level defs are in scope.
///
/// # Errors
///
/// As [`lower_program`].
pub fn lower_expr(e: &SExpr) -> Result<Lowered, SurfaceError> {
    let mut lw = Lowerer {
        data_env: DataEnv::prelude(),
        supply: NameSupply::new(),
        types: HashMap::new(),
        pending: HashMap::new(),
    };
    let expr = lw.lower_expr(e, &Scope::default())?;
    Ok(Lowered {
        data_env: lw.data_env,
        expr,
        supply: lw.supply,
    })
}

/// Lower a cache-entry payload: `data` declarations plus one bare
/// expression, against the prelude. Unlike [`lower_program`] there is no
/// `def main` wrapper, so the result is exactly the expression's lowering
/// — which is what lets the persistent cache α-verify a reloaded term
/// against the in-memory one.
///
/// # Errors
///
/// As [`lower_program`].
pub fn lower_entry(datas: &[SData], e: &SExpr) -> Result<Lowered, SurfaceError> {
    let mut lw = Lowerer {
        data_env: DataEnv::prelude(),
        supply: NameSupply::new(),
        types: HashMap::new(),
        pending: HashMap::new(),
    };
    for d in datas {
        lw.pending.insert(d.name.clone(), d.params.len());
    }
    for d in datas {
        lw.declare_data(d)?;
    }
    lw.pending.clear();
    let expr = lw.lower_expr(e, &Scope::default())?;
    Ok(Lowered {
        data_env: lw.data_env,
        expr,
        supply: lw.supply,
    })
}

#[derive(Clone, Debug, Default)]
struct Scope {
    vars: HashMap<String, Name>,
    tyvars: HashMap<String, Name>,
    /// Join-point labels live in their own namespace: a label is only
    /// reachable through `jump`, never as a value.
    joins: HashMap<String, Name>,
}

struct Lowerer {
    data_env: DataEnv,
    supply: NameSupply,
    types: HashMap<Name, Type>,
    /// Headers of datatypes currently being declared (name → arity), so
    /// recursive and mutually recursive field types resolve.
    pending: HashMap<String, usize>,
}

impl Lowerer {
    fn declare_data(&mut self, d: &SData) -> Result<(), SurfaceError> {
        let mut scope = Scope::default();
        let ty_vars: Vec<Name> = d
            .params
            .iter()
            .map(|p| {
                let n = self.supply.fresh(p);
                scope.tyvars.insert(p.clone(), n.clone());
                n
            })
            .collect();
        let mut ctors = Vec::new();
        for (cname, fields) in &d.ctors {
            let mut tys = Vec::new();
            for f in fields {
                tys.push(self.lower_ty(f, &scope, d.pos)?);
            }
            ctors.push((Ident::new(cname), tys));
        }
        self.data_env
            .declare(Ident::new(&d.name), ty_vars, ctors)
            .map_err(|e| SurfaceError::Lower {
                pos: d.pos,
                msg: e.to_string(),
            })
    }

    fn lower_ty(&mut self, t: &STy, scope: &Scope, pos: Pos) -> Result<Type, SurfaceError> {
        match t {
            STy::Var(v) => scope
                .tyvars
                .get(v)
                .map(|n| Type::Var(n.clone()))
                .ok_or_else(|| SurfaceError::Lower {
                    pos,
                    msg: format!("type variable `{v}` is not in scope"),
                }),
            STy::Con(name, args) => {
                if name == "Int" {
                    if args.is_empty() {
                        return Ok(Type::Int);
                    }
                    return Err(SurfaceError::Lower {
                        pos,
                        msg: "Int takes no type arguments".into(),
                    });
                }
                let arity = match self.pending.get(name) {
                    Some(a) => *a,
                    None => self
                        .data_env
                        .datatype(&Ident::new(name))
                        .map_err(|e| SurfaceError::Lower {
                            pos,
                            msg: e.to_string(),
                        })?
                        .ty_vars
                        .len(),
                };
                if arity != args.len() {
                    return Err(SurfaceError::Lower {
                        pos,
                        msg: format!(
                            "type constructor `{name}` expects {arity} arguments, got {}",
                            args.len()
                        ),
                    });
                }
                let args2 = args
                    .iter()
                    .map(|a| self.lower_ty(a, scope, pos))
                    .collect::<Result<_, _>>()?;
                Ok(Type::Con(Ident::new(name), args2))
            }
            STy::Fun(a, b) => Ok(Type::fun(
                self.lower_ty(a, scope, pos)?,
                self.lower_ty(b, scope, pos)?,
            )),
            STy::Forall(v, body) => {
                let n = self.supply.fresh(v);
                let mut s2 = scope.clone();
                s2.tyvars.insert(v.clone(), n.clone());
                Ok(Type::forall(n, self.lower_ty(body, &s2, pos)?))
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn lower_expr(&mut self, e: &SExpr, scope: &Scope) -> Result<Expr, SurfaceError> {
        match e {
            SExpr::Lit(n) => Ok(Expr::Lit(*n)),
            SExpr::Var(x, pos) => {
                scope
                    .vars
                    .get(x)
                    .map(Expr::var)
                    .ok_or_else(|| SurfaceError::Lower {
                        pos: *pos,
                        msg: format!("variable `{x}` is not in scope"),
                    })
            }
            SExpr::Con(c, pos) => self.lower_con(c, &[], &[], scope, *pos),
            SExpr::App(..) | SExpr::TyApp(..) => self.lower_app(e, scope),
            SExpr::Lam(binders, body) => {
                let mut s2 = scope.clone();
                let mut lowered: Vec<LoweredBinder> = Vec::new();
                for b in binders {
                    match b {
                        SBinder::Ty(a) => {
                            let n = self.supply.fresh(a);
                            s2.tyvars.insert(a.clone(), n.clone());
                            lowered.push(LoweredBinder::Ty(n));
                        }
                        SBinder::Val(x, t) => {
                            let ty = self.lower_ty(t, &s2, Pos { line: 0, col: 0 })?;
                            let n = self.supply.fresh(x);
                            s2.vars.insert(x.clone(), n.clone());
                            self.types.insert(n.clone(), ty.clone());
                            lowered.push(LoweredBinder::Val(Binder::new(n, ty)));
                        }
                    }
                }
                let mut out = self.lower_expr(body, &s2)?;
                for b in lowered.into_iter().rev() {
                    out = match b {
                        LoweredBinder::Ty(a) => Expr::ty_lam(a, out),
                        LoweredBinder::Val(b) => Expr::lam(b, out),
                    };
                }
                Ok(out)
            }
            SExpr::Let(x, t, rhs, body, pos) => {
                let ty = self.lower_ty(t, scope, *pos)?;
                let rhs2 = self.lower_expr(rhs, scope)?;
                let n = self.supply.fresh(x);
                self.types.insert(n.clone(), ty.clone());
                let mut s2 = scope.clone();
                s2.vars.insert(x.clone(), n.clone());
                let body2 = self.lower_expr(body, &s2)?;
                Ok(Expr::let1(Binder::new(n, ty), rhs2, body2))
            }
            SExpr::LetRec(binds, body, pos) => {
                let mut s2 = scope.clone();
                let mut binders = Vec::new();
                for (x, t, _) in binds {
                    let ty = self.lower_ty(t, scope, *pos)?;
                    let n = self.supply.fresh(x);
                    self.types.insert(n.clone(), ty.clone());
                    s2.vars.insert(x.clone(), n.clone());
                    binders.push(Binder::new(n, ty));
                }
                let mut lowered = Vec::new();
                for (b, (_, _, rhs)) in binders.into_iter().zip(binds) {
                    lowered.push((b, self.lower_expr(rhs, &s2)?));
                }
                let body2 = self.lower_expr(body, &s2)?;
                Ok(Expr::letrec(lowered, body2))
            }
            SExpr::Case(scrut, alts, pos) => self.lower_case(scrut, alts, scope, *pos),
            SExpr::If(c, t, f) => Ok(Expr::ite(
                self.lower_expr(c, scope)?,
                self.lower_expr(t, scope)?,
                self.lower_expr(f, scope)?,
            )),
            SExpr::BinOp(op, a, b) => {
                let pa = self.lower_expr(a, scope)?;
                let pb = self.lower_expr(b, scope)?;
                Ok(Expr::prim2(lower_op(*op), pa, pb))
            }
            // A negated literal *is* the negative literal (the grammar
            // has no negative integer token); folding it here makes
            // unparse → lower the identity on constant-folded optimizer
            // output, which the persistent cache's α-verification needs.
            SExpr::Neg(a) => match a.as_ref() {
                SExpr::Lit(n) if n.checked_neg().is_some() => Ok(Expr::Lit(-n)),
                _ => Ok(Expr::prim2(
                    PrimOp::Sub,
                    Expr::Lit(0),
                    self.lower_expr(a, scope)?,
                )),
            },
            SExpr::Join(rec, defs, body, pos) => self.lower_join(*rec, defs, body, scope, *pos),
            SExpr::Jump(label, tys, args, ret, pos) => {
                let j = scope
                    .joins
                    .get(label)
                    .cloned()
                    .ok_or_else(|| SurfaceError::Lower {
                        pos: *pos,
                        msg: format!("join point `{label}` is not in scope"),
                    })?;
                let tys2 = tys
                    .iter()
                    .map(|t| self.lower_ty(t, scope, *pos))
                    .collect::<Result<Vec<_>, _>>()?;
                let args2 = args
                    .iter()
                    .map(|a| self.lower_expr(a, scope))
                    .collect::<Result<Vec<_>, _>>()?;
                let ret2 = self.lower_ty(ret, scope, *pos)?;
                Ok(Expr::jump(&j, tys2, args2, ret2))
            }
        }
    }

    fn lower_join(
        &mut self,
        rec: bool,
        defs: &[SJoinDef],
        body: &SExpr,
        scope: &Scope,
        pos: Pos,
    ) -> Result<Expr, SurfaceError> {
        let labels: Vec<Name> = defs.iter().map(|d| self.supply.fresh(&d.name)).collect();
        // Recursive groups see their own labels; non-recursive bodies
        // don't (mirrors `let` vs `letrec`).
        let mut def_scope = scope.clone();
        if rec {
            for (d, n) in defs.iter().zip(&labels) {
                def_scope.joins.insert(d.name.clone(), n.clone());
            }
        }
        let mut jdefs = Vec::new();
        for (d, label) in defs.iter().zip(&labels) {
            let mut s2 = def_scope.clone();
            let mut ty_params = Vec::new();
            let mut params = Vec::new();
            for b in &d.binders {
                match b {
                    SBinder::Ty(a) => {
                        if !params.is_empty() {
                            return Err(SurfaceError::Lower {
                                pos,
                                msg: format!(
                                    "join `{}`: type parameters must precede value parameters",
                                    d.name
                                ),
                            });
                        }
                        let n = self.supply.fresh(a);
                        s2.tyvars.insert(a.clone(), n.clone());
                        ty_params.push(n);
                    }
                    SBinder::Val(x, t) => {
                        let ty = self.lower_ty(t, &s2, pos)?;
                        let n = self.supply.fresh(x);
                        s2.vars.insert(x.clone(), n.clone());
                        self.types.insert(n.clone(), ty.clone());
                        params.push(Binder::new(n, ty));
                    }
                }
            }
            let body2 = self.lower_expr(&d.body, &s2)?;
            jdefs.push(JoinDef {
                name: label.clone(),
                ty_params,
                params,
                body: body2,
            });
        }
        let mut s_body = scope.clone();
        for (d, n) in defs.iter().zip(&labels) {
            s_body.joins.insert(d.name.clone(), n.clone());
        }
        let body2 = self.lower_expr(body, &s_body)?;
        if rec {
            Ok(Expr::joinrec(jdefs, body2))
        } else {
            let def = jdefs.pop().ok_or_else(|| SurfaceError::Lower {
                pos,
                msg: "join needs a definition".into(),
            })?;
            Ok(Expr::join1(def, body2))
        }
    }

    /// Lower an application spine. Constructor heads must be saturated
    /// (`C @ty… arg…` with exactly the declared counts).
    fn lower_app(&mut self, e: &SExpr, scope: &Scope) -> Result<Expr, SurfaceError> {
        // Collect the spine.
        let mut tys_rev: Vec<&STy> = Vec::new();
        let mut args_rev: Vec<&SExpr> = Vec::new();
        let mut head = e;
        loop {
            match head {
                SExpr::App(f, a) => {
                    args_rev.push(a);
                    head = f;
                }
                SExpr::TyApp(f, t) => {
                    tys_rev.push(t);
                    head = f;
                }
                _ => break,
            }
        }
        if let SExpr::Con(c, pos) = head {
            // For constructors the spine must be @tys… then args….
            let tys: Vec<&STy> = tys_rev.into_iter().rev().collect();
            let args: Vec<&SExpr> = args_rev.into_iter().rev().collect();
            return self.lower_con(c, &tys, &args, scope, *pos);
        }
        // Ordinary application: rebuild left-to-right in source order.
        // (We must preserve interleaving of @ty and value arguments.)
        fn rebuild(lw: &mut Lowerer, e: &SExpr, scope: &Scope) -> Result<Expr, SurfaceError> {
            match e {
                SExpr::App(f, a) => {
                    let f2 = rebuild(lw, f, scope)?;
                    let a2 = lw.lower_expr(a, scope)?;
                    Ok(Expr::app(f2, a2))
                }
                SExpr::TyApp(f, t) => {
                    let f2 = rebuild(lw, f, scope)?;
                    let t2 = lw.lower_ty(t, scope, Pos { line: 0, col: 0 })?;
                    Ok(Expr::ty_app(f2, t2))
                }
                other => lw.lower_expr(other, scope),
            }
        }
        rebuild(self, e, scope)
    }

    fn lower_con(
        &mut self,
        c: &str,
        tys: &[&STy],
        args: &[&SExpr],
        scope: &Scope,
        pos: Pos,
    ) -> Result<Expr, SurfaceError> {
        let ident = Ident::new(c);
        let owner = self
            .data_env
            .owner_of(&ident)
            .map_err(|e| SurfaceError::Lower {
                pos,
                msg: e.to_string(),
            })?
            .clone();
        let con = self
            .data_env
            .constructor(&ident)
            .map_err(|e| SurfaceError::Lower {
                pos,
                msg: e.to_string(),
            })?;
        let n_fields = con.fields.len();
        if owner.ty_vars.len() != tys.len() {
            return Err(SurfaceError::Lower {
                pos,
                msg: format!(
                    "constructor `{c}` needs {} type argument(s) (`@ty`), got {}",
                    owner.ty_vars.len(),
                    tys.len()
                ),
            });
        }
        if n_fields != args.len() {
            return Err(SurfaceError::Lower {
                pos,
                msg: format!(
                    "constructor `{c}` must be saturated: expected {} field(s), got {}",
                    n_fields,
                    args.len()
                ),
            });
        }
        let tys2 = tys
            .iter()
            .map(|t| self.lower_ty(t, scope, pos))
            .collect::<Result<Vec<_>, _>>()?;
        let args2 = args
            .iter()
            .map(|a| self.lower_expr(a, scope))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Expr::Con(ident, tys2, args2))
    }

    fn lower_case(
        &mut self,
        scrut: &SExpr,
        alts: &[SAlt],
        scope: &Scope,
        pos: Pos,
    ) -> Result<Expr, SurfaceError> {
        let scrut2 = self.lower_expr(scrut, scope)?;
        // Reconstruct the scrutinee's type so field binders can be
        // annotated (lenient: jumps/free tyvars are fine).
        let mut gamma = Gamma::new();
        for (n, t) in &self.types {
            gamma.bind_var(n.clone(), t.clone());
        }
        let scrut_ty =
            type_of(&scrut2, &self.data_env, &gamma).map_err(|e| SurfaceError::Lower {
                pos,
                msg: format!("cannot type case scrutinee: {e}"),
            })?;
        let mut out = Vec::new();
        for alt in alts {
            match &alt.pat {
                SPat::Wild => out.push(Alt::simple(
                    AltCon::Default,
                    self.lower_expr(&alt.rhs, scope)?,
                )),
                SPat::Lit(n) => out.push(Alt::simple(
                    AltCon::Lit(*n),
                    self.lower_expr(&alt.rhs, scope)?,
                )),
                SPat::Con(cname, fields) => {
                    let ident = Ident::new(cname);
                    let Type::Con(_, ty_args) = &scrut_ty else {
                        return Err(SurfaceError::Lower {
                            pos: alt.pos,
                            msg: format!(
                                "constructor pattern `{cname}` against scrutinee of type {scrut_ty}"
                            ),
                        });
                    };
                    let (field_tys, _) =
                        self.data_env.instantiate(&ident, ty_args).map_err(|e| {
                            SurfaceError::Lower {
                                pos: alt.pos,
                                msg: e.to_string(),
                            }
                        })?;
                    if field_tys.len() != fields.len() {
                        return Err(SurfaceError::Lower {
                            pos: alt.pos,
                            msg: format!(
                                "pattern `{cname}` binds {} field(s), constructor has {}",
                                fields.len(),
                                field_tys.len()
                            ),
                        });
                    }
                    let mut s2 = scope.clone();
                    let binders: Vec<Binder> = fields
                        .iter()
                        .zip(field_tys)
                        .map(|(f, t)| {
                            let n = self.supply.fresh(f);
                            s2.vars.insert(f.clone(), n.clone());
                            self.types.insert(n.clone(), t.clone());
                            Binder::new(n, t)
                        })
                        .collect();
                    let rhs = self.lower_expr(&alt.rhs, &s2)?;
                    out.push(Alt {
                        con: AltCon::Con(ident),
                        binders,
                        rhs,
                    });
                }
            }
        }
        Ok(Expr::case(scrut2, out))
    }
}

enum LoweredBinder {
    Ty(Name),
    Val(Binder),
}

fn lower_op(op: BinOp) -> PrimOp {
    match op {
        BinOp::Add => PrimOp::Add,
        BinOp::Sub => PrimOp::Sub,
        BinOp::Mul => PrimOp::Mul,
        BinOp::Div => PrimOp::Div,
        BinOp::Rem => PrimOp::Rem,
        BinOp::Eq => PrimOp::Eq,
        BinOp::Ne => PrimOp::Ne,
        BinOp::Lt => PrimOp::Lt,
        BinOp::Le => PrimOp::Le,
        BinOp::Gt => PrimOp::Gt,
        BinOp::Ge => PrimOp::Ge,
    }
}
