//! # fj-surface — a small, explicitly typed surface language
//!
//! A mini-Haskell frontend for System F_J, used by the examples and the
//! NoFib-analogue benchmark suite so programs can be written as text
//! rather than AST constructions. The language has algebraic `data`
//! declarations, top-level `def`s, `let`/`letrec`, `case` with
//! constructor/literal/default patterns, `if`, lambdas with annotated
//! binders, explicit type abstraction (`\@a`) and application (`e @ty`),
//! and integer arithmetic/comparison operators.
//!
//! ```text
//! data Shape = Circle Int | Square Int Int;
//!
//! def area : Shape -> Int =
//!   \(s : Shape) -> case s of {
//!     Circle r   -> 3 * r * r;
//!     Square w h -> w * h
//!   };
//!
//! def main : Int = area (Square 3 4);
//! ```
//!
//! ## Example
//!
//! ```
//! use fj_surface::compile;
//! use fj_eval::{run_int, EvalMode};
//!
//! let lowered = compile("def main : Int = 6 * 7;")?;
//! assert_eq!(run_int(&lowered.expr, EvalMode::CallByName, 1_000)?, 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
mod lexer;
mod lower;
mod parser;
pub mod print;
mod token;
pub mod unparse;

pub use lexer::lex;
pub use lower::{lower_entry, lower_expr, lower_program, Lowered};
pub use parser::{parse_entry, parse_expr, parse_program, MAX_NESTING_DEPTH};
pub use print::{print_expr, print_program, print_ty, strip_program_positions};
pub use token::{Pos, Spanned, Tok};
pub use unparse::{unparse_entry, unparse_expr, unparse_main, unparse_ty};

use std::fmt;

/// Errors from any stage of the frontend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SurfaceError {
    /// Lexical error.
    Lex {
        /// Where.
        pos: Pos,
        /// What.
        msg: String,
    },
    /// Parse error.
    Parse {
        /// Where.
        pos: Pos,
        /// What.
        msg: String,
    },
    /// Name-resolution / lowering error.
    Lower {
        /// Where.
        pos: Pos,
        /// What.
        msg: String,
    },
}

impl fmt::Display for SurfaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SurfaceError::Lex { pos, msg } => write!(f, "lexical error at {pos}: {msg}"),
            SurfaceError::Parse { pos, msg } => write!(f, "parse error at {pos}: {msg}"),
            SurfaceError::Lower { pos, msg } => write!(f, "error at {pos}: {msg}"),
        }
    }
}

impl std::error::Error for SurfaceError {}

/// Compile a whole program: lex, parse, lower. The result carries the
/// extended datatype environment, the program as one F_J expression, and
/// the name supply to continue with.
///
/// # Errors
///
/// Returns the first [`SurfaceError`] encountered.
pub fn compile(src: &str) -> Result<Lowered, SurfaceError> {
    let toks = lex(src)?;
    let prog = parse_program(&toks)?;
    lower_program(&prog)
}

#[cfg(test)]
mod tests;
