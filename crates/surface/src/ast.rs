//! Surface-language abstract syntax (before name resolution).

use crate::token::Pos;

/// A surface type expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum STy {
    /// Lower-case name: a type variable.
    Var(String),
    /// Upper-case name applied to arguments: `List Int`, `Bool`, `Int`.
    Con(String, Vec<STy>),
    /// `a -> b`.
    Fun(Box<STy>, Box<STy>),
    /// `forall a. t`.
    Forall(String, Box<STy>),
}

/// A pattern in a `case` alternative.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SPat {
    /// `C x y` — constructor with variable fields.
    Con(String, Vec<String>),
    /// Integer literal.
    Lit(i64),
    /// `_`.
    Wild,
}

/// One `case` alternative.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SAlt {
    /// The pattern.
    pub pat: SPat,
    /// Its right-hand side.
    pub rhs: SExpr,
    /// Source position of the pattern.
    pub pos: Pos,
}

/// A binder in a lambda: value (`(x : t)`) or type (`@a`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SBinder {
    /// `(x : t)`.
    Val(String, STy),
    /// `@a`.
    Ty(String),
}

/// A surface expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SExpr {
    /// Variable reference.
    Var(String, Pos),
    /// Constructor reference (possibly applied via `App`/`TyApp`).
    Con(String, Pos),
    /// Integer literal.
    Lit(i64),
    /// Application `f x`.
    App(Box<SExpr>, Box<SExpr>),
    /// Type application `f @t`.
    TyApp(Box<SExpr>, STy),
    /// `\(x : t) @a … -> e`.
    Lam(Vec<SBinder>, Box<SExpr>),
    /// `let x : t = e in e`.
    Let(String, STy, Box<SExpr>, Box<SExpr>, Pos),
    /// `letrec f : t = e and … in e`.
    LetRec(Vec<(String, STy, SExpr)>, Box<SExpr>, Pos),
    /// `case e of { alts }`.
    Case(Box<SExpr>, Vec<SAlt>, Pos),
    /// `if c then t else f` (sugar for a `Bool` case).
    If(Box<SExpr>, Box<SExpr>, Box<SExpr>),
    /// Binary operator.
    BinOp(BinOp, Box<SExpr>, Box<SExpr>),
    /// Unary negation (desugars to `0 - e`).
    Neg(Box<SExpr>),
    /// `join j b… = e in e` / `joinrec j b… = e and … in e`.
    ///
    /// Surface syntax for the paper's join points, so optimized core
    /// terms (which are full of them) can round-trip through text.
    /// The `bool` is the `joinrec` flag.
    Join(bool, Vec<SJoinDef>, Box<SExpr>, Pos),
    /// `jump j @t… e… : t` — a saturated tail call to a join point,
    /// annotated with its result type.
    Jump(String, Vec<STy>, Vec<SExpr>, STy, Pos),
}

/// One join-point definition: label, binders, body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SJoinDef {
    /// Label name.
    pub name: String,
    /// Parameters, type (`@a`) and value (`(x : t)`) alike.
    pub binders: Vec<SBinder>,
    /// Body.
    pub body: SExpr,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `/=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A top-level `data` declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SData {
    /// Type constructor name.
    pub name: String,
    /// Type parameters (lower-case).
    pub params: Vec<String>,
    /// Constructors with field types.
    pub ctors: Vec<(String, Vec<STy>)>,
    /// Source position.
    pub pos: Pos,
}

/// A top-level `def` declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SDef {
    /// Name.
    pub name: String,
    /// Declared type.
    pub ty: STy,
    /// Body.
    pub body: SExpr,
    /// Source position.
    pub pos: Pos,
}

/// A whole program: datatypes, definitions, and which def is `main`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SProgram {
    /// `data` declarations, in order.
    pub datas: Vec<SData>,
    /// `def` declarations, in order (later defs may use earlier ones).
    pub defs: Vec<SDef>,
}
