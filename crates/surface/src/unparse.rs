//! Unparsing: System F_J → surface syntax.
//!
//! The inverse of [`crate::lower`]: terms built at the meta level (the
//! fusion library, the benchmark DSL) — or produced by the optimizer —
//! can be rendered as surface programs and fed through every
//! text-accepting route: the CLI, `fj serve`, and the persistent
//! on-disk cache, whose entries are exactly unparsed terms.
//!
//! The mapping is 1:1 where the grammars align ([`PrimOp`]↔`BinOp`,
//! `case`/`let`/`letrec`/lambdas, explicit `@ty` constructor arguments,
//! and `join`/`joinrec`/`jump` for the paper's join points) and total on
//! every core term. Core names render as `text_id` identifiers —
//! globally unique by construction, so re-lowering can never capture —
//! and re-lowering the rendered text yields a term α-equal to the
//! original (pinned by the round-trip tests; the one caveat is negative
//! literals, which re-lower as `0 - n` and constant-fold back in the
//! first simplifier pass).
//!
//! [`unparse_expr`] alone emits no `data` declarations, so only prelude
//! datatypes survive that trip; [`unparse_entry`] additionally renders
//! the non-prelude declarations of a [`DataEnv`], making any term
//! re-lowerable via [`crate::parse_entry`] + [`crate::lower_entry`].

use crate::ast::{BinOp, SAlt, SBinder, SData, SExpr, SJoinDef, SPat, STy};
use crate::print::{print_data, print_expr};
use crate::token::Pos;
use fj_ast::{Alt, AltCon, DataEnv, Expr, JoinBind, JoinDef, LetBind, Name, PrimOp, Type};

const NO_POS: Pos = Pos { line: 0, col: 0 };

/// Render a core name as a surface identifier.
///
/// The `_id` suffix keeps distinct uniques spelled distinctly (so
/// re-lowering cannot conflate two binders) and rules out keyword
/// collisions; the sanitized head keeps the lexer's lower-case-start
/// rule for variables even for names whose base text would read as a
/// constructor.
fn surface_name(n: &Name) -> String {
    let mut head: String = n
        .text()
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '\'')
        .collect();
    if !head.starts_with(|c: char| c.is_ascii_lowercase() || c == '_') {
        head.insert(0, 'x');
    }
    format!("{head}_{}", n.id())
}

/// Unparse a type. Total: every core type has a surface spelling.
pub fn unparse_ty(t: &Type) -> STy {
    match t {
        Type::Int => STy::Con("Int".into(), Vec::new()),
        Type::Var(a) => STy::Var(surface_name(a)),
        Type::Con(c, args) => STy::Con(c.as_str().into(), args.iter().map(unparse_ty).collect()),
        Type::Fun(a, b) => STy::Fun(Box::new(unparse_ty(a)), Box::new(unparse_ty(b))),
        Type::Forall(a, body) => STy::Forall(surface_name(a), Box::new(unparse_ty(body))),
    }
}

/// Unparse a core term into surface syntax. Total: every core form —
/// join points included — has a surface spelling.
pub fn unparse_expr(e: &Expr) -> SExpr {
    match e {
        Expr::Var(n) => SExpr::Var(surface_name(n), NO_POS),
        Expr::Lit(n) => unparse_lit(*n),
        Expr::Prim(op, args) => {
            debug_assert_eq!(args.len(), 2, "all primops are binary");
            SExpr::BinOp(
                unparse_op(*op),
                Box::new(unparse_expr(&args[0])),
                Box::new(unparse_expr(&args[1])),
            )
        }
        Expr::Lam(..) | Expr::TyLam(..) => {
            // Collapse a run of binders into one surface lambda.
            let mut binders = Vec::new();
            let mut body = e;
            loop {
                match body {
                    Expr::Lam(b, inner) => {
                        binders.push(SBinder::Val(surface_name(&b.name), unparse_ty(&b.ty)));
                        body = inner;
                    }
                    Expr::TyLam(a, inner) => {
                        binders.push(SBinder::Ty(surface_name(a)));
                        body = inner;
                    }
                    _ => break,
                }
            }
            SExpr::Lam(binders, Box::new(unparse_expr(body)))
        }
        Expr::App(f, a) => SExpr::App(Box::new(unparse_expr(f)), Box::new(unparse_expr(a))),
        Expr::TyApp(f, t) => SExpr::TyApp(Box::new(unparse_expr(f)), unparse_ty(t)),
        Expr::Con(c, tys, args) => {
            // Constructor spine: head, `@ty…`, then fields — the exact
            // saturated shape the lowerer demands.
            let mut out = SExpr::Con(c.as_str().into(), NO_POS);
            for t in tys {
                out = SExpr::TyApp(Box::new(out), unparse_ty(t));
            }
            for a in args {
                out = SExpr::App(Box::new(out), Box::new(unparse_expr(a)));
            }
            out
        }
        Expr::Case(scrut, alts) => SExpr::Case(
            Box::new(unparse_expr(scrut)),
            alts.iter().map(unparse_alt).collect(),
            NO_POS,
        ),
        Expr::Let(LetBind::NonRec(b, rhs), body) => SExpr::Let(
            surface_name(&b.name),
            unparse_ty(&b.ty),
            Box::new(unparse_expr(rhs)),
            Box::new(unparse_expr(body)),
            NO_POS,
        ),
        Expr::Let(LetBind::Rec(binds), body) => SExpr::LetRec(
            binds
                .iter()
                .map(|(b, rhs)| (surface_name(&b.name), unparse_ty(&b.ty), unparse_expr(rhs)))
                .collect(),
            Box::new(unparse_expr(body)),
            NO_POS,
        ),
        Expr::Join(jb, body) => {
            let (rec, defs) = match jb {
                JoinBind::NonRec(d) => (false, std::slice::from_ref(&**d)),
                JoinBind::Rec(ds) => (true, ds.as_slice()),
            };
            SExpr::Join(
                rec,
                defs.iter().map(unparse_join_def).collect(),
                Box::new(unparse_expr(body)),
                NO_POS,
            )
        }
        Expr::Jump(j, tys, args, res) => SExpr::Jump(
            surface_name(j),
            tys.iter().map(unparse_ty).collect(),
            args.iter().map(unparse_expr).collect(),
            unparse_ty(res),
            NO_POS,
        ),
    }
}

fn unparse_join_def(d: &JoinDef) -> SJoinDef {
    let mut binders: Vec<SBinder> = d
        .ty_params
        .iter()
        .map(|a| SBinder::Ty(surface_name(a)))
        .collect();
    binders.extend(
        d.params
            .iter()
            .map(|b| SBinder::Val(surface_name(&b.name), unparse_ty(&b.ty))),
    );
    SJoinDef {
        name: surface_name(&d.name),
        binders,
        body: unparse_expr(&d.body),
    }
}

/// Unparse a whole closed `Int`-typed term as a runnable program:
/// `def main : Int = <expr>;`.
pub fn unparse_main(e: &Expr) -> String {
    format!("def main : Int =\n  {};\n", print_expr(&unparse_expr(e)))
}

/// Unparse a term as a self-contained cache-entry payload: the
/// non-prelude `data` declarations of `env` (sorted by name, so the
/// output is deterministic) followed by the bare expression. The result
/// parses with [`crate::parse_entry`] and re-lowers with
/// [`crate::lower_entry`] to a term α-equal to `e` — the contract the
/// persistent cache's verify-on-load discipline relies on.
pub fn unparse_entry(e: &Expr, env: &DataEnv) -> String {
    let prelude = DataEnv::prelude();
    let mut datas: Vec<SData> = env
        .iter()
        .filter(|d| prelude.datatype(&d.name).is_err())
        .map(|d| SData {
            name: d.name.as_str().into(),
            params: d.ty_vars.iter().map(surface_name).collect(),
            ctors: d
                .ctors
                .iter()
                .map(|c| {
                    (
                        c.name.as_str().into(),
                        c.fields.iter().map(unparse_ty).collect(),
                    )
                })
                .collect(),
            pos: NO_POS,
        })
        .collect();
    datas.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::new();
    for d in &datas {
        out.push_str(&print_data(d));
        out.push('\n');
    }
    out.push_str(&print_expr(&unparse_expr(e)));
    out.push('\n');
    out
}

fn unparse_alt(alt: &Alt) -> SAlt {
    let pat = match &alt.con {
        AltCon::Con(c) => SPat::Con(
            c.as_str().into(),
            alt.binders.iter().map(|b| surface_name(&b.name)).collect(),
        ),
        AltCon::Lit(n) => SPat::Lit(*n),
        AltCon::Default => SPat::Wild,
    };
    SAlt {
        pat,
        rhs: unparse_expr(&alt.rhs),
        pos: NO_POS,
    }
}

/// Negative literals have no literal spelling in the grammar; render
/// them as negation, which the lowerer folds straight back to the
/// literal. `i64::MIN` needs one extra step since its magnitude has no
/// literal (it round-trips to `(-MAX) - 1`, semantically equal but not
/// α-equal — the one corner where unparse → lower is not the identity).
fn unparse_lit(n: i64) -> SExpr {
    if n >= 0 {
        SExpr::Lit(n)
    } else if n == i64::MIN {
        SExpr::BinOp(
            BinOp::Sub,
            Box::new(SExpr::Neg(Box::new(SExpr::Lit(i64::MAX)))),
            Box::new(SExpr::Lit(1)),
        )
    } else {
        SExpr::Neg(Box::new(SExpr::Lit(-n)))
    }
}

fn unparse_op(op: PrimOp) -> BinOp {
    match op {
        PrimOp::Add => BinOp::Add,
        PrimOp::Sub => BinOp::Sub,
        PrimOp::Mul => BinOp::Mul,
        PrimOp::Div => BinOp::Div,
        PrimOp::Rem => BinOp::Rem,
        PrimOp::Eq => BinOp::Eq,
        PrimOp::Ne => BinOp::Ne,
        PrimOp::Lt => BinOp::Lt,
        PrimOp::Le => BinOp::Le,
        PrimOp::Gt => BinOp::Gt,
        PrimOp::Ge => BinOp::Ge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, lower_entry, lower_expr, parse_entry};
    use fj_ast::alpha_eq;

    /// Compile a source program, unparse the lowered term, re-lower the
    /// unparsed text, and demand an α-equal term.
    fn round(src: &str) {
        let first = compile(src).unwrap_or_else(|e| panic!("compile failed: {e}"));
        let sexpr = unparse_expr(&first.expr);
        let printed = print_expr(&sexpr);
        let reparsed = crate::parse_expr(&crate::lex(&printed).unwrap_or_else(|e| {
            panic!("unparsed text does not lex: {e}\n{printed}");
        }))
        .unwrap_or_else(|e| panic!("unparsed text does not parse: {e}\n{printed}"));
        let second = lower_expr(&reparsed)
            .unwrap_or_else(|e| panic!("unparsed text does not lower: {e}\n{printed}"));
        assert!(
            alpha_eq(&first.expr, &second.expr),
            "round trip changed the term\noriginal:\n{}\nunparsed:\n{printed}\nre-lowered:\n{}",
            first.expr,
            second.expr
        );
    }

    #[test]
    fn binding_and_control_forms_round_trip() {
        round(
            "def main : Int =
               let x : Int = 3 * 4 in
               letrec go : Int -> Int -> Int =
                 \\(n : Int) (acc : Int) ->
                   if n <= 0 then acc else go (n - 1) (acc + n)
               in go x 0;",
        );
        round(
            "def main : Int =
               case Just @Int 5 of { Nothing -> 0; Just y -> y + 1 };",
        );
        round(
            "def main : Int =
               case 7 % 3 of { 0 -> 10; 1 -> 20; _ -> 30 };",
        );
    }

    #[test]
    fn polymorphism_round_trips() {
        round(
            "def main : Int =
               let id : forall a. a -> a = \\@a (x : a) -> x
               in id @Int 42;",
        );
        round(
            "def main : Int =
               case MkPair @Int @(Int -> Int) 1 (\\(k : Int) -> k * 2) of {
                 MkPair a f -> f a
               };",
        );
    }

    #[test]
    fn every_operator_round_trips() {
        round(
            "def main : Int =
               if 1 + 2 * 3 - 4 / 2 % 3 < 10
               then if 1 /= 2 then 5 else 6
               else if 2 <= 1 then 7
               else if 3 > 4 then 8
               else if 4 >= 3 then 9
               else if 1 == 1 then 10 else 11;",
        );
    }

    #[test]
    fn join_forms_round_trip() {
        // Surface join points survive the unparse/re-lower trip — the
        // property the persistent cache needs for *optimized* terms,
        // which are full of them after contification.
        round(
            "def main : Int =
               join stop (r : Int) = r * 2 in
               if 1 < 2 then jump stop 3 : Int else jump stop 4 : Int;",
        );
        round(
            "def main : Int =
               joinrec go (n : Int) (acc : Int) =
                 if n <= 0 then acc else jump go (n - 1) (acc + n) : Int
               in jump go 10 0 : Int;",
        );
        round(
            "def main : Int =
               joinrec ev (n : Int) = if n == 0 then 1 else jump od (n - 1) : Int
               and od (n : Int) = if n == 0 then 0 else jump ev (n - 1) : Int
               in jump ev 8 : Int;",
        );
        round(
            "def main : Int =
               join pick @a (x : a) (y : a) (k : a -> Int) = k x in
               jump pick @Int 1 2 (\\(v : Int) -> v + 40) : Int;",
        );
    }

    #[test]
    fn optimized_terms_round_trip() {
        // The real client: run the full join-points pipeline (whose
        // output binds join points) and round-trip the *optimized* term.
        let src = "def main : Int =
               letrec go : Int -> Int -> Int =
                 \\(n : Int) (acc : Int) ->
                   if n <= 0 then acc else go (n - 1) (acc + n)
               in go 100 0;";
        let lowered = compile(src).unwrap();
        let mut supply = lowered.supply;
        let opt = fj_core::optimize(
            &lowered.expr,
            &lowered.data_env,
            &mut supply,
            &fj_core::OptConfig::join_points(),
        )
        .unwrap();
        let text = unparse_entry(&opt, &lowered.data_env);
        let (datas, sexpr) = parse_entry(&crate::lex(&text).unwrap())
            .unwrap_or_else(|e| panic!("unparsed optimized term does not parse: {e}\n{text}"));
        let second = lower_entry(&datas, &sexpr)
            .unwrap_or_else(|e| panic!("unparsed optimized term does not lower: {e}\n{text}"));
        assert!(
            alpha_eq(&opt, &second.expr),
            "optimized round trip changed the term\n{text}"
        );
        fj_check::lint(&second.expr, &second.data_env)
            .unwrap_or_else(|e| panic!("re-lowered optimized term does not lint: {e}\n{text}"));
    }

    #[test]
    fn entries_carry_user_datatypes() {
        // A term mentioning non-prelude constructors must re-lower from
        // an entry payload alone: the payload carries the `data` decls.
        let src = "data Shape = Circle Int | Square Int Int;
               def main : Int =
                 case Square 3 4 of { Circle r -> r; Square w h -> w * h };";
        let lowered = {
            let p = crate::parse_program(&crate::lex(src).unwrap()).unwrap();
            crate::lower_program(&p).unwrap()
        };
        let text = unparse_entry(&lowered.expr, &lowered.data_env);
        assert!(
            text.contains("data Shape"),
            "entry payload lost the data decl:\n{text}"
        );
        let (datas, sexpr) = parse_entry(&crate::lex(&text).unwrap()).unwrap();
        let second = lower_entry(&datas, &sexpr).unwrap();
        assert!(alpha_eq(&lowered.expr, &second.expr));
        assert_eq!(
            lowered.data_env.fingerprint(),
            second.data_env.fingerprint(),
            "re-declared datatypes changed the env fingerprint"
        );
    }

    #[test]
    fn step_programs_unparse_and_relower() {
        // The motivating client: meta-level stream steppers over the
        // prelude's Step datatype must survive the trip and lint.
        use fj_ast::{Dsl, Ident, Type};
        let mut d = Dsl::new();
        let s = d.binder("s", Type::Int);
        let step_tys = vec![Type::Int, Type::Int];
        let body = Expr::ite(
            Expr::prim2(PrimOp::Gt, Expr::var(&s.name), Expr::Lit(9)),
            Expr::Con(Ident::new("Done"), step_tys.clone(), vec![]),
            Expr::Con(
                Ident::new("Yield"),
                step_tys,
                vec![
                    Expr::var(&s.name),
                    Expr::prim2(PrimOp::Add, Expr::var(&s.name), Expr::Lit(1)),
                ],
            ),
        );
        let x = d.binder("x", Type::Int);
        let st = d.binder("st", Type::Int);
        let program = Expr::case(
            Expr::app(Expr::lam(s, body), Expr::Lit(0)),
            vec![
                Alt::simple(AltCon::Con(Ident::new("Done")), Expr::Lit(0)),
                Alt {
                    con: AltCon::Con(Ident::new("Yield")),
                    binders: vec![x.clone(), st],
                    rhs: Expr::var(&x.name),
                },
            ],
        );
        let text = unparse_main(&program);
        let lowered = compile(&text).unwrap_or_else(|e| panic!("unparsed program: {e}\n{text}"));
        fj_check::lint(&lowered.expr, &lowered.data_env)
            .unwrap_or_else(|e| panic!("re-lowered program does not lint: {e}\n{text}"));
    }

    #[test]
    fn negative_literals_relower_well_typed() {
        // Negative literals render as negation (there is no literal
        // spelling); the re-lowered `0 - n` must still lint as Int —
        // including the magnitude edge case at i64::MIN.
        let text = unparse_main(&Expr::prim2(
            PrimOp::Add,
            Expr::Lit(-7),
            Expr::Lit(i64::MIN),
        ));
        let lowered = compile(&text).unwrap_or_else(|e| panic!("compile: {e}\n{text}"));
        fj_check::lint(&lowered.expr, &lowered.data_env)
            .unwrap_or_else(|e| panic!("negative-literal program does not lint: {e}\n{text}"));
    }
}
