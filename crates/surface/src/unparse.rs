//! Unparsing: System F_J → surface syntax.
//!
//! The inverse of [`crate::lower`] for the **join-free fragment**: terms
//! built at the meta level (the fusion library, the benchmark DSL) can
//! be rendered as surface programs and fed through every text-accepting
//! route — the CLI, `fj serve` — so those routes can be differentially
//! tested against the in-process pipeline on exactly the same programs.
//!
//! The mapping is 1:1 where the grammars align ([`PrimOp`]↔`BinOp`,
//! `case`/`let`/`letrec`/lambdas, explicit `@ty` constructor arguments)
//! and total on everything except join points and jumps, which the
//! surface grammar cannot express ([`UnparseError::Join`]). Core names
//! render as `text_id` identifiers — globally unique by construction, so
//! re-lowering can never capture — and re-lowering the rendered text
//! yields a term α-equal to the original (pinned by the round-trip
//! tests; the one caveat is negative literals, which re-lower as
//! `0 - n` and constant-fold back in the first simplifier pass).
//!
//! Only prelude datatypes survive the trip: the surface program this
//! module emits contains no `data` declarations, so a term mentioning
//! user-declared constructors re-lowers with an "unknown constructor"
//! error rather than silently changing meaning.

use crate::ast::{BinOp, SAlt, SBinder, SExpr, SPat, STy};
use crate::print::print_expr;
use crate::token::Pos;
use fj_ast::{Alt, AltCon, Expr, LetBind, Name, PrimOp, Type};
use std::fmt;

/// Why a term could not be unparsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnparseError {
    /// The term binds or invokes a join point, which surface syntax
    /// cannot express. Unparse before contification, not after.
    Join(String),
}

impl fmt::Display for UnparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnparseError::Join(label) => write!(
                f,
                "join point `{label}` cannot be expressed in surface syntax"
            ),
        }
    }
}

impl std::error::Error for UnparseError {}

const NO_POS: Pos = Pos { line: 0, col: 0 };

/// Render a core name as a surface identifier.
///
/// The `_id` suffix keeps distinct uniques spelled distinctly (so
/// re-lowering cannot conflate two binders) and rules out keyword
/// collisions; the sanitized head keeps the lexer's lower-case-start
/// rule for variables even for names whose base text would read as a
/// constructor.
fn surface_name(n: &Name) -> String {
    let mut head: String = n
        .text()
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '\'')
        .collect();
    if !head.starts_with(|c: char| c.is_ascii_lowercase() || c == '_') {
        head.insert(0, 'x');
    }
    format!("{head}_{}", n.id())
}

/// Unparse a type. Total: every core type has a surface spelling.
pub fn unparse_ty(t: &Type) -> STy {
    match t {
        Type::Int => STy::Con("Int".into(), Vec::new()),
        Type::Var(a) => STy::Var(surface_name(a)),
        Type::Con(c, args) => STy::Con(c.as_str().into(), args.iter().map(unparse_ty).collect()),
        Type::Fun(a, b) => STy::Fun(Box::new(unparse_ty(a)), Box::new(unparse_ty(b))),
        Type::Forall(a, body) => STy::Forall(surface_name(a), Box::new(unparse_ty(body))),
    }
}

/// Unparse a join-free core term into surface syntax.
///
/// # Errors
///
/// [`UnparseError::Join`] if the term contains a join binding or jump.
pub fn unparse_expr(e: &Expr) -> Result<SExpr, UnparseError> {
    Ok(match e {
        Expr::Var(n) => SExpr::Var(surface_name(n), NO_POS),
        Expr::Lit(n) => unparse_lit(*n),
        Expr::Prim(op, args) => {
            debug_assert_eq!(args.len(), 2, "all primops are binary");
            SExpr::BinOp(
                unparse_op(*op),
                Box::new(unparse_expr(&args[0])?),
                Box::new(unparse_expr(&args[1])?),
            )
        }
        Expr::Lam(..) | Expr::TyLam(..) => {
            // Collapse a run of binders into one surface lambda.
            let mut binders = Vec::new();
            let mut body = e;
            loop {
                match body {
                    Expr::Lam(b, inner) => {
                        binders.push(SBinder::Val(surface_name(&b.name), unparse_ty(&b.ty)));
                        body = inner;
                    }
                    Expr::TyLam(a, inner) => {
                        binders.push(SBinder::Ty(surface_name(a)));
                        body = inner;
                    }
                    _ => break,
                }
            }
            SExpr::Lam(binders, Box::new(unparse_expr(body)?))
        }
        Expr::App(f, a) => SExpr::App(Box::new(unparse_expr(f)?), Box::new(unparse_expr(a)?)),
        Expr::TyApp(f, t) => SExpr::TyApp(Box::new(unparse_expr(f)?), unparse_ty(t)),
        Expr::Con(c, tys, args) => {
            // Constructor spine: head, `@ty…`, then fields — the exact
            // saturated shape the lowerer demands.
            let mut out = SExpr::Con(c.as_str().into(), NO_POS);
            for t in tys {
                out = SExpr::TyApp(Box::new(out), unparse_ty(t));
            }
            for a in args {
                out = SExpr::App(Box::new(out), Box::new(unparse_expr(a)?));
            }
            out
        }
        Expr::Case(scrut, alts) => SExpr::Case(
            Box::new(unparse_expr(scrut)?),
            alts.iter().map(unparse_alt).collect::<Result<_, _>>()?,
            NO_POS,
        ),
        Expr::Let(LetBind::NonRec(b, rhs), body) => SExpr::Let(
            surface_name(&b.name),
            unparse_ty(&b.ty),
            Box::new(unparse_expr(rhs)?),
            Box::new(unparse_expr(body)?),
            NO_POS,
        ),
        Expr::Let(LetBind::Rec(binds), body) => SExpr::LetRec(
            binds
                .iter()
                .map(|(b, rhs)| Ok((surface_name(&b.name), unparse_ty(&b.ty), unparse_expr(rhs)?)))
                .collect::<Result<_, UnparseError>>()?,
            Box::new(unparse_expr(body)?),
            NO_POS,
        ),
        Expr::Join(jb, _) => {
            return Err(UnparseError::Join(jb.labels()[0].to_string()));
        }
        Expr::Jump(j, ..) => return Err(UnparseError::Join(j.to_string())),
    })
}

/// Unparse a whole closed `Int`-typed term as a runnable program:
/// `def main : Int = <expr>;`.
///
/// # Errors
///
/// As [`unparse_expr`].
pub fn unparse_main(e: &Expr) -> Result<String, UnparseError> {
    Ok(format!(
        "def main : Int =\n  {};\n",
        print_expr(&unparse_expr(e)?)
    ))
}

fn unparse_alt(alt: &Alt) -> Result<SAlt, UnparseError> {
    let pat = match &alt.con {
        AltCon::Con(c) => SPat::Con(
            c.as_str().into(),
            alt.binders.iter().map(|b| surface_name(&b.name)).collect(),
        ),
        AltCon::Lit(n) => SPat::Lit(*n),
        AltCon::Default => SPat::Wild,
    };
    Ok(SAlt {
        pat,
        rhs: unparse_expr(&alt.rhs)?,
        pos: NO_POS,
    })
}

/// Negative literals have no literal spelling in the grammar; render
/// them as negation, which re-lowers to `0 - n` and constant-folds back.
/// `i64::MIN` needs one extra step since its magnitude has no literal.
fn unparse_lit(n: i64) -> SExpr {
    if n >= 0 {
        SExpr::Lit(n)
    } else if n == i64::MIN {
        SExpr::BinOp(
            BinOp::Sub,
            Box::new(SExpr::Neg(Box::new(SExpr::Lit(i64::MAX)))),
            Box::new(SExpr::Lit(1)),
        )
    } else {
        SExpr::Neg(Box::new(SExpr::Lit(-n)))
    }
}

fn unparse_op(op: PrimOp) -> BinOp {
    match op {
        PrimOp::Add => BinOp::Add,
        PrimOp::Sub => BinOp::Sub,
        PrimOp::Mul => BinOp::Mul,
        PrimOp::Div => BinOp::Div,
        PrimOp::Rem => BinOp::Rem,
        PrimOp::Eq => BinOp::Eq,
        PrimOp::Ne => BinOp::Ne,
        PrimOp::Lt => BinOp::Lt,
        PrimOp::Le => BinOp::Le,
        PrimOp::Gt => BinOp::Gt,
        PrimOp::Ge => BinOp::Ge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, lower_expr};
    use fj_ast::alpha_eq;

    /// Compile a source program, unparse the lowered term, re-lower the
    /// unparsed text, and demand an α-equal term.
    fn round(src: &str) {
        let first = compile(src).unwrap_or_else(|e| panic!("compile failed: {e}"));
        let sexpr = unparse_expr(&first.expr).unwrap_or_else(|e| panic!("unparse failed: {e}"));
        let printed = print_expr(&sexpr);
        let reparsed = crate::parse_expr(&crate::lex(&printed).unwrap_or_else(|e| {
            panic!("unparsed text does not lex: {e}\n{printed}");
        }))
        .unwrap_or_else(|e| panic!("unparsed text does not parse: {e}\n{printed}"));
        let second = lower_expr(&reparsed)
            .unwrap_or_else(|e| panic!("unparsed text does not lower: {e}\n{printed}"));
        assert!(
            alpha_eq(&first.expr, &second.expr),
            "round trip changed the term\noriginal:\n{}\nunparsed:\n{printed}\nre-lowered:\n{}",
            first.expr,
            second.expr
        );
    }

    #[test]
    fn binding_and_control_forms_round_trip() {
        round(
            "def main : Int =
               let x : Int = 3 * 4 in
               letrec go : Int -> Int -> Int =
                 \\(n : Int) (acc : Int) ->
                   if n <= 0 then acc else go (n - 1) (acc + n)
               in go x 0;",
        );
        round(
            "def main : Int =
               case Just @Int 5 of { Nothing -> 0; Just y -> y + 1 };",
        );
        round(
            "def main : Int =
               case 7 % 3 of { 0 -> 10; 1 -> 20; _ -> 30 };",
        );
    }

    #[test]
    fn polymorphism_round_trips() {
        round(
            "def main : Int =
               let id : forall a. a -> a = \\@a (x : a) -> x
               in id @Int 42;",
        );
        round(
            "def main : Int =
               case MkPair @Int @(Int -> Int) 1 (\\(k : Int) -> k * 2) of {
                 MkPair a f -> f a
               };",
        );
    }

    #[test]
    fn every_operator_round_trips() {
        round(
            "def main : Int =
               if 1 + 2 * 3 - 4 / 2 % 3 < 10
               then if 1 /= 2 then 5 else 6
               else if 2 <= 1 then 7
               else if 3 > 4 then 8
               else if 4 >= 3 then 9
               else if 1 == 1 then 10 else 11;",
        );
    }

    #[test]
    fn step_programs_unparse_and_relower() {
        // The motivating client: meta-level stream steppers over the
        // prelude's Step datatype must survive the trip and lint.
        use fj_ast::{Dsl, Ident, Type};
        let mut d = Dsl::new();
        let s = d.binder("s", Type::Int);
        let step_tys = vec![Type::Int, Type::Int];
        let body = Expr::ite(
            Expr::prim2(PrimOp::Gt, Expr::var(&s.name), Expr::Lit(9)),
            Expr::Con(Ident::new("Done"), step_tys.clone(), vec![]),
            Expr::Con(
                Ident::new("Yield"),
                step_tys,
                vec![
                    Expr::var(&s.name),
                    Expr::prim2(PrimOp::Add, Expr::var(&s.name), Expr::Lit(1)),
                ],
            ),
        );
        let x = d.binder("x", Type::Int);
        let st = d.binder("st", Type::Int);
        let program = Expr::case(
            Expr::app(Expr::lam(s, body), Expr::Lit(0)),
            vec![
                Alt::simple(AltCon::Con(Ident::new("Done")), Expr::Lit(0)),
                Alt {
                    con: AltCon::Con(Ident::new("Yield")),
                    binders: vec![x.clone(), st],
                    rhs: Expr::var(&x.name),
                },
            ],
        );
        let text = unparse_main(&program).expect("join-free term must unparse");
        let lowered = compile(&text).unwrap_or_else(|e| panic!("unparsed program: {e}\n{text}"));
        fj_check::lint(&lowered.expr, &lowered.data_env)
            .unwrap_or_else(|e| panic!("re-lowered program does not lint: {e}\n{text}"));
    }

    #[test]
    fn negative_literals_relower_well_typed() {
        // Negative literals render as negation (there is no literal
        // spelling); the re-lowered `0 - n` must still lint as Int —
        // including the magnitude edge case at i64::MIN.
        let text = unparse_main(&Expr::prim2(
            PrimOp::Add,
            Expr::Lit(-7),
            Expr::Lit(i64::MIN),
        ))
        .unwrap();
        let lowered = compile(&text).unwrap_or_else(|e| panic!("compile: {e}\n{text}"));
        fj_check::lint(&lowered.expr, &lowered.data_env)
            .unwrap_or_else(|e| panic!("negative-literal program does not lint: {e}\n{text}"));
    }

    #[test]
    fn join_points_are_rejected() {
        use fj_ast::{JoinBind, JoinDef};
        let mut d = fj_ast::Dsl::new();
        let j = d.name("j");
        let term = Expr::Join(
            JoinBind::NonRec(std::sync::Arc::new(JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![],
                body: Expr::Lit(1),
            })),
            Expr::share(Expr::Jump(j, vec![], vec![], Type::Int)),
        );
        match unparse_expr(&term) {
            Err(UnparseError::Join(_)) => {}
            other => panic!("expected a join rejection, got {other:?}"),
        }
    }
}
