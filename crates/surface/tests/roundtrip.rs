//! Golden round-trip tests: parse → print → re-parse must reproduce the
//! AST (modulo source positions), the printer must be idempotent (its
//! output is a fixpoint), and both sides must lower to α-equivalent Core.

use fj_ast::alpha_eq;
use fj_surface::{lex, lower_program, parse_program, print_program, strip_program_positions};
use std::fs;
use std::path::PathBuf;

fn roundtrip(name: &str, src: &str) {
    let p1 = parse_program(&lex(src).unwrap_or_else(|e| panic!("{name}: lex: {e}")))
        .unwrap_or_else(|e| panic!("{name}: parse: {e}"));

    let printed = print_program(&p1);
    let p2 = parse_program(&lex(&printed).unwrap_or_else(|e| panic!("{name}: relex: {e}")))
        .unwrap_or_else(|e| panic!("{name}: reparse failed: {e}\n--- printed ---\n{printed}"));

    // Same tree, different positions.
    assert_eq!(
        strip_program_positions(&p1),
        strip_program_positions(&p2),
        "{name}: round trip changed the AST\n--- printed ---\n{printed}"
    );

    // Printing is a fixpoint: print (parse (print p)) == print p.
    assert_eq!(
        print_program(&p2),
        printed,
        "{name}: printer is not idempotent"
    );

    // Both sides lower to α-equivalent Core.
    let l1 = lower_program(&p1).unwrap_or_else(|e| panic!("{name}: lower original: {e}"));
    let l2 = lower_program(&p2).unwrap_or_else(|e| panic!("{name}: lower printed: {e}"));
    assert!(
        alpha_eq(&l1.expr, &l2.expr),
        "{name}: lowered Core differs after round trip\n--- printed ---\n{printed}"
    );
}

fn programs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../programs")
}

/// Every checked-in example program survives the round trip.
#[test]
fn example_programs_round_trip() {
    let dir = programs_dir();
    let mut seen = 0;
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "fj"))
        .collect();
    entries.sort();
    for path in entries {
        let src = fs::read_to_string(&path).unwrap();
        roundtrip(&path.display().to_string(), &src);
        seen += 1;
    }
    assert!(
        seen >= 3,
        "expected at least any.fj, shapes.fj, sum.fj; saw {seen}"
    );
}

/// The surface program embedded in `examples/quickstart.rs` (the one
/// piece of surface syntax in `examples/` — the other examples build
/// Core directly) also survives the round trip.
#[test]
fn quickstart_example_round_trips() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/quickstart.rs");
    let rs =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    let start = rs
        .find("const SRC: &str = \"")
        .expect("quickstart.rs should embed SRC")
        + "const SRC: &str = \"".len();
    let end = rs[start..].find("\n\";").expect("SRC should be terminated") + start;
    let src = rs[start..end].replace("\\\\", "\\");
    roundtrip("examples/quickstart.rs", &src);
}

/// Hand-picked programs exercising every surface construct the example
/// files do not cover: multi-group letrec, `forall`, literal and default
/// patterns, negation, division and remainder, nested data.
#[test]
fn construct_zoo_round_trips() {
    let src = r#"
        data Duo a b = MkDuo a b;
        data Rose a = Rose a (List (Rose a));

        def id : forall a. a -> a = \@a (x : a) -> x;

        def swap : forall a. forall b. Duo a b -> Duo b a =
          \@a @b (p : Duo a b) ->
            case p of { MkDuo x y -> MkDuo @b @a y x };

        def classify : Int -> Int =
          \(n : Int) -> case n of { -1 -> 0 - 1; 0 -> 0; 1 -> 1; _ -> n / 2 + n % 3 };

        def parity : Int -> Bool =
          \(n : Int) ->
            letrec ev : Int -> Bool = \(k : Int) -> if k == 0 then True else od (k - 1)
            and od : Int -> Bool = \(k : Int) -> if k == 0 then False else ev (k - 1)
            in ev (if n < 0 then -n else n);

        def main : Int =
          let p : Duo Int Int = MkDuo @Int @Int 3 4 in
          case swap @Int @Int p of { MkDuo a b -> a * 10 + b + classify (-7) };
    "#;
    roundtrip("construct-zoo", src);
}
