//! Snapshot tests pinning the exact text and position of frontend
//! diagnostics. These are golden strings on purpose: error messages are
//! part of the user interface, and an accidental change should fail a
//! test, not slip through.

use fj_surface::{compile, lex, parse_expr, parse_program, SurfaceError, MAX_NESTING_DEPTH};

fn expr_err(src: &str) -> String {
    parse_expr(&lex(src).expect("lexes"))
        .expect_err("should not parse")
        .to_string()
}

fn program_err(src: &str) -> String {
    parse_program(&lex(src).expect("lexes"))
        .expect_err("should not parse")
        .to_string()
}

#[test]
fn expression_errors_are_pinned() {
    let cases = [
        (
            "let = 5",
            "parse error at 1:5: expected identifier, found `=`",
        ),
        (
            "1 +",
            "parse error at 1:4: expected an expression, found `<eof>`",
        ),
        ("(1 + 2", "parse error at 1:7: expected `)`, found `<eof>`"),
        (
            "\\ -> 1",
            "parse error at 1:3: lambda needs at least one binder",
        ),
        (
            "case x of { 1 2 -> 3 }",
            "parse error at 1:15: expected `->`, found `2`",
        ),
        (
            "case x of { if -> 1 }",
            "parse error at 1:13: expected a pattern, found `if`",
        ),
        (
            "case x of { - y -> 1 }",
            "parse error at 1:15: expected integer after `-` in pattern, found `y`",
        ),
        (
            "if 1 then 2",
            "parse error at 1:12: expected `else`, found `<eof>`",
        ),
        (
            "let x : a b -> Int = 1 in x",
            "parse error at 1:13: only type constructors can be applied",
        ),
        (
            "letrec f : Int = 1 and in f",
            "parse error at 1:24: expected identifier, found `in`",
        ),
    ];
    for (src, expect) in cases {
        assert_eq!(expr_err(src), expect, "for input {src:?}");
    }
}

#[test]
fn program_errors_are_pinned() {
    let cases = [
        (
            "42;",
            "parse error at 1:1: expected `data` or `def`, found `42`",
        ),
        (
            "def main : Int = 1",
            "parse error at 1:19: expected `;`, found `<eof>`",
        ),
        (
            "data maybe = Nothing;",
            "parse error at 1:6: expected constructor name, found `maybe`",
        ),
        (
            "data Color = ;",
            "parse error at 1:14: expected constructor name, found `;`",
        ),
        (
            "def f : = 1;",
            "parse error at 1:9: expected a type, found `=`",
        ),
    ];
    for (src, expect) in cases {
        assert_eq!(program_err(src), expect, "for input {src:?}");
    }
}

#[test]
fn lex_errors_are_pinned() {
    let err = lex("def main : Int = 1 ? 2;").expect_err("should not lex");
    assert!(
        matches!(err, SurfaceError::Lex { .. }),
        "expected a lex error, got {err:?}"
    );
    assert_eq!(
        err.to_string(),
        "lexical error at 1:20: unexpected character '?'"
    );
}

#[test]
fn lowering_errors_are_pinned() {
    // An unbound variable is caught during lowering, with its position.
    let err = compile("def main : Int = missing;").expect_err("should not lower");
    assert!(matches!(err, SurfaceError::Lower { .. }), "got {err:?}");
    let msg = err.to_string();
    assert!(
        msg.starts_with("error at 1:18:") && msg.contains("missing"),
        "unexpected lowering message: {msg}"
    );
}

#[test]
fn nesting_depth_limit_is_pinned() {
    // Just past the limit: the diagnostic (text and position) is a
    // golden string like the rest of this file. Each `(...)` level costs
    // two depth units (one for the expression, one for the atom), so the
    // limit trips at paren #251 of 300.
    let deep = format!("{}1{}", "(".repeat(300), ")".repeat(300));
    assert_eq!(
        expr_err(&deep),
        "parse error at 1:251: nesting exceeds depth limit (500)"
    );
}

#[test]
fn pathological_nesting_returns_an_error_not_a_crash() {
    // A recursive-descent parser without a depth guard dies here with a
    // stack overflow (an abort — not catchable, not reportable). The
    // guard must turn every such input into an ordinary parse error.
    for n in [1_000usize, 10_000, 100_000] {
        let deep = format!("{}1{}", "(".repeat(n), ")".repeat(n));
        let err = parse_expr(&lex(&deep).expect("lexes")).expect_err("must be rejected");
        assert!(
            matches!(err, SurfaceError::Parse { .. }),
            "depth {n}: {err:?}"
        );
        assert!(err.to_string().contains("depth limit"), "depth {n}: {err}");
    }
    // Deep nesting in types and lambda bodies is guarded too.
    let deep_ty = format!(
        "def f : {}Int{} = 1;",
        "(".repeat(10_000),
        ")".repeat(10_000)
    );
    let err = parse_program(&lex(&deep_ty).expect("lexes")).expect_err("must be rejected");
    assert!(err.to_string().contains("depth limit"), "{err}");
}

#[test]
fn nesting_below_the_limit_still_parses() {
    let n = MAX_NESTING_DEPTH / 2 - 10;
    let deep = format!("{}1{}", "(".repeat(n), ")".repeat(n));
    parse_expr(&lex(&deep).expect("lexes")).expect("well within the limit");
}
