//! Debug probe: dump a benchmark's optimized forms and metrics.
fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "para".into());
    let p = fj_nofib::programs()
        .into_iter()
        .find(|p| p.name == name)
        .expect("program");
    for (label, cfg) in [
        ("baseline", fj_core::OptConfig::baseline()),
        ("join-points", fj_core::OptConfig::join_points()),
    ] {
        let mut lowered = fj_surface::compile(p.source).unwrap();
        let out =
            fj_core::optimize(&lowered.expr, &lowered.data_env, &mut lowered.supply, &cfg).unwrap();
        let o = fj_eval::run(&out, fj_eval::EvalMode::CallByValue, 50_000_000).unwrap();
        println!("=== {label}: {}\n{out}\n", o.metrics);
    }
}
