//! The persistent cache serializes terms as surface text and re-lowers
//! them on load, so `unparse_entry → parse_entry → lower_entry` must be
//! the identity up to α-equivalence on *optimizer output* — join points,
//! jumps, negative literals and all. This pins that contract across the
//! whole nofib suite under both real pipelines (the surface crate's unit
//! tests cover the constructs individually; this covers them at scale).

use fj_core::OptConfig;

#[test]
fn every_optimized_nofib_term_round_trips_alpha_equal() {
    for (preset, cfg) in [
        ("join-points", OptConfig::join_points()),
        ("baseline", OptConfig::baseline()),
    ] {
        for p in fj_nofib::programs() {
            let mut lowered = fj_surface::compile(p.source).unwrap();
            let (opt, _) = fj_core::optimize_with_report(
                &lowered.expr,
                &lowered.data_env,
                &mut lowered.supply,
                &cfg,
            )
            .unwrap_or_else(|e| panic!("{} [{preset}]: optimize: {e}", p.name));
            let text = fj_surface::unparse_entry(&opt, &lowered.data_env);
            let toks = fj_surface::lex(&text)
                .unwrap_or_else(|e| panic!("{} [{preset}]: lex: {e}", p.name));
            let (datas, expr) = fj_surface::parse_entry(&toks)
                .unwrap_or_else(|e| panic!("{} [{preset}]: parse: {e}", p.name));
            let re = fj_surface::lower_entry(&datas, &expr)
                .unwrap_or_else(|e| panic!("{} [{preset}]: lower: {e}", p.name));
            assert!(
                fj_ast::alpha_eq(&opt, &re.expr),
                "{} [{preset}]: unparse/relower changed the term",
                p.name
            );
            assert_eq!(
                lowered.data_env.fingerprint(),
                re.data_env.fingerprint(),
                "{} [{preset}]: datatype environment must survive",
                p.name
            );
            // The re-lowered input must also still lint: adoption
            // re-checks this before serving a disk entry.
            fj_check::lint(&re.expr, &re.data_env).unwrap_or_else(|e| {
                panic!("{} [{preset}]: relowered term fails lint: {e}", p.name)
            });
        }
    }
}
