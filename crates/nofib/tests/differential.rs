//! The per-pass differential oracle over the whole nofib suite: every
//! benchmark is run through **both** pipelines one pass at a time, and
//! after each pass the program must still lint and still compute the
//! same value on the abstract machine (fj-testkit's oracle). This is the
//! forensic companion to the whole-pipeline agreement test in the crate:
//! when a pass regression appears, this test names the pass.

use fj_core::OptConfig;
use fj_eval::EvalMode;
use fj_nofib::{programs, FUEL};
use fj_surface::compile;
use fj_testkit::differential;

#[test]
fn every_pass_preserves_every_benchmark() {
    for p in programs() {
        let lowered = compile(p.source).unwrap_or_else(|e| panic!("{}: compile: {e}", p.name));
        for (label, cfg) in [
            ("baseline", OptConfig::baseline()),
            ("join-points", OptConfig::join_points()),
        ] {
            let mut supply = lowered.supply.clone();
            let report = differential(
                &lowered.expr,
                &lowered.data_env,
                &mut supply,
                &cfg,
                EvalMode::CallByValue,
                FUEL,
            )
            .unwrap_or_else(|err| panic!("{} [{label}]: {err}", p.name));
            assert_eq!(
                report.passes.len(),
                cfg.passes.len(),
                "{} [{label}]",
                p.name
            );
            // The oracle's end-to-end delta is the suite's headline claim:
            // optimization never adds allocations on any benchmark.
            assert!(
                report.alloc_delta() <= 0,
                "{} [{label}]: optimization added allocations ({:+})",
                p.name,
                report.alloc_delta()
            );
        }
    }
}
