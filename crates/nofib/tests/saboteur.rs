//! The fault-injection matrix over the whole benchmark suite: every
//! saboteur mode is aimed at every nofib program (rotating the targeted
//! pass through the pipeline), and for each cell the resilient driver
//! must catch the fault, roll the pass back, and still hand both
//! backends a program that computes the unoptimized program's value.
//! A second test pins how rolled-back passes render in the `fj report`
//! markdown, so rollback reasons survive the trip into the report.

use fj_ast::alpha_eq;
use fj_core::{optimize_resilient, OptConfig, PassOutcome, RollbackReason};
use fj_eval::{EvalMode, Metrics};
use fj_nofib::{format_report, programs, ReportRow, Row, Suite, FUEL, VM_FUEL};
use fj_surface::compile;
use fj_testkit::{saboteur, Sabotage};
use std::time::Duration;

/// Run one sabotage mode against every benchmark, targeting pass
/// `i % passes.len()` for the `i`-th program so the matrix sweeps the
/// whole pipeline.
fn matrix(mode: Sabotage) {
    let mut fired_total = 0u64;
    for (i, p) in programs().iter().enumerate() {
        let mut lowered = compile(p.source).unwrap_or_else(|e| panic!("{}: compile: {e}", p.name));
        let reference = fj_eval::run(&lowered.expr, EvalMode::CallByValue, FUEL)
            .unwrap_or_else(|e| panic!("{}: unoptimized run: {e}", p.name))
            .value;
        let target = i % OptConfig::join_points().passes.len();
        let (tap, handle) = saboteur(mode, target, 0xF00D + i as u64);
        let mut cfg = OptConfig::join_points().with_tap(tap);
        if mode == Sabotage::InjectSpin {
            cfg = cfg.with_pass_deadline(Duration::from_millis(40));
        }
        let (out, report) =
            optimize_resilient(&lowered.expr, &lowered.data_env, &mut lowered.supply, &cfg)
                .unwrap_or_else(|e| panic!("{}: resilient pipeline failed: {e}", p.name));
        // Abandoned deadline workers are capped and cooperative spins
        // unwind once cancelled, so the per-run report never sees more
        // than the spawn cap.
        assert!(
            report.leaked_workers <= fj_core::MAX_LEAKED_WORKERS,
            "{} [{}]: {} leaked workers exceeds the cap",
            p.name,
            mode.name(),
            report.leaked_workers
        );
        let fired = handle.fired();
        fired_total += fired;
        let rolled: Vec<_> = report.rolled_back().collect();
        assert_eq!(
            rolled.len() as u64,
            fired,
            "{} [{}]: {fired} faults fired but {} passes rolled back",
            p.name,
            mode.name(),
            rolled.len()
        );
        if fired > 0 {
            assert_eq!(
                rolled[0].pass,
                cfg.passes[target].name(),
                "{} [{}]: wrong pass rolled back",
                p.name,
                mode.name()
            );
        }
        let machine = fj_eval::run(&out, EvalMode::CallByValue, FUEL)
            .unwrap_or_else(|e| panic!("{} [{}]: machine: {e}", p.name, mode.name()))
            .value;
        let vm = fj_vm::run(&out, EvalMode::CallByValue, VM_FUEL)
            .unwrap_or_else(|e| panic!("{} [{}]: vm: {e}", p.name, mode.name()))
            .value;
        assert_eq!(
            machine,
            reference,
            "{} [{}]: machine value changed",
            p.name,
            mode.name()
        );
        assert_eq!(
            vm,
            reference,
            "{} [{}]: vm value changed",
            p.name,
            mode.name()
        );
    }
    assert!(
        fired_total > 0,
        "mode {} never fired on any benchmark — the matrix is vacuous",
        mode.name()
    );
    if mode == Sabotage::InjectSpin {
        // The spins are cooperative: every worker the deadline abandoned
        // must eventually observe its cancel flag and exit, settling the
        // process-wide leak counter back to zero.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while fj_core::leaked_guard_workers() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "{} abandoned workers never drained",
                fj_core::leaked_guard_workers()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

#[test]
fn swap_case_alts_over_the_suite() {
    matrix(Sabotage::SwapCaseAlts);
}

#[test]
fn drop_jump_arg_over_the_suite() {
    matrix(Sabotage::DropJumpArg);
}

#[test]
fn rename_bound_var_over_the_suite() {
    matrix(Sabotage::RenameBoundVar);
}

#[test]
fn lie_type_annotation_over_the_suite() {
    matrix(Sabotage::LieTypeAnnotation);
}

#[test]
fn inject_panic_over_the_suite() {
    matrix(Sabotage::InjectPanic);
}

#[test]
fn inject_spin_over_the_suite() {
    matrix(Sabotage::InjectSpin);
}

/// With no saboteur installed, the resilient driver is the strict driver:
/// same output term, same rewrite counters, nothing rolled back.
#[test]
fn resilient_is_strict_on_the_suite_when_nothing_fails() {
    for p in programs() {
        let lowered = compile(p.source).unwrap_or_else(|e| panic!("{}: compile: {e}", p.name));
        let cfg = OptConfig::join_points();
        let mut s1 = lowered.supply.clone();
        let mut s2 = lowered.supply.clone();
        let (strict_out, strict_rep) =
            fj_core::optimize_with_report(&lowered.expr, &lowered.data_env, &mut s1, &cfg)
                .unwrap_or_else(|e| panic!("{}: strict: {e}", p.name));
        let (res_out, res_rep) =
            optimize_resilient(&lowered.expr, &lowered.data_env, &mut s2, &cfg)
                .unwrap_or_else(|e| panic!("{}: resilient: {e}", p.name));
        assert!(res_rep.all_applied(), "{}: spurious rollback", p.name);
        assert!(
            alpha_eq(&strict_out, &res_out),
            "{}: strict and resilient outputs differ",
            p.name
        );
        assert_eq!(
            strict_rep.totals().total(),
            res_rep.totals().total(),
            "{}: rewrite counters differ",
            p.name
        );
    }
}

/// Rollback reasons round-trip into the `fj report` markdown: a report
/// whose pass was rolled back renders an outcome cell carrying the
/// human-readable reason.
#[test]
fn rolled_back_outcome_round_trips_through_report_markdown() {
    let mut lowered = compile(programs()[0].source).unwrap();
    let (tap, handle) = saboteur(Sabotage::InjectPanic, 0, 7);
    let cfg = OptConfig::join_points().with_tap(tap);
    let (_, report) =
        optimize_resilient(&lowered.expr, &lowered.data_env, &mut lowered.supply, &cfg).unwrap();
    assert_eq!(handle.fired(), 1);
    let reason_text = report
        .rolled_back()
        .next()
        .map(|p| match &p.outcome {
            PassOutcome::RolledBack(r) => r.to_string(),
            PassOutcome::Applied => unreachable!(),
        })
        .expect("one pass must be rolled back");
    assert!(matches!(
        report.rolled_back().next().unwrap().outcome,
        PassOutcome::RolledBack(RollbackReason::Panic(_))
    ));
    let row = ReportRow {
        row: Row {
            name: "synthetic",
            suite: Suite::Spectral,
            value: 0,
            baseline: Metrics::default(),
            joined: Metrics::default(),
        },
        baseline_report: report.clone(),
        joined_report: report,
        machine_wall: Duration::ZERO,
        vm_wall: Duration::ZERO,
    };
    let md = format_report(&[row]);
    assert!(
        md.contains("rolled back:"),
        "markdown lost the rollback outcome:\n{md}"
    );
    assert!(
        md.contains(&reason_text),
        "markdown lost the rollback reason `{reason_text}`:\n{md}"
    );
}
