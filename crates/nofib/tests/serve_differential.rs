//! ISSUE acceptance: the compile service is *transparent*. For every
//! nofib program, under both real pipelines, four compile routes must
//! agree up to α-equivalence — serial, parallel batch (`optimize_many`),
//! served with a cold cache (miss), and served with a hot cache (hit) —
//! and the served term must produce the same value and allocation
//! metrics as the serial one on both backends.
//!
//! This is the concurrency companion of `vm_differential`: it pins down
//! the two ways a cache could lie (a stale or colliding entry served as
//! a hit, and a cross-thread name-capture bug in the batch path).

use fj_ast::alpha_eq;
use fj_core::{optimize_many, optimize_with_report, OptConfig};
use fj_eval::EvalMode;
use fj_nofib::{programs, FUEL, VM_FUEL};
use fj_server::{CacheDisposition, CompileOpts, ServerState};

fn opts_for(preset: &str) -> CompileOpts {
    CompileOpts {
        preset: preset.to_string(),
        ..CompileOpts::default()
    }
}

#[test]
fn served_compiles_match_serial_and_batch_on_every_program() {
    let presets: [(&str, OptConfig); 2] = [
        ("join-points", OptConfig::join_points()),
        ("baseline", OptConfig::baseline()),
    ];
    for (preset, cfg) in presets {
        // One server per preset: every program lands in the same cache,
        // so the hot pass also exercises shard routing under load.
        let server = ServerState::new(4, 16 << 20);
        let opts = opts_for(preset);

        // Route 1: serial, the reference.
        let mut serial = Vec::new();
        let mut jobs = Vec::new();
        for p in programs() {
            let lowered = fj_surface::compile(p.source)
                .unwrap_or_else(|e| panic!("{} [{preset}]: compile: {e}", p.name));
            jobs.push((
                lowered.expr.clone(),
                lowered.data_env.clone(),
                lowered.supply.clone(),
            ));
            let mut supply = lowered.supply;
            let (term, _) =
                optimize_with_report(&lowered.expr, &lowered.data_env, &mut supply, &cfg)
                    .unwrap_or_else(|e| panic!("{} [{preset}]: serial optimize: {e}", p.name));
            serial.push(term);
        }

        // Route 2: the whole suite as one parallel batch.
        let batched = optimize_many(jobs, &cfg);
        for ((p, want), got) in programs().iter().zip(&serial).zip(batched) {
            let (term, _) =
                got.unwrap_or_else(|e| panic!("{} [{preset}]: batch optimize: {e}", p.name));
            assert!(
                alpha_eq(want, &term),
                "{} [{preset}]: optimize_many disagrees with the serial pipeline",
                p.name
            );
        }

        // Routes 3 and 4: served cold (miss), then served hot — once with
        // byte-identical text (textual front-cache hit) and once with a
        // trailing comment added (re-parses, α-hits the term cache).
        for (p, want) in programs().iter().zip(&serial) {
            let cold = server
                .compile_source(p.source, &opts)
                .unwrap_or_else(|e| panic!("{} [{preset}]: served cold: {}", p.name, e.message()));
            assert_eq!(cold.cache, CacheDisposition::Miss, "{} [{preset}]", p.name);
            assert!(
                alpha_eq(want, &cold.term),
                "{} [{preset}]: served cold compile disagrees with serial",
                p.name
            );
            let hot = server
                .compile_source(p.source, &opts)
                .unwrap_or_else(|e| panic!("{} [{preset}]: served hot: {}", p.name, e.message()));
            assert_eq!(hot.cache, CacheDisposition::Hit, "{} [{preset}]", p.name);
            assert!(
                alpha_eq(want, &hot.term),
                "{} [{preset}]: textual cache hit disagrees with serial",
                p.name
            );
            let perturbed = format!("{}\n-- differential probe\n", p.source);
            let alpha_hit = server
                .compile_source(&perturbed, &opts)
                .unwrap_or_else(|e| panic!("{} [{preset}]: served α-hit: {}", p.name, e.message()));
            assert_eq!(
                alpha_hit.cache,
                CacheDisposition::Hit,
                "{} [{preset}]",
                p.name
            );
            assert!(
                alpha_eq(want, &alpha_hit.term),
                "{} [{preset}]: term-cache hit disagrees with serial",
                p.name
            );

            // The served term must *behave* identically too: same value,
            // same allocation counters, on both backends.
            let reference = fj_eval::run(want, EvalMode::CallByValue, FUEL)
                .unwrap_or_else(|e| panic!("{} [{preset}]: machine(serial): {e}", p.name));
            let machine = fj_eval::run(&hot.term, EvalMode::CallByValue, FUEL)
                .unwrap_or_else(|e| panic!("{} [{preset}]: machine(served): {e}", p.name));
            let vm = fj_vm::run(&hot.term, EvalMode::CallByValue, VM_FUEL)
                .unwrap_or_else(|e| panic!("{} [{preset}]: vm(served): {e}", p.name));
            assert_eq!(
                reference.value, machine.value,
                "{} [{preset}]: served term computes a different value",
                p.name
            );
            assert_eq!(reference.value, vm.value, "{} [{preset}]: vm value", p.name);
            if let Some(expected) = p.expected {
                assert_eq!(
                    machine.value.to_string(),
                    expected.to_string(),
                    "{} [{preset}]: served term is wrong outright",
                    p.name
                );
            }
            let counters =
                |m: &fj_eval::Metrics| (m.let_allocs, m.arg_allocs, m.con_allocs, m.jumps);
            assert_eq!(
                counters(&reference.metrics),
                counters(&machine.metrics),
                "{} [{preset}]: served term allocates differently",
                p.name
            );
            assert_eq!(
                counters(&reference.metrics),
                counters(&vm.metrics),
                "{} [{preset}]: vm metrics diverge for the served term",
                p.name
            );
        }

        let stats = server.cache_stats();
        let n = programs().len() as u64;
        assert_eq!(stats.misses, n, "[{preset}]: every cold compile must miss");
        assert_eq!(
            stats.hits, n,
            "[{preset}]: every perturbed compile must α-hit"
        );
        assert_eq!(
            server.source_hits(),
            n,
            "[{preset}]: every byte-identical compile must text-hit"
        );
    }
}

/// The cache key is *content*: α-equivalent programs share an entry no
/// matter how they spell their binders, while a different pipeline or a
/// different datatype environment must never share one.
#[test]
fn cache_keys_on_content_not_spelling() {
    let original = "
def main : Int =
  letrec loop : Int -> Int -> Int =
    \\(n : Int) (acc : Int) -> if n <= 0 then acc else loop (n - 1) (acc + n)
  in loop 10 0;
";
    // Same program, every binder renamed.
    let renamed = "
def main : Int =
  letrec walk : Int -> Int -> Int =
    \\(k : Int) (total : Int) -> if k <= 0 then total else walk (k - 1) (total + k)
  in walk 10 0;
";
    // Same `main`, but the program carries an extra (unused) datatype:
    // its DataEnv fingerprint differs, so it must not share an entry —
    // passes consult the environment, so reusing across it is unsound.
    let extra_data = "
data Flag = Up | Down;
def main : Int =
  letrec loop : Int -> Int -> Int =
    \\(n : Int) (acc : Int) -> if n <= 0 then acc else loop (n - 1) (acc + n)
  in loop 10 0;
";
    let server = ServerState::new(1, 16 << 20);
    let jp = opts_for("join-points");

    let first = server.compile_source(original, &jp).unwrap();
    assert_eq!(first.cache, CacheDisposition::Miss);

    let respelled = server.compile_source(renamed, &jp).unwrap();
    assert_eq!(
        respelled.cache,
        CacheDisposition::Hit,
        "α-equivalent programs must share a cache entry"
    );
    assert!(alpha_eq(&first.term, &respelled.term));
    assert_eq!(server.cache_stats().entries, 1);

    let other_pipeline = server
        .compile_source(original, &opts_for("baseline"))
        .unwrap();
    assert_eq!(
        other_pipeline.cache,
        CacheDisposition::Miss,
        "a different pipeline must get its own entry"
    );

    let other_env = server.compile_source(extra_data, &jp).unwrap();
    assert_eq!(
        other_env.cache,
        CacheDisposition::Miss,
        "a different datatype environment must get its own entry"
    );

    // And a hit is indistinguishable from a fresh compile.
    let lowered = fj_surface::compile(original).unwrap();
    let mut supply = lowered.supply;
    let (fresh, _) = optimize_with_report(
        &lowered.expr,
        &lowered.data_env,
        &mut supply,
        &OptConfig::join_points(),
    )
    .unwrap();
    assert!(alpha_eq(&fresh, &respelled.term));
}

/// The fusion matrix, *served*: every skip-less/skip-ful ×
/// {map, filter, zip, sum} pipeline is built with the fusion library,
/// unparsed back to surface text, compiled through the service under
/// both presets, and held to exact allocation bars. This pins three
/// things at once: the unparser emits text the frontend accepts for
/// real library output (not just fuzzer output), the served term is
/// the same program as the directly-optimized one, and the paper's
/// Sec. 5 claims survive the service boundary — skip-less pipelines
/// fuse to zero allocations with join points while the skip-less
/// `filter` loop costs n+1 under the baseline, skip-ful `filter`
/// fuses either way, and `zip` keeps its buffered element (n+1
/// skip-less, 2n+1 skip-ful, per its `Maybe` buffer).
#[test]
fn fusion_matrix_serves_with_exact_allocation_bars() {
    use fj_ast::{Dsl, Expr, PrimOp, Type};
    use fj_fusion::{
        enum_from_to, filter_s, int_lambda, int_lambda2, map_s, sum_s, zip_with_s, zip_with_skip,
        StepVariant,
    };

    const WORKLOADS: [&str; 4] = ["map", "filter", "zip", "sum"];

    fn build(d: &mut Dsl, v: StepVariant, workload: &str, n: i64) -> Expr {
        let base = enum_from_to(d, v, Expr::Lit(1), Expr::Lit(n));
        match workload {
            "map" => {
                let f = int_lambda(d, |_, x| {
                    Expr::prim2(
                        PrimOp::Add,
                        Expr::prim2(PrimOp::Mul, Expr::var(x), Expr::Lit(2)),
                        Expr::Lit(1),
                    )
                });
                let s = map_s(d, f, Type::Int, base);
                sum_s(d, s)
            }
            "filter" => {
                let odd = int_lambda(d, |_, x| {
                    Expr::prim2(
                        PrimOp::Eq,
                        Expr::prim2(PrimOp::Rem, Expr::var(x), Expr::Lit(2)),
                        Expr::Lit(1),
                    )
                });
                let s = filter_s(d, odd, base);
                sum_s(d, s)
            }
            "zip" => {
                let triple = int_lambda(d, |_, x| {
                    Expr::prim2(PrimOp::Mul, Expr::var(x), Expr::Lit(3))
                });
                let other = enum_from_to(d, v, Expr::Lit(1), Expr::Lit(n));
                let other = map_s(d, triple, Type::Int, other);
                let add = int_lambda2(d, |_, a, b| {
                    Expr::prim2(PrimOp::Add, Expr::var(a), Expr::var(b))
                });
                let z = match v {
                    StepVariant::Skipless => zip_with_s(d, add, Type::Int, base, other),
                    StepVariant::Skip => zip_with_skip(d, add, Type::Int, base, other),
                };
                sum_s(d, z)
            }
            "sum" => sum_s(d, base),
            other => unreachable!("unknown workload {other}"),
        }
    }

    fn reference(workload: &str, n: i64) -> i64 {
        match workload {
            "map" => (1..=n).map(|x| x * 2 + 1).sum(),
            "filter" => (1..=n).filter(|x| x % 2 == 1).sum(),
            "zip" => (1..=n)
                .zip((1..=n).map(|x| x * 3))
                .map(|(a, b)| a + b)
                .sum(),
            "sum" => (1..=n).sum(),
            other => unreachable!("unknown workload {other}"),
        }
    }

    /// The exact total-allocation bar for one matrix cell.
    fn expected_allocs(v: StepVariant, workload: &str, preset: &str, n: u64) -> u64 {
        match (workload, v, preset) {
            // zip buffers one element per step regardless of pipeline;
            // the skip-ful variant also wraps each in `Maybe`.
            ("zip", StepVariant::Skipless, _) => n + 1,
            ("zip", StepVariant::Skip, _) => 2 * n + 1,
            // The recursive skip-less filter loop is exactly what the
            // baseline cannot contify away; `SSkip` sidesteps it.
            ("filter", StepVariant::Skipless, "baseline") => n + 1,
            _ => 0,
        }
    }

    let counters = |m: &fj_eval::Metrics| (m.let_allocs, m.arg_allocs, m.con_allocs, m.jumps);
    for (preset, cfg) in [
        ("join-points", OptConfig::join_points()),
        ("baseline", OptConfig::baseline()),
    ] {
        let server = ServerState::new(2, 16 << 20);
        let opts = opts_for(preset);
        for v in [StepVariant::Skipless, StepVariant::Skip] {
            for workload in WORKLOADS {
                for n in [40i64, 80] {
                    let tag = format!("{v:?}/{workload} [{preset}] n={n}");

                    // Direct route: optimize the library-built term.
                    let mut d = Dsl::new();
                    let e = build(&mut d, v, workload, n);
                    let (direct, _) = optimize_with_report(&e, &d.data_env, &mut d.supply, &cfg)
                        .unwrap_or_else(|err| panic!("{tag}: direct optimize: {err}"));
                    let direct_run = fj_eval::run(&direct, EvalMode::CallByValue, FUEL)
                        .unwrap_or_else(|err| panic!("{tag}: machine(direct): {err}"));

                    // Served route: unparse to surface text, compile it
                    // through the service.
                    let src = fj_surface::unparse_main(&e);
                    let served = server
                        .compile_source(&src, &opts)
                        .unwrap_or_else(|err| panic!("{tag}: serve: {}", err.message()));
                    assert_eq!(served.cache, CacheDisposition::Miss, "{tag}");
                    let machine = fj_eval::run(&served.term, EvalMode::CallByValue, FUEL)
                        .unwrap_or_else(|err| panic!("{tag}: machine(served): {err}"));
                    let vm = fj_vm::run(&served.term, EvalMode::CallByValue, VM_FUEL)
                        .unwrap_or_else(|err| panic!("{tag}: vm(served): {err}"));

                    // Same value as the Rust reference on every route.
                    let want = reference(workload, n).to_string();
                    assert_eq!(direct_run.value.to_string(), want, "{tag}: direct value");
                    assert_eq!(machine.value.to_string(), want, "{tag}: served value");
                    assert_eq!(vm.value.to_string(), want, "{tag}: vm value");

                    // The service is transparent: counter-for-counter
                    // identical to the direct pipeline, on both backends.
                    assert_eq!(
                        counters(&direct_run.metrics),
                        counters(&machine.metrics),
                        "{tag}: served term allocates differently from direct"
                    );
                    assert_eq!(
                        counters(&direct_run.metrics),
                        counters(&vm.metrics),
                        "{tag}: vm counters diverge"
                    );

                    // And the exact Sec. 5 bar for this cell.
                    let bar = expected_allocs(v, workload, preset, n as u64);
                    assert_eq!(
                        machine.metrics.total_allocs(),
                        bar,
                        "{tag}: allocation bar (metrics: {})",
                        machine.metrics
                    );
                }
            }
        }
    }
}

/// A hit adopts the producer's name supply: names drawn *after* a served
/// compile must not collide with names inside the served term, even when
/// the producer's supply had advanced much further than this consumer's.
#[test]
fn names_drawn_after_a_hit_are_fresh() {
    use fj_ast::alpha_fingerprint;
    let src = "
def main : Int =
  letrec go : Int -> Int = \\(n : Int) -> if n <= 0 then 0 else go (n - 1)
  in go 3;
";
    let server = ServerState::new(1, 16 << 20);
    let opts = opts_for("join-points");
    server.compile_source(src, &opts).unwrap();
    let hit = server.compile_source(src, &opts).unwrap();
    assert_eq!(hit.cache, CacheDisposition::Hit);
    // Erasure draws fresh names from the adopting supply while rebuilding
    // the term; a capture would change (or lint-break) the result.
    let mut supply = hit.supply;
    let erased = fj_core::erase(&hit.term, &hit.data_env, &mut supply)
        .expect("erasure after a cache hit must stay well-typed");
    assert_ne!(alpha_fingerprint(&erased), 0);
}

/// ISSUE acceptance: warm restarts. A server with a `--cache-dir`
/// persists every compile; a *new* server process over the same
/// directory — both in-memory layers empty — must answer each program
/// with a verified disk hit: zero optimizer passes, a term α-equal to
/// the cold compile, and identical machine **and** VM allocation
/// counters.
#[test]
fn restarted_server_serves_alpha_equal_terms_from_disk() {
    use fj_server::FileStore;
    use std::sync::Arc;

    let dir = std::env::temp_dir().join(format!("fj-restart-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = || Arc::new(FileStore::open(&dir).expect("cache dir"));
    let opts = opts_for("join-points");
    let counters = |m: &fj_eval::Metrics| (m.let_allocs, m.arg_allocs, m.con_allocs, m.jumps);

    // Cold generation: one server writes the whole suite through.
    let cold_server = ServerState::new(2, 16 << 20).with_store(store());
    let mut cold_terms = Vec::new();
    for p in programs() {
        let c = cold_server
            .compile_source(p.source, &opts)
            .unwrap_or_else(|e| panic!("{}: cold: {}", p.name, e.message()));
        assert_eq!(c.cache, CacheDisposition::Miss, "{}", p.name);
        cold_terms.push(c.term);
    }
    assert_eq!(
        cold_server.cache_stats().disk_writes,
        programs().len() as u64,
        "every cold compile must persist"
    );

    // Restart: fresh state, same directory.
    let warm_server = ServerState::new(2, 16 << 20).with_store(store());
    for (p, cold_term) in programs().iter().zip(&cold_terms) {
        let c = warm_server
            .compile_source(p.source, &opts)
            .unwrap_or_else(|e| panic!("{}: warm: {}", p.name, e.message()));
        assert_eq!(
            c.cache,
            CacheDisposition::Hit,
            "{}: restart must hit from disk",
            p.name
        );
        assert!(
            c.report.passes.is_empty(),
            "{}: a disk hit runs zero optimizer passes",
            p.name
        );
        assert!(
            alpha_eq(&c.term, cold_term),
            "{}: restarted term must be α-equal to the cold compile",
            p.name
        );
        let cold_m = fj_eval::run(cold_term, EvalMode::CallByValue, FUEL)
            .unwrap_or_else(|e| panic!("{}: machine(cold): {e}", p.name));
        let warm_m = fj_eval::run(&c.term, EvalMode::CallByValue, FUEL)
            .unwrap_or_else(|e| panic!("{}: machine(warm): {e}", p.name));
        let warm_v = fj_vm::run(&c.term, EvalMode::CallByValue, VM_FUEL)
            .unwrap_or_else(|e| panic!("{}: vm(warm): {e}", p.name));
        assert_eq!(
            cold_m.value.to_string(),
            warm_m.value.to_string(),
            "{}",
            p.name
        );
        assert_eq!(
            cold_m.value.to_string(),
            warm_v.value.to_string(),
            "{}",
            p.name
        );
        assert_eq!(
            counters(&cold_m.metrics),
            counters(&warm_m.metrics),
            "{}: machine counters must match the cold compile",
            p.name
        );
        assert_eq!(
            counters(&cold_m.metrics),
            counters(&warm_v.metrics),
            "{}: VM counters must match the cold compile",
            p.name
        );
    }
    let stats = warm_server.cache_stats();
    assert_eq!(
        stats.disk_hits,
        programs().len() as u64,
        "every restart compile is a disk hit: {stats:?}"
    );
    assert_eq!(stats.misses, 0, "no pipeline ran after restart: {stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
