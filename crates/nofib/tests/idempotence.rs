//! Optimizing an already-optimized term must be a no-op: both pipelines
//! drive their rewrites to a fixpoint, so a second full run over the
//! output may not change it (up to α-renaming — the second run draws
//! fresh names from a later supply).
//!
//! This is the behavioural contract behind the pipeline's no-change
//! witness: a pass that reports `changed == false` is skipped on
//! re-execution, and this suite checks that the fixpoint skipping relies
//! on actually holds on real programs. (It is also what rules out
//! pass-level ping-pong — Float In once swapped independent adjacent
//! bindings on every run, which this test would catch.)

use fj_ast::alpha_eq;
use fj_core::{optimize, optimize_with_report, OptConfig};
use fj_nofib::programs;
use fj_surface::compile;

#[test]
fn optimizing_twice_equals_optimizing_once() {
    let configs = [
        ("baseline", OptConfig::baseline()),
        ("join_points", OptConfig::join_points()),
    ];
    for p in programs() {
        let lowered = compile(p.source).unwrap_or_else(|e| panic!("{}: compile: {e}", p.name));
        for (label, cfg) in &configs {
            let mut supply = lowered.supply.clone();
            let once = optimize(&lowered.expr, &lowered.data_env, &mut supply, cfg)
                .unwrap_or_else(|e| panic!("{} [{label}]: optimize #1: {e}", p.name));
            let (twice, report) = optimize_with_report(&once, &lowered.data_env, &mut supply, cfg)
                .unwrap_or_else(|e| panic!("{} [{label}]: optimize #2: {e}", p.name));
            assert!(
                alpha_eq(&once, &twice),
                "{} [{label}]: second optimization changed the term\nonce:\n{once}\ntwice:\n{twice}",
                p.name
            );
            assert!(report.all_applied(), "{} [{label}]", p.name);
            // The simplifier must be quiescent on the re-run. (Float
            // counters are not asserted to zero: re-deriving the same
            // sink placements counts as firings without changing the
            // term.)
            assert_eq!(
                report.rewrites_for("simplify"),
                0,
                "{} [{label}]: simplifier not at fixpoint on re-run",
                p.name
            );
        }
    }
}
