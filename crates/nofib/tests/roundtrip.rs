//! The surface printer round trip over the whole benchmark suite: every
//! nofib source must survive parse → print → re-parse with an identical
//! AST (modulo positions) and lower to α-equivalent Core. The suite is
//! the largest corpus of real surface programs in the repo, so this is
//! the printer's strongest golden test.

use fj_ast::alpha_eq;
use fj_nofib::programs;
use fj_surface::{lex, lower_program, parse_program, print_program, strip_program_positions};

#[test]
fn every_benchmark_round_trips_through_the_printer() {
    for p in programs() {
        let p1 = parse_program(&lex(p.source).unwrap())
            .unwrap_or_else(|e| panic!("{}: parse: {e}", p.name));
        let printed = print_program(&p1);
        let p2 = parse_program(&lex(&printed).unwrap_or_else(|e| panic!("{}: relex: {e}", p.name)))
            .unwrap_or_else(|e| {
                panic!(
                    "{}: reparse failed: {e}\n--- printed ---\n{printed}",
                    p.name
                )
            });
        assert_eq!(
            strip_program_positions(&p1),
            strip_program_positions(&p2),
            "{}: round trip changed the AST",
            p.name
        );
        assert_eq!(
            print_program(&p2),
            printed,
            "{}: printer not idempotent",
            p.name
        );

        let l1 = lower_program(&p1).unwrap_or_else(|e| panic!("{}: lower: {e}", p.name));
        let l2 = lower_program(&p2).unwrap_or_else(|e| panic!("{}: lower printed: {e}", p.name));
        assert!(
            alpha_eq(&l1.expr, &l2.expr),
            "{}: lowered Core differs",
            p.name
        );
    }
}
