//! ISSUE acceptance: the bytecode VM agrees with the Fig. 3 machine —
//! same value, same allocation metrics — on EVERY nofib program, under
//! both the baseline and the join-points pipeline.

use fj_core::OptConfig;
use fj_eval::EvalMode;
use fj_nofib::{lower, programs, FUEL, VM_FUEL};

#[test]
fn vm_matches_machine_on_every_nofib_program() {
    let configs = [
        ("baseline", OptConfig::baseline()),
        ("join_points", OptConfig::join_points()),
    ];
    for p in programs() {
        for (label, cfg) in &configs {
            let term = lower(p.source, cfg);
            let m = fj_eval::run(&term, EvalMode::CallByValue, FUEL)
                .unwrap_or_else(|e| panic!("{} [{label}]: machine: {e}", p.name));
            let v = fj_vm::run(&term, EvalMode::CallByValue, VM_FUEL)
                .unwrap_or_else(|e| panic!("{} [{label}]: vm: {e}", p.name));
            assert_eq!(
                m.value, v.value,
                "{} [{label}]: backends disagree on the value",
                p.name
            );
            assert_eq!(
                (
                    m.metrics.let_allocs,
                    m.metrics.arg_allocs,
                    m.metrics.con_allocs,
                    m.metrics.jumps
                ),
                (
                    v.metrics.let_allocs,
                    v.metrics.arg_allocs,
                    v.metrics.con_allocs,
                    v.metrics.jumps
                ),
                "{} [{label}]: backends disagree on allocation metrics",
                p.name
            );
        }
    }
}
