//! ISSUE acceptance: the bytecode VM agrees with the Fig. 3 machine —
//! same value, same allocation metrics — on EVERY nofib program, under
//! both the baseline and the join-points pipeline.

use fj_core::OptConfig;
use fj_eval::EvalMode;
use fj_nofib::{lower, programs, FUEL, VM_FUEL};

#[test]
fn vm_matches_machine_on_every_nofib_program() {
    let configs = [
        ("baseline", OptConfig::baseline()),
        ("join_points", OptConfig::join_points()),
    ];
    for p in programs() {
        for (label, cfg) in &configs {
            let term = lower(p.source, cfg);
            let m = fj_eval::run(&term, EvalMode::CallByValue, FUEL)
                .unwrap_or_else(|e| panic!("{} [{label}]: machine: {e}", p.name));
            let v = fj_vm::run(&term, EvalMode::CallByValue, VM_FUEL)
                .unwrap_or_else(|e| panic!("{} [{label}]: vm: {e}", p.name));
            assert_eq!(
                m.value, v.value,
                "{} [{label}]: backends disagree on the value",
                p.name
            );
            assert_eq!(
                (
                    m.metrics.let_allocs,
                    m.metrics.arg_allocs,
                    m.metrics.con_allocs,
                    m.metrics.jumps
                ),
                (
                    v.metrics.let_allocs,
                    v.metrics.arg_allocs,
                    v.metrics.con_allocs,
                    v.metrics.jumps
                ),
                "{} [{label}]: backends disagree on allocation metrics",
                p.name
            );
        }
    }
}

/// A divergent program must terminate with a *structured* resource error
/// on both backends — fuel exhaustion with a step budget, timeout with a
/// wall-clock deadline — never hang.
#[test]
fn backends_report_fuel_and_deadline_exhaustion_in_lockstep() {
    use std::time::Duration;

    let src = "
def main : Int =
  letrec go : Int -> Int = \\(n : Int) -> go (n + 1)
  in go 1;
";
    let lowered = fj_surface::compile(src).unwrap_or_else(|e| panic!("compile: {e}"));
    let e = &lowered.expr;

    // Small fuel: both backends must report exhaustion, not hang.
    let m = fj_eval::run(e, EvalMode::CallByValue, 10_000);
    assert!(
        matches!(m, Err(fj_eval::MachineError::OutOfFuel)),
        "machine: expected OutOfFuel, got {m:?}"
    );
    let v = fj_vm::run(e, EvalMode::CallByValue, 10_000);
    assert!(
        matches!(v, Err(fj_vm::VmError::OutOfFuel)),
        "vm: expected OutOfFuel, got {v:?}"
    );

    // Huge fuel but a tight wall-clock deadline: both must time out.
    let limit = Duration::from_millis(30);
    let m = fj_eval::run_with_limits(e, EvalMode::CallByValue, u64::MAX, Some(limit));
    assert!(
        matches!(m, Err(fj_eval::MachineError::Timeout { .. })),
        "machine: expected Timeout, got {m:?}"
    );
    let v = fj_vm::run_with_limits(e, EvalMode::CallByValue, u64::MAX, Some(limit));
    assert!(
        matches!(v, Err(fj_vm::VmError::Timeout { .. })),
        "vm: expected Timeout, got {v:?}"
    );
}
