//! Additional `spectral` programs — analogues for a slice of the
//! "(45 others)" the paper's Table 1 summarizes without naming rows.
//! Each is algorithmically distinct; together they broaden the mix of
//! join-point-relevant and join-point-neutral shapes.

use crate::{Program, Suite};

/// `queens` — N-queens counting by backtracking over placement lists.
/// The safety check is a tail-recursive `Bool` loop (contifiable); the
/// backtracking itself is non-tail (join-neutral), and the placement
/// lists are real allocation ballast.
pub const QUEENS: &str = "
def safe : Int -> Int -> List Int -> Bool =
  \\(col : Int) (row : Int) (placed : List Int) ->
    letrec go : Int -> List Int -> Bool =
      \\(d : Int) (ps : List Int) ->
        case ps of {
          Nil -> True;
          Cons r rest ->
            if r == row then False
            else if r - row == d then False
            else if row - r == d then False
            else go (d + 1) rest
        }
    in go 1 placed;

def countQueens : Int -> Int =
  \\(n : Int) ->
    letrec place : Int -> List Int -> Int =
      \\(col : Int) (placed : List Int) ->
        if col > n then 1
        else
          letrec tryRow : Int -> Int -> Int =
            \\(row : Int) (acc : Int) ->
              if row > n then acc
              else if safe col row placed
              then tryRow (row + 1) (acc + place (col + 1) (Cons @Int row placed))
              else tryRow (row + 1) acc
          in tryRow 1 0
    in place 1 (Nil @Int);

def main : Int = countQueens 6;
";

/// `clausify` — propositional formulas to negation normal form and a
/// clause-ish count: pure tree rewriting, join points neutral.
pub const CLAUSIFY: &str = "
data Form = FVar Int | FNot Form | FAnd Form Form | FOr Form Form;

def mkForm : Int -> Form =
  \\(depth : Int) ->
    letrec go : Int -> Int -> Form =
      \\(d : Int) (seed : Int) ->
        if d <= 0 then FVar (seed % 7)
        else if seed % 3 == 0 then FNot (go (d - 1) (seed * 5 + 1))
        else if seed % 3 == 1 then FAnd (go (d - 1) (seed * 2 + 1)) (go (d - 1) (seed * 3 + 2))
        else FOr (go (d - 1) (seed * 2 + 1)) (go (d - 1) (seed * 3 + 2))
    in go depth 1;

-- push negations inward
def nnf : Form -> Form =
  \\(f0 : Form) ->
    letrec pos : Form -> Form =
      \\(f : Form) ->
        case f of {
          FVar v -> FVar v;
          FNot g -> neg g;
          FAnd a b -> FAnd (pos a) (pos b);
          FOr a b -> FOr (pos a) (pos b)
        }
    and neg : Form -> Form =
      \\(f : Form) ->
        case f of {
          FVar v -> FNot (FVar v);
          FNot g -> pos g;
          FAnd a b -> FOr (neg a) (neg b);
          FOr a b -> FAnd (neg a) (neg b)
        }
    in pos f0;

def weight : Form -> Int =
  \\(f0 : Form) ->
    letrec go : Form -> Int =
      \\(f : Form) ->
        case f of {
          FVar v -> 1;
          FNot g -> 1 + go g;
          FAnd a b -> go a + go b;
          FOr a b -> 1 + go a + go b
        }
    in go f0;

def main : Int = weight (nnf (FNot (mkForm 8)));
";

/// `knights` — counting bounded knight's-tour paths on a small board:
/// branching recursion with an inner membership test loop.
pub const KNIGHTS: &str = "
def onBoard : Int -> Bool =
  \\(sq : Int) ->
    letrec within : Int -> Bool =
      \\(s : Int) -> if s < 0 then False else (if s > 24 then False else True)
    in within sq;

def member : Int -> List Int -> Bool =
  \\(x : Int) (xs : List Int) ->
    letrec go : List Int -> Bool =
      \\(ys : List Int) ->
        case ys of {
          Nil -> False;
          Cons y t -> if y == x then True else go t
        }
    in go xs;

def tours : Int -> Int =
  \\(depth : Int) ->
    letrec go : Int -> Int -> List Int -> Int =
      \\(d : Int) (sq : Int) (seen : List Int) ->
        if d <= 0 then 1
        else
          let seen2 : List Int = Cons @Int sq seen in
          letrec tryMove : Int -> Int -> Int =
            \\(m : Int) (acc : Int) ->
              if m > 4 then acc
              else
                let dest : Int = (sq + m * 7 + 3) % 25 in
                if onBoard dest
                then
                  (if member dest seen2
                   then tryMove (m + 1) acc
                   else tryMove (m + 1) (acc + go (d - 1) dest seen2))
                else tryMove (m + 1) acc
          in tryMove 1 0
    in go depth 0 (Nil @Int);

def main : Int = tours 5;
";

/// `mandel` — escape-time iteration: the inner orbit loop returns
/// `Maybe Int` (escaped at step k, or bounded), consumed per pixel — the
/// find/any shape again, over a pixel grid.
pub const MANDEL: &str = "
-- scaled integer orbit: z <- (z*z + c) / 100, escape when |z| > 400
def escapeAt : Int -> Maybe Int =
  \\(c : Int) ->
    letrec go : Int -> Int -> Maybe Int =
      \\(z : Int) (k : Int) ->
        if k > 30 then Nothing @Int
        else if z > 400 then Just @Int k
        else if z < 0 - 400 then Just @Int k
        else go ((z * z) / 100 + c) (k + 1)
    in go 0 0;

def pixels : Int -> List Int =
  \\(n : Int) ->
    letrec go : Int -> List Int =
      \\(i : Int) ->
        if i > n then Nil @Int
        else Cons @Int (i * 13 % 900 - 450) (go (i + 1))
    in go 1;

def render : List Int -> Int =
  \\(ps : List Int) ->
    letrec go : List Int -> Int -> Int =
      \\(xs : List Int) (acc : Int) ->
        case xs of {
          Nil -> acc;
          Cons c rest ->
            case escapeAt c of {
              Nothing -> go rest acc;
              Just k -> go rest (acc + k)
            }
        }
    in go ps 0;

def main : Int = render (pixels 120);
";

/// `boyer` — term rewriting to a fixed point: a rule matcher that
/// returns `Maybe Term` (recursive — it walks the term), driven from a
/// rewrite loop. The matcher is the join-point-relevant part; the terms
/// themselves are ballast.
pub const BOYER: &str = "
data Term = TVar Int | TF Term | TG Term Term;

def mkTerm : Int -> Term =
  \\(d : Int) ->
    letrec go : Int -> Int -> Term =
      \\(depth : Int) (seed : Int) ->
        if depth <= 0 then TVar (seed % 5)
        else if seed % 2 == 0 then TF (go (depth - 1) (seed * 3 + 1))
        else TG (go (depth - 1) (seed * 5 + 2)) (go (depth - 1) (seed * 7 + 3))
    in go d 1;

-- one rewrite step somewhere in the term, if a redex exists:
--   TF (TF t)    =>  TF t
--   TG t (TVar v) => TF t
def step : Term -> Maybe Term =
  \\(t0 : Term) ->
    letrec go : Term -> Maybe Term =
      \\(t : Term) ->
        case t of {
          TVar v -> Nothing @Term;
          TF u ->
            case u of {
              TF w -> Just @Term (TF w);
              _ ->
                case go u of {
                  Nothing -> Nothing @Term;
                  Just u2 -> Just @Term (TF u2)
                }
            };
          TG a b ->
            case b of {
              TVar v -> Just @Term (TF a);
              _ ->
                case go a of {
                  Just a2 -> Just @Term (TG a2 b);
                  Nothing ->
                    case go b of {
                      Nothing -> Nothing @Term;
                      Just b2 -> Just @Term (TG a b2)
                    }
                }
            }
        }
    in go t0;

def normalize : Term -> Int =
  \\(t0 : Term) ->
    letrec loop : Term -> Int -> Int =
      \\(t : Term) (n : Int) ->
        if n > 40 then n
        else
          case step t of {
            Nothing -> n;
            Just t2 -> loop t2 (n + 1)
          }
    in loop t0 0;

def main : Int = normalize (mkTerm 6) + normalize (mkTerm 7);
";

/// Additional spectral programs.
pub fn programs() -> Vec<Program> {
    vec![
        Program {
            name: "boyer",
            suite: Suite::Spectral,
            source: BOYER,
            expected: None,
        },
        Program {
            name: "clausify",
            suite: Suite::Spectral,
            source: CLAUSIFY,
            expected: None,
        },
        Program {
            name: "knights",
            suite: Suite::Spectral,
            source: KNIGHTS,
            expected: None,
        },
        Program {
            name: "mandel",
            suite: Suite::Spectral,
            source: MANDEL,
            expected: None,
        },
        Program {
            name: "queens",
            suite: Suite::Spectral,
            source: QUEENS,
            expected: Some(4),
        },
    ]
}
