//! # fj-nofib — the NoFib-analogue benchmark suite and Table-1 harness
//!
//! Reproduces the evaluation of "Compiling without continuations"
//! (Table 1, plus the Sec. 5 fusion study and a pass ablation). Each
//! benchmark is a surface-language program named after its Table-1 row;
//! the harness compiles it twice —
//!
//! * **baseline**: GHC-before-the-paper ([`OptConfig::baseline`]): the
//!   optimizer neither creates nor exploits join points, and join points
//!   are recognized only at "code generation" (one trailing contify);
//! * **join points**: the paper's compiler ([`OptConfig::join_points`]).
//!
//! — then runs both on the abstract machine (call-by-value, as the paper
//! notes everything applies to a strict language too) and compares heap
//! allocations, the paper's own metric.
//!
//! ## Example
//!
//! ```no_run
//! let rows = fj_nofib::run_table1();
//! println!("{}", fj_nofib::format_table1(&rows));
//! ```

#![warn(missing_docs)]

mod more_real;
mod more_shootout;
mod more_spectral;
mod real;
mod shootout;
mod spectral;

pub mod fusion_exp;

use fj_core::{optimize, optimize_with_report, OptConfig, PipelineReport};
use fj_eval::{run, EvalMode, Metrics, Value};
use fj_surface::compile;

/// Which NoFib suite a program belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suite {
    /// The `spectral` suite (algorithmic kernels).
    Spectral,
    /// The `real` suite (application-shaped programs).
    Real,
    /// The `shootout` suite (hand-tuned inner loops).
    Shootout,
}

impl Suite {
    /// Display name, as in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Spectral => "spectral",
            Suite::Real => "real",
            Suite::Shootout => "shootout",
        }
    }
}

/// One benchmark program.
#[derive(Clone, Copy, Debug)]
pub struct Program {
    /// Row name (matches Table 1).
    pub name: &'static str,
    /// Its suite.
    pub suite: Suite,
    /// Surface-language source.
    pub source: &'static str,
    /// Expected `main` value, when it is meaningful to pin (sanity).
    pub expected: Option<i64>,
}

/// All benchmark programs, spectral then real then shootout.
pub fn programs() -> Vec<Program> {
    let mut v = spectral::programs();
    v.extend(more_spectral::programs());
    v.extend(real::programs());
    v.extend(more_real::programs());
    v.extend(shootout::programs());
    v.extend(more_shootout::programs());
    v
}

/// Step budget for benchmark runs.
pub const FUEL: u64 = 50_000_000;

/// Per-program measurement: allocations under both compilers.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row name.
    pub name: &'static str,
    /// Suite.
    pub suite: Suite,
    /// The program's result (both configurations agree; checked).
    pub value: i64,
    /// Machine metrics under the baseline pipeline.
    pub baseline: Metrics,
    /// Machine metrics under the join-points pipeline.
    pub joined: Metrics,
}

impl Row {
    /// Allocation delta in percent, negative = join points improved.
    pub fn delta_pct(&self) -> f64 {
        self.joined.alloc_delta_pct(&self.baseline)
    }
}

/// Compile a program under a pipeline, run it by value, and return the
/// integer result with metrics.
///
/// # Panics
///
/// Panics on compile, lint, optimize, or machine errors — benchmarks are
/// expected to be well-formed; a failure is a harness bug worth a loud
/// stop.
pub fn measure(source: &str, cfg: &OptConfig) -> (i64, Metrics) {
    let mut lowered = compile(source).unwrap_or_else(|e| panic!("compile: {e}"));
    fj_check::lint(&lowered.expr, &lowered.data_env)
        .unwrap_or_else(|e| panic!("lint: {e}\n{}", lowered.expr));
    let out = optimize(&lowered.expr, &lowered.data_env, &mut lowered.supply, cfg)
        .unwrap_or_else(|e| panic!("optimize: {e}"));
    let o = run(&out, EvalMode::CallByValue, FUEL).unwrap_or_else(|e| panic!("eval: {e}\n{out}"));
    match o.value {
        Value::Int(n) => (n, o.metrics),
        other => panic!("benchmark main must return Int, got {other}"),
    }
}

/// As [`measure`], also returning the optimizer's per-pass
/// [`PipelineReport`] (rewrite counters, censuses, wall times).
///
/// # Panics
///
/// As [`measure`].
pub fn measure_with_report(source: &str, cfg: &OptConfig) -> (i64, Metrics, PipelineReport) {
    let mut lowered = compile(source).unwrap_or_else(|e| panic!("compile: {e}"));
    fj_check::lint(&lowered.expr, &lowered.data_env)
        .unwrap_or_else(|e| panic!("lint: {e}\n{}", lowered.expr));
    let (out, report) =
        optimize_with_report(&lowered.expr, &lowered.data_env, &mut lowered.supply, cfg)
            .unwrap_or_else(|e| panic!("optimize: {e}"));
    let o = run(&out, EvalMode::CallByValue, FUEL).unwrap_or_else(|e| panic!("eval: {e}\n{out}"));
    match o.value {
        Value::Int(n) => (n, o.metrics, report),
        other => panic!("benchmark main must return Int, got {other}"),
    }
}

/// Run one benchmark under both pipelines.
///
/// # Panics
///
/// As [`measure`]; also panics if the two configurations disagree on the
/// program's value, or if `expected` is pinned and missed.
pub fn run_program(p: &Program) -> Row {
    let (v_base, m_base) = measure(p.source, &OptConfig::baseline());
    let (v_join, m_join) = measure(p.source, &OptConfig::join_points());
    assert_eq!(
        v_base, v_join,
        "{}: baseline and join-points disagree ({v_base} vs {v_join})",
        p.name
    );
    if let Some(exp) = p.expected {
        assert_eq!(v_join, exp, "{}: expected {exp}, got {v_join}", p.name);
    }
    Row {
        name: p.name,
        suite: p.suite,
        value: v_join,
        baseline: m_base,
        joined: m_join,
    }
}

/// A [`Row`] plus the optimizer activity behind it, for `fj report`.
#[derive(Clone, Debug)]
pub struct ReportRow {
    /// The allocation comparison.
    pub row: Row,
    /// What the baseline pipeline did.
    pub baseline_report: PipelineReport,
    /// What the join-points pipeline did.
    pub joined_report: PipelineReport,
}

/// Run one benchmark under both pipelines, keeping the pipeline reports.
///
/// # Panics
///
/// As [`run_program`].
pub fn run_program_with_reports(p: &Program) -> ReportRow {
    let (v_base, m_base, base_rep) = measure_with_report(p.source, &OptConfig::baseline());
    let (v_join, m_join, join_rep) = measure_with_report(p.source, &OptConfig::join_points());
    assert_eq!(
        v_base, v_join,
        "{}: baseline and join-points disagree ({v_base} vs {v_join})",
        p.name
    );
    if let Some(exp) = p.expected {
        assert_eq!(v_join, exp, "{}: expected {exp}, got {v_join}", p.name);
    }
    ReportRow {
        row: Row {
            name: p.name,
            suite: p.suite,
            value: v_join,
            baseline: m_base,
            joined: m_join,
        },
        baseline_report: base_rep,
        joined_report: join_rep,
    }
}

/// Run the whole suite with pipeline reports (the `fj report` payload).
pub fn run_report() -> Vec<ReportRow> {
    programs().iter().map(run_program_with_reports).collect()
}

/// Render [`ReportRow`]s as the Table-1-style markdown report: machine
/// metrics under both pipelines, then the optimizer activity (rewrite
/// counters) that explains the deltas.
pub fn format_report(rows: &[ReportRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "# fj report — baseline vs join points\n").unwrap();
    writeln!(
        out,
        "Allocation counts from the abstract machine (call-by-value, the \
         paper's Table-1 metric); `Δ allocs` negative means the join-points \
         pipeline allocates less.\n"
    )
    .unwrap();
    writeln!(out, "## Machine metrics\n").unwrap();
    writeln!(
        out,
        "| program | suite | steps b/j | let b/j | arg b/j | con b/j | jumps b/j | stack b/j | Δ allocs |"
    )
    .unwrap();
    writeln!(out, "|---|---|---|---|---|---|---|---|---|").unwrap();
    for r in rows {
        let (b, j) = (&r.row.baseline, &r.row.joined);
        writeln!(
            out,
            "| {} | {} | {}/{} | {}/{} | {}/{} | {}/{} | {}/{} | {}/{} | {:+.1}% |",
            r.row.name,
            r.row.suite.name(),
            b.steps,
            j.steps,
            b.let_allocs,
            j.let_allocs,
            b.arg_allocs,
            j.arg_allocs,
            b.con_allocs,
            j.con_allocs,
            b.jumps,
            j.jumps,
            b.max_stack,
            j.max_stack,
            r.row.delta_pct()
        )
        .unwrap();
    }
    writeln!(out, "\n## Optimizer activity (join-points pipeline)\n").unwrap();
    writeln!(
        out,
        "| program | contified | simplify rewrites | float-in | float-out | shared ctx | total | wall |"
    )
    .unwrap();
    writeln!(out, "|---|---|---|---|---|---|---|---|").unwrap();
    for r in rows {
        let t = r.joined_report.totals();
        writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {:.1?} |",
            r.row.name,
            t.contified,
            r.joined_report.rewrites_for("simplify"),
            t.floated_in,
            t.floated_out,
            t.shared_contexts,
            t.total(),
            r.joined_report.wall
        )
        .unwrap();
    }
    writeln!(out, "\n## Per-pass detail\n").unwrap();
    for r in rows {
        writeln!(out, "### {}\n", r.row.name).unwrap();
        writeln!(out, "| pass | rewrites | size | lets | joins | jumps |").unwrap();
        writeln!(out, "|---|---|---|---|---|---|").unwrap();
        for p in &r.joined_report.passes {
            writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} |",
                p.pass,
                p.rewrites,
                p.census_after.size,
                p.census_after.lets,
                p.census_after.joins,
                p.census_after.jumps
            )
            .unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// Run the whole Table-1 experiment.
pub fn run_table1() -> Vec<Row> {
    programs().iter().map(run_program).collect()
}

/// Minimum, maximum, and geometric mean of the deltas in a suite — the
/// paper's summary lines.
#[derive(Clone, Copy, Debug)]
pub struct SuiteSummary {
    /// Best (most negative) delta.
    pub min: f64,
    /// Worst delta.
    pub max: f64,
    /// Geometric mean of (1 + delta) − 1, in percent; `None` when any
    /// program hit −100% (the paper prints "n/a" for shootout for this
    /// reason).
    pub geo_mean: Option<f64>,
}

/// Summarize one suite's rows.
pub fn summarize(rows: &[Row], suite: Suite) -> SuiteSummary {
    let deltas: Vec<f64> = rows
        .iter()
        .filter(|r| r.suite == suite)
        .map(Row::delta_pct)
        .collect();
    let min = deltas.iter().copied().fold(f64::INFINITY, f64::min);
    let max = deltas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let geo_mean = if deltas.iter().any(|d| *d <= -100.0) {
        None
    } else {
        let log_sum: f64 = deltas.iter().map(|d| (1.0 + d / 100.0).ln()).sum();
        Some(((log_sum / deltas.len() as f64).exp() - 1.0) * 100.0)
    };
    SuiteSummary { min, max, geo_mean }
}

/// Render the rows in the paper's Table-1 layout.
pub fn format_table1(rows: &[Row]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for suite in [Suite::Spectral, Suite::Real, Suite::Shootout] {
        writeln!(out, "{}", suite.name()).unwrap();
        writeln!(
            out,
            "{:<16} {:>10} {:>10} {:>8}",
            "Program", "base", "joins", "Allocs"
        )
        .unwrap();
        for r in rows.iter().filter(|r| r.suite == suite) {
            writeln!(
                out,
                "{:<16} {:>10} {:>10} {:>+7.1}%",
                r.name,
                r.baseline.total_allocs(),
                r.joined.total_allocs(),
                r.delta_pct()
            )
            .unwrap();
        }
        let s = summarize(rows, suite);
        writeln!(out, "{:<16} {:>21} {:>+7.1}%", "Min", "", s.min).unwrap();
        writeln!(out, "{:<16} {:>21} {:>+7.1}%", "Max", "", s.max).unwrap();
        match s.geo_mean {
            Some(g) => writeln!(out, "{:<16} {:>21} {:>+7.1}%", "Geo. Mean", "", g).unwrap(),
            None => writeln!(out, "{:<16} {:>21} {:>8}", "Geo. Mean", "", "n/a").unwrap(),
        }
        writeln!(out).unwrap();
    }
    out
}

/// One row of the ablation study (experiment A-ablate): the join-points
/// pipeline with one ingredient removed, over the whole suite.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Which configuration.
    pub label: &'static str,
    /// Total allocations across all benchmarks.
    pub total_allocs: u64,
    /// Total machine steps across all benchmarks.
    pub total_steps: u64,
}

/// Run the ablation: full pipeline vs pipeline-minus-one-pass vs baseline.
pub fn run_ablation() -> Vec<AblationRow> {
    let configs: Vec<(&'static str, OptConfig)> = vec![
        ("join-points (full)", OptConfig::join_points()),
        (
            "without contify",
            OptConfig::join_points_without(fj_core::Pass::Contify),
        ),
        (
            "without float-in",
            OptConfig::join_points_without(fj_core::Pass::FloatIn),
        ),
        (
            "without simplify",
            OptConfig::join_points_without(fj_core::Pass::Simplify),
        ),
        ("baseline", OptConfig::baseline()),
        ("no optimization", OptConfig::none()),
    ];
    configs
        .into_iter()
        .map(|(label, cfg)| {
            let mut total_allocs = 0u64;
            let mut total_steps = 0u64;
            for p in programs() {
                let (_, m) = measure(p.source, &cfg);
                total_allocs += m.total_allocs();
                total_steps += m.steps;
            }
            AblationRow {
                label,
                total_allocs,
                total_steps,
            }
        })
        .collect()
}

/// Render the ablation rows.
pub fn format_ablation(rows: &[AblationRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "{:<22} {:>12} {:>12}",
        "Configuration", "allocs", "steps"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:<22} {:>12} {:>12}",
            r.label, r.total_allocs, r.total_steps
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests;
