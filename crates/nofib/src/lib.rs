//! # fj-nofib — the NoFib-analogue benchmark suite and Table-1 harness
//!
//! Reproduces the evaluation of "Compiling without continuations"
//! (Table 1, plus the Sec. 5 fusion study and a pass ablation). Each
//! benchmark is a surface-language program named after its Table-1 row;
//! the harness compiles it twice —
//!
//! * **baseline**: GHC-before-the-paper ([`OptConfig::baseline`]): the
//!   optimizer neither creates nor exploits join points, and join points
//!   are recognized only at "code generation" (one trailing contify);
//! * **join points**: the paper's compiler ([`OptConfig::join_points`]).
//!
//! — then runs both on the abstract machine (call-by-value, as the paper
//! notes everything applies to a strict language too) and compares heap
//! allocations, the paper's own metric.
//!
//! ## Example
//!
//! ```no_run
//! let rows = fj_nofib::run_table1();
//! println!("{}", fj_nofib::format_table1(&rows));
//! ```

#![warn(missing_docs)]

mod more_real;
mod more_shootout;
mod more_spectral;
mod real;
mod shootout;
mod spectral;

pub mod candles;
pub mod fusion_exp;
pub mod vm_ops;

use fj_core::{optimize, optimize_with_report, OptConfig, PipelineReport};
use fj_eval::{run, EvalMode, Metrics, Value};
use fj_surface::compile;

/// Which NoFib suite a program belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suite {
    /// The `spectral` suite (algorithmic kernels).
    Spectral,
    /// The `real` suite (application-shaped programs).
    Real,
    /// The `shootout` suite (hand-tuned inner loops).
    Shootout,
}

impl Suite {
    /// Display name, as in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Spectral => "spectral",
            Suite::Real => "real",
            Suite::Shootout => "shootout",
        }
    }
}

/// One benchmark program.
#[derive(Clone, Copy, Debug)]
pub struct Program {
    /// Row name (matches Table 1).
    pub name: &'static str,
    /// Its suite.
    pub suite: Suite,
    /// Surface-language source.
    pub source: &'static str,
    /// Expected `main` value, when it is meaningful to pin (sanity).
    pub expected: Option<i64>,
}

/// All benchmark programs, spectral then real then shootout.
pub fn programs() -> Vec<Program> {
    let mut v = spectral::programs();
    v.extend(more_spectral::programs());
    v.extend(real::programs());
    v.extend(more_real::programs());
    v.extend(shootout::programs());
    v.extend(more_shootout::programs());
    v
}

/// Step budget for benchmark runs.
pub const FUEL: u64 = 50_000_000;

/// Instruction budget for VM-backend runs (instructions are a finer
/// unit than machine transitions, so the budget is larger).
pub const VM_FUEL: u64 = 500_000_000;

/// Which execution backend runs a compiled benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The Fig. 3 substitution machine in `fj-eval` (the reference).
    Machine,
    /// The flat jump-threaded bytecode VM in `fj-vm`.
    Vm,
}

impl Backend {
    /// Display name (matches the CLI's `--backend` values).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Machine => "machine",
            Backend::Vm => "vm",
        }
    }

    /// Parse a `--backend` value.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "machine" => Some(Backend::Machine),
            "vm" => Some(Backend::Vm),
            _ => None,
        }
    }

    /// Run a lowered term by value with the backend's default budget.
    ///
    /// # Errors
    ///
    /// The backend's own error, stringified (the two backends have
    /// distinct error types; callers only report them).
    pub fn run(self, e: &fj_ast::Expr) -> Result<fj_eval::Outcome, String> {
        match self {
            Backend::Machine => run(e, EvalMode::CallByValue, FUEL).map_err(|e| e.to_string()),
            Backend::Vm => fj_vm::run(e, EvalMode::CallByValue, VM_FUEL).map_err(|e| e.to_string()),
        }
    }
}

/// Compile, lint, and optimize a benchmark source under a pipeline,
/// returning the lowered term ready for either backend.
///
/// # Panics
///
/// As [`measure`] — benchmarks are expected to be well-formed.
pub fn lower(source: &str, cfg: &OptConfig) -> fj_ast::Expr {
    let mut lowered = compile(source).unwrap_or_else(|e| panic!("compile: {e}"));
    fj_check::lint(&lowered.expr, &lowered.data_env)
        .unwrap_or_else(|e| panic!("lint: {e}\n{}", lowered.expr));
    optimize(&lowered.expr, &lowered.data_env, &mut lowered.supply, cfg)
        .unwrap_or_else(|e| panic!("optimize: {e}"))
}

/// As [`measure`], on a chosen backend, also timing the run itself
/// (compilation and optimization excluded).
///
/// # Panics
///
/// As [`measure`].
pub fn measure_backend(
    source: &str,
    cfg: &OptConfig,
    backend: Backend,
) -> (i64, Metrics, std::time::Duration) {
    let out = lower(source, cfg);
    let start = std::time::Instant::now();
    let o = backend
        .run(&out)
        .unwrap_or_else(|e| panic!("{} eval: {e}\n{out}", backend.name()));
    let wall = start.elapsed();
    match o.value {
        Value::Int(n) => (n, o.metrics, wall),
        other => panic!("benchmark main must return Int, got {other}"),
    }
}

/// Per-program measurement: allocations under both compilers.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row name.
    pub name: &'static str,
    /// Suite.
    pub suite: Suite,
    /// The program's result (both configurations agree; checked).
    pub value: i64,
    /// Machine metrics under the baseline pipeline.
    pub baseline: Metrics,
    /// Machine metrics under the join-points pipeline.
    pub joined: Metrics,
}

impl Row {
    /// Allocation delta in percent, negative = join points improved.
    pub fn delta_pct(&self) -> f64 {
        self.joined.alloc_delta_pct(&self.baseline)
    }
}

/// Compile a program under a pipeline, run it by value, and return the
/// integer result with metrics.
///
/// # Panics
///
/// Panics on compile, lint, optimize, or machine errors — benchmarks are
/// expected to be well-formed; a failure is a harness bug worth a loud
/// stop.
pub fn measure(source: &str, cfg: &OptConfig) -> (i64, Metrics) {
    let mut lowered = compile(source).unwrap_or_else(|e| panic!("compile: {e}"));
    fj_check::lint(&lowered.expr, &lowered.data_env)
        .unwrap_or_else(|e| panic!("lint: {e}\n{}", lowered.expr));
    let out = optimize(&lowered.expr, &lowered.data_env, &mut lowered.supply, cfg)
        .unwrap_or_else(|e| panic!("optimize: {e}"));
    let o = run(&out, EvalMode::CallByValue, FUEL).unwrap_or_else(|e| panic!("eval: {e}\n{out}"));
    match o.value {
        Value::Int(n) => (n, o.metrics),
        other => panic!("benchmark main must return Int, got {other}"),
    }
}

/// As [`measure`], also returning the optimizer's per-pass
/// [`PipelineReport`] (rewrite counters, censuses, wall times).
///
/// # Panics
///
/// As [`measure`].
pub fn measure_with_report(source: &str, cfg: &OptConfig) -> (i64, Metrics, PipelineReport) {
    let mut lowered = compile(source).unwrap_or_else(|e| panic!("compile: {e}"));
    fj_check::lint(&lowered.expr, &lowered.data_env)
        .unwrap_or_else(|e| panic!("lint: {e}\n{}", lowered.expr));
    let (out, report) =
        optimize_with_report(&lowered.expr, &lowered.data_env, &mut lowered.supply, cfg)
            .unwrap_or_else(|e| panic!("optimize: {e}"));
    let o = run(&out, EvalMode::CallByValue, FUEL).unwrap_or_else(|e| panic!("eval: {e}\n{out}"));
    match o.value {
        Value::Int(n) => (n, o.metrics, report),
        other => panic!("benchmark main must return Int, got {other}"),
    }
}

/// Run one benchmark under both pipelines.
///
/// # Panics
///
/// As [`measure`]; also panics if the two configurations disagree on the
/// program's value, or if `expected` is pinned and missed.
pub fn run_program(p: &Program) -> Row {
    let (v_base, m_base) = measure(p.source, &OptConfig::baseline());
    let (v_join, m_join) = measure(p.source, &OptConfig::join_points());
    assert_eq!(
        v_base, v_join,
        "{}: baseline and join-points disagree ({v_base} vs {v_join})",
        p.name
    );
    if let Some(exp) = p.expected {
        assert_eq!(v_join, exp, "{}: expected {exp}, got {v_join}", p.name);
    }
    Row {
        name: p.name,
        suite: p.suite,
        value: v_join,
        baseline: m_base,
        joined: m_join,
    }
}

/// A [`Row`] plus the optimizer activity behind it, for `fj report`.
#[derive(Clone, Debug)]
pub struct ReportRow {
    /// The allocation comparison.
    pub row: Row,
    /// What the baseline pipeline did.
    pub baseline_report: PipelineReport,
    /// What the join-points pipeline did.
    pub joined_report: PipelineReport,
    /// Wall time of the Fig. 3 machine on the join-points output.
    pub machine_wall: std::time::Duration,
    /// Wall time of the bytecode VM on the same term.
    pub vm_wall: std::time::Duration,
}

impl ReportRow {
    /// Machine-over-VM wall-time ratio (how many times faster the
    /// bytecode backend ran this program).
    pub fn speedup(&self) -> f64 {
        let vm = self.vm_wall.as_secs_f64();
        if vm == 0.0 {
            f64::INFINITY
        } else {
            self.machine_wall.as_secs_f64() / vm
        }
    }
}

/// Run one benchmark under both pipelines, keeping the pipeline reports.
///
/// # Panics
///
/// As [`run_program`].
pub fn run_program_with_reports(p: &Program) -> ReportRow {
    let (v_base, m_base, base_rep) = measure_with_report(p.source, &OptConfig::baseline());
    let (v_join, m_join, join_rep) = measure_with_report(p.source, &OptConfig::join_points());
    assert_eq!(
        v_base, v_join,
        "{}: baseline and join-points disagree ({v_base} vs {v_join})",
        p.name
    );
    if let Some(exp) = p.expected {
        assert_eq!(v_join, exp, "{}: expected {exp}, got {v_join}", p.name);
    }
    let (_, _, machine_wall) =
        measure_backend(p.source, &OptConfig::join_points(), Backend::Machine);
    let (v_vm, m_vm, vm_wall) = measure_backend(p.source, &OptConfig::join_points(), Backend::Vm);
    assert_eq!(
        v_vm, v_join,
        "{}: vm backend disagrees on the value",
        p.name
    );
    assert_eq!(
        (
            m_vm.let_allocs,
            m_vm.arg_allocs,
            m_vm.con_allocs,
            m_vm.jumps
        ),
        (
            m_join.let_allocs,
            m_join.arg_allocs,
            m_join.con_allocs,
            m_join.jumps
        ),
        "{}: vm backend disagrees on allocation metrics",
        p.name
    );
    ReportRow {
        row: Row {
            name: p.name,
            suite: p.suite,
            value: v_join,
            baseline: m_base,
            joined: m_join,
        },
        baseline_report: base_rep,
        joined_report: join_rep,
        machine_wall,
        vm_wall,
    }
}

/// Run the whole suite with pipeline reports (the `fj report` payload).
pub fn run_report() -> Vec<ReportRow> {
    programs().iter().map(run_program_with_reports).collect()
}

/// Render [`ReportRow`]s as the Table-1-style markdown report: machine
/// metrics under both pipelines, then the optimizer activity (rewrite
/// counters) that explains the deltas.
pub fn format_report(rows: &[ReportRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "# fj report — baseline vs join points\n").unwrap();
    writeln!(
        out,
        "Allocation counts from the abstract machine (call-by-value, the \
         paper's Table-1 metric); `Δ allocs` negative means the join-points \
         pipeline allocates less.\n"
    )
    .unwrap();
    writeln!(out, "## Machine metrics\n").unwrap();
    writeln!(
        out,
        "| program | suite | steps b/j | let b/j | arg b/j | con b/j | jumps b/j | stack b/j | Δ allocs |"
    )
    .unwrap();
    writeln!(out, "|---|---|---|---|---|---|---|---|---|").unwrap();
    for r in rows {
        let (b, j) = (&r.row.baseline, &r.row.joined);
        writeln!(
            out,
            "| {} | {} | {}/{} | {}/{} | {}/{} | {}/{} | {}/{} | {}/{} | {:+.1}% |",
            r.row.name,
            r.row.suite.name(),
            b.steps,
            j.steps,
            b.let_allocs,
            j.let_allocs,
            b.arg_allocs,
            j.arg_allocs,
            b.con_allocs,
            j.con_allocs,
            b.jumps,
            j.jumps,
            b.max_stack,
            j.max_stack,
            r.row.delta_pct()
        )
        .unwrap();
    }
    writeln!(out, "\n## Backend wall time (join-points pipeline)\n").unwrap();
    writeln!(
        out,
        "Same term, same counters — only the execution strategy differs: \
         the Fig. 3 substitution machine vs the flat jump-threaded \
         bytecode VM (`--backend vm`).\n"
    )
    .unwrap();
    writeln!(out, "| program | machine | vm | speedup |").unwrap();
    writeln!(out, "|---|---|---|---|").unwrap();
    for r in rows {
        writeln!(
            out,
            "| {} | {:.2?} | {:.2?} | {:.1}× |",
            r.row.name,
            r.machine_wall,
            r.vm_wall,
            r.speedup()
        )
        .unwrap();
    }
    writeln!(out, "\n## Optimizer activity (join-points pipeline)\n").unwrap();
    writeln!(
        out,
        "| program | contified | simplify rewrites | float-in | float-out | shared ctx | total | wall |"
    )
    .unwrap();
    writeln!(out, "|---|---|---|---|---|---|---|---|").unwrap();
    for r in rows {
        let t = r.joined_report.totals();
        writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {:.1?} |",
            r.row.name,
            t.contified,
            r.joined_report.rewrites_for("simplify"),
            t.floated_in,
            t.floated_out,
            t.shared_contexts,
            t.total(),
            r.joined_report.wall
        )
        .unwrap();
    }
    writeln!(out, "\n## Per-pass detail\n").unwrap();
    for r in rows {
        writeln!(out, "### {}\n", r.row.name).unwrap();
        writeln!(
            out,
            "| pass | outcome | rewrites | size | lets | joins | jumps |"
        )
        .unwrap();
        writeln!(out, "|---|---|---|---|---|---|---|").unwrap();
        for p in &r.joined_report.passes {
            writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} |",
                p.pass,
                p.outcome,
                p.rewrites,
                p.census_after.size,
                p.census_after.lets,
                p.census_after.joins,
                p.census_after.jumps
            )
            .unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// Run the whole Table-1 experiment.
pub fn run_table1() -> Vec<Row> {
    programs().iter().map(run_program).collect()
}

/// One benchmark timed on both backends (join-points pipeline).
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// Program name.
    pub name: &'static str,
    /// Suite name.
    pub suite: &'static str,
    /// Machine wall time.
    pub machine: std::time::Duration,
    /// VM wall time.
    pub vm: std::time::Duration,
    /// Native-Rust candle wall time (the hardware ceiling; see
    /// [`candles`]).
    pub candle: std::time::Duration,
    /// Total heap-allocation units (identical on both backends; checked).
    pub total_allocs: u64,
    /// Jumps taken (identical on both backends; checked).
    pub jumps: u64,
}

/// Time every nofib program on both backends, verifying value and
/// metric agreement along the way.
///
/// `iterations` timed runs per backend are averaged after `warmup`
/// untimed runs; `iterations` is clamped to at least 1. The historical
/// behaviour is `run_bench(1, 0)`.
///
/// # Panics
///
/// As [`measure_backend`]; also panics if the backends disagree.
pub fn run_bench(iterations: u32, warmup: u32) -> Vec<BenchRow> {
    let cfg = OptConfig::join_points();
    let iters = iterations.max(1);
    let mean = |total: std::time::Duration| total / iters;
    programs()
        .iter()
        .map(|p| {
            for _ in 0..warmup {
                measure_backend(p.source, &cfg, Backend::Machine);
                measure_backend(p.source, &cfg, Backend::Vm);
            }
            let mut machine = std::time::Duration::ZERO;
            let mut vm = std::time::Duration::ZERO;
            let mut metrics = None;
            let mut value = 0i64;
            for _ in 0..iters {
                let (v_m, m_m, machine_wall) = measure_backend(p.source, &cfg, Backend::Machine);
                let (v_v, m_v, vm_wall) = measure_backend(p.source, &cfg, Backend::Vm);
                assert_eq!(v_m, v_v, "{}: backends disagree on the value", p.name);
                assert_eq!(
                    (m_m.let_allocs, m_m.arg_allocs, m_m.con_allocs, m_m.jumps),
                    (m_v.let_allocs, m_v.arg_allocs, m_v.con_allocs, m_v.jumps),
                    "{}: backends disagree on allocation metrics",
                    p.name
                );
                machine += machine_wall;
                vm += vm_wall;
                metrics = Some(m_v);
                value = v_v;
            }
            let m_v = metrics.expect("iterations >= 1");
            let candle_fn = candles::candle(p.name)
                .unwrap_or_else(|| panic!("{}: no native candle registered", p.name));
            let (candle_value, candle_wall) = candles::time_candle(candle_fn);
            assert_eq!(
                candle_value, value,
                "{}: native candle disagrees with the VM",
                p.name
            );
            BenchRow {
                name: p.name,
                suite: p.suite.name(),
                machine: mean(machine),
                vm: mean(vm),
                candle: candle_wall,
                total_allocs: m_v.total_allocs(),
                jumps: m_v.jumps,
            }
        })
        .collect()
}

/// One nofib program timed through the optimizer (`fj bench --phase
/// optimize`): serial wall time per full pipeline run plus the per-pass
/// breakdown from the last iteration's [`PipelineReport`].
#[derive(Clone, Debug)]
pub struct OptBenchRow {
    /// Program name.
    pub name: &'static str,
    /// Suite name.
    pub suite: &'static str,
    /// Mean wall time of one full `optimize_with_report` run, in ns.
    pub optimize_ns: u128,
    /// Term size entering the pipeline.
    pub size_before: usize,
    /// Term size leaving the pipeline.
    pub size_after: usize,
    /// Per-pass `(name, wall ns, rewrites fired)` from the last timed run.
    pub passes: Vec<(&'static str, u128, u64)>,
}

/// The whole `--phase optimize` measurement: per-program rows plus the
/// serial and parallel suite totals that BENCH_opt.json tracks.
#[derive(Clone, Debug)]
pub struct OptBench {
    /// Per-program rows, suite order.
    pub rows: Vec<OptBenchRow>,
    /// Sum of the per-program serial means, in ns.
    pub serial_ns: u128,
    /// Mean wall time of optimizing the whole suite through
    /// [`fj_core::optimize_many`], in ns.
    pub parallel_ns: u128,
    /// Worker threads the parallel driver used.
    pub threads: usize,
    /// Timed iterations per measurement.
    pub iterations: u32,
    /// Untimed warmup runs per measurement.
    pub warmup: u32,
}

/// Time the optimizer (not the backends) over the whole nofib suite
/// under the join-points pipeline: compile every program once, then for
/// each program run the full pipeline `warmup` untimed plus
/// `iterations` timed times (fresh name supply per run), and finally
/// time the same batch through the parallel [`fj_core::optimize_many`]
/// driver.
///
/// # Panics
///
/// On compile or optimizer errors — as [`measure`], a harness bug is a
/// loud stop.
pub fn run_bench_opt(iterations: u32, warmup: u32) -> OptBench {
    let cfg = OptConfig::join_points();
    let iters = iterations.max(1);
    let compiled: Vec<(&'static str, &'static str, fj_surface::Lowered)> = programs()
        .iter()
        .map(|p| {
            let lowered = compile(p.source).unwrap_or_else(|e| panic!("{}: compile: {e}", p.name));
            (p.name, p.suite.name(), lowered)
        })
        .collect();

    let mut rows = Vec::with_capacity(compiled.len());
    let mut serial_ns = 0u128;
    for (name, suite, lowered) in &compiled {
        for _ in 0..warmup {
            let mut supply = lowered.supply.clone();
            optimize_with_report(&lowered.expr, &lowered.data_env, &mut supply, &cfg)
                .unwrap_or_else(|e| panic!("{name}: optimize: {e}"));
        }
        let mut total = 0u128;
        let mut last = None;
        for _ in 0..iters {
            let mut supply = lowered.supply.clone();
            let start = std::time::Instant::now();
            let out = optimize_with_report(&lowered.expr, &lowered.data_env, &mut supply, &cfg)
                .unwrap_or_else(|e| panic!("{name}: optimize: {e}"));
            total += start.elapsed().as_nanos();
            last = Some(out.1);
        }
        let report = last.expect("iterations >= 1");
        let mean = total / u128::from(iters);
        serial_ns += mean;
        rows.push(OptBenchRow {
            name,
            suite,
            optimize_ns: mean,
            size_before: report.census_before.size,
            size_after: report.census_after.size,
            passes: report
                .passes
                .iter()
                .map(|p| (p.pass, p.wall.as_nanos(), p.rewrites.total()))
                .collect(),
        });
    }

    let threads = fj_core::par_threads(compiled.len());
    let mut parallel_total = 0u128;
    for _ in 0..iters {
        let jobs: Vec<_> = compiled
            .iter()
            .map(|(_, _, l)| (l.expr.clone(), l.data_env.clone(), l.supply.clone()))
            .collect();
        let start = std::time::Instant::now();
        let results = fj_core::optimize_many(jobs, &cfg);
        parallel_total += start.elapsed().as_nanos();
        for ((name, _, _), r) in compiled.iter().zip(results) {
            r.unwrap_or_else(|e| panic!("{name}: optimize_many: {e}"));
        }
    }

    OptBench {
        rows,
        serial_ns,
        parallel_ns: parallel_total / u128::from(iters),
        threads,
        iterations: iters,
        warmup,
    }
}

/// Render an [`OptBench`] as the `BENCH_opt.json` snapshot (hand-written
/// JSON; the workspace takes no serialization dependency).
pub fn format_bench_opt_json(bench: &OptBench) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let speedup = |serial: u128, parallel: u128| {
        if parallel == 0 {
            f64::INFINITY
        } else {
            serial as f64 / parallel as f64
        }
    };
    writeln!(out, "{{").unwrap();
    writeln!(out, "  \"generated_by\": \"fj bench --phase optimize\",").unwrap();
    writeln!(out, "  \"pipeline\": \"join_points\",").unwrap();
    writeln!(out, "  \"unit\": \"nanoseconds\",").unwrap();
    writeln!(out, "  \"iterations\": {},", bench.iterations).unwrap();
    writeln!(out, "  \"warmup\": {},", bench.warmup).unwrap();
    writeln!(out, "  \"threads\": {},", bench.threads).unwrap();
    writeln!(out, "  \"programs\": [").unwrap();
    for (i, r) in bench.rows.iter().enumerate() {
        let comma = if i + 1 == bench.rows.len() { "" } else { "," };
        let passes = r
            .passes
            .iter()
            .map(|(pass, ns, rewrites)| {
                format!("{{\"pass\": \"{pass}\", \"ns\": {ns}, \"rewrites\": {rewrites}}}")
            })
            .collect::<Vec<_>>()
            .join(", ");
        writeln!(
            out,
            "    {{\"name\": \"{}\", \"suite\": \"{}\", \"optimize_ns\": {}, \
             \"size_before\": {}, \"size_after\": {}, \"passes\": [{passes}]}}{comma}",
            r.name, r.suite, r.optimize_ns, r.size_before, r.size_after
        )
        .unwrap();
    }
    writeln!(out, "  ],").unwrap();
    writeln!(
        out,
        "  \"total\": {{\"serial_ns\": {}, \"parallel_ns\": {}, \"parallel_speedup\": {:.2}}}",
        bench.serial_ns,
        bench.parallel_ns,
        speedup(bench.serial_ns, bench.parallel_ns)
    )
    .unwrap();
    writeln!(out, "}}").unwrap();
    out
}

/// Render bench rows as the `BENCH_vm.json` snapshot (hand-written
/// JSON; the workspace takes no serialization dependency).
pub fn format_bench_json(rows: &[BenchRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let machine_total: u128 = rows.iter().map(|r| r.machine.as_nanos()).sum();
    let vm_total: u128 = rows.iter().map(|r| r.vm.as_nanos()).sum();
    let candle_total: u128 = rows.iter().map(|r| r.candle.as_nanos()).sum();
    let speedup = |m: u128, v: u128| {
        if v == 0 {
            f64::INFINITY
        } else {
            m as f64 / v as f64
        }
    };
    writeln!(out, "{{").unwrap();
    writeln!(out, "  \"generated_by\": \"fj bench\",").unwrap();
    writeln!(out, "  \"pipeline\": \"join_points\",").unwrap();
    writeln!(out, "  \"mode\": \"call_by_value\",").unwrap();
    writeln!(out, "  \"unit\": \"nanoseconds\",").unwrap();
    writeln!(out, "  \"programs\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"name\": \"{}\", \"suite\": \"{}\", \"machine_ns\": {}, \
             \"vm_ns\": {}, \"speedup\": {:.2}, \"candle_ns\": {}, \
             \"vm_over_candle\": {:.2}, \"total_allocs\": {}, \"jumps\": {}}}{comma}",
            r.name,
            r.suite,
            r.machine.as_nanos(),
            r.vm.as_nanos(),
            speedup(r.machine.as_nanos(), r.vm.as_nanos()),
            r.candle.as_nanos(),
            speedup(r.vm.as_nanos(), r.candle.as_nanos()),
            r.total_allocs,
            r.jumps
        )
        .unwrap();
    }
    writeln!(out, "  ],").unwrap();
    writeln!(
        out,
        "  \"total\": {{\"machine_ns\": {machine_total}, \"vm_ns\": {vm_total}, \
         \"speedup\": {:.2}, \"candle_ns\": {candle_total}, \"vm_over_candle\": {:.2}}}",
        speedup(machine_total, vm_total),
        speedup(vm_total, candle_total)
    )
    .unwrap();
    writeln!(out, "}}").unwrap();
    out
}

/// Minimum, maximum, and geometric mean of the deltas in a suite — the
/// paper's summary lines.
#[derive(Clone, Copy, Debug)]
pub struct SuiteSummary {
    /// Best (most negative) delta.
    pub min: f64,
    /// Worst delta.
    pub max: f64,
    /// Geometric mean of (1 + delta) − 1, in percent; `None` when any
    /// program hit −100% (the paper prints "n/a" for shootout for this
    /// reason).
    pub geo_mean: Option<f64>,
}

/// Summarize one suite's rows.
pub fn summarize(rows: &[Row], suite: Suite) -> SuiteSummary {
    let deltas: Vec<f64> = rows
        .iter()
        .filter(|r| r.suite == suite)
        .map(Row::delta_pct)
        .collect();
    let min = deltas.iter().copied().fold(f64::INFINITY, f64::min);
    let max = deltas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let geo_mean = if deltas.iter().any(|d| *d <= -100.0) {
        None
    } else {
        let log_sum: f64 = deltas.iter().map(|d| (1.0 + d / 100.0).ln()).sum();
        Some(((log_sum / deltas.len() as f64).exp() - 1.0) * 100.0)
    };
    SuiteSummary { min, max, geo_mean }
}

/// Render the rows in the paper's Table-1 layout.
pub fn format_table1(rows: &[Row]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for suite in [Suite::Spectral, Suite::Real, Suite::Shootout] {
        writeln!(out, "{}", suite.name()).unwrap();
        writeln!(
            out,
            "{:<16} {:>10} {:>10} {:>8}",
            "Program", "base", "joins", "Allocs"
        )
        .unwrap();
        for r in rows.iter().filter(|r| r.suite == suite) {
            writeln!(
                out,
                "{:<16} {:>10} {:>10} {:>+7.1}%",
                r.name,
                r.baseline.total_allocs(),
                r.joined.total_allocs(),
                r.delta_pct()
            )
            .unwrap();
        }
        let s = summarize(rows, suite);
        writeln!(out, "{:<16} {:>21} {:>+7.1}%", "Min", "", s.min).unwrap();
        writeln!(out, "{:<16} {:>21} {:>+7.1}%", "Max", "", s.max).unwrap();
        match s.geo_mean {
            Some(g) => writeln!(out, "{:<16} {:>21} {:>+7.1}%", "Geo. Mean", "", g).unwrap(),
            None => writeln!(out, "{:<16} {:>21} {:>8}", "Geo. Mean", "", "n/a").unwrap(),
        }
        writeln!(out).unwrap();
    }
    out
}

/// One row of the ablation study (experiment A-ablate): the join-points
/// pipeline with one ingredient removed, over the whole suite.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Which configuration.
    pub label: &'static str,
    /// Total allocations across all benchmarks.
    pub total_allocs: u64,
    /// Total machine steps across all benchmarks.
    pub total_steps: u64,
}

/// Run the ablation: full pipeline vs pipeline-minus-one-pass vs baseline.
pub fn run_ablation() -> Vec<AblationRow> {
    let configs: Vec<(&'static str, OptConfig)> = vec![
        ("join-points (full)", OptConfig::join_points()),
        (
            "without contify",
            OptConfig::join_points_without(fj_core::Pass::Contify),
        ),
        (
            "without float-in",
            OptConfig::join_points_without(fj_core::Pass::FloatIn),
        ),
        (
            "without simplify",
            OptConfig::join_points_without(fj_core::Pass::Simplify),
        ),
        ("baseline", OptConfig::baseline()),
        ("no optimization", OptConfig::none()),
    ];
    configs
        .into_iter()
        .map(|(label, cfg)| {
            let mut total_allocs = 0u64;
            let mut total_steps = 0u64;
            for p in programs() {
                let (_, m) = measure(p.source, &cfg);
                total_allocs += m.total_allocs();
                total_steps += m.steps;
            }
            AblationRow {
                label,
                total_allocs,
                total_steps,
            }
        })
        .collect()
}

/// Render the ablation rows.
pub fn format_ablation(rows: &[AblationRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "{:<22} {:>12} {:>12}",
        "Configuration", "allocs", "steps"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:<22} {:>12} {:>12}",
            r.label, r.total_allocs, r.total_steps
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests;
