//! The `spectral` suite: NoFib-analogue programs named after the rows of
//! the paper's Table 1.
//!
//! Each program is a self-contained surface-language source engineered to
//! exhibit the optimization profile the paper reports for its namesake:
//! local loops returning `Maybe`/`Pair` results that a consumer
//! scrutinizes (join points win), or code where join points are simply
//! neutral. We reproduce the *shape* of the column, not GHC's absolute
//! percentages.

use crate::{Program, Suite};

/// `fibheaps` — priority-queue workload: repeated insert/delete-min on a
/// sorted-list heap, with a local merge loop.
pub const FIBHEAPS: &str = "
-- insert into a sorted list (the degenerate heap)
def insert : Int -> List Int -> List Int =
  \\(x : Int) (h : List Int) ->
    letrec go : List Int -> List Int =
      \\(ys : List Int) ->
        case ys of {
          Nil -> Cons @Int x (Nil @Int);
          Cons y t ->
            if x <= y then Cons @Int x ys
            else Cons @Int y (go t)
        }
    in go h;

def deleteMin : List Int -> Pair Int (List Int) =
  \\(h : List Int) ->
    case h of {
      Nil -> MkPair @Int @(List Int) (0 - 1) (Nil @Int);
      Cons m t -> MkPair @Int @(List Int) m t
    };

-- drain the heap, summing the minima
def drain : List Int -> Int =
  \\(h0 : List Int) ->
    letrec go : List Int -> Int -> Int =
      \\(h : List Int) (acc : Int) ->
        case h of {
          Nil -> acc;
          Cons _ _ ->
            case deleteMin h of {
              MkPair m rest -> go rest (acc + m)
            }
        }
    in go h0 0;

def build : Int -> List Int =
  \\(n : Int) ->
    letrec go : Int -> List Int -> List Int =
      \\(i : Int) (h : List Int) ->
        if i <= 0 then h
        else go (i - 1) (insert ((i * 37) % 101) h)
    in go n (Nil @Int);

def main : Int = drain (build 60);
";

/// `ida` — iterative-deepening search over an implicit graph: a bounded
/// DFS returning `Maybe Int`, retried with increasing depth.
pub const IDA: &str = "
-- implicit graph: from node v, neighbours are (v*2)%97 and (v*3+1)%97
def dfs : Int -> Int -> Int -> Maybe Int =
  \\(goal : Int) (depth : Int) (v : Int) ->
    letrec go : Int -> Int -> Maybe Int =
      \\(d : Int) (u : Int) ->
        if u == goal then Just @Int d
        else if d <= 0 then Nothing @Int
        else
          case go (d - 1) ((u * 2) % 97) of {
            Just k -> Just @Int k;
            Nothing -> go (d - 1) ((u * 3 + 1) % 97)
          }
    in go depth v;

def ida : Int -> Int -> Int =
  \\(start : Int) (goal : Int) ->
    letrec try : Int -> Int =
      \\(depth : Int) ->
        if depth > 9 then 0 - 1
        else
          case dfs goal depth start of {
            Just _ -> depth;
            Nothing -> try (depth + 1)
          }
    in try 1;

def main : Int = ida 1 54 + ida 2 33 + ida 3 76;
";

/// `nucleic2` — data-construction-heavy: builds and folds structures with
/// little scrutinee/constructor cancellation, so join points are neutral.
pub const NUCLEIC2: &str = "
data Atom = MkAtom Int Int Int;

def dot : Atom -> Atom -> Int =
  \\(p : Atom) (q : Atom) ->
    case p of {
      MkAtom px py pz ->
        case q of {
          MkAtom qx qy qz -> px * qx + py * qy + pz * qz
        }
    };

def rotate : Atom -> Atom =
  \\(p : Atom) ->
    case p of {
      MkAtom x y z -> MkAtom (y % 91) (z % 91) (x % 91)
    };

def chain : Int -> List Atom =
  \\(n : Int) ->
    letrec go : Int -> List Atom =
      \\(i : Int) ->
        if i > n then Nil @Atom
        else Cons @Atom (MkAtom i (i * i % 91) (i * 3 % 91)) (go (i + 1))
    in go 1;

def energy : List Atom -> Int =
  \\(atoms : List Atom) ->
    letrec go : List Atom -> Int -> Int =
      \\(ps : List Atom) (acc : Int) ->
        case ps of {
          Nil -> acc;
          Cons p rest -> go rest (acc + dot p (rotate p))
        }
    in go atoms 0;

def main : Int = energy (chain 80);
";

/// `para` — paragraph filling: break a list of word lengths into lines of
/// bounded width; the line-filling loop returns a `Pair`.
pub const PARA: &str = "
def words : Int -> List Int =
  \\(n : Int) ->
    letrec go : Int -> List Int =
      \\(i : Int) ->
        if i > n then Nil @Int
        else Cons @Int (3 + (i * 7) % 9) (go (i + 1))
    in go 1;

-- fill one line: returns (line width used, rest of words)
def fillLine : Int -> List Int -> Pair Int (List Int) =
  \\(width : Int) (ws : List Int) ->
    letrec go : Int -> List Int -> Pair Int (List Int) =
      \\(used : Int) (rest : List Int) ->
        case rest of {
          Nil -> MkPair @Int @(List Int) used rest;
          Cons w more ->
            if used + w + 1 > width
            then MkPair @Int @(List Int) used rest
            else go (used + w + 1) more
        }
    in go 0 ws;

def countLines : Int -> List Int -> Int =
  \\(width : Int) (ws0 : List Int) ->
    letrec go : List Int -> Int -> Int =
      \\(ws : List Int) (n : Int) ->
        case ws of {
          Nil -> n;
          Cons _ _ ->
            case fillLine width ws of {
              MkPair _ rest -> go rest (n + 1)
            }
        }
    in go ws0 0;

def main : Int = countLines 30 (words 120);
";

/// `primetest` — trial-division primality with an inner divisor loop
/// returning `Bool`, consumed by a counting loop.
pub const PRIMETEST: &str = "
def candidates : Int -> List Int =
  \\(limit : Int) ->
    letrec go : Int -> List Int =
      \\(i : Int) ->
        if i > limit then Nil @Int else Cons @Int i (go (i + 1))
    in go 2;

def isPrime : Int -> Bool =
  \\(n : Int) ->
    if n < 2 then False
    else
      letrec go : Int -> Bool =
        \\(d : Int) ->
          if d * d > n then True
          else if n % d == 0 then False
          else go (d + 1)
      in go 2;

def countPrimes : List Int -> Int =
  \\(ns : List Int) ->
    letrec go : List Int -> Int -> Int =
      \\(xs : List Int) (acc : Int) ->
        case xs of {
          Nil -> acc;
          Cons n rest ->
            if isPrime n then go rest (acc + 1) else go rest acc
        }
    in go ns 0;

def main : Int = countPrimes (candidates 200);
";

/// `simple` — plain arithmetic recurrences; loops contify but there was
/// nothing to allocate anyway, so the win is modest.
pub const SIMPLE: &str = "
def step : Int -> Int =
  \\(x : Int) -> (x * 1103515245 + 12345) % 2147483647;

def seeds : Int -> List Int =
  \\(n : Int) ->
    letrec go : Int -> List Int =
      \\(i : Int) ->
        if i > n then Nil @Int else Cons @Int (i * 3 + 1) (go (i + 1))
    in go 1;

def iterate : Int -> Int -> Int =
  \\(n : Int) (x0 : Int) ->
    letrec go : Int -> Int -> Int =
      \\(i : Int) (x : Int) ->
        if i <= 0 then x else go (i - 1) (step x)
    in go n x0;

def sumAll : List Int -> Int =
  \\(xs0 : List Int) ->
    letrec go : List Int -> Int -> Int =
      \\(xs : List Int) (acc : Int) ->
        case xs of {
          Nil -> acc;
          Cons x rest -> go rest ((acc + iterate 20 x) % 100000)
        }
    in go xs0 0;

def main : Int = sumAll (seeds 30);
";

/// `solid` — the suite's best case: geometric queries where every
/// candidate test is a local `Maybe`-returning search consumed by a case
/// (`find`/`any` composition, Sec. 5 of the paper).
pub const SOLID: &str = "
data Seg = MkSeg Int Int;

def segs : Int -> List Seg =
  \\(n : Int) ->
    letrec go : Int -> List Seg =
      \\(i : Int) ->
        if i > n then Nil @Seg
        else Cons @Seg (MkSeg ((i * 13) % 50) ((i * 13) % 50 + (i % 7) + 1))
                       (go (i + 1))
    in go 1;

-- first segment containing x, if any
def findHit : Int -> List Seg -> Maybe Seg =
  \\(x : Int) (ss : List Seg) ->
    letrec go : List Seg -> Maybe Seg =
      \\(rest : List Seg) ->
        case rest of {
          Nil -> Nothing @Seg;
          Cons s more ->
            case s of {
              MkSeg lo hi ->
                if lo <= x then (if x <= hi then Just @Seg s else go more)
                else go more
            }
        }
    in go ss;

def hits : List Seg -> Int -> Int =
  \\(ss : List Seg) (probes : Int) ->
    letrec go : Int -> Int -> Int =
      \\(i : Int) (acc : Int) ->
        if i > probes then acc
        else
          case findHit ((i * 17) % 60) ss of {
            Nothing -> go (i + 1) acc;
            Just s -> case s of { MkSeg lo hi -> go (i + 1) (acc + hi - lo) }
          }
    in go 1 0;

def main : Int = hits (segs 40) 120;
";

/// `sphere` — ray-casting: per-ray intersection search returning
/// `Maybe Int`, consumed immediately (shade or background).
pub const SPHERE: &str = "
data Sphere = MkSphere Int Int;

def scene : Int -> List Sphere =
  \\(n : Int) ->
    letrec go : Int -> List Sphere =
      \\(i : Int) ->
        if i > n then Nil @Sphere
        else Cons @Sphere (MkSphere ((i * 23) % 40) (2 + i % 5)) (go (i + 1))
    in go 1;

def firstHit : Int -> List Sphere -> Maybe Int =
  \\(ray : Int) (ss : List Sphere) ->
    letrec go : List Sphere -> Maybe Int =
      \\(rest : List Sphere) ->
        case rest of {
          Nil -> Nothing @Int;
          Cons s more ->
            case s of {
              MkSphere c r ->
                if c - r <= ray then
                  (if ray <= c + r then Just @Int (c + r - ray) else go more)
                else go more
            }
        }
    in go ss;

def render : List Sphere -> Int -> Int =
  \\(ss : List Sphere) (rays : Int) ->
    letrec go : Int -> Int -> Int =
      \\(i : Int) (acc : Int) ->
        if i > rays then acc
        else
          case firstHit ((i * 11) % 45) ss of {
            Nothing -> go (i + 1) acc;
            Just shade -> go (i + 1) (acc + shade)
          }
    in go 1 0;

def main : Int = render (scene 30) 100;
";

/// `transform` — tree rewriting: repeated constructor build/match with
/// shared big branches; join points are near-neutral here.
pub const TRANSFORM: &str = "
data Tree = Leaf Int | Node Tree Tree;

def build : Int -> Tree =
  \\(d : Int) ->
    letrec go : Int -> Int -> Tree =
      \\(depth : Int) (seed : Int) ->
        if depth <= 0 then Leaf (seed % 17)
        else Node (go (depth - 1) (seed * 2 + 1)) (go (depth - 1) (seed * 3 + 2))
    in go d 1;

def rewrite : Tree -> Tree =
  \\(t : Tree) ->
    letrec go : Tree -> Tree =
      \\(u : Tree) ->
        case u of {
          Leaf n -> if n % 2 == 0 then Leaf (n + 1) else Leaf n;
          Node l r -> Node (go r) (go l)
        }
    in go t;

def sumT : Tree -> Int =
  \\(t : Tree) ->
    letrec go : Tree -> Int =
      \\(u : Tree) ->
        case u of {
          Leaf n -> n;
          Node l r -> go l + go r
        }
    in go t;

def main : Int = sumT (rewrite (rewrite (build 7)));
";

/// All spectral programs, in Table 1 row order.
pub fn programs() -> Vec<Program> {
    vec![
        Program {
            name: "fibheaps",
            suite: Suite::Spectral,
            source: FIBHEAPS,
            expected: None,
        },
        Program {
            name: "ida",
            suite: Suite::Spectral,
            source: IDA,
            expected: None,
        },
        Program {
            name: "nucleic2",
            suite: Suite::Spectral,
            source: NUCLEIC2,
            expected: None,
        },
        Program {
            name: "para",
            suite: Suite::Spectral,
            source: PARA,
            expected: None,
        },
        Program {
            name: "primetest",
            suite: Suite::Spectral,
            source: PRIMETEST,
            expected: Some(46),
        },
        Program {
            name: "simple",
            suite: Suite::Spectral,
            source: SIMPLE,
            expected: None,
        },
        Program {
            name: "solid",
            suite: Suite::Spectral,
            source: SOLID,
            expected: None,
        },
        Program {
            name: "sphere",
            suite: Suite::Spectral,
            source: SPHERE,
            expected: None,
        },
        Program {
            name: "transform",
            suite: Suite::Spectral,
            source: TRANSFORM,
            expected: None,
        },
    ]
}
