//! The `shootout` suite: the paper's most dramatic rows. `n-body` lost
//! **all** of its allocations (−100.0%) and `k-nucleotide` 85.9%; both
//! are hand-tuned inner loops in stream style, which is exactly the shape
//! where preserving join points lets every intermediate constructor
//! cancel.

use crate::{Program, Suite};

/// `n-body` — an energy summation in skip-less stream style: the stepper
/// has a recursive "seek" loop (negligible bodies are skipped), and the
/// consumer scrutinizes its `Step` result. With join points the whole
/// pipeline fuses to straight-line arithmetic: **zero allocations**.
pub const NBODY: &str = "
def force : Int -> Int =
  \\(i : Int) -> (i * i * 3 + i * 7) % 1000;

-- skip-less stepper over bodies s..n, skipping negligible contributions
def stepE : Int -> Int -> Step Int Int =
  \\(n : Int) (s : Int) ->
    letrec seek : Int -> Step Int Int =
      \\(i : Int) ->
        if i > n then Done @Int @Int
        else if force i % 3 == 0 then seek (i + 1)
        else Yield @Int @Int (force i) (i + 1)
    in seek s;

def energy : Int -> Int =
  \\(n : Int) ->
    letrec go : Int -> Int -> Int =
      \\(s : Int) (acc : Int) ->
        case stepE n s of {
          Done -> acc;
          Yield e s2 -> go s2 (acc + e)
        }
    in go 1 0;

def main : Int = energy 200;
";

/// `k-nucleotide` — count occurrences of 2-mers in a synthetic sequence.
/// The sequence list is real data (allocated in both configurations);
/// the per-position matcher is a `Maybe`-returning inner loop whose
/// result is immediately scrutinized — that part fuses away entirely,
/// leaving only the sequence allocation (a large but partial win).
pub const KNUCLEOTIDE: &str = "
def sequence : Int -> List Int =
  \\(n : Int) ->
    letrec go : Int -> List Int =
      \\(i : Int) ->
        if i > n then Nil @Int
        else Cons @Int ((i * 7 + i / 3) % 4) (go (i + 1))
    in go 1;

-- does the pattern match at the head of xs? (recursive prefix matcher)
def matchHere : List Int -> List Int -> Maybe (List Int) =
  \\(pat : List Int) (xs : List Int) ->
    letrec go : List Int -> List Int -> Maybe (List Int) =
      \\(p : List Int) (ys : List Int) ->
        case p of {
          Nil -> Just @(List Int) ys;
          Cons a pr ->
            case ys of {
              Nil -> Nothing @(List Int);
              Cons y yr ->
                if y == a then go pr yr else Nothing @(List Int)
            }
        }
    in go pat xs;

def countMatches : List Int -> List Int -> Int =
  \\(pat : List Int) (xs0 : List Int) ->
    letrec go : List Int -> Int -> Int =
      \\(xs : List Int) (acc : Int) ->
        case xs of {
          Nil -> acc;
          Cons _ rest ->
            case matchHere pat xs of {
              Nothing -> go rest acc;
              Just _ -> go rest (acc + 1)
            }
        }
    in go xs0 0;

def pat2 : Int -> Int -> List Int =
  \\(a : Int) (b : Int) -> Cons @Int a (Cons @Int b (Nil @Int));

def main : Int =
  let seq : List Int = sequence 150 in
  countMatches (pat2 0 1) seq
    + countMatches (pat2 1 2) seq * 10
    + countMatches (pat2 2 3) seq * 100;
";

/// `spectral-norm` — pure nested arithmetic loops; both configurations
/// contify the loops, so the delta is small (−0.8% in the paper).
pub const SPECTRALNORM: &str = "
def a : Int -> Int -> Int =
  \\(i : Int) (j : Int) -> 1 + ((i + j) * (i + j + 1)) / 2 + i;

def multiplyRow : Int -> Int -> Int =
  \\(n : Int) (i : Int) ->
    letrec go : Int -> Int -> Int =
      \\(j : Int) (acc : Int) ->
        if j > n then acc
        else go (j + 1) (acc + 1000 / a i j)
    in go 0 0;

def norm : Int -> Int =
  \\(n : Int) ->
    letrec go : Int -> Int -> Int =
      \\(i : Int) (acc : Int) ->
        if i > n then acc
        else go (i + 1) (acc + multiplyRow n i)
    in go 0 0;

def main : Int = norm 25;
";

/// All `shootout` programs, in Table 1 row order.
pub fn programs() -> Vec<Program> {
    vec![
        Program {
            name: "k-nucleotide",
            suite: Suite::Shootout,
            source: KNUCLEOTIDE,
            expected: None,
        },
        Program {
            name: "n-body",
            suite: Suite::Shootout,
            source: NBODY,
            expected: None,
        },
        Program {
            name: "spectral-norm",
            suite: Suite::Shootout,
            source: SPECTRALNORM,
            expected: None,
        },
    ]
}
