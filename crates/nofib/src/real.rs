//! The `real` suite: NoFib-analogue programs named after the rows of the
//! paper's Table 1 (`real` column).

use crate::{Program, Suite};

/// `anna` — abstract interpretation over a tiny lattice: deeply nested
/// `case` analysis with shared result construction; join points are
/// mostly neutral here, as in the paper (+0.5%).
pub const ANNA: &str = "
data Abs = Bot | Zero | Pos | Top;

def join2 : Abs -> Abs -> Abs =
  \\(a : Abs) (b : Abs) ->
    case a of {
      Bot -> b;
      Zero -> case b of { Bot -> Zero; Zero -> Zero; Pos -> Top; Top -> Top };
      Pos -> case b of { Bot -> Pos; Zero -> Top; Pos -> Pos; Top -> Top };
      Top -> Top
    };

def absAdd : Abs -> Abs -> Abs =
  \\(a : Abs) (b : Abs) ->
    case a of {
      Bot -> Bot;
      Zero -> b;
      Pos -> case b of { Bot -> Bot; Zero -> Pos; Pos -> Pos; Top -> Top };
      Top -> case b of { Bot -> Bot; _ -> Top }
    };

def rank : Abs -> Int =
  \\(a : Abs) -> case a of { Bot -> 0; Zero -> 1; Pos -> 2; Top -> 3 };

def ofInt : Int -> Abs =
  \\(n : Int) -> if n == 0 then Zero else (if n > 0 then Pos else Top);

def analyze : Int -> Int =
  \\(n : Int) ->
    letrec go : Int -> Abs -> Int -> Int =
      \\(i : Int) (acc : Abs) (score : Int) ->
        if i > n then score
        else
          let v : Abs = absAdd acc (ofInt ((i * 7) % 5 - 2)) in
          go (i + 1) (join2 v acc) (score + rank v)
    in go 1 Bot 0;

def main : Int = analyze 150;
";

/// `cacheprof` — bucketed event counting: the bucket lookup is a small
/// tail-recursive search (−0.5% in the paper).
pub const CACHEPROF: &str = "
def bucketOf : Int -> Int =
  \\(addr : Int) ->
    letrec go : Int -> Int =
      \\(b : Int) ->
        if addr < (b + 1) * 64 then b else go (b + 1)
    in go 0;

def simulate : Int -> Int =
  \\(accesses : Int) ->
    letrec go : Int -> Int -> Int -> Int =
      \\(i : Int) (addr : Int) (hits : Int) ->
        if i > accesses then hits
        else
          let a2 : Int = (addr * 131 + 7) % 1024 in
          let b : Int = bucketOf a2 in
          if b % 4 == 0 then go (i + 1) a2 (hits + 1)
          else go (i + 1) a2 hits
    in go 1 1 0;

def main : Int = simulate 120;
";

/// `fem` — finite-element-style assembly: index arithmetic over list
/// structures, mostly allocation for the mesh itself (paper: +3.6%).
pub const FEM: &str = "
def mesh : Int -> List (Pair Int Int) =
  \\(n : Int) ->
    letrec go : Int -> List (Pair Int Int) =
      \\(i : Int) ->
        if i > n then Nil @(Pair Int Int)
        else Cons @(Pair Int Int)
               (MkPair @Int @Int (i % 13) ((i * i) % 13))
               (go (i + 1))
    in go 1;

def stiffness : Pair Int Int -> Int =
  \\(el : Pair Int Int) ->
    case el of { MkPair a b -> a * a + 2 * a * b + b };

def assemble : List (Pair Int Int) -> Int =
  \\(els : List (Pair Int Int)) ->
    letrec go : List (Pair Int Int) -> Int -> Int =
      \\(es : List (Pair Int Int)) (acc : Int) ->
        case es of {
          Nil -> acc;
          Cons e rest -> go rest (acc + stiffness e)
        }
    in go els 0;

def main : Int = assemble (mesh 100);
";

/// `gamteb` — Monte-Carlo photon transport: an LCG random walk whose
/// step outcome is a `Maybe` (absorbed or scattered) consumed by the
/// walk loop (−1.4% in the paper).
pub const GAMTEB: &str = "
def next : Int -> Int =
  \\(s : Int) -> (s * 1103515245 + 12345) % 2147483647;

def seeds : Int -> List Int =
  \\(n : Int) ->
    letrec go : Int -> List Int =
      \\(i : Int) ->
        if i > n then Nil @Int else Cons @Int (next (i * 7 + 1)) (go (i + 1))
    in go 1;

-- walk a photon: Just k if absorbed at step k (< cap), Nothing otherwise
def absorbAt : Int -> Int -> Maybe Int =
  \\(seed : Int) (cap : Int) ->
    letrec go : Int -> Int -> Maybe Int =
      \\(s : Int) (k : Int) ->
        if k > cap then Nothing @Int
        else if s % 100 < 8 then Just @Int k
        else go (next s) (k + 1)
    in go seed 0;

def transport : List Int -> Int =
  \\(ss : List Int) ->
    letrec go : List Int -> Int -> Int =
      \\(xs : List Int) (acc : Int) ->
        case xs of {
          Nil -> acc;
          Cons s rest ->
            case absorbAt s 40 of {
              Nothing -> go rest (acc + 40);
              Just k -> go rest (acc + k)
            }
        }
    in go ss 0;

def main : Int = transport (seeds 25);
";

/// `hpg` — random test-data generation: an LCG drives choices among
/// constructors; chooser loops are tail-recursive (−2.1% in the paper).
pub const HPG: &str = "
data Val = VInt Int | VBool Bool | VList (List Int);

def next : Int -> Int =
  \\(s : Int) -> (s * 48271) % 2147483647;

def genList : Int -> Int -> List Int =
  \\(s : Int) (len : Int) ->
    letrec go : Int -> Int -> List Int =
      \\(st : Int) (k : Int) ->
        if k <= 0 then Nil @Int
        else Cons @Int (st % 10) (go (next st) (k - 1))
    in go s len;

def genVal : Int -> Val =
  \\(s : Int) ->
    let c : Int = s % 3 in
    if c == 0 then VInt (s % 1000)
    else if c == 1 then VBool (s % 2 == 0)
    else VList (genList s (s % 5));

def size : Val -> Int =
  \\(v : Val) ->
    case v of {
      VInt n -> 1;
      VBool b -> 1;
      VList xs ->
        letrec go : List Int -> Int -> Int =
          \\(ys : List Int) (acc : Int) ->
            case ys of { Nil -> acc; Cons _ t -> go t (acc + 1) }
        in go xs 0
    };

def main : Int =
  letrec go : Int -> Int -> Int -> Int =
    \\(i : Int) (s : Int) (acc : Int) ->
      if i > 60 then acc
      else go (i + 1) (next s) (acc + size (genVal s))
  in go 1 7 0;
";

/// `parser` — tokenizing an integer-encoded input: a classifier with an
/// inner scan loop returning `Pair token rest` (+1.2% in the paper).
pub const PARSER: &str = "
def input : Int -> List Int =
  \\(n : Int) ->
    letrec go : Int -> List Int =
      \\(i : Int) ->
        if i > n then Nil @Int
        else Cons @Int ((i * 31 + 17) % 4) (go (i + 1))
    in go 1;

-- scan a run of equal classes; returns (run length, rest)
def scanRun : Int -> List Int -> Pair Int (List Int) =
  \\(cls : Int) (xs : List Int) ->
    letrec go : Int -> List Int -> Pair Int (List Int) =
      \\(len : Int) (rest : List Int) ->
        case rest of {
          Nil -> MkPair @Int @(List Int) len rest;
          Cons c more ->
            if c == cls then go (len + 1) more
            else MkPair @Int @(List Int) len rest
        }
    in go 0 xs;

def countTokens : List Int -> Int =
  \\(xs0 : List Int) ->
    letrec go : List Int -> Int -> Int =
      \\(xs : List Int) (n : Int) ->
        case xs of {
          Nil -> n;
          Cons c _ ->
            case scanRun c xs of {
              MkPair len rest -> go rest (n + 1)
            }
        }
    in go xs0 0;

def main : Int = countTokens (input 150);
";

/// `rsa` — modular exponentiation by repeated squaring, used to encrypt
/// a block list (−4.7% in the paper: the per-block modpow loop contifies
/// and its `Pair` state vanishes).
pub const RSA: &str = "
def modpow : Int -> Int -> Int -> Int =
  \\(base : Int) (e : Int) (m : Int) ->
    letrec go : Int -> Int -> Int -> Int =
      \\(b : Int) (k : Int) (acc : Int) ->
        if k <= 0 then acc
        else if k % 2 == 1 then go ((b * b) % m) (k / 2) ((acc * b) % m)
        else go ((b * b) % m) (k / 2) acc
    in go (base % m) e 1;

def blocks : Int -> List Int =
  \\(n : Int) ->
    letrec go : Int -> List Int =
      \\(i : Int) ->
        if i > n then Nil @Int
        else Cons @Int (10 + (i * 97) % 1000) (go (i + 1))
    in go 1;

def encryptSum : List Int -> Int =
  \\(ms : List Int) ->
    letrec go : List Int -> Int -> Int =
      \\(xs : List Int) (acc : Int) ->
        case xs of {
          Nil -> acc;
          Cons m rest -> go rest ((acc + modpow m 17 3233) % 1000003)
        }
    in go ms 0;

def main : Int = encryptSum (blocks 40);
";

/// All `real` programs, in Table 1 row order.
pub fn programs() -> Vec<Program> {
    vec![
        Program {
            name: "anna",
            suite: Suite::Real,
            source: ANNA,
            expected: None,
        },
        Program {
            name: "cacheprof",
            suite: Suite::Real,
            source: CACHEPROF,
            expected: None,
        },
        Program {
            name: "fem",
            suite: Suite::Real,
            source: FEM,
            expected: None,
        },
        Program {
            name: "gamteb",
            suite: Suite::Real,
            source: GAMTEB,
            expected: None,
        },
        Program {
            name: "hpg",
            suite: Suite::Real,
            source: HPG,
            expected: None,
        },
        Program {
            name: "parser",
            suite: Suite::Real,
            source: PARSER,
            expected: None,
        },
        Program {
            name: "rsa",
            suite: Suite::Real,
            source: RSA,
            expected: None,
        },
    ]
}
