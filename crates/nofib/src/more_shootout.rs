//! Additional `shootout` programs — the remaining named benchmarks the
//! paper's "(5 others)" covers.

use crate::{Program, Suite};

/// `binary-trees` — the classic allocate-and-fold benchmark: tree
/// construction dominates, so join points are near-neutral (the paper's
/// quieter shootout rows).
pub const BINARYTREES: &str = "
data Tree = Nd Tree Tree | Lf;

def build : Int -> Tree =
  \\(d : Int) ->
    letrec go : Int -> Tree =
      \\(k : Int) ->
        if k <= 0 then Lf else Nd (go (k - 1)) (go (k - 1))
    in go d;

def check : Tree -> Int =
  \\(t0 : Tree) ->
    letrec go : Tree -> Int =
      \\(t : Tree) ->
        case t of {
          Lf -> 1;
          Nd l r -> 1 + go l + go r
        }
    in go t0;

def main : Int =
  letrec sweep : Int -> Int -> Int =
    \\(d : Int) (acc : Int) ->
      if d > 7 then acc
      else sweep (d + 1) (acc + check (build d))
  in sweep 1 0;
";

/// `fannkuch-redux` — permutation flipping: `flipCount` repeatedly
/// reverses a prefix of a list until its head is 1, returning the flip
/// count. The reversal allocates (ballast); the counting loop and the
/// prefix-reversal inner loops are join-point material.
pub const FANNKUCH: &str = "
def revPrefix : Int -> List Int -> List Int =
  \\(k : Int) (xs : List Int) ->
    letrec grab : Int -> List Int -> List Int -> Pair (List Int) (List Int) =
      \\(n : Int) (acc : List Int) (rest : List Int) ->
        if n <= 0 then MkPair @(List Int) @(List Int) acc rest
        else
          case rest of {
            Nil -> MkPair @(List Int) @(List Int) acc rest;
            Cons h t -> grab (n - 1) (Cons @Int h acc) t
          }
    in
    letrec append : List Int -> List Int -> List Int =
      \\(a : List Int) (b : List Int) ->
        case a of {
          Nil -> b;
          Cons h t -> Cons @Int h (append t b)
        }
    in
    case grab k (Nil @Int) xs of {
      MkPair revd rest -> append revd rest
    };

def flips : List Int -> Int =
  \\(p0 : List Int) ->
    letrec go : List Int -> Int -> Int =
      \\(p : List Int) (n : Int) ->
        if n > 40 then n
        else
          case p of {
            Nil -> n;
            Cons h _ ->
              if h == 1 then n
              else go (revPrefix h p) (n + 1)
          }
    in go p0 0;

def perm : Int -> List Int =
  \\(seed : Int) ->
    letrec go : Int -> List Int =
      \\(i : Int) ->
        if i > 6 then Nil @Int
        else Cons @Int (1 + (i * seed + seed) % 6) (go (i + 1))
    in go 1;

def main : Int =
  letrec sweep : Int -> Int -> Int =
    \\(s : Int) (acc : Int) ->
      if s > 20 then acc
      else sweep (s + 1) (acc + flips (perm s))
  in sweep 1 0;
";

/// Additional shootout programs.
pub fn programs() -> Vec<Program> {
    vec![
        Program {
            name: "binary-trees",
            suite: Suite::Shootout,
            source: BINARYTREES,
            expected: None,
        },
        Program {
            name: "fannkuch-redux",
            suite: Suite::Shootout,
            source: FANNKUCH,
            expected: None,
        },
    ]
}
