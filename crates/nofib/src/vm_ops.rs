//! Opcode-dispatch profiling over the nofib suite (`fj report --vm-ops`).
//!
//! Runs every benchmark on the VM twice — once compiled without fused
//! superinstructions, once with — collecting an [`OpProfile`] for each.
//! The unfused histogram (top opcodes, adjacent pairs, adjacent
//! triples) is the evidence that picked the fused superinstruction set;
//! the fused histogram shows what the peephole bought: total dispatches
//! drop by the share the fused words absorb.

use crate::{lower, programs, VM_FUEL};
use fj_core::OptConfig;
use fj_eval::EvalMode;
use fj_vm::{compile_with, run_program_profiled, CompileOpts, OpProfile};

/// Suite-wide dispatch histograms, unfused and fused.
pub struct VmOpReport {
    /// Aggregate profile of the unfused instruction streams.
    pub unfused: OpProfile,
    /// Aggregate profile of the fused instruction streams.
    pub fused: OpProfile,
}

impl VmOpReport {
    /// Fraction of dispatches the fusion pass eliminated, in percent.
    #[must_use]
    pub fn dispatch_reduction_pct(&self) -> f64 {
        if self.unfused.dispatches == 0 {
            return 0.0;
        }
        (1.0 - self.fused.dispatches as f64 / self.unfused.dispatches as f64) * 100.0
    }
}

/// Profile the whole nofib suite on the VM, unfused and fused.
///
/// # Panics
///
/// As [`crate::measure`] — a benchmark failing to compile or run is a
/// harness bug worth a loud stop.
pub fn run_vm_op_report() -> VmOpReport {
    let cfg = OptConfig::join_points();
    let mut unfused = OpProfile::default();
    let mut fused = OpProfile::default();
    for p in programs() {
        let e = lower(p.source, &cfg);
        for (fuse, acc) in [(false, &mut unfused), (true, &mut fused)] {
            let prog = compile_with(&e, EvalMode::CallByValue, CompileOpts { fuse })
                .unwrap_or_else(|err| panic!("{}: vm compile: {err}", p.name));
            let (_, profile) = run_program_profiled(&prog, VM_FUEL)
                .unwrap_or_else(|err| panic!("{}: vm: {err}", p.name));
            acc.merge(&profile);
        }
    }
    VmOpReport { unfused, fused }
}

/// Render the op report as markdown (the `fj report --vm-ops` payload).
#[must_use]
pub fn format_vm_op_report(r: &VmOpReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "# fj report --vm-ops — VM dispatch histogram\n").unwrap();
    writeln!(
        out,
        "Aggregated over the whole nofib suite (join-points pipeline, \
         call-by-value). The unfused stream is the oracle the fused \
         superinstruction set was chosen from; the fused stream shows \
         the dispatches the peephole removed.\n"
    )
    .unwrap();

    let share = |count: u64, total: u64| {
        if total == 0 {
            0.0
        } else {
            count as f64 / total as f64 * 100.0
        }
    };

    writeln!(
        out,
        "## Unfused stream ({} dispatches)\n",
        r.unfused.dispatches
    )
    .unwrap();
    writeln!(out, "| op | count | share |").unwrap();
    writeln!(out, "|---|---|---|").unwrap();
    for (name, count) in r.unfused.top_ops(12) {
        writeln!(
            out,
            "| {name} | {count} | {:.1}% |",
            share(count, r.unfused.dispatches)
        )
        .unwrap();
    }
    writeln!(out, "\n### Hot adjacent pairs\n").unwrap();
    writeln!(out, "| pair | count | share |").unwrap();
    writeln!(out, "|---|---|---|").unwrap();
    for (a, b, count) in r.unfused.top_pairs(12) {
        writeln!(
            out,
            "| {a} → {b} | {count} | {:.1}% |",
            share(count, r.unfused.dispatches)
        )
        .unwrap();
    }
    writeln!(out, "\n### Hot adjacent triples\n").unwrap();
    writeln!(out, "| triple | count | share |").unwrap();
    writeln!(out, "|---|---|---|").unwrap();
    for (a, b, c, count) in r.unfused.top_triples(12) {
        writeln!(
            out,
            "| {a} → {b} → {c} | {count} | {:.1}% |",
            share(count, r.unfused.dispatches)
        )
        .unwrap();
    }

    writeln!(
        out,
        "\n## Fused stream ({} dispatches, −{:.1}%)\n",
        r.fused.dispatches,
        r.dispatch_reduction_pct()
    )
    .unwrap();
    writeln!(out, "| op | count | share |").unwrap();
    writeln!(out, "|---|---|---|").unwrap();
    for (name, count) in r.fused.top_ops(16) {
        writeln!(
            out,
            "| {name} | {count} | {:.1}% |",
            share(count, r.fused.dispatches)
        )
        .unwrap();
    }
    out
}
