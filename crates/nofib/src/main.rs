//! Command-line driver for the paper's evaluation:
//!
//! ```text
//! cargo run -p fj-nofib --release -- table1    # Table 1 (allocations)
//! cargo run -p fj-nofib --release -- fusion    # Sec. 5 fusion series
//! cargo run -p fj-nofib --release -- ablate    # pass ablation
//! cargo run -p fj-nofib --release -- all       # everything
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map_or("all", String::as_str);
    match what {
        "table1" => table1(),
        "fusion" => fusion(),
        "ablate" => ablate(),
        "all" => {
            table1();
            fusion();
            ablate();
        }
        other => {
            eprintln!("unknown command `{other}`; expected table1|fusion|ablate|all");
            std::process::exit(2);
        }
    }
}

fn table1() {
    println!("== Table 1: allocations, baseline vs join points ==\n");
    let rows = fj_nofib::run_table1();
    println!("{}", fj_nofib::format_table1(&rows));
}

fn fusion() {
    println!("== Sec. 5: stream-fusion series ==\n");
    let points = fj_nofib::fusion_exp::run_fusion_experiment(&[100, 1_000, 10_000]);
    println!("{}", fj_nofib::fusion_exp::format_fusion(&points));
}

fn ablate() {
    println!("== Ablation: join-points pipeline minus one pass ==\n");
    let rows = fj_nofib::run_ablation();
    println!("{}", fj_nofib::format_ablation(&rows));
}
