//! Native-Rust standard candles: one hand-ported Rust implementation
//! per nofib program, computing the identical `main` value.
//!
//! The candle is the "distance from hardware" reference for the VM: the
//! same algorithm a Rust programmer would write by hand (Vec for lists,
//! enums for data types, recursion for recursion), compiled by rustc to
//! native code. `vm_ns / candle_ns` in `BENCH_vm.json` is therefore the
//! interpreter's overhead over the hardware ceiling, not a comparison
//! of different algorithms.
//!
//! Every candle's value is asserted against the VM's result on each
//! `fj bench` run (and in tests), so the ports cannot drift. Integer
//! semantics match [`fj_ast::PrimOp::eval`]: `i64` with wrapping
//! arithmetic and Rust's truncating `/` and `%`.

use std::time::{Duration, Instant};

/// A candle: a native function computing one benchmark's `main` value.
pub type Candle = fn() -> i64;

/// Look up the candle for a benchmark by its Table-1 row name.
#[must_use]
pub fn candle(name: &str) -> Option<Candle> {
    Some(match name {
        "fibheaps" => fibheaps,
        "ida" => ida,
        "nucleic2" => nucleic2,
        "para" => para,
        "primetest" => primetest,
        "simple" => simple,
        "solid" => solid,
        "sphere" => sphere,
        "transform" => transform,
        "boyer" => boyer,
        "clausify" => clausify,
        "knights" => knights,
        "mandel" => mandel,
        "queens" => queens,
        "anna" => anna,
        "cacheprof" => cacheprof,
        "fem" => fem,
        "gamteb" => gamteb,
        "hpg" => hpg,
        "parser" => parser,
        "rsa" => rsa,
        "compress" => compress,
        "grep" => grep,
        "infer" => infer,
        "k-nucleotide" => knucleotide,
        "n-body" => nbody,
        "spectral-norm" => spectralnorm,
        "binary-trees" => binarytrees,
        "fannkuch-redux" => fannkuch,
        _ => return None,
    })
}

/// Time a candle adaptively: quadruple the repetition count until at
/// least 200µs have elapsed, then report `(value, elapsed / reps)`.
/// `black_box` keeps rustc from folding the benchmark away.
#[must_use]
pub fn time_candle(f: Candle) -> (i64, Duration) {
    let mut reps: u32 = 1;
    loop {
        let start = Instant::now();
        let mut value = 0i64;
        for _ in 0..reps {
            value = std::hint::black_box(f)();
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_micros(200) || reps >= 1 << 20 {
            return (std::hint::black_box(value), elapsed / reps);
        }
        reps *= 4;
    }
}

// ---------------------------------------------------------------------
// spectral
// ---------------------------------------------------------------------

fn fibheaps() -> i64 {
    // build 60: insert (i*37)%101 into a sorted list, i = 60 down to 1
    let mut heap: Vec<i64> = Vec::new();
    for i in (1..=60i64).rev() {
        let x = (i * 37) % 101;
        let pos = heap.iter().position(|&y| x <= y).unwrap_or(heap.len());
        heap.insert(pos, x);
    }
    // drain: repeatedly deleteMin, summing the minima
    let mut acc = 0i64;
    while let Some(m) = heap.first().copied() {
        heap.remove(0);
        acc += m;
    }
    acc
}

fn ida_dfs(goal: i64, d: i64, u: i64) -> Option<i64> {
    if u == goal {
        return Some(d);
    }
    if d <= 0 {
        return None;
    }
    match ida_dfs(goal, d - 1, (u * 2) % 97) {
        Some(k) => Some(k),
        None => ida_dfs(goal, d - 1, (u * 3 + 1) % 97),
    }
}

fn ida_search(start: i64, goal: i64) -> i64 {
    let mut depth = 1i64;
    while depth <= 9 {
        if ida_dfs(goal, depth, start).is_some() {
            return depth;
        }
        depth += 1;
    }
    -1
}

fn ida() -> i64 {
    ida_search(1, 54) + ida_search(2, 33) + ida_search(3, 76)
}

fn nucleic2() -> i64 {
    let chain: Vec<(i64, i64, i64)> = (1..=80).map(|i| (i, i * i % 91, i * 3 % 91)).collect();
    chain
        .iter()
        .map(|&(x, y, z)| {
            let (qx, qy, qz) = (y % 91, z % 91, x % 91);
            x * qx + y * qy + z * qz
        })
        .sum()
}

fn para() -> i64 {
    let words: Vec<i64> = (1..=120).map(|i| 3 + (i * 7) % 9).collect();
    let width = 30i64;
    let mut lines = 0i64;
    let mut rest = &words[..];
    while !rest.is_empty() {
        // fillLine: consume while the next word still fits
        let mut used = 0i64;
        while let Some(&w) = rest.first() {
            if used + w + 1 > width {
                break;
            }
            used += w + 1;
            rest = &rest[1..];
        }
        lines += 1;
    }
    lines
}

fn primetest() -> i64 {
    let is_prime = |n: i64| {
        if n < 2 {
            return false;
        }
        let mut d = 2i64;
        while d * d <= n {
            if n % d == 0 {
                return false;
            }
            d += 1;
        }
        true
    };
    (2..=200).filter(|&n| is_prime(n)).count() as i64
}

fn simple() -> i64 {
    let step = |x: i64| (x.wrapping_mul(1_103_515_245) + 12_345) % 2_147_483_647;
    let mut acc = 0i64;
    for i in 1..=30i64 {
        let mut x = i * 3 + 1;
        for _ in 0..20 {
            x = step(x);
        }
        acc = (acc + x) % 100_000;
    }
    acc
}

fn solid() -> i64 {
    let segs: Vec<(i64, i64)> = (1..=40)
        .map(|i| {
            let lo = (i * 13) % 50;
            (lo, lo + (i % 7) + 1)
        })
        .collect();
    let mut acc = 0i64;
    for i in 1..=120i64 {
        let x = (i * 17) % 60;
        if let Some(&(lo, hi)) = segs.iter().find(|&&(lo, hi)| lo <= x && x <= hi) {
            acc += hi - lo;
        }
    }
    acc
}

fn sphere() -> i64 {
    let scene: Vec<(i64, i64)> = (1..=30).map(|i| ((i * 23) % 40, 2 + i % 5)).collect();
    let mut acc = 0i64;
    for i in 1..=100i64 {
        let ray = (i * 11) % 45;
        if let Some(&(c, r)) = scene.iter().find(|&&(c, r)| c - r <= ray && ray <= c + r) {
            acc += c + r - ray;
        }
    }
    acc
}

enum Tree {
    Leaf(i64),
    Node(Box<Tree>, Box<Tree>),
}

fn transform_build(depth: i64, seed: i64) -> Tree {
    if depth <= 0 {
        Tree::Leaf(seed % 17)
    } else {
        Tree::Node(
            Box::new(transform_build(depth - 1, seed * 2 + 1)),
            Box::new(transform_build(depth - 1, seed * 3 + 2)),
        )
    }
}

fn transform_rewrite(t: &Tree) -> Tree {
    match t {
        Tree::Leaf(n) => {
            if n % 2 == 0 {
                Tree::Leaf(n + 1)
            } else {
                Tree::Leaf(*n)
            }
        }
        Tree::Node(l, r) => Tree::Node(
            Box::new(transform_rewrite(r)),
            Box::new(transform_rewrite(l)),
        ),
    }
}

fn transform_sum(t: &Tree) -> i64 {
    match t {
        Tree::Leaf(n) => *n,
        Tree::Node(l, r) => transform_sum(l) + transform_sum(r),
    }
}

fn transform() -> i64 {
    transform_sum(&transform_rewrite(&transform_rewrite(&transform_build(
        7, 1,
    ))))
}

// ---------------------------------------------------------------------
// more spectral
// ---------------------------------------------------------------------

#[derive(Clone)]
enum BTerm {
    // The payload mirrors the surface program's `Var Int`; the rewrite
    // rules dispatch on the constructor and never read it.
    #[allow(dead_code)]
    Var(i64),
    F(Box<BTerm>),
    G(Box<BTerm>, Box<BTerm>),
}

fn boyer_mk(depth: i64, seed: i64) -> BTerm {
    if depth <= 0 {
        BTerm::Var(seed % 5)
    } else if seed % 2 == 0 {
        BTerm::F(Box::new(boyer_mk(depth - 1, seed * 3 + 1)))
    } else {
        BTerm::G(
            Box::new(boyer_mk(depth - 1, seed * 5 + 2)),
            Box::new(boyer_mk(depth - 1, seed * 7 + 3)),
        )
    }
}

fn boyer_step(t: &BTerm) -> Option<BTerm> {
    match t {
        BTerm::Var(_) => None,
        BTerm::F(u) => match u.as_ref() {
            BTerm::F(w) => Some(BTerm::F(w.clone())),
            _ => boyer_step(u).map(|u2| BTerm::F(Box::new(u2))),
        },
        BTerm::G(a, b) => match b.as_ref() {
            BTerm::Var(_) => Some(BTerm::F(a.clone())),
            _ => match boyer_step(a) {
                Some(a2) => Some(BTerm::G(Box::new(a2), b.clone())),
                None => boyer_step(b).map(|b2| BTerm::G(a.clone(), Box::new(b2))),
            },
        },
    }
}

fn boyer_normalize(t0: BTerm) -> i64 {
    let mut t = t0;
    let mut n = 0i64;
    while n <= 40 {
        match boyer_step(&t) {
            None => return n,
            Some(t2) => {
                t = t2;
                n += 1;
            }
        }
    }
    n
}

fn boyer() -> i64 {
    boyer_normalize(boyer_mk(6, 1)) + boyer_normalize(boyer_mk(7, 1))
}

enum Form {
    Var(i64),
    Not(Box<Form>),
    And(Box<Form>, Box<Form>),
    Or(Box<Form>, Box<Form>),
}

fn clausify_mk(d: i64, seed: i64) -> Form {
    if d <= 0 {
        Form::Var(seed % 7)
    } else if seed % 3 == 0 {
        Form::Not(Box::new(clausify_mk(d - 1, seed * 5 + 1)))
    } else if seed % 3 == 1 {
        Form::And(
            Box::new(clausify_mk(d - 1, seed * 2 + 1)),
            Box::new(clausify_mk(d - 1, seed * 3 + 2)),
        )
    } else {
        Form::Or(
            Box::new(clausify_mk(d - 1, seed * 2 + 1)),
            Box::new(clausify_mk(d - 1, seed * 3 + 2)),
        )
    }
}

fn clausify_pos(f: &Form) -> Form {
    match f {
        Form::Var(v) => Form::Var(*v),
        Form::Not(g) => clausify_neg(g),
        Form::And(a, b) => Form::And(Box::new(clausify_pos(a)), Box::new(clausify_pos(b))),
        Form::Or(a, b) => Form::Or(Box::new(clausify_pos(a)), Box::new(clausify_pos(b))),
    }
}

fn clausify_neg(f: &Form) -> Form {
    match f {
        Form::Var(v) => Form::Not(Box::new(Form::Var(*v))),
        Form::Not(g) => clausify_pos(g),
        Form::And(a, b) => Form::Or(Box::new(clausify_neg(a)), Box::new(clausify_neg(b))),
        Form::Or(a, b) => Form::And(Box::new(clausify_neg(a)), Box::new(clausify_neg(b))),
    }
}

fn clausify_weight(f: &Form) -> i64 {
    match f {
        Form::Var(_) => 1,
        Form::Not(g) => 1 + clausify_weight(g),
        Form::And(a, b) => clausify_weight(a) + clausify_weight(b),
        Form::Or(a, b) => 1 + clausify_weight(a) + clausify_weight(b),
    }
}

fn clausify() -> i64 {
    clausify_weight(&clausify_pos(&Form::Not(Box::new(clausify_mk(8, 1)))))
}

fn knights_go(d: i64, sq: i64, seen: &mut Vec<i64>) -> i64 {
    if d <= 0 {
        return 1;
    }
    seen.push(sq);
    let mut acc = 0i64;
    for m in 1..=4i64 {
        let dest = (sq + m * 7 + 3) % 25;
        if (0..=24).contains(&dest) && !seen.contains(&dest) {
            acc += knights_go(d - 1, dest, seen);
        }
    }
    seen.pop();
    acc
}

fn knights() -> i64 {
    let mut seen = Vec::new();
    knights_go(5, 0, &mut seen)
}

fn mandel() -> i64 {
    let escape_at = |c: i64| {
        let mut z = 0i64;
        let mut k = 0i64;
        while k <= 30 {
            if !(-400..=400).contains(&z) {
                return Some(k);
            }
            z = (z * z) / 100 + c;
            k += 1;
        }
        None
    };
    let mut acc = 0i64;
    for i in 1..=120i64 {
        let c = i * 13 % 900 - 450;
        if let Some(k) = escape_at(c) {
            acc += k;
        }
    }
    acc
}

fn queens_safe(row: i64, placed: &[i64]) -> bool {
    for (idx, &r) in placed.iter().enumerate() {
        let d = idx as i64 + 1;
        if r == row || r - row == d || row - r == d {
            return false;
        }
    }
    true
}

fn queens_place(n: i64, col: i64, placed: &mut Vec<i64>) -> i64 {
    if col > n {
        return 1;
    }
    let mut acc = 0i64;
    for row in 1..=n {
        if queens_safe(row, placed) {
            placed.insert(0, row);
            acc += queens_place(n, col + 1, placed);
            placed.remove(0);
        }
    }
    acc
}

fn queens() -> i64 {
    let mut placed = Vec::new();
    queens_place(6, 1, &mut placed)
}

// ---------------------------------------------------------------------
// real
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum Abs {
    Bot,
    Zero,
    Pos,
    Top,
}

fn anna_join2(a: Abs, b: Abs) -> Abs {
    match a {
        Abs::Bot => b,
        Abs::Zero => match b {
            Abs::Bot | Abs::Zero => Abs::Zero,
            Abs::Pos | Abs::Top => Abs::Top,
        },
        Abs::Pos => match b {
            Abs::Bot | Abs::Pos => Abs::Pos,
            Abs::Zero | Abs::Top => Abs::Top,
        },
        Abs::Top => Abs::Top,
    }
}

fn anna_add(a: Abs, b: Abs) -> Abs {
    match a {
        Abs::Bot => Abs::Bot,
        Abs::Zero => b,
        Abs::Pos => match b {
            Abs::Bot => Abs::Bot,
            Abs::Zero | Abs::Pos => Abs::Pos,
            Abs::Top => Abs::Top,
        },
        Abs::Top => match b {
            Abs::Bot => Abs::Bot,
            _ => Abs::Top,
        },
    }
}

fn anna() -> i64 {
    let rank = |a: Abs| match a {
        Abs::Bot => 0,
        Abs::Zero => 1,
        Abs::Pos => 2,
        Abs::Top => 3,
    };
    let of_int = |n: i64| {
        if n == 0 {
            Abs::Zero
        } else if n > 0 {
            Abs::Pos
        } else {
            Abs::Top
        }
    };
    let mut acc = Abs::Bot;
    let mut score = 0i64;
    for i in 1..=150i64 {
        let v = anna_add(acc, of_int((i * 7) % 5 - 2));
        acc = anna_join2(v, acc);
        score += rank(v);
    }
    score
}

fn cacheprof() -> i64 {
    let bucket_of = |addr: i64| {
        let mut b = 0i64;
        while addr >= (b + 1) * 64 {
            b += 1;
        }
        b
    };
    let mut addr = 1i64;
    let mut hits = 0i64;
    for _ in 1..=120 {
        let a2 = (addr * 131 + 7) % 1024;
        if bucket_of(a2) % 4 == 0 {
            hits += 1;
        }
        addr = a2;
    }
    hits
}

fn fem() -> i64 {
    let mesh: Vec<(i64, i64)> = (1..=100).map(|i| (i % 13, i * i % 13)).collect();
    mesh.iter().map(|&(a, b)| a * a + 2 * a * b + b).sum()
}

fn gamteb() -> i64 {
    let next = |s: i64| (s.wrapping_mul(1_103_515_245) + 12_345) % 2_147_483_647;
    let absorb_at = |seed: i64, cap: i64| {
        let mut s = seed;
        let mut k = 0i64;
        while k <= cap {
            if s % 100 < 8 {
                return Some(k);
            }
            s = next(s);
            k += 1;
        }
        None
    };
    let mut acc = 0i64;
    for i in 1..=25i64 {
        let s = next(i * 7 + 1);
        acc += absorb_at(s, 40).unwrap_or(40);
    }
    acc
}

fn hpg() -> i64 {
    let next = |s: i64| s.wrapping_mul(48_271) % 2_147_483_647;
    let gen_list = |s0: i64, len: i64| {
        let mut out = Vec::new();
        let mut st = s0;
        let mut k = len;
        while k > 0 {
            out.push(st % 10);
            st = next(st);
            k -= 1;
        }
        out
    };
    let mut s = 7i64;
    let mut acc = 0i64;
    for _ in 1..=60 {
        let c = s % 3;
        // size(VInt _) = size(VBool _) = 1; size(VList xs) = length xs
        acc += if c == 2 {
            gen_list(s, s % 5).len() as i64
        } else {
            1
        };
        s = next(s);
    }
    acc
}

fn parser() -> i64 {
    let input: Vec<i64> = (1..=150).map(|i| (i * 31 + 17) % 4).collect();
    let mut tokens = 0i64;
    let mut rest = &input[..];
    while let Some(&cls) = rest.first() {
        let run = rest.iter().take_while(|&&c| c == cls).count();
        rest = &rest[run..];
        tokens += 1;
    }
    tokens
}

fn rsa() -> i64 {
    let modpow = |base: i64, e: i64, m: i64| {
        let mut b = base % m;
        let mut k = e;
        let mut acc = 1i64;
        while k > 0 {
            if k % 2 == 1 {
                acc = (acc * b) % m;
            }
            b = (b * b) % m;
            k /= 2;
        }
        acc
    };
    let mut acc = 0i64;
    for i in 1..=40i64 {
        let m = 10 + (i * 97) % 1000;
        acc = (acc + modpow(m, 17, 3233)) % 1_000_003;
    }
    acc
}

// ---------------------------------------------------------------------
// more real
// ---------------------------------------------------------------------

fn compress() -> i64 {
    let input: Vec<i64> = (1..=120).map(|i| (i / 5) % 3).collect();
    // encode into runs, then sum the decoded lengths
    let mut encoded: Vec<(i64, i64)> = Vec::new();
    let mut rest = &input[..];
    while let Some(&sym) = rest.first() {
        let run = rest.iter().take_while(|&&c| c == sym).count();
        encoded.push((sym, run as i64));
        rest = &rest[run..];
    }
    encoded.iter().map(|&(_, len)| len).sum()
}

fn grep_find(pat: &[i64], hay: &[i64]) -> i64 {
    for i in 0..hay.len() {
        if hay[i..].starts_with(pat) {
            return i as i64;
        }
    }
    -1
}

fn grep() -> i64 {
    let hay: Vec<i64> = (1..=140).map(|i| (i * 11 + 5) % 6).collect();
    let hit1 = grep_find(&[0, 4], &hay);
    let hit2 = grep_find(&[3, 2], &hay);
    let hit3 = grep_find(&[5, 5], &hay);
    hit1 + 1000 * hit2 + 1_000_000 * hit3
}

enum IE {
    // Payloads mirror the surface program's literals; the type checker
    // dispatches on the constructor and never reads them.
    #[allow(dead_code)]
    Lit(i64),
    #[allow(dead_code)]
    Bool(bool),
    Add(Box<IE>, Box<IE>),
    If(Box<IE>, Box<IE>, Box<IE>),
}

fn infer_mk(depth: i64, seed: i64) -> IE {
    if depth <= 0 {
        if seed % 2 == 0 {
            IE::Lit(seed % 9)
        } else {
            IE::Bool(seed % 3 == 0)
        }
    } else if seed % 3 == 0 {
        IE::Add(
            Box::new(infer_mk(depth - 1, seed * 5 + 1)),
            Box::new(infer_mk(depth - 1, seed * 7 + 2)),
        )
    } else {
        IE::If(
            Box::new(infer_mk(depth - 1, seed * 3 + 1)),
            Box::new(infer_mk(depth - 1, seed * 5 + 2)),
            Box::new(infer_mk(depth - 1, seed * 7 + 3)),
        )
    }
}

// type codes: 1 = Int, 2 = Bool
fn infer_ty(e: &IE) -> Option<i64> {
    match e {
        IE::Lit(_) => Some(1),
        IE::Bool(_) => Some(2),
        IE::Add(a, b) => {
            if infer_ty(a)? == 1 && infer_ty(b)? == 1 {
                Some(1)
            } else {
                None
            }
        }
        IE::If(c, t, f) => {
            if infer_ty(c)? != 2 {
                return None;
            }
            let tt = infer_ty(t)?;
            let tf = infer_ty(f)?;
            if tt == tf {
                Some(tt)
            } else {
                None
            }
        }
    }
}

fn infer() -> i64 {
    let mut acc = 0i64;
    for i in 1..=12i64 {
        if let Some(t) = infer_ty(&infer_mk(2 + i % 3, 1)) {
            acc += t;
        }
    }
    acc
}

// ---------------------------------------------------------------------
// shootout
// ---------------------------------------------------------------------

fn nbody() -> i64 {
    let force = |i: i64| (i * i * 3 + i * 7) % 1000;
    let mut acc = 0i64;
    for i in 1..=200i64 {
        let f = force(i);
        if f % 3 != 0 {
            acc += f;
        }
    }
    acc
}

fn knucleotide() -> i64 {
    let seq: Vec<i64> = (1..=150).map(|i| (i * 7 + i / 3) % 4).collect();
    let count = |a: i64, b: i64| seq.windows(2).filter(|w| w[0] == a && w[1] == b).count() as i64;
    count(0, 1) + count(1, 2) * 10 + count(2, 3) * 100
}

fn spectralnorm() -> i64 {
    let a = |i: i64, j: i64| 1 + ((i + j) * (i + j + 1)) / 2 + i;
    let mut acc = 0i64;
    for i in 0..=25i64 {
        for j in 0..=25i64 {
            acc += 1000 / a(i, j);
        }
    }
    acc
}

// ---------------------------------------------------------------------
// more shootout
// ---------------------------------------------------------------------

enum BTree {
    Lf,
    Nd(Box<BTree>, Box<BTree>),
}

fn btrees_build(k: i64) -> BTree {
    if k <= 0 {
        BTree::Lf
    } else {
        BTree::Nd(Box::new(btrees_build(k - 1)), Box::new(btrees_build(k - 1)))
    }
}

fn btrees_check(t: &BTree) -> i64 {
    match t {
        BTree::Lf => 1,
        BTree::Nd(l, r) => 1 + btrees_check(l) + btrees_check(r),
    }
}

fn binarytrees() -> i64 {
    (1..=7).map(|d| btrees_check(&btrees_build(d))).sum()
}

fn fannkuch_flips(p: &mut [i64]) -> i64 {
    let mut n = 0i64;
    while n <= 40 {
        match p.first().copied() {
            None => return n,
            Some(1) => return n,
            Some(h) => {
                let k = (h as usize).min(p.len());
                p[..k].reverse();
                n += 1;
            }
        }
    }
    n
}

fn fannkuch() -> i64 {
    let mut acc = 0i64;
    for s in 1..=20i64 {
        let mut perm: Vec<i64> = (1..=6).map(|i| 1 + (i * s + s) % 6).collect();
        acc += fannkuch_flips(&mut perm);
    }
    acc
}
