//! Experiment **F-fusion** (paper Sec. 5): allocations of the pipeline
//! `sum (map f (filter p (enumFromTo 1 n)))` across
//! {skip-less, skip-ful} × {baseline, join points} × n.
//!
//! The series to look for:
//!
//! * skip-less + join points: **0** allocations at every n — the paper's
//!   "Svenningsson's original Skip-less approach fuses just fine";
//! * skip-less + baseline: allocations grow linearly in n — the
//!   recursive `filter` stepper blocks fusion, exactly the historical
//!   problem;
//! * skip-ful (either pipeline): fuses, at the cost of bigger library
//!   code and an extra alternative everywhere.

use fj_ast::{Dsl, Expr, PrimOp, Type};
use fj_core::{optimize, OptConfig};
use fj_eval::{run, EvalMode, Metrics, Value};
use fj_fusion::{enum_from_to, filter_s, int_lambda, map_s, sum_s, StepVariant};

/// One measurement in the fusion study.
#[derive(Clone, Debug)]
pub struct FusionPoint {
    /// Stream variant.
    pub variant: StepVariant,
    /// Pipeline label ("baseline" / "join-points").
    pub pipeline: &'static str,
    /// Stream length.
    pub n: i64,
    /// The computed sum (all points must agree per n).
    pub value: i64,
    /// Machine metrics.
    pub metrics: Metrics,
}

/// Build the standard pipeline at length `n`.
pub fn pipeline(d: &mut Dsl, v: StepVariant, n: i64) -> Expr {
    let s = enum_from_to(d, v, Expr::Lit(1), Expr::Lit(n));
    let odd = int_lambda(d, |_, x| {
        Expr::prim2(
            PrimOp::Eq,
            Expr::prim2(PrimOp::Rem, Expr::var(x), Expr::Lit(2)),
            Expr::Lit(1),
        )
    });
    let s = filter_s(d, odd, s);
    let f = int_lambda(d, |_, x| {
        Expr::prim2(
            PrimOp::Add,
            Expr::prim2(PrimOp::Mul, Expr::var(x), Expr::Lit(2)),
            Expr::Lit(1),
        )
    });
    let s = map_s(d, f, Type::Int, s);
    sum_s(d, s)
}

/// The Rust reference value for the pipeline.
pub fn reference(n: i64) -> i64 {
    (1..=n).filter(|x| x % 2 == 1).map(|x| x * 2 + 1).sum()
}

/// Run the full sweep over `ns`.
///
/// # Panics
///
/// Panics on optimizer/machine failures or if any point's value differs
/// from the Rust reference.
pub fn run_fusion_experiment(ns: &[i64]) -> Vec<FusionPoint> {
    let mut out = Vec::new();
    for &n in ns {
        for variant in [StepVariant::Skipless, StepVariant::Skip] {
            for (label, cfg) in [
                ("baseline", OptConfig::baseline()),
                ("join-points", OptConfig::join_points()),
            ] {
                let mut d = Dsl::new();
                let e = pipeline(&mut d, variant, n);
                let opt = optimize(&e, &d.data_env, &mut d.supply, &cfg)
                    .unwrap_or_else(|err| panic!("optimize: {err}"));
                let o = run(&opt, EvalMode::CallByValue, crate::FUEL)
                    .unwrap_or_else(|err| panic!("eval: {err}"));
                let value = match o.value {
                    Value::Int(k) => k,
                    other => panic!("expected Int, got {other}"),
                };
                assert_eq!(value, reference(n), "{variant:?} {label} n={n}");
                out.push(FusionPoint {
                    variant,
                    pipeline: label,
                    n,
                    value,
                    metrics: o.metrics,
                });
            }
        }
    }
    out
}

/// Render the sweep as an aligned series table.
pub fn format_fusion(points: &[FusionPoint]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "{:<10} {:<12} {:>8} {:>10} {:>10}",
        "variant", "pipeline", "n", "allocs", "steps"
    )
    .unwrap();
    for p in points {
        writeln!(
            out,
            "{:<10} {:<12} {:>8} {:>10} {:>10}",
            format!("{:?}", p.variant),
            p.pipeline,
            p.n,
            p.metrics.total_allocs(),
            p.metrics.steps
        )
        .unwrap();
    }
    out
}
