//! Harness tests: every benchmark compiles, lints, runs identically under
//! both pipelines, and the headline Table-1 shapes hold.

use crate::{
    format_report, measure, programs, run_program, run_program_with_reports, summarize, Suite,
};
use fj_core::OptConfig;

/// Every program runs and both pipelines agree — the fundamental
/// soundness check for the whole suite.
#[test]
fn all_programs_agree_across_pipelines() {
    for p in programs() {
        let row = run_program(&p);
        // Join points never allocate more in our suite.
        assert!(
            row.joined.total_allocs() <= row.baseline.total_allocs(),
            "{}: joined {} > baseline {}",
            p.name,
            row.joined.total_allocs(),
            row.baseline.total_allocs()
        );
    }
}

/// The paper's most dramatic row: n-body loses all allocations.
#[test]
fn nbody_hits_minus_100_percent() {
    let p = programs().into_iter().find(|p| p.name == "n-body").unwrap();
    let row = run_program(&p);
    assert_eq!(
        row.joined.total_allocs(),
        0,
        "n-body must be allocation-free with join points: {}",
        row.joined
    );
    assert!(
        row.baseline.total_allocs() > 0,
        "baseline must allocate: {}",
        row.baseline
    );
    assert_eq!(row.delta_pct(), -100.0);
}

/// k-nucleotide keeps its sequence allocation but loses the per-position
/// matcher traffic: a large-but-partial win.
#[test]
fn knucleotide_large_partial_win() {
    let p = programs()
        .into_iter()
        .find(|p| p.name == "k-nucleotide")
        .unwrap();
    let row = run_program(&p);
    let delta = row.delta_pct();
    assert!(
        delta <= -30.0,
        "expected a large reduction, got {delta:+.1}% ({} -> {})",
        row.baseline.total_allocs(),
        row.joined.total_allocs()
    );
    assert!(
        row.joined.total_allocs() > 0,
        "the sequence itself still allocates"
    );
}

/// Suite shapes: shootout is dramatic, spectral/real are modest, and no
/// suite regresses on aggregate.
#[test]
fn suite_shapes_match_paper() {
    let rows: Vec<_> = programs().iter().map(run_program).collect();
    let shoot = summarize(&rows, Suite::Shootout);
    assert_eq!(shoot.min, -100.0, "shootout Min must be -100%");
    assert!(
        shoot.geo_mean.is_none(),
        "shootout geo-mean is n/a at -100%"
    );

    let spec = summarize(&rows, Suite::Spectral);
    assert!(
        spec.min < 0.0,
        "spectral should show improvements: {spec:?}"
    );
    assert!(
        spec.max <= 0.0 + 1e-9,
        "no spectral regressions in our suite: {spec:?}"
    );

    let real = summarize(&rows, Suite::Real);
    assert!(real.min < 0.0, "real should show improvements: {real:?}");
}

/// `solid` and `sphere` (find/any-shaped) improve more than `nucleic2`
/// and `transform` (construction-shaped) — the within-suite shape.
#[test]
fn find_shaped_programs_win_more() {
    let rows: Vec<_> = programs().iter().map(run_program).collect();
    let delta = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing {name}"))
            .delta_pct()
    };
    assert!(delta("solid") < delta("nucleic2"));
    assert!(delta("sphere") < delta("transform"));
}

/// A pinned result value stays stable across optimizer changes.
#[test]
fn primetest_value_pinned() {
    let p = programs()
        .into_iter()
        .find(|p| p.name == "primetest")
        .unwrap();
    let row = run_program(&p);
    assert_eq!(row.value, 46); // π(200)
}

/// `measure` with no optimization still computes the right answers
/// (sanity for the harness itself).
#[test]
fn unoptimized_measure_agrees() {
    for p in programs().into_iter().take(4) {
        let (v_none, _) = measure(p.source, &OptConfig::none());
        let (v_join, _) = measure(p.source, &OptConfig::join_points());
        assert_eq!(v_none, v_join, "{}", p.name);
    }
}

/// The observability acceptance check: on contification-sensitive
/// benchmarks the join-points pipeline allocates *strictly* less than
/// the baseline, and the pipeline report shows nonzero simplify and
/// contify rewrite counters explaining why.
#[test]
fn report_shows_strict_wins_with_nonzero_counters() {
    for name in ["queens", "knights", "n-body", "sphere", "grep"] {
        let p = programs().into_iter().find(|p| p.name == name).unwrap();
        let rr = run_program_with_reports(&p);
        assert!(
            rr.row.joined.total_allocs() < rr.row.baseline.total_allocs(),
            "{name}: joined {} must beat baseline {}",
            rr.row.joined.total_allocs(),
            rr.row.baseline.total_allocs()
        );
        let totals = rr.joined_report.totals();
        assert!(totals.contified > 0, "{name}: contify must fire: {totals}");
        assert!(
            rr.joined_report.rewrites_for("simplify") > 0,
            "{name}: simplify must fire: {totals}"
        );
    }
}

/// The markdown report renders all three sections with real rows.
#[test]
fn format_report_renders_markdown_tables() {
    let p = programs().into_iter().find(|p| p.name == "queens").unwrap();
    let s = format_report(&[run_program_with_reports(&p)]);
    for needle in [
        "## Machine metrics",
        "## Optimizer activity (join-points pipeline)",
        "## Per-pass detail",
        "| queens |",
        "### queens",
        "| contify |",
    ] {
        assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
    }
}

/// On the Sec. 5 fusion-matrix programs (skip-less and skip-ful
/// steppers, both optimizer pipelines), the fused VM charges exactly
/// the allocation counters the unfused VM does — superinstructions are
/// a dispatch optimization, never a cost-model change.
#[test]
fn vm_fusion_counters_exact_on_fusion_matrix() {
    use fj_ast::Dsl;
    use fj_eval::EvalMode;
    use fj_fusion::StepVariant;
    use fj_vm::{compile_with, run_program, CompileOpts};
    for variant in [StepVariant::Skipless, StepVariant::Skip] {
        for (label, cfg) in [
            ("baseline", OptConfig::baseline()),
            ("join-points", OptConfig::join_points()),
        ] {
            let mut d = Dsl::new();
            let e = crate::fusion_exp::pipeline(&mut d, variant, 200);
            let opt = fj_core::optimize(&e, &d.data_env, &mut d.supply, &cfg)
                .unwrap_or_else(|err| panic!("{variant:?} {label}: optimize: {err}"));
            let unfused = compile_with(&opt, EvalMode::CallByValue, CompileOpts { fuse: false })
                .unwrap_or_else(|err| panic!("{variant:?} {label}: compile: {err}"));
            let fused = compile_with(&opt, EvalMode::CallByValue, CompileOpts { fuse: true })
                .unwrap_or_else(|err| panic!("{variant:?} {label}: compile: {err}"));
            let u = run_program(&unfused, crate::VM_FUEL)
                .unwrap_or_else(|err| panic!("{variant:?} {label}: unfused vm: {err}"));
            let f = run_program(&fused, crate::VM_FUEL)
                .unwrap_or_else(|err| panic!("{variant:?} {label}: fused vm: {err}"));
            assert_eq!(
                f.value,
                fj_eval::Value::Int(crate::fusion_exp::reference(200)),
                "{variant:?} {label}"
            );
            assert_eq!(u.value, f.value, "{variant:?} {label}");
            assert_eq!(
                (
                    u.metrics.let_allocs,
                    u.metrics.arg_allocs,
                    u.metrics.con_allocs,
                    u.metrics.jumps
                ),
                (
                    f.metrics.let_allocs,
                    f.metrics.arg_allocs,
                    f.metrics.con_allocs,
                    f.metrics.jumps
                ),
                "{variant:?} {label}: fusion changed the counters"
            );
        }
    }
}

/// Every native candle computes the same value as the VM, so the
/// BENCH_vm.json hardware-distance ratio always compares identical
/// computations.
#[test]
fn candles_agree_with_vm() {
    let cfg = OptConfig::join_points();
    for p in programs() {
        let f = crate::candles::candle(p.name)
            .unwrap_or_else(|| panic!("{}: no native candle registered", p.name));
        let e = crate::lower(p.source, &cfg);
        let out = fj_vm::run(&e, fj_eval::EvalMode::CallByValue, crate::VM_FUEL)
            .unwrap_or_else(|err| panic!("{}: vm: {err}", p.name));
        let fj_eval::Value::Int(v) = out.value else {
            panic!("{}: main must return Int", p.name);
        };
        assert_eq!(f(), v, "{}: candle disagrees with the VM", p.name);
    }
}

/// The adaptive candle timer returns the candle's value and a nonzero
/// per-rep duration.
#[test]
fn candle_timer_reports_value_and_time() {
    let f = crate::candles::candle("primetest").unwrap();
    let (value, per_rep) = crate::candles::time_candle(f);
    assert_eq!(value, 46);
    assert!(per_rep > std::time::Duration::ZERO);
}

/// The fusion experiment's headline series.
#[test]
fn fusion_series_shapes() {
    use crate::fusion_exp::{run_fusion_experiment, FusionPoint};
    use fj_fusion::StepVariant;
    let pts = run_fusion_experiment(&[50, 200]);
    let find = |v: StepVariant, pl: &str, n: i64| -> &FusionPoint {
        pts.iter()
            .find(|p| p.variant == v && p.pipeline == pl && p.n == n)
            .expect("point present")
    };
    // Skip-less + join points: allocation-free at every n.
    for n in [50, 200] {
        assert_eq!(
            find(StepVariant::Skipless, "join-points", n)
                .metrics
                .total_allocs(),
            0
        );
    }
    // Skip-less + baseline: grows with n.
    let b1 = find(StepVariant::Skipless, "baseline", 50)
        .metrics
        .total_allocs();
    let b2 = find(StepVariant::Skipless, "baseline", 200)
        .metrics
        .total_allocs();
    assert!(b2 > b1 * 2, "baseline must scale with n: {b1} vs {b2}");
}
